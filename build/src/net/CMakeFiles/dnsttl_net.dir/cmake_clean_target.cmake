file(REMOVE_RECURSE
  "libdnsttl_net.a"
)
