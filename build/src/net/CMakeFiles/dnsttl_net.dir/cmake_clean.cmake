file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_net.dir/latency.cc.o"
  "CMakeFiles/dnsttl_net.dir/latency.cc.o.d"
  "CMakeFiles/dnsttl_net.dir/network.cc.o"
  "CMakeFiles/dnsttl_net.dir/network.cc.o.d"
  "libdnsttl_net.a"
  "libdnsttl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
