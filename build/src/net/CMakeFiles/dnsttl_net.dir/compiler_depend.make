# Empty compiler generated dependencies file for dnsttl_net.
# This may be replaced when dependencies are built.
