# Empty compiler generated dependencies file for dnsttl_sim.
# This may be replaced when dependencies are built.
