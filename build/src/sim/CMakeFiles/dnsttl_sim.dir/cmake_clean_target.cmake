file(REMOVE_RECURSE
  "libdnsttl_sim.a"
)
