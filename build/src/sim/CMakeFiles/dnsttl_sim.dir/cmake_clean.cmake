file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_sim.dir/rng.cc.o"
  "CMakeFiles/dnsttl_sim.dir/rng.cc.o.d"
  "CMakeFiles/dnsttl_sim.dir/simulation.cc.o"
  "CMakeFiles/dnsttl_sim.dir/simulation.cc.o.d"
  "libdnsttl_sim.a"
  "libdnsttl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
