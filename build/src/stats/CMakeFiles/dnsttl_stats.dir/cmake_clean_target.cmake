file(REMOVE_RECURSE
  "libdnsttl_stats.a"
)
