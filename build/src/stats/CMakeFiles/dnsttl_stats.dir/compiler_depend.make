# Empty compiler generated dependencies file for dnsttl_stats.
# This may be replaced when dependencies are built.
