file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_stats.dir/cdf.cc.o"
  "CMakeFiles/dnsttl_stats.dir/cdf.cc.o.d"
  "CMakeFiles/dnsttl_stats.dir/table.cc.o"
  "CMakeFiles/dnsttl_stats.dir/table.cc.o.d"
  "CMakeFiles/dnsttl_stats.dir/timeseries.cc.o"
  "CMakeFiles/dnsttl_stats.dir/timeseries.cc.o.d"
  "libdnsttl_stats.a"
  "libdnsttl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
