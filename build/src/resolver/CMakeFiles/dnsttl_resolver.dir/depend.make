# Empty dependencies file for dnsttl_resolver.
# This may be replaced when dependencies are built.
