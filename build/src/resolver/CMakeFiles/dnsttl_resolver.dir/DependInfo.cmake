
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/config.cc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/config.cc.o" "gcc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/config.cc.o.d"
  "/root/repo/src/resolver/forwarder.cc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/forwarder.cc.o" "gcc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/forwarder.cc.o.d"
  "/root/repo/src/resolver/population.cc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/population.cc.o" "gcc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/population.cc.o.d"
  "/root/repo/src/resolver/recursive_resolver.cc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/recursive_resolver.cc.o" "gcc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/recursive_resolver.cc.o.d"
  "/root/repo/src/resolver/stub.cc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/stub.cc.o" "gcc" "src/resolver/CMakeFiles/dnsttl_resolver.dir/stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsttl_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsttl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dnsttl_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dnsttl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
