file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_resolver.dir/config.cc.o"
  "CMakeFiles/dnsttl_resolver.dir/config.cc.o.d"
  "CMakeFiles/dnsttl_resolver.dir/forwarder.cc.o"
  "CMakeFiles/dnsttl_resolver.dir/forwarder.cc.o.d"
  "CMakeFiles/dnsttl_resolver.dir/population.cc.o"
  "CMakeFiles/dnsttl_resolver.dir/population.cc.o.d"
  "CMakeFiles/dnsttl_resolver.dir/recursive_resolver.cc.o"
  "CMakeFiles/dnsttl_resolver.dir/recursive_resolver.cc.o.d"
  "CMakeFiles/dnsttl_resolver.dir/stub.cc.o"
  "CMakeFiles/dnsttl_resolver.dir/stub.cc.o.d"
  "libdnsttl_resolver.a"
  "libdnsttl_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
