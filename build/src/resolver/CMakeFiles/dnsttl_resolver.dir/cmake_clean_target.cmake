file(REMOVE_RECURSE
  "libdnsttl_resolver.a"
)
