file(REMOVE_RECURSE
  "libdnsttl_dns.a"
)
