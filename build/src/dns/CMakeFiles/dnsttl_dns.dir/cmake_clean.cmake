file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_dns.dir/dnssec.cc.o"
  "CMakeFiles/dnsttl_dns.dir/dnssec.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/master_file.cc.o"
  "CMakeFiles/dnsttl_dns.dir/master_file.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/message.cc.o"
  "CMakeFiles/dnsttl_dns.dir/message.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/name.cc.o"
  "CMakeFiles/dnsttl_dns.dir/name.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/rdata.cc.o"
  "CMakeFiles/dnsttl_dns.dir/rdata.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/rr.cc.o"
  "CMakeFiles/dnsttl_dns.dir/rr.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/types.cc.o"
  "CMakeFiles/dnsttl_dns.dir/types.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/wire.cc.o"
  "CMakeFiles/dnsttl_dns.dir/wire.cc.o.d"
  "CMakeFiles/dnsttl_dns.dir/zone.cc.o"
  "CMakeFiles/dnsttl_dns.dir/zone.cc.o.d"
  "libdnsttl_dns.a"
  "libdnsttl_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
