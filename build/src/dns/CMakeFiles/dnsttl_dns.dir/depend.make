# Empty dependencies file for dnsttl_dns.
# This may be replaced when dependencies are built.
