file(REMOVE_RECURSE
  "libdnsttl_auth.a"
)
