file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_auth.dir/auth_server.cc.o"
  "CMakeFiles/dnsttl_auth.dir/auth_server.cc.o.d"
  "CMakeFiles/dnsttl_auth.dir/entrada.cc.o"
  "CMakeFiles/dnsttl_auth.dir/entrada.cc.o.d"
  "CMakeFiles/dnsttl_auth.dir/secondary.cc.o"
  "CMakeFiles/dnsttl_auth.dir/secondary.cc.o.d"
  "libdnsttl_auth.a"
  "libdnsttl_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
