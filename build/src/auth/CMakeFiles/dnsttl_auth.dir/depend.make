# Empty dependencies file for dnsttl_auth.
# This may be replaced when dependencies are built.
