file(REMOVE_RECURSE
  "libdnsttl_cache.a"
)
