file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_cache.dir/cache.cc.o"
  "CMakeFiles/dnsttl_cache.dir/cache.cc.o.d"
  "libdnsttl_cache.a"
  "libdnsttl_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
