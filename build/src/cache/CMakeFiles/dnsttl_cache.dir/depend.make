# Empty dependencies file for dnsttl_cache.
# This may be replaced when dependencies are built.
