
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/dnsttl_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/bailiwick_experiment.cc" "src/core/CMakeFiles/dnsttl_core.dir/bailiwick_experiment.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/bailiwick_experiment.cc.o.d"
  "/root/repo/src/core/centricity_experiment.cc" "src/core/CMakeFiles/dnsttl_core.dir/centricity_experiment.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/centricity_experiment.cc.o.d"
  "/root/repo/src/core/effective_ttl.cc" "src/core/CMakeFiles/dnsttl_core.dir/effective_ttl.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/effective_ttl.cc.o.d"
  "/root/repo/src/core/hit_rate_model.cc" "src/core/CMakeFiles/dnsttl_core.dir/hit_rate_model.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/hit_rate_model.cc.o.d"
  "/root/repo/src/core/latency_experiment.cc" "src/core/CMakeFiles/dnsttl_core.dir/latency_experiment.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/latency_experiment.cc.o.d"
  "/root/repo/src/core/world.cc" "src/core/CMakeFiles/dnsttl_core.dir/world.cc.o" "gcc" "src/core/CMakeFiles/dnsttl_core.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsttl_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/dnsttl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsttl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsttl_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/dnsttl_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dnsttl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dnsttl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dnsttl_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
