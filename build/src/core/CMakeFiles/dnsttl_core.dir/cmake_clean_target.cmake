file(REMOVE_RECURSE
  "libdnsttl_core.a"
)
