file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_core.dir/advisor.cc.o"
  "CMakeFiles/dnsttl_core.dir/advisor.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/bailiwick_experiment.cc.o"
  "CMakeFiles/dnsttl_core.dir/bailiwick_experiment.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/centricity_experiment.cc.o"
  "CMakeFiles/dnsttl_core.dir/centricity_experiment.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/effective_ttl.cc.o"
  "CMakeFiles/dnsttl_core.dir/effective_ttl.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/hit_rate_model.cc.o"
  "CMakeFiles/dnsttl_core.dir/hit_rate_model.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/latency_experiment.cc.o"
  "CMakeFiles/dnsttl_core.dir/latency_experiment.cc.o.d"
  "CMakeFiles/dnsttl_core.dir/world.cc.o"
  "CMakeFiles/dnsttl_core.dir/world.cc.o.d"
  "libdnsttl_core.a"
  "libdnsttl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
