# Empty compiler generated dependencies file for dnsttl_core.
# This may be replaced when dependencies are built.
