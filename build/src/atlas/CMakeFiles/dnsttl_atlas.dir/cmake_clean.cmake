file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_atlas.dir/measurement.cc.o"
  "CMakeFiles/dnsttl_atlas.dir/measurement.cc.o.d"
  "CMakeFiles/dnsttl_atlas.dir/platform.cc.o"
  "CMakeFiles/dnsttl_atlas.dir/platform.cc.o.d"
  "libdnsttl_atlas.a"
  "libdnsttl_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
