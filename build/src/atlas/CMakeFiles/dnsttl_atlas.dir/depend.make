# Empty dependencies file for dnsttl_atlas.
# This may be replaced when dependencies are built.
