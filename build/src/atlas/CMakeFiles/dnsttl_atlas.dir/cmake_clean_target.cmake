file(REMOVE_RECURSE
  "libdnsttl_atlas.a"
)
