file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_crawl.dir/crawler.cc.o"
  "CMakeFiles/dnsttl_crawl.dir/crawler.cc.o.d"
  "CMakeFiles/dnsttl_crawl.dir/dmap.cc.o"
  "CMakeFiles/dnsttl_crawl.dir/dmap.cc.o.d"
  "CMakeFiles/dnsttl_crawl.dir/live_check.cc.o"
  "CMakeFiles/dnsttl_crawl.dir/live_check.cc.o.d"
  "CMakeFiles/dnsttl_crawl.dir/passive_workload.cc.o"
  "CMakeFiles/dnsttl_crawl.dir/passive_workload.cc.o.d"
  "CMakeFiles/dnsttl_crawl.dir/population_generator.cc.o"
  "CMakeFiles/dnsttl_crawl.dir/population_generator.cc.o.d"
  "libdnsttl_crawl.a"
  "libdnsttl_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
