file(REMOVE_RECURSE
  "libdnsttl_crawl.a"
)
