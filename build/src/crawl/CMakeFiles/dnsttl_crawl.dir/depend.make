# Empty dependencies file for dnsttl_crawl.
# This may be replaced when dependencies are built.
