# Empty compiler generated dependencies file for bench_table8_ttl0.
# This may be replaced when dependencies are built.
