file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_ttl0.dir/bench_table8_ttl0.cc.o"
  "CMakeFiles/bench_table8_ttl0.dir/bench_table8_ttl0.cc.o.d"
  "bench_table8_ttl0"
  "bench_table8_ttl0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ttl0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
