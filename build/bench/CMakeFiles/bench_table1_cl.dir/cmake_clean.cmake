file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cl.dir/bench_table1_cl.cc.o"
  "CMakeFiles/bench_table1_cl.dir/bench_table1_cl.cc.o.d"
  "bench_table1_cl"
  "bench_table1_cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
