# Empty dependencies file for bench_table1_cl.
# This may be replaced when dependencies are built.
