file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_ddos.dir/bench_extension_ddos.cc.o"
  "CMakeFiles/bench_extension_ddos.dir/bench_extension_ddos.cc.o.d"
  "bench_extension_ddos"
  "bench_extension_ddos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_ddos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
