# Empty compiler generated dependencies file for bench_extension_ddos.
# This may be replaced when dependencies are built.
