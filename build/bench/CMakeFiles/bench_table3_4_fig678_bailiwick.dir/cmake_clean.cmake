file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_4_fig678_bailiwick.dir/bench_table3_4_fig678_bailiwick.cc.o"
  "CMakeFiles/bench_table3_4_fig678_bailiwick.dir/bench_table3_4_fig678_bailiwick.cc.o.d"
  "bench_table3_4_fig678_bailiwick"
  "bench_table3_4_fig678_bailiwick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_4_fig678_bailiwick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
