# Empty compiler generated dependencies file for bench_table3_4_fig678_bailiwick.
# This may be replaced when dependencies are built.
