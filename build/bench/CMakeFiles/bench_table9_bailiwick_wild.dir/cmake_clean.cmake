file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_bailiwick_wild.dir/bench_table9_bailiwick_wild.cc.o"
  "CMakeFiles/bench_table9_bailiwick_wild.dir/bench_table9_bailiwick_wild.cc.o.d"
  "bench_table9_bailiwick_wild"
  "bench_table9_bailiwick_wild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_bailiwick_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
