# Empty dependencies file for bench_table9_bailiwick_wild.
# This may be replaced when dependencies are built.
