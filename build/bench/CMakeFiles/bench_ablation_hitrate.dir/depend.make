# Empty dependencies file for bench_ablation_hitrate.
# This may be replaced when dependencies are built.
