
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_hitrate.cc" "bench/CMakeFiles/bench_ablation_hitrate.dir/bench_ablation_hitrate.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_hitrate.dir/bench_ablation_hitrate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dnsttl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/dnsttl_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/crawl/CMakeFiles/dnsttl_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsttl_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/dnsttl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dnsttl_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnsttl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsttl_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dnsttl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dnsttl_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
