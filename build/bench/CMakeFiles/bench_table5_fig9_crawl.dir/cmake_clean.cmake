file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fig9_crawl.dir/bench_table5_fig9_crawl.cc.o"
  "CMakeFiles/bench_table5_fig9_crawl.dir/bench_table5_fig9_crawl.cc.o.d"
  "bench_table5_fig9_crawl"
  "bench_table5_fig9_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fig9_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
