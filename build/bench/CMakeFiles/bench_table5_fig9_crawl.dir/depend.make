# Empty dependencies file for bench_table5_fig9_crawl.
# This may be replaced when dependencies are built.
