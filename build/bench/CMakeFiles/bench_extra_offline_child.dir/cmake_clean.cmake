file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_offline_child.dir/bench_extra_offline_child.cc.o"
  "CMakeFiles/bench_extra_offline_child.dir/bench_extra_offline_child.cc.o.d"
  "bench_extra_offline_child"
  "bench_extra_offline_child.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_offline_child.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
