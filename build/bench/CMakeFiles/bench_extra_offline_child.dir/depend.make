# Empty dependencies file for bench_extra_offline_child.
# This may be replaced when dependencies are built.
