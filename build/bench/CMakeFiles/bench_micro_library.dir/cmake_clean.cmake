file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_library.dir/bench_micro_library.cc.o"
  "CMakeFiles/bench_micro_library.dir/bench_micro_library.cc.o.d"
  "bench_micro_library"
  "bench_micro_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
