# Empty dependencies file for bench_fig10_uy_rtt.
# This may be replaced when dependencies are built.
