# Empty compiler generated dependencies file for bench_table2_fig1_uy.
# This may be replaced when dependencies are built.
