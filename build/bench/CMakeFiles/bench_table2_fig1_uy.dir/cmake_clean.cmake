file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fig1_uy.dir/bench_table2_fig1_uy.cc.o"
  "CMakeFiles/bench_table2_fig1_uy.dir/bench_table2_fig1_uy.cc.o.d"
  "bench_table2_fig1_uy"
  "bench_table2_fig1_uy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fig1_uy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
