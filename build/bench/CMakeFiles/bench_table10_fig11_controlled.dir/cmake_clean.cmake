file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_fig11_controlled.dir/bench_table10_fig11_controlled.cc.o"
  "CMakeFiles/bench_table10_fig11_controlled.dir/bench_table10_fig11_controlled.cc.o.d"
  "bench_table10_fig11_controlled"
  "bench_table10_fig11_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_fig11_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
