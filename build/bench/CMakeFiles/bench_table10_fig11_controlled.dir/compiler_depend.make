# Empty compiler generated dependencies file for bench_table10_fig11_controlled.
# This may be replaced when dependencies are built.
