file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_googleco.dir/bench_fig2_googleco.cc.o"
  "CMakeFiles/bench_fig2_googleco.dir/bench_fig2_googleco.cc.o.d"
  "bench_fig2_googleco"
  "bench_fig2_googleco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_googleco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
