# Empty dependencies file for bench_fig2_googleco.
# This may be replaced when dependencies are built.
