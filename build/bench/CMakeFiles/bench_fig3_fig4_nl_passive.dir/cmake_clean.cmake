file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fig4_nl_passive.dir/bench_fig3_fig4_nl_passive.cc.o"
  "CMakeFiles/bench_fig3_fig4_nl_passive.dir/bench_fig3_fig4_nl_passive.cc.o.d"
  "bench_fig3_fig4_nl_passive"
  "bench_fig3_fig4_nl_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig4_nl_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
