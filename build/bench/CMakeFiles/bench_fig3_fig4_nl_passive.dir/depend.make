# Empty dependencies file for bench_fig3_fig4_nl_passive.
# This may be replaced when dependencies are built.
