file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_7_dmap.dir/bench_table6_7_dmap.cc.o"
  "CMakeFiles/bench_table6_7_dmap.dir/bench_table6_7_dmap.cc.o.d"
  "bench_table6_7_dmap"
  "bench_table6_7_dmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_7_dmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
