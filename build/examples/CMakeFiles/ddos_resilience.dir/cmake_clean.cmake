file(REMOVE_RECURSE
  "CMakeFiles/ddos_resilience.dir/ddos_resilience.cpp.o"
  "CMakeFiles/ddos_resilience.dir/ddos_resilience.cpp.o.d"
  "ddos_resilience"
  "ddos_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
