# Empty dependencies file for ddos_resilience.
# This may be replaced when dependencies are built.
