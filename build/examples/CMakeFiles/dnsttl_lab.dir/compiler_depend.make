# Empty compiler generated dependencies file for dnsttl_lab.
# This may be replaced when dependencies are built.
