file(REMOVE_RECURSE
  "CMakeFiles/dnsttl_lab.dir/dnsttl_lab.cpp.o"
  "CMakeFiles/dnsttl_lab.dir/dnsttl_lab.cpp.o.d"
  "dnsttl_lab"
  "dnsttl_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsttl_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
