# Empty dependencies file for ttl_rollout.
# This may be replaced when dependencies are built.
