file(REMOVE_RECURSE
  "CMakeFiles/ttl_rollout.dir/ttl_rollout.cpp.o"
  "CMakeFiles/ttl_rollout.dir/ttl_rollout.cpp.o.d"
  "ttl_rollout"
  "ttl_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttl_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
