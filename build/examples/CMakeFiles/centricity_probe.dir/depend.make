# Empty dependencies file for centricity_probe.
# This may be replaced when dependencies are built.
