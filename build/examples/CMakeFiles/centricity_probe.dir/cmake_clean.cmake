file(REMOVE_RECURSE
  "CMakeFiles/centricity_probe.dir/centricity_probe.cpp.o"
  "CMakeFiles/centricity_probe.dir/centricity_probe.cpp.o.d"
  "centricity_probe"
  "centricity_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centricity_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
