file(REMOVE_RECURSE
  "CMakeFiles/ttl_advisor.dir/ttl_advisor.cpp.o"
  "CMakeFiles/ttl_advisor.dir/ttl_advisor.cpp.o.d"
  "ttl_advisor"
  "ttl_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttl_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
