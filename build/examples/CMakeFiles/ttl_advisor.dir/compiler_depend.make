# Empty compiler generated dependencies file for ttl_advisor.
# This may be replaced when dependencies are built.
