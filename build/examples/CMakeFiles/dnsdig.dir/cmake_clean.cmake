file(REMOVE_RECURSE
  "CMakeFiles/dnsdig.dir/dnsdig.cpp.o"
  "CMakeFiles/dnsdig.dir/dnsdig.cpp.o.d"
  "dnsdig"
  "dnsdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
