# Empty compiler generated dependencies file for dnsdig.
# This may be replaced when dependencies are built.
