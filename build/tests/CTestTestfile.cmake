# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/name_test[1]_include.cmake")
include("/root/repo/build/tests/rdata_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/zone_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/atlas_test[1]_include.cmake")
include("/root/repo/build/tests/crawl_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/master_file_test[1]_include.cmake")
include("/root/repo/build/tests/dnssec_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_policy_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_extras_test[1]_include.cmake")
include("/root/repo/build/tests/entrada_secondary_test[1]_include.cmake")
include("/root/repo/build/tests/qmin_srv_test[1]_include.cmake")
include("/root/repo/build/tests/stub_dump_test[1]_include.cmake")
include("/root/repo/build/tests/model_based_test[1]_include.cmake")
include("/root/repo/build/tests/policy_combination_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
