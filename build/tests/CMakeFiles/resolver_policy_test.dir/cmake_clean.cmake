file(REMOVE_RECURSE
  "CMakeFiles/resolver_policy_test.dir/resolver_policy_test.cc.o"
  "CMakeFiles/resolver_policy_test.dir/resolver_policy_test.cc.o.d"
  "resolver_policy_test"
  "resolver_policy_test.pdb"
  "resolver_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
