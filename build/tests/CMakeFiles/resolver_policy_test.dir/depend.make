# Empty dependencies file for resolver_policy_test.
# This may be replaced when dependencies are built.
