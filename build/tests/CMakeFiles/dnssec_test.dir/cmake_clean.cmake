file(REMOVE_RECURSE
  "CMakeFiles/dnssec_test.dir/dnssec_test.cc.o"
  "CMakeFiles/dnssec_test.dir/dnssec_test.cc.o.d"
  "dnssec_test"
  "dnssec_test.pdb"
  "dnssec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
