# Empty dependencies file for protocol_extras_test.
# This may be replaced when dependencies are built.
