file(REMOVE_RECURSE
  "CMakeFiles/protocol_extras_test.dir/protocol_extras_test.cc.o"
  "CMakeFiles/protocol_extras_test.dir/protocol_extras_test.cc.o.d"
  "protocol_extras_test"
  "protocol_extras_test.pdb"
  "protocol_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
