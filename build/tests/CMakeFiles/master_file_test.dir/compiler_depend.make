# Empty compiler generated dependencies file for master_file_test.
# This may be replaced when dependencies are built.
