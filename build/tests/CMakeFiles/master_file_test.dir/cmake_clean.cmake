file(REMOVE_RECURSE
  "CMakeFiles/master_file_test.dir/master_file_test.cc.o"
  "CMakeFiles/master_file_test.dir/master_file_test.cc.o.d"
  "master_file_test"
  "master_file_test.pdb"
  "master_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
