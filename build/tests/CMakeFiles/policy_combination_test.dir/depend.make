# Empty dependencies file for policy_combination_test.
# This may be replaced when dependencies are built.
