file(REMOVE_RECURSE
  "CMakeFiles/policy_combination_test.dir/policy_combination_test.cc.o"
  "CMakeFiles/policy_combination_test.dir/policy_combination_test.cc.o.d"
  "policy_combination_test"
  "policy_combination_test.pdb"
  "policy_combination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_combination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
