file(REMOVE_RECURSE
  "CMakeFiles/stub_dump_test.dir/stub_dump_test.cc.o"
  "CMakeFiles/stub_dump_test.dir/stub_dump_test.cc.o.d"
  "stub_dump_test"
  "stub_dump_test.pdb"
  "stub_dump_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stub_dump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
