# Empty compiler generated dependencies file for stub_dump_test.
# This may be replaced when dependencies are built.
