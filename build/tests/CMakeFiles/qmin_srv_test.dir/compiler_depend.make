# Empty compiler generated dependencies file for qmin_srv_test.
# This may be replaced when dependencies are built.
