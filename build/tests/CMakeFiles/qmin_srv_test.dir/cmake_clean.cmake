file(REMOVE_RECURSE
  "CMakeFiles/qmin_srv_test.dir/qmin_srv_test.cc.o"
  "CMakeFiles/qmin_srv_test.dir/qmin_srv_test.cc.o.d"
  "qmin_srv_test"
  "qmin_srv_test.pdb"
  "qmin_srv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmin_srv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
