# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qmin_srv_test.
