# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for entrada_secondary_test.
