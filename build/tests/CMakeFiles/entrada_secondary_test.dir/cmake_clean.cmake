file(REMOVE_RECURSE
  "CMakeFiles/entrada_secondary_test.dir/entrada_secondary_test.cc.o"
  "CMakeFiles/entrada_secondary_test.dir/entrada_secondary_test.cc.o.d"
  "entrada_secondary_test"
  "entrada_secondary_test.pdb"
  "entrada_secondary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entrada_secondary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
