# Empty compiler generated dependencies file for entrada_secondary_test.
# This may be replaced when dependencies are built.
