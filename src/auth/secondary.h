#ifndef DNSTTL_AUTH_SECONDARY_H
#define DNSTTL_AUTH_SECONDARY_H

#include <cstdint>
#include <memory>

#include "auth/auth_server.h"
#include "dns/zone.h"
#include "sim/simulation.h"

namespace dnsttl::auth {

/// A secondary (slave) copy of a zone, kept in sync by SOA serial polling
/// per the zone's SOA timers (RFC 1034 §4.3.5).
///
/// This is how TTL changes actually roll out in multi-server deployments:
/// when .uy raised its NS TTL (§5.3 of the paper), each secondary kept
/// serving the old TTL until its next successful refresh.  The simulator
/// makes that propagation delay observable.
///
/// Behavior:
/// - Every `refresh` seconds (from the primary's SOA, overridable) the
///   secondary compares serials and copies the zone when the primary's is
///   newer.  Remember to call Zone::bump_serial() after editing a primary.
/// - While the primary is unreachable it retries every `retry` seconds;
///   after `expire` seconds without contact the copy is withdrawn from the
///   server (queries are REFUSED), per the SOA expire rule.
class Secondary {
 public:
  /// Starts serving a copy of @p primary on @p server, with refresh checks
  /// scheduled on @p simulation.  @p refresh_override (zero = use the SOA
  /// value) shortens the poll interval for experiments.
  Secondary(sim::Simulation& simulation,
            std::shared_ptr<const dns::Zone> primary, AuthServer& server,
            dns::Ttl refresh_override = dns::Ttl{});

  Secondary(const Secondary&) = delete;
  Secondary& operator=(const Secondary&) = delete;

  /// The served copy (shared with the AuthServer while healthy).
  const std::shared_ptr<dns::Zone>& zone() const noexcept { return copy_; }

  /// Serial of the currently served copy.
  std::uint32_t serial() const;

  /// Number of zone transfers performed (including the initial one).
  std::uint32_t transfers() const noexcept { return transfers_; }

  /// Simulates loss/restoration of connectivity to the primary.
  void set_primary_reachable(bool reachable) noexcept {
    reachable_ = reachable;
  }

  /// True once the copy passed its SOA expire time and was withdrawn.
  bool expired() const noexcept { return expired_; }

 private:
  void transfer(sim::Time now);
  void check();
  void schedule_next(sim::Duration delay);

  sim::Simulation& simulation_;
  std::shared_ptr<const dns::Zone> primary_;
  AuthServer& server_;
  std::shared_ptr<dns::Zone> copy_;
  dns::Ttl refresh_override_{};
  bool reachable_ = true;
  bool expired_ = false;
  sim::Time last_success_{};
  std::uint32_t transfers_ = 0;
};

}  // namespace dnsttl::auth

#endif  // DNSTTL_AUTH_SECONDARY_H
