#ifndef DNSTTL_AUTH_AUTH_SERVER_H
#define DNSTTL_AUTH_AUTH_SERVER_H

#include <memory>
#include <string>
#include <vector>

#include "auth/query_log.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "net/network.h"
#include "sim/time.h"

namespace dnsttl::auth {

/// An authoritative DNS server: serves one or more zones, composes
/// referral/answer/negative responses per RFC 1034, and keeps a query log.
///
/// Zones are shared (std::shared_ptr) so an experiment can edit a zone at
/// runtime — renumber a server, change a TTL — and every serving replica
/// observes the change instantly, like a zone push.
class AuthServer : public net::DnsNode {
 public:
  /// @p ident is a human-readable identity ("original", "new", "a.nic.uy")
  /// used by experiment reports.
  explicit AuthServer(std::string ident) : ident_(std::move(ident)) {}

  void add_zone(std::shared_ptr<dns::Zone> zone) {
    zones_.push_back(std::move(zone));
  }

  /// Stops serving a zone (e.g. a secondary whose copy expired); returns
  /// false if the zone was not attached.
  bool remove_zone(const std::shared_ptr<dns::Zone>& zone) {
    for (auto it = zones_.begin(); it != zones_.end(); ++it) {
      if (*it == zone) {
        zones_.erase(it);
        return true;
      }
    }
    return false;
  }
  const std::vector<std::shared_ptr<dns::Zone>>& zones() const noexcept {
    return zones_;
  }

  const std::string& ident() const noexcept { return ident_; }

  /// An offline server never answers (clients time out) — used by the
  /// zurrundedu-offline experiment (§4.4).
  void set_online(bool online) noexcept { online_ = online; }
  bool online() const noexcept { return online_; }

  void set_logging(bool enabled) noexcept { logging_ = enabled; }
  QueryLog& log() noexcept { return log_; }
  const QueryLog& log() const noexcept { return log_; }

  /// Per-query constant server think time.
  void set_processing_delay(sim::Duration delay) noexcept {
    processing_delay_ = delay;
  }

  /// Round-robin rotation of multi-record answer sets (the DNS-based load
  /// balancing of the paper's §6.1: every response reorders the addresses
  /// so clients spread across them).
  void set_rotate_answers(bool enabled) noexcept { rotate_answers_ = enabled; }

  std::uint64_t queries_answered() const noexcept { return answered_; }

  std::optional<net::ServerReply> handle_query(const dns::Message& query,
                                               net::Address client,
                                               sim::Time now) override;

 private:
  /// The attached zone whose origin is the deepest ancestor of @p qname.
  const dns::Zone* best_zone(const dns::Name& qname) const;

  std::string ident_;
  std::vector<std::shared_ptr<dns::Zone>> zones_;
  bool online_ = true;
  bool logging_ = false;
  QueryLog log_;
  sim::Duration processing_delay_ = sim::microseconds(200);
  std::uint64_t answered_ = 0;
  bool rotate_answers_ = false;
  std::uint64_t rotation_counter_ = 0;
};

}  // namespace dnsttl::auth

#endif  // DNSTTL_AUTH_AUTH_SERVER_H
