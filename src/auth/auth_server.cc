#include "auth/auth_server.h"

#include <algorithm>
#include <unordered_set>

namespace dnsttl::auth {

std::vector<LogEntry> QueryLog::for_qname(const dns::Name& qname) const {
  std::vector<LogEntry> out;
  for (const auto& entry : entries_) {
    if (entry.qname == qname) {
      out.push_back(entry);
    }
  }
  return out;
}

std::size_t QueryLog::unique_clients() const {
  std::unordered_set<std::uint32_t> clients;
  for (const auto& entry : entries_) {
    clients.insert(entry.client.value());
  }
  return clients.size();
}

const dns::Zone* AuthServer::best_zone(const dns::Name& qname) const {
  const dns::Zone* best = nullptr;
  std::size_t best_depth = 0;
  for (const auto& zone : zones_) {
    if (!qname.is_subdomain_of(zone->origin())) {
      continue;
    }
    std::size_t depth = zone->origin().label_count() + 1;  // +1: root matches
    if (best == nullptr || depth > best_depth) {
      best = zone.get();
      best_depth = depth;
    }
  }
  return best;
}

std::optional<net::ServerReply> AuthServer::handle_query(
    const dns::Message& query, net::Address client, sim::Time now) {
  if (!online_) {
    return std::nullopt;
  }
  if (query.questions.empty()) {
    auto response = dns::Message::make_response(query);
    response.flags.rcode = dns::Rcode::kFormErr;
    return net::ServerReply{std::move(response), processing_delay_};
  }

  const auto& question = query.question();
  if (logging_) {
    log_.record(LogEntry{now, client, question.qname, question.qtype});
  }
  ++answered_;

  auto response = dns::Message::make_response(query);
  response.flags.rd = query.flags.rd;
  response.flags.ra = false;  // authoritative servers offer no recursion

  const dns::Zone* zone = best_zone(question.qname);
  if (zone == nullptr) {
    response.flags.rcode = dns::Rcode::kRefused;
    return net::ServerReply{std::move(response), processing_delay_};
  }

  auto result = zone->lookup(question.qname, question.qtype);
  using Kind = dns::LookupResult::Kind;
  switch (result.kind) {
    case Kind::kAnswer:
      response.flags.aa = true;
      break;
    case Kind::kDelegation:
      response.flags.aa = false;
      break;
    case Kind::kNxDomain:
      response.flags.aa = true;
      response.flags.rcode = dns::Rcode::kNXDomain;
      break;
    case Kind::kNoData:
      response.flags.aa = true;
      break;
    case Kind::kNotInZone:
      response.flags.rcode = dns::Rcode::kRefused;
      return net::ServerReply{std::move(response), processing_delay_};
  }
  response.answers = std::move(result.answers);
  response.authorities = std::move(result.authorities);
  response.additionals = std::move(result.additionals);

  if (rotate_answers_ && response.answers.size() > 1) {
    // Rotate the leading same-type run (the answer RRset proper), leaving
    // RRSIGs and chained records in place.
    std::size_t run = 1;
    while (run < response.answers.size() &&
           response.answers[run].type() == response.answers[0].type() &&
           response.answers[run].name == response.answers[0].name) {
      ++run;
    }
    if (run > 1) {
      std::rotate(response.answers.begin(),
                  response.answers.begin() +
                      static_cast<long>(++rotation_counter_ % run),
                  response.answers.begin() + static_cast<long>(run));
    }
  }
  return net::ServerReply{std::move(response), processing_delay_};
}

}  // namespace dnsttl::auth
