#include "auth/secondary.h"

namespace dnsttl::auth {

namespace {

std::uint32_t soa_serial(const dns::Zone& zone) {
  if (auto soa = zone.soa()) {
    return std::get<dns::SoaRdata>(soa->rdata).serial;
  }
  return 0;
}

}  // namespace

Secondary::Secondary(sim::Simulation& simulation,
                     std::shared_ptr<const dns::Zone> primary,
                     AuthServer& server, dns::Ttl refresh_override)
    : simulation_(simulation),
      primary_(std::move(primary)),
      server_(server),
      copy_(std::make_shared<dns::Zone>(primary_->origin())),
      refresh_override_(refresh_override) {
  transfer(simulation_.now());
  server_.add_zone(copy_);
  schedule_next(sim::Duration{});
}

std::uint32_t Secondary::serial() const { return soa_serial(*copy_); }

void Secondary::transfer(sim::Time now) {
  copy_->clear();
  for (const auto& rrset : primary_->all_rrsets()) {
    copy_->replace(rrset);
  }
  last_success_ = now;
  ++transfers_;
}

void Secondary::schedule_next(sim::Duration delay) {
  if (delay == sim::Duration{}) {
    // First call: derive the refresh interval.
    dns::Ttl refresh = refresh_override_;
    if (refresh == dns::Ttl{}) {
      if (auto soa = primary_->soa()) {
        refresh = std::get<dns::SoaRdata>(soa->rdata).refresh.clamped();
      } else {
        refresh = dns::kTtl2Hours;
      }
    }
    delay = sim::seconds(refresh.value());
  }
  simulation_.schedule_after(delay, [this] { check(); });
}

void Secondary::check() {
  dns::Ttl refresh = refresh_override_;
  dns::Ttl retry{3600};
  dns::Ttl expire{1209600};
  if (auto soa = primary_->soa()) {
    const auto& rdata = std::get<dns::SoaRdata>(soa->rdata);
    if (refresh == dns::Ttl{}) refresh = rdata.refresh.clamped();
    retry = refresh_override_ != dns::Ttl{} ? refresh_override_
                                            : rdata.retry.clamped();
    expire = rdata.expire.clamped();
  }
  if (refresh == dns::Ttl{}) refresh = dns::kTtl2Hours;

  sim::Time now = simulation_.now();
  if (reachable_) {
    if (expired_) {
      // Back from the dead: resume service with a fresh transfer.
      transfer(now);
      server_.add_zone(copy_);
      expired_ = false;
    } else if (soa_serial(*primary_) != soa_serial(*copy_)) {
      transfer(now);
    } else {
      last_success_ = now;
    }
    schedule_next(sim::seconds(refresh.value()));
    return;
  }

  // Primary unreachable: retry faster; expire the copy when too stale.
  if (!expired_ && now - last_success_ > sim::seconds(expire.value())) {
    server_.remove_zone(copy_);
    expired_ = true;
  }
  schedule_next(sim::seconds(retry.value()));
}

}  // namespace dnsttl::auth
