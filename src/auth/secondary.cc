#include "auth/secondary.h"

namespace dnsttl::auth {

namespace {

std::uint32_t soa_serial(const dns::Zone& zone) {
  if (auto soa = zone.soa()) {
    return std::get<dns::SoaRdata>(soa->rdata).serial;
  }
  return 0;
}

}  // namespace

Secondary::Secondary(sim::Simulation& simulation,
                     std::shared_ptr<const dns::Zone> primary,
                     AuthServer& server, std::uint32_t refresh_override)
    : simulation_(simulation),
      primary_(std::move(primary)),
      server_(server),
      copy_(std::make_shared<dns::Zone>(primary_->origin())),
      refresh_override_(refresh_override) {
  transfer(simulation_.now());
  server_.add_zone(copy_);
  schedule_next(0);
}

std::uint32_t Secondary::serial() const { return soa_serial(*copy_); }

void Secondary::transfer(sim::Time now) {
  copy_->clear();
  for (const auto& rrset : primary_->all_rrsets()) {
    copy_->replace(rrset);
  }
  last_success_ = now;
  ++transfers_;
}

void Secondary::schedule_next(std::uint32_t delay_seconds) {
  if (delay_seconds == 0) {
    // First call: derive the refresh interval.
    std::uint32_t refresh = refresh_override_;
    if (refresh == 0) {
      if (auto soa = primary_->soa()) {
        refresh = std::get<dns::SoaRdata>(soa->rdata).refresh;
      } else {
        refresh = 7200;
      }
    }
    delay_seconds = refresh;
  }
  simulation_.schedule_after(sim::seconds(delay_seconds),
                             [this] { check(); });
}

void Secondary::check() {
  std::uint32_t refresh = refresh_override_;
  std::uint32_t retry = 3600;
  std::uint32_t expire = 1209600;
  if (auto soa = primary_->soa()) {
    const auto& rdata = std::get<dns::SoaRdata>(soa->rdata);
    if (refresh == 0) refresh = rdata.refresh;
    retry = refresh_override_ != 0 ? refresh_override_ : rdata.retry;
    expire = rdata.expire;
  }
  if (refresh == 0) refresh = 7200;

  sim::Time now = simulation_.now();
  if (reachable_) {
    if (expired_) {
      // Back from the dead: resume service with a fresh transfer.
      transfer(now);
      server_.add_zone(copy_);
      expired_ = false;
    } else if (soa_serial(*primary_) != soa_serial(*copy_)) {
      transfer(now);
    } else {
      last_success_ = now;
    }
    schedule_next(refresh);
    return;
  }

  // Primary unreachable: retry faster; expire the copy when too stale.
  if (!expired_ && now - last_success_ > sim::seconds(expire)) {
    server_.remove_zone(copy_);
    expired_ = true;
  }
  schedule_next(retry);
}

}  // namespace dnsttl::auth
