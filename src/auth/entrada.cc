#include "auth/entrada.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dnsttl::auth {

void Entrada::ingest(const QueryLog& log, const std::string& server_ident) {
  rows_.reserve(rows_.size() + log.size());
  for (const auto& entry : log.entries()) {
    rows_.push_back(
        Row{entry.time, server_ident, entry.client, entry.qname, entry.qtype});
  }
}

std::string Entrada::to_csv() const {
  std::string out = "time_us,server,client,qname,qtype\n";
  for (const auto& row : rows_) {
    out += std::to_string(row.time.ticks()) + "," + row.server + "," +
           row.client.to_string() + "," + row.qname.to_string() + "," +
           std::string(dns::to_string(row.qtype)) + "\n";
  }
  return out;
}

Entrada Entrada::from_csv(std::string_view csv) {
  Entrada store;
  std::size_t pos = 0;
  bool header = true;
  std::size_t line_no = 0;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? csv.substr(pos)
                                : csv.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? csv.size() : eol + 1;
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }

    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (true) {
      std::size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    if (fields.size() != 5) {
      throw std::invalid_argument("entrada csv line " +
                                  std::to_string(line_no) +
                                  ": expected 5 fields");
    }
    Row row;
    std::int64_t time_us = 0;
    auto [ptr, ec] = std::from_chars(
        fields[0].data(), fields[0].data() + fields[0].size(), time_us);
    if (ec != std::errc{} || ptr != fields[0].data() + fields[0].size()) {
      throw std::invalid_argument("entrada csv line " +
                                  std::to_string(line_no) + ": bad time");
    }
    row.time = sim::Time(time_us);
    row.server = std::string(fields[1]);
    row.client = dns::Ipv4::from_string(std::string(fields[2]));
    row.qname = dns::Name::from_string(fields[3]);
    row.qtype = dns::rrtype_from_string(fields[4]);
    store.rows_.push_back(std::move(row));
  }
  return store;
}

std::size_t Entrada::unique_clients() const {
  std::unordered_set<std::uint32_t> clients;
  for (const auto& row : rows_) {
    clients.insert(row.client.value());
  }
  return clients.size();
}

std::map<std::pair<std::uint32_t, dns::Name>, std::vector<sim::Time>>
Entrada::group_times(const std::set<dns::Name>& qnames) const {
  std::map<std::pair<std::uint32_t, dns::Name>, std::vector<sim::Time>>
      groups;
  for (const auto& row : rows_) {
    if (!qnames.empty() && !qnames.contains(row.qname)) {
      continue;
    }
    groups[{row.client.value(), row.qname}].push_back(row.time);
  }
  for (auto& [key, times] : groups) {
    std::sort(times.begin(), times.end());
  }
  return groups;
}

stats::Cdf Entrada::queries_per_group(
    const std::set<dns::Name>& qnames) const {
  stats::Cdf cdf;
  for (const auto& [key, times] : group_times(qnames)) {
    cdf.add(static_cast<double>(times.size()));
  }
  return cdf;
}

stats::Cdf Entrada::min_interarrival_hours(const std::set<dns::Name>& qnames,
                                           sim::Duration dedup_window) const {
  stats::Cdf cdf;
  for (const auto& [key, times] : group_times(qnames)) {
    sim::Duration best{-1};
    for (std::size_t i = 1; i < times.size(); ++i) {
      sim::Duration gap = times[i] - times[i - 1];
      if (gap <= dedup_window) {
        continue;  // retransmission-like duplicate
      }
      if (best.count() < 0 || gap < best) {
        best = gap;
      }
    }
    if (best.count() >= 0) {
      cdf.add(sim::to_seconds(best) / 3600.0);
    }
  }
  return cdf;
}

stats::BinnedSeries Entrada::load_series(sim::Duration bin_width) const {
  stats::BinnedSeries series(bin_width);
  for (const auto& row : rows_) {
    series.record(row.server, row.time);
  }
  return series;
}

std::vector<std::pair<dns::Name, std::size_t>> Entrada::top_qnames(
    std::size_t k) const {
  std::map<dns::Name, std::size_t> counts;
  for (const auto& row : rows_) {
    ++counts[row.qname];
  }
  std::vector<std::pair<dns::Name, std::size_t>> ranked(counts.begin(),
                                                        counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > k) {
    ranked.resize(k);
  }
  return ranked;
}

}  // namespace dnsttl::auth
