#ifndef DNSTTL_AUTH_QUERY_LOG_H
#define DNSTTL_AUTH_QUERY_LOG_H

#include <cstdint>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/network.h"
#include "sim/time.h"

namespace dnsttl::auth {

/// One logged query at an authoritative server — the fields the paper's
/// ENTRADA warehouse analysis (§3.4) uses: arrival time, resolver source
/// address, query name and type.
struct LogEntry {
  sim::Time time{};
  net::Address client;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;
};

/// Append-only query log, the simulator's stand-in for packet capture +
/// ENTRADA at `.nl`'s authoritative servers.
class QueryLog {
 public:
  void record(LogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<LogEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Entries for one query name, in arrival order.
  std::vector<LogEntry> for_qname(const dns::Name& qname) const;

  /// Count of distinct client addresses seen.
  std::size_t unique_clients() const;

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace dnsttl::auth

#endif  // DNSTTL_AUTH_QUERY_LOG_H
