#ifndef DNSTTL_AUTH_ENTRADA_H
#define DNSTTL_AUTH_ENTRADA_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "auth/query_log.h"
#include "stats/cdf.h"
#include "stats/timeseries.h"

namespace dnsttl::auth {

/// ENTRADA-style query warehouse (after SIDN's streaming DNS warehouse the
/// paper's §3.4 analysis ran on): ingests authoritative query logs from any
/// number of servers, round-trips a portable CSV form, and answers the
/// aggregate questions the paper's passive analyses ask — per-(source,
/// qname) grouping, interarrival statistics, client counts, load series.
class Entrada {
 public:
  struct Row {
    sim::Time time{};
    std::string server;
    net::Address client;
    dns::Name qname;
    dns::RRType qtype = dns::RRType::kA;
  };

  /// Copies one server's log into the store.
  void ingest(const QueryLog& log, const std::string& server_ident);

  std::size_t size() const noexcept { return rows_.size(); }
  const std::vector<Row>& rows() const noexcept { return rows_; }

  /// "time_us,server,client,qname,qtype" lines with a header row.
  std::string to_csv() const;

  /// Parses the to_csv() format; throws std::invalid_argument on bad rows.
  static Entrada from_csv(std::string_view csv);

  // ---- the §3.4 analysis primitives ----

  /// Distinct client addresses.
  std::size_t unique_clients() const;

  /// Query counts per (client, qname) group, optionally restricted to a
  /// qname set (Figure 3's curve).
  stats::Cdf queries_per_group(const std::set<dns::Name>& qnames = {}) const;

  /// Minimum interarrival per multi-query (client, qname) group, in hours
  /// (Figure 4's curve).  @p dedup_window drops retransmission-like
  /// duplicates closer than the window.
  stats::Cdf min_interarrival_hours(
      const std::set<dns::Name>& qnames = {},
      sim::Duration dedup_window = 2 * sim::kSecond) const;

  /// Queries per bin across all servers (load time series).
  stats::BinnedSeries load_series(sim::Duration bin_width) const;

  /// The @p k most queried names with their counts.
  std::vector<std::pair<dns::Name, std::size_t>> top_qnames(
      std::size_t k) const;

 private:
  std::map<std::pair<std::uint32_t, dns::Name>, std::vector<sim::Time>>
  group_times(const std::set<dns::Name>& qnames) const;

  std::vector<Row> rows_;
};

}  // namespace dnsttl::auth

#endif  // DNSTTL_AUTH_ENTRADA_H
