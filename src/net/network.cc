#include "net/network.h"

#include "dns/wire.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dnsttl::net {

Address Network::allocate() {
  while (attachments_.contains(next_address_)) {
    ++next_address_;
  }
  return Address{next_address_++};
}

Address Network::attach(DnsNode& node, Location location,
                        std::optional<Address> fixed) {
  Address addr = fixed.value_or(Address{});
  if (!fixed) {
    addr = allocate();
  } else if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("address already attached: " +
                                addr.to_string());
  }
  attachments_[addr.value()] = Attachment{{Site{&node, location}}};
  return addr;
}

Address Network::attach_anycast(
    std::vector<std::pair<DnsNode*, Location>> sites,
    std::optional<Address> fixed) {
  if (sites.empty()) {
    throw std::invalid_argument("anycast service needs at least one site");
  }
  Address addr = fixed.value_or(Address{});
  if (!fixed) {
    addr = allocate();
  } else if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("address already attached: " +
                                addr.to_string());
  }
  Attachment attachment;
  for (auto& [node, location] : sites) {
    attachment.sites.push_back(Site{node, location});
  }
  attachments_[addr.value()] = std::move(attachment);
  return addr;
}

void Network::detach(Address address) { attachments_.erase(address.value()); }

bool Network::is_attached(Address address) const {
  return attachments_.contains(address.value());
}

std::size_t Network::site_count(Address address) const {
  auto it = attachments_.find(address.value());
  return it == attachments_.end() ? 0 : it->second.sites.size();
}

QueryOutcome Network::query(const NodeRef& from, Address to,
                            const dns::Message& query_msg, sim::Time now,
                            Transport transport) {
  ++carried_;
  auto it = attachments_.find(to.value());
  if (it == attachments_.end()) {
    // Nothing listening: the query is silently dropped; the caller waits
    // out its timeout, exactly like querying a decommissioned server.
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  // Anycast site selection: stable lowest-expected-RTT routing.
  const Site* chosen = nullptr;
  sim::Duration best = sim::Duration::max();
  for (const auto& site : it->second.sites) {
    sim::Duration expected = latency_.expected_rtt(from.location, site.location);
    if (expected < best) {
      best = expected;
      chosen = &site;
    }
  }

  // Fault layer, stage 1: a scheduled outage is a deterministic timeout.
  // Checked before any RNG use — an exchange killed by an outage consumes
  // no draws, exactly like querying a detached address.
  if (faults_ != nullptr && faults_->outage(to, now)) {
    ++fault_stats_.outage_timeouts;
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  // Loss: the base rate and any active kLoss windows combine into ONE
  // gated draw (independent loss events: 1 - prod(1 - p)).  The gate is
  // the RNG-stream contract pinned by net_test.cc — a zero effective rate
  // must not burn a draw, so "loss off" and "loss on" runs share the
  // latency stream up to the first actual loss.
  double loss = params_.loss_rate;
  double injected = faults_ != nullptr ? faults_->extra_loss(to, now) : 0.0;
  if (injected > 0.0) {
    loss = 1.0 - (1.0 - loss) * (1.0 - injected);
  }
  if (loss > 0.0 && rng_.chance(loss)) {
    if (injected > 0.0) {
      ++fault_stats_.injected_losses;
    }
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  sim::Duration rtt = latency_.rtt(from.location, chosen->location, rng_);
  if (transport == Transport::kTcp) {
    rtt *= 2;  // connection handshake before the query round trip
  }

  // Fault layer, stage 2: latency spikes scale the drawn RTT (after the
  // draw, so the jitter stream is unchanged) and rcode/lame injection
  // replaces the server's answer without the server seeing the query.
  bool force_tc = false;
  if (faults_ != nullptr) {
    double factor = faults_->latency_factor(to, now);
    sim::Duration extra = faults_->extra_latency(to, now);
    if (factor != 1.0 || extra != sim::Duration{}) {
      ++fault_stats_.latency_spikes;
      rtt = sim::approx_scale(rtt, factor) + extra;
    }
    if (auto rcode = faults_->forced_rcode(to, now)) {
      ++fault_stats_.injected_rcodes;
      dns::Message refusal;
      refusal.id = query_msg.id;
      refusal.flags.qr = true;
      refusal.flags.rcode = *rcode;
      refusal.questions = query_msg.questions;
      return QueryOutcome{std::move(refusal), rtt};
    }
    if (faults_->lame(to, now)) {
      // A lame delegation answers politely and uselessly: NOERROR, no AA,
      // empty sections (RFC 1912 §2.8's "lame server" as seen on the wire).
      ++fault_stats_.lame_responses;
      dns::Message lame;
      lame.id = query_msg.id;
      lame.flags.qr = true;
      lame.questions = query_msg.questions;
      return QueryOutcome{std::move(lame), rtt};
    }
    force_tc = transport == Transport::kUdp && faults_->truncate(to, now);
  }

  auto reply =
      chosen->node->handle_query(query_msg, from.address, now + rtt / 2);
  if (!reply) {
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  // UDP size limit (RFC 1035 §4.2.1 / RFC 6891): without EDNS the classic
  // 512-byte ceiling applies; with it, the advertised size capped by the
  // path limit.  Oversized responses are truncated — the header survives
  // with TC=1, the sections do not.
  std::size_t udp_limit = 512;
  if (auto advertised = query_msg.edns_udp_size()) {
    udp_limit = std::min<std::size_t>(*advertised, params_.udp_payload_limit);
  }
  if (params_.exercise_wire_codec) {
    auto decoded = dns::decode(dns::encode(reply->message));
    if (decoded != reply->message) {
      throw std::logic_error(
          "wire codec round trip changed a response for " +
          (query_msg.questions.empty()
               ? std::string("<no question>")
               : query_msg.question().to_string()));
    }
    reply->message = std::move(decoded);
  }

  if (force_tc) {
    ++fault_stats_.injected_truncations;
  }
  if (transport == Transport::kUdp &&
      (force_tc || dns::encoded_size(reply->message) > udp_limit)) {
    dns::Message truncated;
    truncated.id = reply->message.id;
    truncated.flags = reply->message.flags;
    truncated.flags.tc = true;
    truncated.questions = reply->message.questions;
    return QueryOutcome{std::move(truncated), rtt + reply->processing};
  }
  return QueryOutcome{std::move(reply->message), rtt + reply->processing};
}

}  // namespace dnsttl::net
