#include "net/network.h"

#include "dns/wire.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dnsttl::net {

Address Network::allocate() {
  while (attachments_.contains(next_address_)) {
    ++next_address_;
  }
  return Address{next_address_++};
}

Address Network::attach(DnsNode& node, Location location,
                        std::optional<Address> fixed) {
  Address addr = fixed.value_or(Address{});
  if (!fixed) {
    addr = allocate();
  } else if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("address already attached: " +
                                addr.to_string());
  }
  attachments_[addr.value()] = Attachment{{Site{&node, location}}};
  return addr;
}

Address Network::attach_anycast(
    std::vector<std::pair<DnsNode*, Location>> sites,
    std::optional<Address> fixed) {
  if (sites.empty()) {
    throw std::invalid_argument("anycast service needs at least one site");
  }
  Address addr = fixed.value_or(Address{});
  if (!fixed) {
    addr = allocate();
  } else if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("address already attached: " +
                                addr.to_string());
  }
  Attachment attachment;
  for (auto& [node, location] : sites) {
    attachment.sites.push_back(Site{node, location});
  }
  attachments_[addr.value()] = std::move(attachment);
  return addr;
}

void Network::detach(Address address) { attachments_.erase(address.value()); }

bool Network::is_attached(Address address) const {
  return attachments_.contains(address.value());
}

std::size_t Network::site_count(Address address) const {
  auto it = attachments_.find(address.value());
  return it == attachments_.end() ? 0 : it->second.sites.size();
}

QueryOutcome Network::query(const NodeRef& from, Address to,
                            const dns::Message& query_msg, sim::Time now,
                            Transport transport) {
  ++carried_;
  auto it = attachments_.find(to.value());
  if (it == attachments_.end()) {
    // Nothing listening: the query is silently dropped; the caller waits
    // out its timeout, exactly like querying a decommissioned server.
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  // Anycast site selection: stable lowest-expected-RTT routing.
  const Site* chosen = nullptr;
  sim::Duration best = sim::Duration::max();
  for (const auto& site : it->second.sites) {
    sim::Duration expected = latency_.expected_rtt(from.location, site.location);
    if (expected < best) {
      best = expected;
      chosen = &site;
    }
  }

  if (params_.loss_rate > 0.0 && rng_.chance(params_.loss_rate)) {
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  sim::Duration rtt = latency_.rtt(from.location, chosen->location, rng_);
  if (transport == Transport::kTcp) {
    rtt *= 2;  // connection handshake before the query round trip
  }
  auto reply =
      chosen->node->handle_query(query_msg, from.address, now + rtt / 2);
  if (!reply) {
    return QueryOutcome{std::nullopt, params_.query_timeout};
  }

  // UDP size limit (RFC 1035 §4.2.1 / RFC 6891): without EDNS the classic
  // 512-byte ceiling applies; with it, the advertised size capped by the
  // path limit.  Oversized responses are truncated — the header survives
  // with TC=1, the sections do not.
  std::size_t udp_limit = 512;
  if (auto advertised = query_msg.edns_udp_size()) {
    udp_limit = std::min<std::size_t>(*advertised, params_.udp_payload_limit);
  }
  if (params_.exercise_wire_codec) {
    auto decoded = dns::decode(dns::encode(reply->message));
    if (decoded != reply->message) {
      throw std::logic_error(
          "wire codec round trip changed a response for " +
          (query_msg.questions.empty()
               ? std::string("<no question>")
               : query_msg.question().to_string()));
    }
    reply->message = std::move(decoded);
  }

  if (transport == Transport::kUdp &&
      dns::encoded_size(reply->message) > udp_limit) {
    dns::Message truncated;
    truncated.id = reply->message.id;
    truncated.flags = reply->message.flags;
    truncated.flags.tc = true;
    truncated.questions = reply->message.questions;
    return QueryOutcome{std::move(truncated), rtt + reply->processing};
  }
  return QueryOutcome{std::move(reply->message), rtt + reply->processing};
}

}  // namespace dnsttl::net
