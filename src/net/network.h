#ifndef DNSTTL_NET_NETWORK_H
#define DNSTTL_NET_NETWORK_H

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/rdata.h"
#include "fault/schedule.h"
#include "net/latency.h"
#include "net/location.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace dnsttl::net {

/// Node addresses are IPv4 values from the dns library (one address space
/// shared by servers, resolvers and probes).
using Address = dns::Ipv4;

/// What a server hands back for one query: the response message plus the
/// server-side time consumed producing it (zero for authoritative lookups;
/// for a recursive resolver, the full upstream resolution time on a cache
/// miss).
struct ServerReply {
  dns::Message message;
  sim::Duration processing{};
};

/// Anything attached to the network that answers DNS queries.
class DnsNode {
 public:
  virtual ~DnsNode() = default;

  /// Handles @p query arriving from @p client at virtual time @p now.
  /// Returning std::nullopt models a dead/unresponsive server (the client
  /// sees a timeout).
  virtual std::optional<ServerReply> handle_query(const dns::Message& query,
                                                  Address client,
                                                  sim::Time now) = 0;
};

/// Identity of a sending node: its address (shown to servers, used by query
/// logs) and its location (used by the latency model and anycast routing).
struct NodeRef {
  Address address;
  Location location;
};

/// Result of one query exchange as seen by the sender.
struct QueryOutcome {
  std::optional<dns::Message> response;  ///< nullopt on timeout/loss
  sim::Duration elapsed{};  ///< wire RTT + server processing, or the
                              ///< timeout duration on loss
};

/// The message fabric: address allocation, unicast and anycast attachment,
/// latency/loss application, and synchronous query exchange.
///
/// Transmission model: a query either reaches a live server and produces a
/// response after rtt + processing, or is lost (probability `loss_rate`
/// per attempt, covering either direction) and costs the caller its timeout.
/// Retries are the caller's (resolver's) job, matching real DNS.
class Network {
 public:
  struct Params {
    double loss_rate = 0.0;
    sim::Duration query_timeout = 3 * sim::kSecond;
    /// UDP payload ceiling (RFC 6891 default): larger responses are
    /// delivered truncated (TC=1, answer sections stripped) and the client
    /// must retry over TCP.
    std::size_t udp_payload_limit = 1232;

    /// Push every response through the RFC 1035 wire codec (encode +
    /// decode) before delivery.  Costs CPU but guarantees that everything
    /// the experiments exchange is representable on the wire; throws
    /// std::logic_error if a round trip ever changes a message.
    bool exercise_wire_codec = false;
  };

  /// Transport for one query exchange.
  enum class Transport : std::uint8_t { kUdp, kTcp };

  /// What the fault layer did to the traffic (see set_fault_schedule).
  struct FaultStats {
    // lint:allow(raw-time-param) event counter, not a time quantity
    std::uint64_t outage_timeouts = 0;    ///< exchanges killed by kOutage
    std::uint64_t injected_losses = 0;    ///< losses with a kLoss window up
    std::uint64_t injected_rcodes = 0;    ///< kServfail/kRefused responses
    std::uint64_t injected_truncations = 0;  ///< kTruncate-forced TC=1
    std::uint64_t lame_responses = 0;     ///< kLame empty non-AA answers
    // lint:allow(raw-time-param) event counter, not a time quantity
    std::uint64_t latency_spikes = 0;     ///< exchanges with scaled RTT
  };

  explicit Network(sim::Rng rng) : rng_(rng) {}
  Network(sim::Rng rng, LatencyModel latency) : rng_(rng), latency_(latency) {}
  Network(sim::Rng rng, LatencyModel latency, Params params)
      : rng_(rng), latency_(latency), params_(params) {}

  /// Attaches a unicast node; allocates an address if @p fixed is not given.
  Address attach(DnsNode& node, Location location,
                 std::optional<Address> fixed = std::nullopt);

  /// Attaches an anycast service: one shared address, many (node, site)
  /// replicas; clients reach the site with the lowest expected RTT.
  Address attach_anycast(std::vector<std::pair<DnsNode*, Location>> sites,
                         std::optional<Address> fixed = std::nullopt);

  /// Detaches an address (server decommissioned); later queries time out.
  void detach(Address address);

  /// True if anything is attached at @p address.
  bool is_attached(Address address) const;

  /// Sends @p query from node @p from to @p to, at time @p now.
  /// UDP responses larger than the payload limit come back truncated
  /// (TC=1, sections stripped); retry with Transport::kTcp, which carries
  /// any size at the cost of one extra round trip (the handshake).
  QueryOutcome query(const NodeRef& from, Address to,
                     const dns::Message& query_msg, sim::Time now,
                     Transport transport = Transport::kUdp);

  /// Number of anycast sites behind @p address (1 for unicast).
  std::size_t site_count(Address address) const;

  const LatencyModel& latency_model() const noexcept { return latency_; }
  const Params& params() const noexcept { return params_; }
  void set_loss_rate(double rate) { params_.loss_rate = rate; }

  /// Installs a fault schedule consulted on every exchange (non-owning;
  /// nullptr disables the layer).  The schedule is read-only here, so one
  /// instance may be shared across shard-replica networks.
  ///
  /// RNG-stream contract: an installed schedule whose windows are all
  /// INACTIVE at query time consumes exactly the same draws as no schedule
  /// at all, so "same seed, faults on/off" runs diverge only inside the
  /// scripted windows (pinned by net_test.cc).
  void set_fault_schedule(const fault::FaultSchedule* schedule) noexcept {
    faults_ = schedule;
  }
  const fault::FaultSchedule* fault_schedule() const noexcept {
    return faults_;
  }
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

  /// Total queries carried (attempts, including lost ones).
  std::uint64_t queries_carried() const noexcept { return carried_; }

 private:
  struct Site {
    DnsNode* node = nullptr;
    Location location;
  };
  struct Attachment {
    std::vector<Site> sites;  // 1 for unicast, >1 for anycast
  };

  Address allocate();

  sim::Rng rng_;
  LatencyModel latency_;
  Params params_;
  std::uint32_t next_address_ = 0x0a000001;  // 10.0.0.1
  std::unordered_map<std::uint32_t, Attachment> attachments_;
  std::uint64_t carried_ = 0;
  const fault::FaultSchedule* faults_ = nullptr;  ///< non-owning
  FaultStats fault_stats_;
};

}  // namespace dnsttl::net

#endif  // DNSTTL_NET_NETWORK_H
