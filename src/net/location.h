#ifndef DNSTTL_NET_LOCATION_H
#define DNSTTL_NET_LOCATION_H

#include <array>
#include <cstdint>
#include <string_view>

namespace dnsttl::net {

/// Continental regions, matching the paper's Figure 10b buckets
/// (AF, AS, EU, NA, OC, SA).
enum class Region : std::uint8_t { kAF = 0, kAS, kEU, kNA, kOC, kSA };

inline constexpr std::array<Region, 6> kAllRegions = {
    Region::kAF, Region::kAS, Region::kEU,
    Region::kNA, Region::kOC, Region::kSA};

std::string_view to_string(Region region);

/// Where a node sits: its region, a per-node access ("last mile") one-way
/// latency in milliseconds, and an optional point-of-presence id.
///
/// Two nodes sharing a non-negative pop_id are topologically adjacent (a
/// probe and its ISP resolver): the inter-node base delay collapses to a
/// metro-scale constant instead of the intra-region average.  This is how
/// the simulator reproduces the paper's ~8 ms cache-hit RTTs (Figure 10a)
/// next to ~15-30 ms intra-region hops.
struct Location {
  Region region = Region::kEU;
  double access_ms = 2.0;
  int pop_id = -1;

  bool operator==(const Location&) const = default;
};

}  // namespace dnsttl::net

#endif  // DNSTTL_NET_LOCATION_H
