#include "net/latency.h"

#include <algorithm>
#include <cmath>

namespace dnsttl::net {

std::string_view to_string(Region region) {
  switch (region) {
    case Region::kAF:
      return "AF";
    case Region::kAS:
      return "AS";
    case Region::kEU:
      return "EU";
    case Region::kNA:
      return "NA";
    case Region::kOC:
      return "OC";
    case Region::kSA:
      return "SA";
  }
  return "??";
}

double LatencyModel::base_oneway_ms(Region a, Region b) {
  // One-way base delays in ms, symmetric.  Diagonal = intra-region.
  // Calibrated so that region->EU (Frankfurt) RTTs match the spread in the
  // paper's Figure 10b: EU low tens, NA ~90-120, SA/AF ~150-250,
  // AS ~150-250, OC ~250-320.
  static constexpr double kMatrix[6][6] = {
      //        AF     AS     EU     NA     OC     SA
      /*AF*/ {22.0, 120.0, 75.0, 110.0, 160.0, 130.0},
      /*AS*/ {120.0, 25.0, 95.0, 100.0, 75.0, 150.0},
      /*EU*/ {75.0, 95.0, 7.0, 48.0, 140.0, 105.0},
      /*NA*/ {110.0, 100.0, 48.0, 18.0, 85.0, 80.0},
      /*OC*/ {160.0, 75.0, 140.0, 85.0, 15.0, 140.0},
      /*SA*/ {130.0, 150.0, 105.0, 80.0, 140.0, 20.0},
  };
  return kMatrix[static_cast<int>(a)][static_cast<int>(b)];
}

namespace {

/// Metro-scale one-way delay between co-located (same PoP) nodes.
constexpr double kSamePopOnewayMs = 0.6;

double pair_base_oneway_ms(const Location& a, const Location& b) {
  if (a.pop_id >= 0 && a.pop_id == b.pop_id && a.region == b.region) {
    return kSamePopOnewayMs;
  }
  return LatencyModel::base_oneway_ms(a.region, b.region);
}

}  // namespace

sim::Duration LatencyModel::rtt(const Location& a, const Location& b,
                                sim::Rng& rng) const {
  double base = pair_base_oneway_ms(a, b);
  double jitter = rng.lognormal(0.0, params_.jitter_sigma);
  double oneway = base * jitter + a.access_ms + b.access_ms;
  double rtt_ms = 2.0 * oneway;
  if (rng.chance(params_.tail_probability)) {
    rtt_ms += rng.uniform(params_.tail_min_ms, params_.tail_max_ms);
  }
  return sim::approx_milliseconds(std::max(rtt_ms, 0.1));
}

sim::Duration LatencyModel::expected_rtt(const Location& a,
                                         const Location& b) const {
  double oneway = pair_base_oneway_ms(a, b) + a.access_ms + b.access_ms;
  return sim::approx_milliseconds(2.0 * oneway);
}

}  // namespace dnsttl::net
