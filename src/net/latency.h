#ifndef DNSTTL_NET_LATENCY_H
#define DNSTTL_NET_LATENCY_H

#include "net/location.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dnsttl::net {

/// Inter-region latency model.
///
/// The paper measures RTT from RIPE Atlas probes to recursive resolvers and
/// from recursives to authoritative servers in EC2 Frankfurt (EU) or a
/// 45-site anycast cloud.  We substitute a continental base-delay matrix
/// (one-way, milliseconds; calibrated to published inter-continental RTT
/// ranges) plus per-node access delay and lognormal jitter.  This produces
/// the latency *shape* the paper reports: ~1-10 ms cache hits, tens of ms
/// intra-EU, hundreds of ms AF/AS/OC to Frankfurt (Figure 10b).
class LatencyModel {
 public:
  struct Params {
    double jitter_sigma = 0.25;  ///< lognormal sigma on the base delay
    double tail_probability = 0.01;  ///< chance of an extra heavy-tail delay
    double tail_min_ms = 100.0;
    double tail_max_ms = 1200.0;
  };

  LatencyModel() = default;
  explicit LatencyModel(Params params) : params_(params) {}

  /// Base one-way propagation delay between regions, milliseconds.
  static double base_oneway_ms(Region a, Region b);

  /// Sampled round-trip time between two located nodes, including both
  /// access links, jitter and occasional heavy-tail events.
  sim::Duration rtt(const Location& a, const Location& b, sim::Rng& rng) const;

  /// Deterministic expected RTT (no jitter/tail), used for anycast
  /// nearest-site selection (BGP-like "stable" routing, not per-packet).
  sim::Duration expected_rtt(const Location& a, const Location& b) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dnsttl::net

#endif  // DNSTTL_NET_LATENCY_H
