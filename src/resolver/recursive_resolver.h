#ifndef DNSTTL_RESOLVER_RECURSIVE_RESOLVER_H
#define DNSTTL_RESOLVER_RECURSIVE_RESOLVER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "net/network.h"
#include "resolver/config.h"
#include "resolver/root_hints.h"
#include "sim/time.h"

namespace dnsttl::resolver {

/// Result of resolving one question at the resolver, before the stub-side
/// RTT is added by the network.
struct ResolutionResult {
  dns::Message response;
  sim::Duration elapsed{};       ///< upstream time consumed (0 = pure hit)
  bool answered_from_cache = false;
  bool answered_from_referral = false;  ///< parent-centric referral answer
  bool served_stale = false;
  int upstream_queries = 0;
};

/// An iterative ("recursive" in DNS parlance) resolver with the policy knob
/// set from ResolverConfig.
///
/// The engine is one RFC 1034 §5.3.3 loop — find the closest enclosing
/// cached NS set, query a server, follow referrals, chase CNAMEs, resolve
/// out-of-bailiwick nameserver addresses via sub-resolution — and every
/// behavior the paper observes (§3 centricity, §4 bailiwick linkage, §4.4
/// stickiness, TTL capping, RFC 7706, serve-stale) is a configuration of
/// that single loop, so populations of differently-configured instances can
/// be compared on identical workloads.
class RecursiveResolver : public net::DnsNode {
 public:
  struct Stats {
    std::uint64_t client_queries = 0;
    std::uint64_t cache_answers = 0;
    std::uint64_t referral_answers = 0;
    std::uint64_t full_resolutions = 0;
    std::uint64_t upstream_queries = 0;
    std::uint64_t servfails = 0;
    // lint:allow(raw-time-param) event counter, not a time quantity
    std::uint64_t stale_answers = 0;
    // lint:allow(raw-time-param) event counter, not a time quantity
    std::uint64_t stale_refresh_answers = 0;  ///< stale served inside the
                                              ///< RFC 8767 refresh window,
                                              ///< upstream not retried
    std::uint64_t backoffs = 0;  ///< servers benched after repeat timeouts
    std::uint64_t prefetches = 0;
    std::uint64_t tcp_retries = 0;
    std::uint64_t validations = 0;
    std::uint64_t validation_failures = 0;
  };

  RecursiveResolver(std::string ident, ResolverConfig config,
                    net::Network& network, RootHints hints);

  /// Must be called once after the resolver is attached to the network so
  /// it knows its own address/location for upstream queries.
  void set_node_ref(net::NodeRef self) { self_ = self; }
  const net::NodeRef& node_ref() const noexcept { return self_; }

  /// Installs the RFC 7706 local root mirror (only used when
  /// config.local_root is set).
  void set_local_root_zone(std::shared_ptr<const dns::Zone> root) {
    local_root_zone_ = std::move(root);
  }

  const std::string& ident() const noexcept { return ident_; }
  const ResolverConfig& config() const noexcept { return config_; }
  const Stats& stats() const noexcept { return stats_; }
  cache::Cache& cache() noexcept { return cache_; }
  const cache::Cache& cache() const noexcept { return cache_; }

  /// Clears cache and sticky pins (fresh resolver).
  void flush();

  /// Resolves @p question at virtual time @p now.
  ResolutionResult resolve(const dns::Question& question, sim::Time now);

  /// net::DnsNode: stub-facing entry point.
  std::optional<net::ServerReply> handle_query(const dns::Message& query,
                                               net::Address client,
                                               sim::Time now) override;

 private:
  struct Context {
    sim::Duration elapsed{};
    int upstream_queries = 0;
    int depth = 0;  ///< sub-resolution / CNAME recursion depth
    /// Nameserver names whose address fetch is in flight (re-entrancy guard
    /// for authoritative address verification).
    std::vector<dns::Name> fetching;
  };

  struct ServerCandidate {
    dns::Name ns_name;
    net::Address address;
  };

  /// One in-flight resolution as a resumable task: everything the iterative
  /// loop used to keep in locals, lifted into a small state machine so a
  /// scheduler can advance many resolutions in interleaved steps (the bulk
  /// resolution engine's discipline) while the nested driver simply loops
  /// step() to completion.
  ///
  /// The tag is the pending work: kSetup re-checks the cache and walks the
  /// referral ladder to the next server set (the "next referral step");
  /// kAttempt holds a pending upstream query against servers[attempt];
  /// kDone carries the finished response.  Credibility context — the CNAME
  /// chain gathered so far, the zone the candidates answer for, and the
  /// QNAME-minimization reveal state — rides in the task, not the stack.
  struct Resolution {
    enum class Phase : std::uint8_t { kSetup, kAttempt, kDone };

    dns::Question original;  ///< the client question (response is for this)
    dns::Question current;   ///< follows CNAME chains
    sim::Time start{};       ///< virtual time the resolution began
    std::vector<dns::ResourceRecord> chain;  ///< CNAME prefix records
    dns::Name minimized_zone;  ///< zone the reveal counter applies to
    std::size_t reveal = 1;  ///< labels revealed past that zone (RFC 7816)
    int iteration = 0;
    int attempt = 0;
    std::vector<ServerCandidate> servers;
    dns::Name zone;       ///< zone the candidate servers answer for
    dns::Question wire;   ///< the (possibly minimized) question on the wire
    bool minimized = false;
    bool progressed = false;
    Phase phase = Phase::kSetup;
    std::optional<dns::Message> response;  ///< set when phase == kDone
  };

  /// Cache-only answer if the policy allows it (credibility threshold
  /// depends on centricity).  Chases cached CNAME chains.
  std::optional<dns::Message> answer_from_cache(const dns::Question& question,
                                                sim::Time now);

  /// RFC 7706: answers root-zone questions from the local mirror.
  std::optional<dns::Message> answer_from_local_root(
      const dns::Question& question);

  /// Starts a resumable resolution of @p question.
  Resolution begin_resolution(const dns::Question& question, sim::Time now);

  /// Advances @p task by one step: a kSetup task walks to its next server
  /// set and falls through into its first attempt; a kAttempt task performs
  /// exactly one server attempt (one upstream exchange, plus the RFC 1035
  /// §4.2.2 TCP retry when the UDP answer was truncated).  Sub-resolutions
  /// a step needs (out-of-bailiwick NS addresses, DNSKEY fetches) run
  /// nested within the step.  Returns false once task.response is ready.
  bool step(Resolution& task, Context& ctx);

  /// Core iterative loop: drives one resolution task to completion.
  dns::Message resolve_iterative(const dns::Question& question, sim::Time now,
                                 Context& ctx);

  /// Finds the deepest zone with usable cached NS + address data; fills
  /// @p servers (already rotated/pinned per config) and returns the zone.
  dns::Name find_servers(const dns::Name& qname, sim::Time now, Context& ctx,
                         std::vector<ServerCandidate>& servers);

  /// Walk variant used after the local-root mirror seeded the cache.
  dns::Name find_servers_from_cache(const dns::Name& qname, sim::Time now,
                                    Context& ctx,
                                    std::vector<ServerCandidate>& servers,
                                    const dns::Name& floor);

  /// Collects usable addresses for one NS RRset; triggers glue verification
  /// and sub-resolution per policy.  Returns true if any server was found.
  bool collect_addresses(const cache::CacheHit& ns, const dns::Name& zone,
                         sim::Time now, Context& ctx,
                         std::vector<ServerCandidate>& servers);

  /// Applies smoothed-RTT sorting and round-robin rotation per config.
  /// @p now lets the sort penalize servers currently benched by the
  /// exponential-backoff policy so selection routes around them.
  void rotate(std::vector<ServerCandidate>& servers, sim::Time now);

  /// Resolves an out-of-bailiwick nameserver address via sub-resolution.
  std::optional<net::Address> resolve_ns_address(const dns::Name& ns_name,
                                                 sim::Time now, Context& ctx);

  /// The ancestor zone whose NS set names @p owner as a target, if any —
  /// the NS RRset the owner's address cache entry should be linked to.
  std::optional<dns::Name> linked_ns_owner_for(const dns::Name& owner,
                                               sim::Time now);

  /// Stores a negative answer per RFC 2308 (TTL from the SOA).
  void cache_negative(const dns::Message& response,
                      const dns::Question& question, sim::Time now);

  /// DNSSEC-lite: verifies the answer RRset's RRSIG against the signer's
  /// DNSKEY (fetched from the child zone if not cached).  Returns false
  /// for bogus data; unsigned data is accepted as insecure.
  bool validate_answer(const dns::Message& response,
                       const dns::Question& question, sim::Time now,
                       Context& ctx);

  /// Pre-expiry background refresh of a just-hit cache entry.
  void maybe_prefetch(const dns::Question& question, sim::Time now);

  /// Caches the sections of @p response received from a server for
  /// delegation @p zone; returns the child zone cut if it was a referral.
  std::optional<dns::Name> ingest_response(const dns::Message& response,
                                           const dns::Name& zone,
                                           sim::Time now);

  /// Parent-centric shortcut: answers the question straight from a
  /// referral's authority/additional sections when they cover it.
  std::optional<dns::Message> answer_from_referral(
      const dns::Question& question, const dns::Message& referral);

  dns::Message servfail(const dns::Question& question) const;
  dns::Message positive_response(const dns::Question& question,
                                 std::vector<dns::ResourceRecord> answers,
                                 bool aa_seen) const;

  cache::Credibility answer_threshold() const;

  std::string ident_;
  ResolverConfig config_;
  net::Network& network_;
  RootHints hints_;
  net::NodeRef self_;
  cache::Cache cache_;
  std::shared_ptr<const dns::Zone> local_root_zone_;
  Stats stats_;
  std::uint16_t next_id_ = 1;
  std::uint64_t rotate_counter_ = 0;

  /// Per-server health: BIND-style smoothed RTT plus the exponential
  /// backoff state that benches repeat-timeout servers.
  struct ServerHealth {
    double srtt_ms = 10.0;  ///< optimistic default so new servers get tried
    bool srtt_seeded = false;      ///< first sample replaces the default
    int consecutive_timeouts = 0;  ///< reset by any successful exchange
    // lint:allow(raw-time-param) a count of doublings, not a time quantity
    int backoff_level = 0;         ///< doublings applied so far
    sim::Time backoff_until{};     ///< benched while now < backoff_until
  };
  /// Effective selection metric: srtt, pushed to the back of the order
  /// while the server is benched.
  double selection_srtt_ms(net::Address address, sim::Time now) const;
  /// Feeds one exchange result into the health record (EWMA srtt, timeout
  /// counting, benching); @p now is the virtual time the verdict landed.
  void record_exchange(net::Address address, sim::Duration elapsed,
                       bool answered, sim::Time now);

  std::unordered_map<std::uint32_t, ServerHealth> server_health_;
  /// RFC 8767 stale-refresh suppression: question -> end of the window in
  /// which stale answers are served without re-trying upstreams.
  std::map<std::pair<dns::Name, dns::RRType>, sim::Time> stale_refresh_until_;
  bool prefetching_ = false;  ///< re-entrancy guard for maybe_prefetch
  /// Sticky pins: zone -> (ns name, server address) of first success.
  std::map<dns::Name, ServerCandidate> sticky_pins_;
};

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_RECURSIVE_RESOLVER_H
