#ifndef DNSTTL_RESOLVER_CONFIG_H
#define DNSTTL_RESOLVER_CONFIG_H

#include <cstdint>
#include <string>
#include <string_view>

#include "cache/cache.h"
#include "dns/types.h"
#include "sim/time.h"

namespace dnsttl::resolver {

/// Whose copy of cross-delegation records a resolver believes (§2, §3 of the
/// paper).  RFC 2181 ranks the child's authoritative data higher but does
/// not force resolvers to fetch it; implementations differ, which is the
/// paper's core observation.
enum class Centricity : std::uint8_t {
  /// Prefers the child zone's authoritative records: re-queries the child
  /// and lets AA answers override parent glue (most resolvers; 52–90% of
  /// queries in §3).
  kChildCentric,
  /// Trusts the parent's referral (NS + glue TTLs); never overrides them
  /// with child data while they live (OpenDNS-like; ~10–48% of queries).
  kParentCentric,
};

std::string_view to_string(Centricity centricity);

/// Full policy knob set for one recursive resolver.  Every behavior the
/// paper observes in the wild corresponds to one knob here; populations of
/// mixed configurations reproduce the measured distributions.
struct ResolverConfig {
  Centricity centricity = Centricity::kChildCentric;

  /// Cache TTL cap.  BIND defaults to 1 week; Google Public DNS caps at
  /// 21599 s (the Figure 2 plateau); 0 disables caching entirely.
  dns::Ttl max_ttl = dns::kTtl1Week;

  /// Cache TTL floor (some resolvers raise very low TTLs).
  dns::Ttl min_ttl{};

  /// Tie in-bailiwick glue A/AAAA lifetime to the covering NS RRset: when
  /// the NS expires, the address is re-fetched even if its own TTL lives
  /// (the §4.2 in-bailiwick finding; ~90% of resolvers).
  bool link_glue_to_ns = true;

  /// Sticky server selection (§4.4): once a server answered for a zone,
  /// keep using that address and never re-fetch, TTLs notwithstanding.
  bool sticky = false;

  /// RFC 8767 serve-stale: answer from expired cache when every
  /// authoritative server is unreachable.
  bool serve_stale = false;

  /// RFC 8767 §5: how long past expiry a record may still be served
  /// (maps to the cache's stale window).  The RFC suggests 1–3 days.
  sim::Duration max_stale = 3 * sim::kDay;

  /// RFC 8767 §5 stale-refresh: after serving a name stale, keep
  /// answering it from the stale entry for this long WITHOUT re-trying
  /// the (just proven dead) upstreams, so a popular name does not hammer
  /// a down server with one full resolution timeout per client.  Zero
  /// disables the suppression window.
  sim::Duration stale_refresh = 30 * sim::kSecond;

  /// Combined positive+negative cache capacity in entries; 0 = unbounded
  /// (the historical default — no eviction ever fires).  Production
  /// resolvers run bounded: BIND's max-cache-size, Unbound's msg/rrset
  /// cache slabs.  A per-resolver knob like centricity/stickiness, so a
  /// population can mix cache sizes the way it mixes policies.
  std::size_t cache_max_entries = 0;

  /// Victim-selection rule when the cache is capacity-bounded.
  cache::EvictionPolicy cache_eviction = cache::EvictionPolicy::kLru;

  /// RFC 7706 / LocalRoot: mirror the root zone locally; root-zone lookups
  /// are answered from the mirror with full (undecremented) TTLs and emit
  /// no root queries on the wire.
  bool local_root = false;

  /// Rotate across a zone's NS set (true for most implementations; §3.4
  /// notes resolvers "tend to rotate between authoritative servers").
  bool rotate_ns = true;

  /// BIND/Unbound-style smoothed-RTT server selection: prefer the fastest
  /// known server, rotating only among servers within `srtt_band_ms` of the
  /// best (which preserves the §3.4 rotation across equally-near servers).
  bool srtt_selection = true;
  double srtt_band_ms = 20.0;

  /// Child-centric address verification (Unbound target fetching / BIND
  /// glue revalidation): when the cached address of a nameserver is only
  /// glue-credibility, fetch the authoritative copy from the child zone.
  /// This is what makes child-centric resolvers visible as periodic
  /// NS-address queries at the authoritatives (the paper's §3.4 .nl
  /// analysis and its one-hour interarrival bumps).
  bool fetch_authoritative_ns_addresses = true;

  /// QNAME minimization (RFC 7816): reveal only one label beyond the zone
  /// being queried, asking NS questions until the full name's zone is
  /// reached.  A privacy feature with a visible cost profile: extra
  /// queries near the top of the tree, nothing leaked below it.
  bool qname_minimization = false;

  /// DNSSEC-lite validation: verify RRSIGs on authoritative answers
  /// against the signer zone's DNSKEY (fetched from the *child* — the
  /// paper's §2 argument that validation forces child-centric fetches).
  /// Unsigned answers are accepted as insecure; bad signatures are bogus
  /// (SERVFAIL).
  bool validate_dnssec = false;

  /// Pre-expiry refresh (Pappas et al., discussed in the paper's §7):
  /// when a cache hit has less than `prefetch_fraction` of its original
  /// TTL left, refresh it in the background so the next client never sees
  /// a miss.
  bool prefetch = false;
  double prefetch_fraction = 0.1;

  /// Per-query retransmission budget across servers.
  int max_server_attempts = 3;

  /// Exponential backoff for unresponsive servers (BIND's "server marked
  /// bad" / Unbound's infra-cache probation): after
  /// `timeouts_before_backoff` consecutive timeouts a server is benched —
  /// deprioritized in selection — for `initial_backoff`, doubling per
  /// repeat offense up to `max_backoff`.  One successful exchange clears
  /// the slate.
  sim::Duration initial_backoff = 2 * sim::kSecond;
  sim::Duration max_backoff = 5 * sim::kMinute;
  // lint:allow(raw-time-param) a count of timeouts, not a time quantity
  int timeouts_before_backoff = 2;

  /// Referral-chain guard.
  int max_iterations = 24;

  /// Sub-resolution depth guard for out-of-bailiwick NS addresses.
  int max_ns_resolution_depth = 6;

  std::string describe() const;
};

/// Named presets used by populations and examples.
ResolverConfig child_centric_config();
ResolverConfig parent_centric_config();
ResolverConfig google_like_config();   ///< child-centric, 21599 s cap
ResolverConfig bind_like_config();     ///< child-centric, 1 week cap
ResolverConfig opendns_like_config();  ///< parent-centric + local root
ResolverConfig sticky_config();        ///< child-centric + sticky

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_CONFIG_H
