#include "resolver/forwarder.h"

namespace dnsttl::resolver {

std::optional<net::ServerReply> Forwarder::handle_query(
    const dns::Message& query, net::Address /*client*/, sim::Time now) {
  if (backends_.empty()) {
    return std::nullopt;
  }
  std::size_t index = 0;
  if (backends_.size() > 1) {
    switch (selection_) {
      case Selection::kRoundRobin:
        index = counter_++ % backends_.size();
        break;
      case Selection::kHashQname: {
        std::size_t h = query.questions.empty()
                            ? 0
                            : std::hash<dns::Name>{}(query.question().qname);
        index = h % backends_.size();
        break;
      }
    }
  }
  auto outcome = network_.query(self_, backends_[index], query, now);
  if (!outcome.response) {
    return std::nullopt;
  }
  return net::ServerReply{std::move(*outcome.response), outcome.elapsed};
}

}  // namespace dnsttl::resolver
