#ifndef DNSTTL_RESOLVER_FORWARDER_H
#define DNSTTL_RESOLVER_FORWARDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"

namespace dnsttl::resolver {

/// A forwarding resolver (home router / ISP frontend): it holds no cache of
/// its own and relays each query to one of several recursive backends.
///
/// Forwarders are how the simulator reproduces the paper's resolver
/// *infrastructure* effects (§4.4): a client behind a forwarder pool sees a
/// mix of answers ("cache fragmentation and use of different resolver
/// backends"), and the authoritative side sees more resolver addresses than
/// the client side (Table 3's 6.3k client-facing vs 13.1k authoritative-
/// facing resolvers).
class Forwarder : public net::DnsNode {
 public:
  enum class Selection : std::uint8_t {
    kRoundRobin,  ///< rotate per query (maximal fragmentation)
    kHashQname,   ///< stable per query name
  };

  Forwarder(std::string ident, net::Network& network,
            std::vector<net::Address> backends,
            Selection selection = Selection::kRoundRobin)
      : ident_(std::move(ident)),
        network_(network),
        backends_(std::move(backends)),
        selection_(selection) {}

  void set_node_ref(net::NodeRef self) { self_ = self; }
  const net::NodeRef& node_ref() const noexcept { return self_; }
  const std::string& ident() const noexcept { return ident_; }
  const std::vector<net::Address>& backends() const noexcept {
    return backends_;
  }

  std::optional<net::ServerReply> handle_query(const dns::Message& query,
                                               net::Address client,
                                               sim::Time now) override;

 private:
  std::string ident_;
  net::Network& network_;
  net::NodeRef self_;
  std::vector<net::Address> backends_;
  Selection selection_;
  std::uint64_t counter_ = 0;
};

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_FORWARDER_H
