#include "resolver/stub.h"

namespace dnsttl::resolver {

StubResolver::Result StubResolver::query(const dns::Name& qname,
                                         dns::RRType qtype, sim::Time now) {
  Result result;
  if (servers_.empty()) {
    return result;
  }

  for (int round = 0; round < options_.attempts; ++round) {
    for (net::Address server : servers_) {
      auto message = dns::Message::make_query(next_id_++, qname, qtype);
      message.add_edns();
      auto outcome =
          network_.query(self_, server, message, now + result.elapsed);
      result.elapsed += outcome.elapsed;
      ++result.attempts_used;
      if (!outcome.response) {
        continue;  // timeout: next server
      }
      if (outcome.response->flags.tc) {
        auto tcp = network_.query(self_, server, message,
                                  now + result.elapsed,
                                  net::Network::Transport::kTcp);
        result.elapsed += tcp.elapsed;
        ++result.attempts_used;
        if (!tcp.response) {
          continue;
        }
        outcome.response = std::move(tcp.response);
      }
      if (options_.skip_servfail &&
          outcome.response->flags.rcode == dns::Rcode::kServFail) {
        continue;  // maybe another server is healthier
      }
      result.response = std::move(outcome.response);
      result.server = server;
      return result;
    }
  }
  return result;
}

}  // namespace dnsttl::resolver
