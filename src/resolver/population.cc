#include "resolver/population.h"

#include <array>

namespace dnsttl::resolver {

std::vector<Profile> paper_profiles() {
  std::vector<Profile> profiles;

  // Mainstream child-centric resolvers (BIND/Unbound/Knot defaults):
  // the §3 majority that re-queries the child and honours its TTLs.
  profiles.push_back({"child-bind", bind_like_config(), 0.60});

  // Public-resolver style with a 21599 s cache cap — the Figure 2 plateau.
  profiles.push_back({"child-google", google_like_config(), 0.12});

  // Child-centric but trusting cached glue to its own TTL (the §4.2
  // minority that rides a still-valid A record past its NS expiry).
  {
    ResolverConfig config = child_centric_config();
    config.link_glue_to_ns = false;
    profiles.push_back({"child-unlinked", config, 0.08});
  }

  // Parent-centric resolvers: referral TTLs rule (§3's 10-48% slice).
  profiles.push_back({"parent", parent_centric_config(), 0.09});

  // Parent-centric with an RFC 7706 local root mirror — the VPs that
  // report the full 172800 s root-zone TTL (§3.2) and keep answering when
  // the child's servers are offline (§4.4).
  profiles.push_back({"opendns", opendns_like_config(), 0.01});

  // Sticky resolvers (§4.4): pin the first server that answers.
  profiles.push_back({"sticky", sticky_config(), 0.035});

  // Aggressively low cache caps (some ISP/enterprise resolvers clamp
  // cached TTLs to minutes for agility).
  {
    ResolverConfig config = child_centric_config();
    config.max_ttl = dns::Ttl{600};
    profiles.push_back({"child-lowcap", config, 0.05});
  }

  // Serve-stale deployments (RFC 8767, §3.1 discussion).
  {
    ResolverConfig config = child_centric_config();
    config.serve_stale = true;
    profiles.push_back({"child-stale", config, 0.05});
  }

  return profiles;
}

std::vector<double> atlas_region_weights() {
  // Order: AF, AS, EU, NA, OC, SA.  RIPE Atlas is strongly EU-biased.
  return {0.03, 0.10, 0.60, 0.18, 0.04, 0.05};
}

ResolverPopulation ResolverPopulation::build(
    net::Network& network, const RootHints& hints,
    std::shared_ptr<const dns::Zone> local_root_zone,
    const std::vector<Profile>& profiles, std::size_t count,
    const std::vector<double>& region_weights, sim::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(profiles.size());
  for (const auto& profile : profiles) {
    weights.push_back(profile.weight);
  }

  ResolverPopulation population;
  population.members_.reserve(count);
  // Resolvers cluster into metro PoPs of ~3 (ISPs run several recursives
  // per metro); probes co-located with one resolver of a PoP are close to
  // its siblings too.
  std::array<int, 6> pop_counter{};
  for (std::size_t i = 0; i < count; ++i) {
    const Profile& profile = profiles[rng.weighted_index(weights)];
    auto region = net::kAllRegions[rng.weighted_index(region_weights)];
    int pop = 1000000 * (static_cast<int>(region) + 1) +
              pop_counter[static_cast<std::size_t>(region)]++ / 3;
    net::Location location{region, rng.uniform(0.3, 2.0), pop};

    auto resolver = std::make_shared<RecursiveResolver>(
        profile.tag + "-" + std::to_string(i), profile.config, network,
        hints);
    if (profile.config.local_root && local_root_zone) {
      resolver->set_local_root_zone(local_root_zone);
    }
    net::Address address = network.attach(*resolver, location);
    resolver->set_node_ref(net::NodeRef{address, location});
    population.members_.push_back(
        Member{std::move(resolver), address, location, profile.tag});
  }
  return population;
}

std::vector<const ResolverPopulation::Member*>
ResolverPopulation::with_profile(const std::string& tag) const {
  std::vector<const Member*> out;
  for (const auto& member : members_) {
    if (member.profile == tag) {
      out.push_back(&member);
    }
  }
  return out;
}

void ResolverPopulation::flush_all() {
  for (auto& member : members_) {
    member.resolver->flush();
  }
}

}  // namespace dnsttl::resolver
