#ifndef DNSTTL_RESOLVER_ROOT_HINTS_H
#define DNSTTL_RESOLVER_ROOT_HINTS_H

#include <vector>

#include "dns/name.h"
#include "net/network.h"

namespace dnsttl::resolver {

/// The resolver's compiled-in knowledge of the root: names and addresses of
/// root servers (the root.hints file of real resolvers).  Hints never
/// expire — they are configuration, not cache.
struct RootHints {
  struct Entry {
    dns::Name name;     ///< e.g. k.root-servers.net.
    net::Address address;
  };
  std::vector<Entry> servers;

  bool empty() const noexcept { return servers.empty(); }
};

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_ROOT_HINTS_H
