#include "resolver/config.h"

namespace dnsttl::resolver {

std::string_view to_string(Centricity centricity) {
  switch (centricity) {
    case Centricity::kChildCentric:
      return "child-centric";
    case Centricity::kParentCentric:
      return "parent-centric";
  }
  return "centricity?";
}

std::string ResolverConfig::describe() const {
  std::string out{to_string(centricity)};
  out += " max_ttl=" + std::to_string(max_ttl.value());
  if (min_ttl > dns::Ttl{}) {
    out += " min_ttl=" + std::to_string(min_ttl.value());
  }
  if (cache_max_entries != 0) {
    out += " cache=" + std::to_string(cache_max_entries) + "/" +
           std::string(cache::to_string(cache_eviction));
  }
  if (link_glue_to_ns) out += " linked-glue";
  if (sticky) out += " sticky";
  if (serve_stale) out += " serve-stale";
  if (local_root) out += " local-root";
  return out;
}

ResolverConfig child_centric_config() { return ResolverConfig{}; }

ResolverConfig parent_centric_config() {
  ResolverConfig config;
  config.centricity = Centricity::kParentCentric;
  config.fetch_authoritative_ns_addresses = false;
  return config;
}

ResolverConfig google_like_config() {
  ResolverConfig config;
  config.max_ttl = dns::Ttl{21599};
  return config;
}

ResolverConfig bind_like_config() {
  ResolverConfig config;
  config.max_ttl = dns::kTtl1Week;
  return config;
}

ResolverConfig opendns_like_config() {
  ResolverConfig config;
  config.centricity = Centricity::kParentCentric;
  config.local_root = true;
  config.fetch_authoritative_ns_addresses = false;
  return config;
}

ResolverConfig sticky_config() {
  ResolverConfig config;
  config.sticky = true;
  return config;
}

}  // namespace dnsttl::resolver
