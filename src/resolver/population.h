#ifndef DNSTTL_RESOLVER_POPULATION_H
#define DNSTTL_RESOLVER_POPULATION_H

#include <memory>
#include <string>
#include <vector>

#include "dns/zone.h"
#include "net/network.h"
#include "resolver/config.h"
#include "resolver/recursive_resolver.h"
#include "resolver/root_hints.h"
#include "sim/rng.h"

namespace dnsttl::resolver {

/// One resolver behavior profile with its share of the deployed base.
struct Profile {
  std::string tag;
  ResolverConfig config;
  double weight = 1.0;
};

/// The mixture calibrated to the paper's measured behavior fractions
/// (DESIGN.md §4): mostly child-centric, a Google-style capped slice, a
/// parent-centric slice (some RFC 7706), a small sticky tail, a minority
/// that trusts cached glue to its own TTL, and a serve-stale slice.
std::vector<Profile> paper_profiles();

/// A deployed population of recursive resolvers attached to a network.
class ResolverPopulation {
 public:
  struct Member {
    std::shared_ptr<RecursiveResolver> resolver;
    net::Address address;
    net::Location location;
    std::string profile;
  };

  /// Builds @p count resolvers drawn from @p profiles, placed in regions
  /// drawn from @p region_weights (indexed by net::kAllRegions order), each
  /// attached to @p network.  @p local_root_zone is installed on profiles
  /// with config.local_root.
  static ResolverPopulation build(
      net::Network& network, const RootHints& hints,
      std::shared_ptr<const dns::Zone> local_root_zone,
      const std::vector<Profile>& profiles, std::size_t count,
      const std::vector<double>& region_weights, sim::Rng& rng);

  std::vector<Member>& members() noexcept { return members_; }
  const std::vector<Member>& members() const noexcept { return members_; }
  std::size_t size() const noexcept { return members_.size(); }

  /// Members matching a profile tag.
  std::vector<const Member*> with_profile(const std::string& tag) const;

  /// Flushes every member's cache (fresh experiment).
  void flush_all();

 private:
  std::vector<Member> members_;
};

/// RIPE-Atlas-like region distribution (probe density skewed to EU/NA,
/// per the platform-bias discussion in the paper's §7).
std::vector<double> atlas_region_weights();

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_POPULATION_H
