#include "resolver/recursive_resolver.h"

#include "dns/dnssec.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dnsttl::resolver {

namespace {

/// Groups a record list into RRsets keyed by (owner, type).
std::vector<dns::RRset> group_rrsets(
    const std::vector<dns::ResourceRecord>& records) {
  std::map<std::pair<dns::Name, dns::RRType>, std::vector<dns::ResourceRecord>>
      groups;
  for (const auto& rr : records) {
    groups[{rr.name, rr.type()}].push_back(rr);
  }
  std::vector<dns::RRset> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    out.push_back(dns::RRset::from_records(members));
  }
  return out;
}

bool is_address_type(dns::RRType type) {
  return type == dns::RRType::kA || type == dns::RRType::kAAAA;
}

}  // namespace

RecursiveResolver::RecursiveResolver(std::string ident, ResolverConfig config,
                                     net::Network& network, RootHints hints)
    : ident_(std::move(ident)),
      config_(config),
      network_(network),
      hints_(std::move(hints)) {
  cache::Cache::Config cache_config;
  cache_config.max_ttl = config_.max_ttl;
  cache_config.min_ttl = config_.min_ttl;
  cache_config.link_glue_to_ns = config_.link_glue_to_ns;
  cache_config.serve_stale = config_.serve_stale;
  cache_config.stale_window = config_.max_stale;  // RFC 8767 §5 clamp
  // Resolvers that do not link glue to NS records are the "trust the cache
  // to its TTL" style: they also keep live entries across same-credibility
  // refreshes (§4.2's minority that rides the A record to 120 minutes).
  cache_config.replace_same_credibility = config_.link_glue_to_ns;
  cache_config.prefer_parent_delegation =
      config_.centricity == Centricity::kParentCentric;
  cache_config.max_entries = config_.cache_max_entries;
  cache_config.policy = config_.cache_eviction;
  cache_ = cache::Cache(cache_config);
}

void RecursiveResolver::flush() {
  cache_.clear();
  sticky_pins_.clear();
  stale_refresh_until_.clear();
}

cache::Credibility RecursiveResolver::answer_threshold() const {
  return config_.centricity == Centricity::kParentCentric
             ? cache::Credibility::kGlue
             : cache::Credibility::kNonAuthAnswer;
}

std::optional<net::ServerReply> RecursiveResolver::handle_query(
    const dns::Message& query, net::Address /*client*/, sim::Time now) {
  if (query.questions.empty()) {
    auto response = dns::Message::make_response(query);
    response.flags.rcode = dns::Rcode::kFormErr;
    return net::ServerReply{std::move(response), sim::Duration{}};
  }
  ResolutionResult result = resolve(query.question(), now);
  result.response.id = query.id;
  result.response.flags.rd = query.flags.rd;
  return net::ServerReply{std::move(result.response), result.elapsed};
}

ResolutionResult RecursiveResolver::resolve(const dns::Question& question,
                                            sim::Time now) {
  ++stats_.client_queries;
  ResolutionResult result;

  // RFC 7706 local root mirror: answered before anything else, with full
  // (undecremented) TTLs and no wire traffic.
  if (auto local = answer_from_local_root(question)) {
    ++stats_.referral_answers;
    result.response = std::move(*local);
    result.answered_from_referral = true;
    return result;
  }

  if (auto cached = answer_from_cache(question, now)) {
    ++stats_.cache_answers;
    maybe_prefetch(question, now);
    result.response = std::move(*cached);
    result.answered_from_cache = true;
    return result;
  }

  if (auto negative =
          cache_.lookup_negative(question.qname, question.qtype, now)) {
    ++stats_.cache_answers;
    dns::Message response;
    response.flags.qr = true;
    response.flags.ra = true;
    response.flags.rcode = negative->rcode;
    response.questions.push_back(question);
    result.response = std::move(response);
    result.answered_from_cache = true;
    return result;
  }

  // RFC 8767 §5 stale-refresh: a question served stale moments ago keeps
  // being answered from the stale entry — upstreams are NOT re-tried —
  // until the suppression window lapses, so a popular dead name costs one
  // resolution timeout per window, not one per client query.
  if (config_.serve_stale && config_.stale_refresh > sim::Duration{}) {
    auto key = std::make_pair(question.qname, question.qtype);
    if (auto it = stale_refresh_until_.find(key);
        it != stale_refresh_until_.end()) {
      if (now < it->second) {
        if (auto stale =
                cache_.lookup(question.qname, question.qtype, now, true);
            stale && stale->stale) {
          ++stats_.stale_answers;
          ++stats_.stale_refresh_answers;
          dns::Message stale_response;
          stale_response.flags.qr = true;
          stale_response.flags.ra = true;
          stale_response.questions.push_back(question);
          stale_response.answers = stale->rrset.to_records();
          result.response = std::move(stale_response);
          result.answered_from_cache = true;
          result.served_stale = true;
          return result;
        }
      }
      // Window lapsed, or the stale copy is gone (purged or resurrected
      // through another question): resolve normally again.
      stale_refresh_until_.erase(it);
    }
  }

  Context ctx;
  dns::Message response = resolve_iterative(question, now, ctx);

  if (response.flags.rcode == dns::Rcode::kServFail && config_.serve_stale) {
    // RFC 8767: all upstreams failed; fall back to expired data.
    if (auto stale =
            cache_.lookup(question.qname, question.qtype, now, true);
        stale && stale->stale) {
      ++stats_.stale_answers;
      if (config_.stale_refresh > sim::Duration{}) {
        // Arm the stale-refresh window: follow-up queries for this name
        // are served from the stale entry without re-proving the outage.
        stale_refresh_until_[{question.qname, question.qtype}] =
            now + config_.stale_refresh;
      }
      dns::Message stale_response;
      stale_response.flags.qr = true;
      stale_response.flags.ra = true;
      stale_response.questions.push_back(question);
      stale_response.answers = stale->rrset.to_records();
      result.response = std::move(stale_response);
      result.elapsed = ctx.elapsed;
      result.served_stale = true;
      result.upstream_queries = ctx.upstream_queries;
      return result;
    }
  }

  if (response.flags.rcode == dns::Rcode::kServFail) {
    ++stats_.servfails;
  } else {
    ++stats_.full_resolutions;
    // A successful resolution supersedes any stale-refresh suppression.
    stale_refresh_until_.erase({question.qname, question.qtype});
  }
  result.response = std::move(response);
  result.elapsed = ctx.elapsed;
  result.upstream_queries = ctx.upstream_queries;
  return result;
}

std::optional<dns::Message> RecursiveResolver::answer_from_local_root(
    const dns::Question& question) {
  if (!config_.local_root || !local_root_zone_) {
    return std::nullopt;
  }
  auto result = local_root_zone_->lookup(question.qname, question.qtype);
  using Kind = dns::LookupResult::Kind;
  if (result.kind == Kind::kAnswer) {
    dns::Message response;
    response.flags.qr = true;
    response.flags.ra = true;
    response.questions.push_back(question);
    response.answers = std::move(result.answers);
    return response;
  }
  if (result.kind == Kind::kDelegation &&
      config_.centricity == Centricity::kParentCentric) {
    // Parent-centric + mirror: the referral content answers NS/address
    // questions about TLDs directly, always at the full parent TTL — the
    // "full 172800 s" VPs of §3.2.
    dns::Message referral;
    referral.flags.qr = true;
    referral.questions.push_back(question);
    referral.authorities = std::move(result.authorities);
    referral.additionals = std::move(result.additionals);
    if (auto answer = answer_from_referral(question, referral)) {
      return answer;
    }
  }
  return std::nullopt;
}

std::optional<dns::Message> RecursiveResolver::answer_from_cache(
    const dns::Question& question, sim::Time now) {
  const auto threshold = answer_threshold();
  std::vector<dns::ResourceRecord> chain;
  dns::Name qname = question.qname;

  for (int hop = 0; hop < 9; ++hop) {
    if (auto hit = cache_.lookup(qname, question.qtype, now)) {
      if (static_cast<int>(hit->credibility) >= static_cast<int>(threshold)) {
        auto records = hit->rrset.to_records();
        chain.insert(chain.end(), records.begin(), records.end());
        return positive_response(question, std::move(chain), false);
      }
      return std::nullopt;  // data cached but not credible enough to serve
    }
    if (question.qtype == dns::RRType::kCNAME) {
      return std::nullopt;
    }
    auto cname = cache_.lookup(qname, dns::RRType::kCNAME, now);
    if (!cname || static_cast<int>(cname->credibility) <
                      static_cast<int>(threshold)) {
      return std::nullopt;
    }
    auto records = cname->rrset.to_records();
    chain.insert(chain.end(), records.begin(), records.end());
    qname = std::get<dns::CnameRdata>(records.front().rdata).target;
  }
  return std::nullopt;
}

dns::Message RecursiveResolver::positive_response(
    const dns::Question& question, std::vector<dns::ResourceRecord> answers,
    bool /*aa_seen*/) const {
  dns::Message response;
  response.flags.qr = true;
  response.flags.ra = true;
  response.questions.push_back(question);
  for (auto& rr : answers) {
    rr.ttl = std::clamp(rr.ttl, config_.min_ttl, config_.max_ttl);
  }
  response.answers = std::move(answers);
  return response;
}

dns::Message RecursiveResolver::servfail(const dns::Question& question) const {
  dns::Message response;
  response.flags.qr = true;
  response.flags.ra = true;
  response.flags.rcode = dns::Rcode::kServFail;
  response.questions.push_back(question);
  return response;
}

std::optional<dns::Message> RecursiveResolver::answer_from_referral(
    const dns::Question& question, const dns::Message& referral) {
  if (question.qtype == dns::RRType::kNS) {
    std::vector<dns::ResourceRecord> matches;
    for (const auto& rr : referral.authorities) {
      if (rr.name == question.qname && rr.type() == dns::RRType::kNS) {
        matches.push_back(rr);
      }
    }
    if (!matches.empty()) {
      return positive_response(question, std::move(matches), false);
    }
  }
  if (is_address_type(question.qtype)) {
    std::vector<dns::ResourceRecord> matches;
    for (const auto& rr : referral.additionals) {
      if (rr.name == question.qname && rr.type() == question.qtype) {
        matches.push_back(rr);
      }
    }
    if (!matches.empty()) {
      return positive_response(question, std::move(matches), false);
    }
  }
  return std::nullopt;
}

std::optional<dns::Name> RecursiveResolver::ingest_response(
    const dns::Message& response, const dns::Name& zone, sim::Time now) {
  const bool referral = !response.flags.aa && response.answers.empty() &&
                        response.flags.rcode == dns::Rcode::kNoError;

  // Which NS owners does this response establish?  Used for glue linkage.
  std::optional<dns::Name> cut;
  for (const auto& rrset : group_rrsets(response.authorities)) {
    if (rrset.type() != dns::RRType::kNS) {
      continue;  // SOA of negative answers is consumed by the caller
    }
    if (referral) {
      if (!rrset.name().is_strict_subdomain_of(zone)) {
        continue;  // upward/lame referral: ignore
      }
      if (!cut || rrset.name().is_strict_subdomain_of(*cut)) {
        cut = rrset.name();
      }
      cache_.insert(rrset, cache::Credibility::kGlue, now);
    } else {
      cache_.insert(rrset, cache::Credibility::kNonAuthAnswer, now);
    }
  }

  // Answer-section data.
  const auto answer_cred = response.flags.aa
                               ? cache::Credibility::kAuthAnswer
                               : cache::Credibility::kNonAuthAnswer;
  for (const auto& rrset : group_rrsets(response.answers)) {
    std::optional<dns::Name> link;
    if (is_address_type(rrset.type())) {
      link = linked_ns_owner_for(rrset.name(), now);
    }
    cache_.insert(rrset, answer_cred, now, link);
  }

  // Additional-section addresses: glue on referrals, hints otherwise.
  for (const auto& rrset : group_rrsets(response.additionals)) {
    if (!is_address_type(rrset.type())) {
      continue;
    }
    if (referral && cut && rrset.name().in_bailiwick_of(*cut)) {
      cache_.insert(rrset, cache::Credibility::kGlue, now, *cut);
    } else if (referral && cut) {
      // Sibling glue: still parent-sourced, linked to the cut's NS set.
      cache_.insert(rrset, cache::Credibility::kGlue, now, *cut);
    } else {
      cache_.insert(rrset, cache::Credibility::kAdditional, now,
                    linked_ns_owner_for(rrset.name(), now));
    }
  }
  return referral ? cut : std::nullopt;
}

std::optional<dns::Name> RecursiveResolver::linked_ns_owner_for(
    const dns::Name& owner, sim::Time now) {
  if (!config_.link_glue_to_ns) {
    return std::nullopt;
  }
  // An address record is delegation infrastructure when its owner appears
  // as an NS target of an ancestor zone; in that case its cache lifetime is
  // tied to that NS RRset (the paper's §4.2 in-bailiwick linkage).
  for (dns::Name zone = owner.parent();; zone = zone.parent()) {
    if (auto ns = cache_.peek(zone, dns::RRType::kNS, now)) {
      for (const auto& rdata : ns->rrset.rdatas()) {
        if (std::get<dns::NsRdata>(rdata).nsdname == owner &&
            owner.in_bailiwick_of(zone)) {
          return zone;
        }
      }
    }
    if (zone.is_root()) {
      return std::nullopt;
    }
  }
}

dns::Name RecursiveResolver::find_servers(
    const dns::Name& qname, sim::Time now, Context& ctx,
    std::vector<ServerCandidate>& servers) {
  servers.clear();

  for (dns::Name zone = qname;; zone = zone.parent()) {
    // Sticky resolvers reuse the first server that ever answered
    // authoritatively for a zone (§4.4).  The pin is consulted at the same
    // depth as the cache walk, so referral progress to deeper zones still
    // happens during bootstrap, but once a zone is pinned its server is
    // used forever, TTLs notwithstanding.
    if (config_.sticky) {
      if (auto it = sticky_pins_.find(zone); it != sticky_pins_.end()) {
        servers.push_back(it->second);
        return zone;
      }
    }
    // RFC 7706: the mirror supplies root-zone delegations locally.
    if (zone.is_root() && config_.local_root && local_root_zone_) {
      auto result = local_root_zone_->lookup(qname, dns::RRType::kNS);
      if (result.kind == dns::LookupResult::Kind::kDelegation) {
        dns::Message synthetic;
        synthetic.flags.qr = true;
        synthetic.authorities = result.authorities;
        synthetic.additionals = result.additionals;
        auto cut = ingest_response(synthetic, dns::Name{}, now);
        if (cut) {
          // Re-run the walk now that the TLD delegation is cached.
          return find_servers_from_cache(qname, now, ctx, servers, *cut);
        }
      }
    }

    if (auto ns = cache_.peek(zone, dns::RRType::kNS, now)) {
      if (collect_addresses(*ns, zone, now, ctx, servers)) {
        return zone;
      }
    }
    if (zone.is_root()) {
      break;
    }
  }

  // Fall back to the compiled-in root hints.
  for (const auto& entry : hints_.servers) {
    servers.push_back(ServerCandidate{entry.name, entry.address});
  }
  rotate(servers, now);
  return dns::Name{};
}

dns::Name RecursiveResolver::find_servers_from_cache(
    const dns::Name& qname, sim::Time now, Context& ctx,
    std::vector<ServerCandidate>& servers, const dns::Name& floor) {
  for (dns::Name zone = qname;; zone = zone.parent()) {
    if (auto ns = cache_.peek(zone, dns::RRType::kNS, now)) {
      if (collect_addresses(*ns, zone, now, ctx, servers)) {
        return zone;
      }
    }
    if (zone == floor || zone.is_root()) {
      break;
    }
  }
  for (const auto& entry : hints_.servers) {
    servers.push_back(ServerCandidate{entry.name, entry.address});
  }
  rotate(servers, now);
  return dns::Name{};
}

bool RecursiveResolver::collect_addresses(
    const cache::CacheHit& ns, const dns::Name& /*zone*/, sim::Time now,
    Context& ctx, std::vector<ServerCandidate>& servers) {
  std::vector<dns::Name> unresolved;
  bool verified_one = false;
  for (const auto& rdata : ns.rrset.rdatas()) {
    const auto& ns_name = std::get<dns::NsRdata>(rdata).nsdname;
    auto hit = cache_.peek(ns_name, dns::RRType::kA, now);
    if (hit && config_.fetch_authoritative_ns_addresses &&
        ctx.depth == 0 && !verified_one &&
        static_cast<int>(hit->credibility) <
            static_cast<int>(cache::Credibility::kNonAuthAnswer) &&
        std::find(ctx.fetching.begin(), ctx.fetching.end(), ns_name) ==
            ctx.fetching.end()) {
      // Address known only via glue: verify it against the child zone
      // (Unbound-style target fetching).  The AA copy is cached linked to
      // its covering NS set, so in-bailiwick lifetimes stay tied (§4.2)
      // while the resolver becomes visible at the child's authoritatives as
      // periodic NS-address queries (§3.4).  The fetch runs off the
      // client's critical path (opportunistic revalidation): this query is
      // answered with the data at hand.
      verified_one = true;  // lazy: verify at most one target per lookup
      sim::Duration checkpoint = ctx.elapsed;
      resolve_ns_address(ns_name, now, ctx);
      ctx.elapsed = checkpoint;
      if (auto refreshed = cache_.peek(ns_name, dns::RRType::kA, now)) {
        hit = refreshed;
      }
    }
    if (hit) {
      for (const auto& addr_rdata : hit->rrset.rdatas()) {
        servers.push_back(ServerCandidate{
            ns_name, std::get<dns::ARdata>(addr_rdata).address});
      }
      continue;
    }
    unresolved.push_back(ns_name);
  }

  if (servers.empty()) {
    for (const auto& ns_name : unresolved) {
      if (std::find(ctx.fetching.begin(), ctx.fetching.end(), ns_name) !=
          ctx.fetching.end()) {
        continue;
      }
      if (auto addr = resolve_ns_address(ns_name, now, ctx)) {
        servers.push_back(ServerCandidate{ns_name, *addr});
        break;  // one reachable server is enough to proceed
      }
    }
  }

  rotate(servers, now);
  return !servers.empty();
}

double RecursiveResolver::selection_srtt_ms(net::Address address,
                                            sim::Time now) const {
  auto it = server_health_.find(address.value());
  if (it == server_health_.end()) {
    // Optimistic default for untried servers so that every server is
    // eventually probed (BIND's decaying-srtt has the same effect).
    return 10.0;
  }
  const ServerHealth& health = it->second;
  double srtt = health.srtt_ms;
  if (now < health.backoff_until) {
    // Benched by the backoff policy: a flat penalty far above any
    // plausible RTT pushes the server behind every healthy candidate
    // (it is still reachable as a last resort when everything is down).
    srtt += 10000.0;
  }
  return srtt;
}

void RecursiveResolver::record_exchange(net::Address address,
                                        sim::Duration elapsed, bool answered,
                                        sim::Time now) {
  ServerHealth& health = server_health_[address.value()];
  // Feed the smoothed-RTT estimator; timeouts count double (BIND's
  // penalty) so a flaky server drifts to the back of the order.
  double sample_ms = sim::to_milliseconds(elapsed) * (answered ? 1.0 : 2.0);
  if (!health.srtt_seeded) {
    health.srtt_ms = sample_ms;
    health.srtt_seeded = true;
  } else {
    health.srtt_ms = 0.7 * health.srtt_ms + 0.3 * sample_ms;
  }
  if (answered) {
    // One good exchange clears the slate entirely.
    health.consecutive_timeouts = 0;
    health.backoff_level = 0;
    health.backoff_until = sim::Time{};
    return;
  }
  if (++health.consecutive_timeouts >= config_.timeouts_before_backoff) {
    // Bench the server: initial_backoff doubled per repeat offense,
    // clamped to max_backoff (level capped so the shift stays defined).
    sim::Duration bench =
        config_.initial_backoff *
        (std::int64_t{1} << std::min(health.backoff_level, 16));
    health.backoff_until = now + std::min(bench, config_.max_backoff);
    if (health.backoff_level < 16) {
      ++health.backoff_level;
    }
    health.consecutive_timeouts = 0;
    ++stats_.backoffs;
  }
}

void RecursiveResolver::rotate(std::vector<ServerCandidate>& servers,
                               sim::Time now) {
  if (servers.size() <= 1) {
    return;
  }
  if (config_.srtt_selection) {
    auto srtt_of = [this, now](const ServerCandidate& server) {
      return selection_srtt_ms(server.address, now);
    };
    std::stable_sort(servers.begin(), servers.end(),
                     [&](const ServerCandidate& a, const ServerCandidate& b) {
                       return srtt_of(a) < srtt_of(b);
                     });
    // Rotate within the leading band of near-equal servers, preserving the
    // §3.4 observation that resolvers rotate across comparable servers.
    double best = srtt_of(servers.front());
    std::size_t band = 1;
    while (band < servers.size() &&
           srtt_of(servers[band]) <= best + config_.srtt_band_ms) {
      ++band;
    }
    if (config_.rotate_ns && band > 1) {
      std::rotate(servers.begin(),
                  servers.begin() +
                      static_cast<long>(rotate_counter_++ % band),
                  servers.begin() + static_cast<long>(band));
    }
    return;
  }
  if (config_.rotate_ns) {
    std::rotate(servers.begin(),
                servers.begin() + static_cast<long>(rotate_counter_++ %
                                                    servers.size()),
                servers.end());
  }
}

std::optional<net::Address> RecursiveResolver::resolve_ns_address(
    const dns::Name& ns_name, sim::Time now, Context& ctx) {
  if (ctx.depth >= config_.max_ns_resolution_depth) {
    return std::nullopt;
  }
  ctx.fetching.push_back(ns_name);
  ++ctx.depth;
  dns::Question question{ns_name, dns::RRType::kA, dns::RClass::kIN};
  dns::Message response = resolve_iterative(question, now, ctx);
  --ctx.depth;
  ctx.fetching.pop_back();
  if (response.flags.rcode != dns::Rcode::kNoError) {
    return std::nullopt;
  }
  for (const auto& rr : response.answers) {
    if (rr.type() == dns::RRType::kA) {
      return std::get<dns::ARdata>(rr.rdata).address;
    }
  }
  return std::nullopt;
}

namespace {

/// The trailing @p label_count labels of @p name.
dns::Name name_suffix(const dns::Name& name, std::size_t label_count) {
  return name.suffix(label_count);
}

}  // namespace

RecursiveResolver::Resolution RecursiveResolver::begin_resolution(
    const dns::Question& question, sim::Time now) {
  Resolution task;
  task.original = question;
  task.current = question;
  task.start = now;
  return task;
}

bool RecursiveResolver::step(Resolution& task, Context& ctx) {
  if (task.phase == Resolution::Phase::kDone) {
    return false;
  }
  const dns::Question& question = task.original;
  const sim::Time now = task.start;

  auto finish = [&](dns::Message response) {
    task.response = std::move(response);
    task.phase = Resolution::Phase::kDone;
    return false;
  };
  // The old inner loop's `continue`: move to the next candidate, or give
  // up once the attempt budget is spent without progress.
  auto next_attempt = [&] {
    if (++task.attempt >= config_.max_server_attempts) {
      return finish(servfail(question));
    }
    return true;
  };
  // The old inner loop's progressed-`break`: queue the next referral step.
  auto next_iteration = [&] {
    task.progressed = true;
    ++task.iteration;
    task.phase = Resolution::Phase::kSetup;
    return true;
  };

  if (task.phase == Resolution::Phase::kSetup) {
    if (task.iteration >= config_.max_iterations) {
      return finish(servfail(question));
    }
    // A sub-question may be answerable from data cached moments ago.
    if (task.iteration > 0 || ctx.depth > 0) {
      if (auto cached = answer_from_cache(task.current, now + ctx.elapsed)) {
        task.chain.insert(task.chain.end(), cached->answers.begin(),
                          cached->answers.end());
        return finish(
            positive_response(question, std::move(task.chain), false));
      }
    }

    task.servers.clear();
    task.zone = find_servers(task.current.qname, now, ctx, task.servers);
    if (task.servers.empty()) {
      return finish(servfail(question));
    }

    // QNAME minimization (RFC 7816): expose only zone-depth + reveal
    // labels, asking NS until the final zone is reached.
    task.wire = task.current;
    if (config_.qname_minimization) {
      if (task.zone != task.minimized_zone) {
        task.minimized_zone = task.zone;
        task.reveal = 1;
      }
      std::size_t zone_depth = task.zone.label_count();
      if (task.current.qname.label_count() > zone_depth + task.reveal) {
        task.wire =
            dns::Question{name_suffix(task.current.qname,
                                      zone_depth + task.reveal),
                          dns::RRType::kNS, dns::RClass::kIN};
      }
    }
    task.minimized = task.wire.qname != task.current.qname ||
                     task.wire.qtype != task.current.qtype;
    task.progressed = false;
    task.attempt = 0;
    task.phase = Resolution::Phase::kAttempt;
    // Fall through: the referral step's outcome is this pending query.
  }

  // One server attempt.  Walking the candidate list attempt by attempt
  // re-creates the old retransmission pattern: a single-server zone gets
  // plain retransmissions to the same address.
  const ServerCandidate& server =
      task.servers[static_cast<std::size_t>(task.attempt) %
                   task.servers.size()];
  dns::Message query = dns::Message::make_query(
      next_id_++, task.wire.qname, task.wire.qtype, false);
  query.add_edns();  // modern resolvers advertise a large UDP payload
  auto outcome =
      network_.query(self_, server.address, query, now + ctx.elapsed);
  ctx.elapsed += outcome.elapsed;
  ++ctx.upstream_queries;
  ++stats_.upstream_queries;
  record_exchange(server.address, outcome.elapsed,
                  outcome.response.has_value(), now + ctx.elapsed);
  if (!outcome.response) {
    // Timeout: fall through to the next candidate (server re-selection);
    // the health record above may have benched this one, in which case
    // later rotate() calls route around it.
    return next_attempt();
  }
  dns::Message response = std::move(*outcome.response);
  if (response.flags.tc) {
    // Truncated over UDP: retry the same server over TCP (RFC 1035
    // §4.2.2), paying the handshake.
    auto tcp_outcome =
        network_.query(self_, server.address, query, now + ctx.elapsed,
                       net::Network::Transport::kTcp);
    ctx.elapsed += tcp_outcome.elapsed;
    ++ctx.upstream_queries;
    ++stats_.upstream_queries;
    ++stats_.tcp_retries;
    if (!tcp_outcome.response) {
      return next_attempt();
    }
    response = std::move(*tcp_outcome.response);
  }
  const sim::Time t = now + ctx.elapsed;

  if (response.flags.rcode != dns::Rcode::kNoError &&
      response.flags.rcode != dns::Rcode::kNXDomain) {
    return next_attempt();  // REFUSED/SERVFAIL from upstream: next server
  }

  auto cut = ingest_response(response, task.zone, t);

  if (config_.sticky && response.flags.aa) {
    sticky_pins_.emplace(task.zone, server);
  }

  if (response.flags.rcode == dns::Rcode::kNXDomain) {
    // For a minimized query this is still conclusive: a missing ancestor
    // means every name below it is missing too (RFC 8020).
    cache_negative(response, task.minimized ? task.wire : task.current, t);
    dns::Message negative = servfail(question);
    negative.flags.rcode = dns::Rcode::kNXDomain;
    negative.answers = task.chain;  // CNAME prefix stays visible
    return finish(std::move(negative));
  }

  if (task.minimized && response.flags.aa) {
    // The partial name exists (NS answer for a hosted child zone, or
    // NODATA for an empty non-terminal): reveal one more label.
    ++task.reveal;
    return next_iteration();
  }

  if (!response.answers.empty()) {
    if (auto direct =
            response.answer_rrset(task.current.qname, task.current.qtype)) {
      if (config_.validate_dnssec && response.flags.aa &&
          !validate_answer(response, task.current, now, ctx)) {
        return next_attempt();  // bogus: try another server
      }
      // Include any same-response CNAME chain ahead of the match.
      task.chain.insert(task.chain.end(), response.answers.begin(),
                        response.answers.end());
      return finish(
          positive_response(question, std::move(task.chain), true));
    }
    if (task.current.qtype != dns::RRType::kCNAME) {
      if (auto cname = response.answer_rrset(task.current.qname,
                                             dns::RRType::kCNAME)) {
        // Follow the chain: collect every CNAME + look for the target.
        task.chain.insert(task.chain.end(), response.answers.begin(),
                          response.answers.end());
        dns::Name target =
            std::get<dns::CnameRdata>(cname->rdatas().front()).target;
        // The final answer may already be in this response.
        for (const auto& rr : response.answers) {
          if (rr.type() == task.current.qtype && rr.name == target) {
            return finish(
                positive_response(question, std::move(task.chain), true));
          }
        }
        task.current.qname = target;
        return next_iteration();
      }
    }
    return next_attempt();  // answers that do not match the question: lame
  }

  if (response.flags.aa) {
    // Authoritative NODATA.
    cache_negative(response, task.current, t);
    return finish(positive_response(question, task.chain, true));
  }

  if (cut && cut->is_strict_subdomain_of(task.zone) &&
      task.current.qname.is_subdomain_of(*cut)) {
    if (config_.centricity == Centricity::kParentCentric) {
      if (auto answer = answer_from_referral(task.current, response)) {
        ++stats_.referral_answers;
        task.chain.insert(task.chain.end(), answer->answers.begin(),
                          answer->answers.end());
        return finish(
            positive_response(question, std::move(task.chain), false));
      }
    }
    return next_iteration();  // descend to the child zone
  }
  // Lame referral: try the next server.
  return next_attempt();
}

dns::Message RecursiveResolver::resolve_iterative(
    const dns::Question& question, sim::Time now, Context& ctx) {
  Resolution task = begin_resolution(question, now);
  while (step(task, ctx)) {
  }
  return std::move(*task.response);
}

bool RecursiveResolver::validate_answer(const dns::Message& response,
                                        const dns::Question& question,
                                        sim::Time now, Context& ctx) {
  auto rrset = response.answer_rrset(question.qname, question.qtype);
  if (!rrset) {
    return true;
  }
  // Find the covering RRSIG in the same response.
  const dns::RrsigRdata* sig = nullptr;
  for (const auto& rr : response.answers) {
    if (rr.name == question.qname && rr.type() == dns::RRType::kRRSIG) {
      const auto& candidate = std::get<dns::RrsigRdata>(rr.rdata);
      if (candidate.type_covered == question.qtype) {
        sig = &candidate;
        break;
      }
    }
  }
  if (sig == nullptr) {
    return true;  // unsigned: insecure but accepted
  }
  ++stats_.validations;

  // The DNSKEY must come from the signer (child) zone — parent copies
  // cannot satisfy a validator, which is the §2 argument for
  // child-centric resolution.
  std::optional<cache::CacheHit> keys =
      cache_.peek(sig->signer, dns::RRType::kDNSKEY, now + ctx.elapsed);
  if (!keys && ctx.depth < config_.max_ns_resolution_depth &&
      !(question.qname == sig->signer &&
        question.qtype == dns::RRType::kDNSKEY)) {
    ++ctx.depth;
    dns::Question key_question{sig->signer, dns::RRType::kDNSKEY,
                               dns::RClass::kIN};
    resolve_iterative(key_question, now, ctx);
    --ctx.depth;
    keys = cache_.peek(sig->signer, dns::RRType::kDNSKEY, now + ctx.elapsed);
  }
  if (!keys) {
    ++stats_.validation_failures;
    return false;  // signed data with unreachable keys: bogus
  }
  for (const auto& rdata : keys->rrset.rdatas()) {
    if (dns::verify_rrsig(*rrset, *sig, std::get<dns::DnskeyRdata>(rdata))) {
      return true;
    }
  }
  ++stats_.validation_failures;
  return false;
}

void RecursiveResolver::maybe_prefetch(const dns::Question& question,
                                       sim::Time now) {
  if (!config_.prefetch || prefetching_) {
    return;
  }
  auto hit = cache_.peek(question.qname, question.qtype, now);
  if (!hit || hit->original_ttl == dns::Ttl{}) {
    return;
  }
  if (static_cast<double>(hit->rrset.ttl().value()) >
      config_.prefetch_fraction *
          static_cast<double>(hit->original_ttl.value())) {
    return;
  }
  // Refresh off the client's critical path; the fresh answer replaces the
  // near-dead entry so the next client stays a cache hit.
  prefetching_ = true;
  Context ctx;
  resolve_iterative(question, now, ctx);
  prefetching_ = false;
  ++stats_.prefetches;
}

void RecursiveResolver::cache_negative(const dns::Message& response,
                                       const dns::Question& question,
                                       sim::Time now) {
  dns::Ttl ttl{60};  // conservative default when no SOA is present
  for (const auto& rr : response.authorities) {
    if (rr.type() == dns::RRType::kSOA) {
      const auto& soa = std::get<dns::SoaRdata>(rr.rdata);
      ttl = std::min(rr.ttl, soa.minimum.clamped());  // RFC 2308 §5
      break;
    }
  }
  cache_.insert_negative(question.qname, question.qtype,
                         response.flags.rcode, ttl, now);
}

}  // namespace dnsttl::resolver
