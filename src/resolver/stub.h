#ifndef DNSTTL_RESOLVER_STUB_H
#define DNSTTL_RESOLVER_STUB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "net/network.h"
#include "sim/time.h"

namespace dnsttl::resolver {

/// A stub resolver — the OS-library side of DNS (the paper's first tier):
/// it holds a resolv.conf-style list of recursive resolvers and walks them
/// with per-server timeouts and retry rounds, returning the first usable
/// answer.  RIPE Atlas probes are exactly this plus a scheduler.
class StubResolver {
 public:
  struct Options {
    /// Full passes over the server list before giving up (resolv.conf
    /// "attempts", default 2).
    int attempts = 2;
    /// Retry a server that answered SERVFAIL with the next one.
    bool skip_servfail = true;
  };

  struct Result {
    std::optional<dns::Message> response;  ///< nullopt: every attempt failed
    sim::Duration elapsed{};             ///< total wall time spent
    int attempts_used = 0;
    std::optional<net::Address> server;    ///< who finally answered
  };

  StubResolver(net::NodeRef self, net::Network& network,
               std::vector<net::Address> servers)
      : StubResolver(self, network, std::move(servers), Options{}) {}

  StubResolver(net::NodeRef self, net::Network& network,
               std::vector<net::Address> servers, Options options)
      : self_(self),
        network_(network),
        servers_(std::move(servers)),
        options_(options) {}

  const std::vector<net::Address>& servers() const noexcept {
    return servers_;
  }

  /// Resolves (qname, qtype) at virtual time @p now, walking the server
  /// list like libc does: first server, on timeout/SERVFAIL the next, with
  /// `attempts` full rounds.  Truncated UDP answers are retried over TCP.
  Result query(const dns::Name& qname, dns::RRType qtype, sim::Time now);

 private:
  net::NodeRef self_;
  net::Network& network_;
  std::vector<net::Address> servers_;
  Options options_;
  std::uint16_t next_id_ = 1;
};

}  // namespace dnsttl::resolver

#endif  // DNSTTL_RESOLVER_STUB_H
