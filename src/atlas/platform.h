#ifndef DNSTTL_ATLAS_PLATFORM_H
#define DNSTTL_ATLAS_PLATFORM_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/zone.h"
#include "net/network.h"
#include "resolver/forwarder.h"
#include "resolver/population.h"
#include "resolver/root_hints.h"
#include "sim/rng.h"

namespace dnsttl::atlas {

/// How the probe fleet and its resolver infrastructure are built.
/// Defaults approximate RIPE Atlas as the paper used it: ~9k probes, ~15k
/// VPs (probe × resolver), ~6k client-facing resolvers, a slice of VPs on
/// public anycast resolvers, and a slice behind forwarders.
struct PlatformSpec {
  std::size_t probe_count = 9000;
  std::size_t resolver_count = 6000;

  /// Probability a probe lists a second resolver (drives VPs/probe ≈ 1.7).
  double second_resolver_fraction = 0.7;

  /// Probability a VP slot points at a public anycast resolver service.
  double public_resolver_fraction = 0.10;

  /// Probability a VP slot is a caching-free forwarder in front of
  /// recursive backends (infrastructure fragmentation, §4.4).
  double forwarder_fraction = 0.10;

  std::size_t forwarder_backends = 2;

  /// Share of public-resolver VP slots on the Google-like service (the
  /// rest use the OpenDNS-like one).
  double public_google_share = 0.8;

  /// Independent recursive backends behind each public anycast site (cache
  /// fragmentation; drives the fresh-cap plateau of Figure 2).
  std::size_t public_backends_per_site = 6;

  /// Region mix of probes; defaults to the Atlas EU-skew.
  std::vector<double> region_weights = resolver::atlas_region_weights();

  /// Resolver behavior mixture; defaults to the paper calibration.
  std::vector<resolver::Profile> profiles = resolver::paper_profiles();
};

/// One measurement probe: a stub client somewhere in the world with one or
/// two recursive resolvers configured.  Each (probe, resolver) pair is a
/// vantage point, the unit the paper reports.
struct Probe {
  int id = 0;
  net::NodeRef ref;
  std::vector<net::Address> resolvers;
};

/// Structure-of-arrays view of the vantage points (probe × resolver
/// pairs), flattened in probe-major, resolver-minor order — the iteration
/// order every measurement uses.  Cohort engines (see docs/architecture.md
/// §Workload engine) address a VP by its position in these parallel arrays
/// instead of walking the nested Probe objects, so batch iteration over a
/// wheel cohort touches contiguous memory.
class VpPool {
 public:
  /// Flattens @p probes; called once at the end of Platform::build.
  void rebuild(const std::vector<Probe>& probes);

  [[nodiscard]] std::size_t size() const noexcept {
    return probe_index_.size();
  }
  /// Index into Platform::probes() of the probe owning VP @p vp.
  [[nodiscard]] std::size_t probe_index(std::size_t vp) const {
    return probe_index_[vp];
  }
  [[nodiscard]] net::Address resolver(std::size_t vp) const {
    return resolver_[vp];
  }

  /// Deep audit: parallel arrays in step, probe indices in range and
  /// probe-major monotone (no orphaned VP rows).  Throws check::AuditError.
  void validate(std::size_t probe_count) const;

 private:
  std::vector<std::uint32_t> probe_index_;
  std::vector<net::Address> resolver_;
};

/// The built platform: probes, the resolver population, forwarders and two
/// public anycast resolver services (a Google-like capped child-centric one
/// and an OpenDNS-like parent-centric/local-root one).
class Platform {
 public:
  static Platform build(net::Network& network,
                        const resolver::RootHints& hints,
                        std::shared_ptr<const dns::Zone> root_mirror,
                        const PlatformSpec& spec, sim::Rng& rng);

  std::vector<Probe>& probes() noexcept { return probes_; }
  const std::vector<Probe>& probes() const noexcept { return probes_; }

  resolver::ResolverPopulation& resolver_population() noexcept {
    return population_;
  }

  /// Total vantage points (sum of per-probe resolver lists).
  std::size_t vp_count() const { return vp_pool_.size(); }

  /// SoA view of the vantage points, probe-major.
  const VpPool& vp_pool() const noexcept { return vp_pool_; }

  net::Address google_anycast() const noexcept { return google_anycast_; }
  net::Address opendns_anycast() const noexcept { return opendns_anycast_; }

  /// True if the VP resolver address is one of the public anycast services.
  bool is_public(net::Address address) const noexcept {
    return address == google_anycast_ || address == opendns_anycast_;
  }

  /// The per-site resolver instances behind the public services.
  const std::vector<std::shared_ptr<resolver::RecursiveResolver>>&
  public_site_resolvers() const noexcept {
    return public_sites_;
  }

  /// Flushes every cache on the platform (fresh experiment).
  void flush_all();

  /// Behavior profile tag of the resolver at @p address ("child-bind",
  /// "parent", ..., "public-google", "public-opendns", "forwarder"), or
  /// "?" if unknown.
  std::string profile_of(net::Address address) const;

 private:
  std::vector<Probe> probes_;
  VpPool vp_pool_;
  resolver::ResolverPopulation population_;
  std::vector<std::shared_ptr<resolver::Forwarder>> forwarders_;
  std::vector<std::shared_ptr<resolver::RecursiveResolver>> public_sites_;
  std::vector<std::shared_ptr<resolver::Forwarder>> public_frontends_;
  net::Address google_anycast_;
  net::Address opendns_anycast_;
};

}  // namespace dnsttl::atlas

#endif  // DNSTTL_ATLAS_PLATFORM_H
