#include "atlas/platform.h"

#include <unordered_map>

#include "check/audit.h"

namespace dnsttl::atlas {

namespace {

/// Builds one public anycast resolver service, mirroring how Google and
/// OpenDNS deploy: a site per region, each site a load-balanced pool of
/// independent recursive backends.  The per-site pool is what fragments
/// caches — successive queries from one client hit different backends and
/// often see freshly-capped TTLs (the paper's 21599 s plateau in Figure 2
/// and the mixed answers of §4.4).
net::Address build_public_service(
    net::Network& network, const resolver::RootHints& hints,
    std::shared_ptr<const dns::Zone> root_mirror,
    const resolver::ResolverConfig& config, const std::string& ident,
    std::size_t backends_per_site,
    std::vector<std::shared_ptr<resolver::RecursiveResolver>>& out_backends,
    std::vector<std::shared_ptr<resolver::Forwarder>>& out_frontends) {
  std::vector<std::pair<net::DnsNode*, net::Location>> sites;
  std::vector<std::shared_ptr<resolver::Forwarder>> frontends;
  for (net::Region region : net::kAllRegions) {
    net::Location site_location{region, 0.5};
    std::vector<net::Address> backend_addrs;
    for (std::size_t b = 0; b < backends_per_site; ++b) {
      auto backend = std::make_shared<resolver::RecursiveResolver>(
          ident + "-" + std::string(net::to_string(region)) + "-" +
              std::to_string(b),
          config, network, hints);
      if (config.local_root && root_mirror) {
        backend->set_local_root_zone(root_mirror);
      }
      net::Address addr = network.attach(*backend, site_location);
      backend->set_node_ref(net::NodeRef{addr, site_location});
      backend_addrs.push_back(addr);
      out_backends.push_back(std::move(backend));
    }
    auto frontend = std::make_shared<resolver::Forwarder>(
        ident + "-" + std::string(net::to_string(region)) + "-lb", network,
        std::move(backend_addrs));
    sites.emplace_back(frontend.get(), site_location);
    frontends.push_back(std::move(frontend));
  }
  net::Address anycast = network.attach_anycast(sites);
  for (std::size_t i = 0; i < frontends.size(); ++i) {
    frontends[i]->set_node_ref(net::NodeRef{anycast, sites[i].second});
    out_frontends.push_back(frontends[i]);
  }
  return anycast;
}

}  // namespace

Platform Platform::build(net::Network& network,
                         const resolver::RootHints& hints,
                         std::shared_ptr<const dns::Zone> root_mirror,
                         const PlatformSpec& spec, sim::Rng& rng) {
  Platform platform;

  platform.population_ = resolver::ResolverPopulation::build(
      network, hints, root_mirror, spec.profiles, spec.resolver_count,
      spec.region_weights, rng);

  platform.google_anycast_ = build_public_service(
      network, hints, root_mirror, resolver::google_like_config(),
      "google-public", spec.public_backends_per_site, platform.public_sites_,
      platform.public_frontends_);
  platform.opendns_anycast_ = build_public_service(
      network, hints, root_mirror, resolver::opendns_like_config(),
      "opendns-public", spec.public_backends_per_site, platform.public_sites_,
      platform.public_frontends_);

  // Bucket resolver indices per region so probes pick nearby resolvers.
  std::unordered_map<int, std::vector<std::size_t>> by_region;
  auto& members = platform.population_.members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    by_region[static_cast<int>(members[i].location.region)].push_back(i);
  }

  std::uint32_t probe_net = 0x0b000001;  // 11.0.0.x: probe address space
  platform.probes_.reserve(spec.probe_count);

  for (std::size_t p = 0; p < spec.probe_count; ++p) {
    net::Region region =
        net::kAllRegions[rng.weighted_index(spec.region_weights)];
    auto& bucket = by_region[static_cast<int>(region)];

    Probe probe;
    probe.id = static_cast<int>(p);

    auto pick_local = [&]() -> const resolver::ResolverPopulation::Member& {
      std::size_t idx = bucket.empty()
                            ? rng.uniform_int(0, members.size() - 1)
                            : bucket[rng.uniform_int(0, bucket.size() - 1)];
      return members[idx];
    };

    // The probe sits in the same metro (PoP) as its first local resolver:
    // this is what makes cache hits ~8 ms instead of intra-region tens of
    // ms (Figure 10a / 11).
    const auto& home = pick_local();
    probe.ref = net::NodeRef{
        net::Address{probe_net++},
        net::Location{region, rng.uniform(0.2, 1.5), home.location.pop_id}};

    std::size_t slots = 1 + (rng.chance(spec.second_resolver_fraction) ? 1 : 0);
    for (std::size_t s = 0; s < slots; ++s) {
      double roll = rng.uniform();
      if (roll < spec.public_resolver_fraction) {
        probe.resolvers.push_back(rng.chance(spec.public_google_share)
                                      ? platform.google_anycast_
                                      : platform.opendns_anycast_);
      } else if (roll < spec.public_resolver_fraction +
                            spec.forwarder_fraction) {
        std::vector<net::Address> backends;
        for (std::size_t b = 0; b < spec.forwarder_backends; ++b) {
          backends.push_back(pick_local().address);
        }
        auto forwarder = std::make_shared<resolver::Forwarder>(
            "fw-" + std::to_string(p) + "-" + std::to_string(s), network,
            std::move(backends));
        net::Location location{region, rng.uniform(0.2, 1.0),
                               probe.ref.location.pop_id};
        net::Address address = network.attach(*forwarder, location);
        forwarder->set_node_ref(net::NodeRef{address, location});
        platform.forwarders_.push_back(forwarder);
        probe.resolvers.push_back(address);
      } else if (s == 0) {
        probe.resolvers.push_back(home.address);
      } else {
        // Second resolver: usually another recursive in the same metro PoP
        // (same ISP), otherwise a random same-region one.
        const resolver::ResolverPopulation::Member* second = nullptr;
        for (std::size_t i = 0; i < bucket.size(); ++i) {
          const auto& candidate = members[bucket[i]];
          if (candidate.location.pop_id == home.location.pop_id &&
              candidate.address != home.address) {
            second = &candidate;
            break;
          }
        }
        if (second == nullptr || rng.chance(0.3)) {
          second = &pick_local();
        }
        probe.resolvers.push_back(second->address);
      }
    }
    platform.probes_.push_back(std::move(probe));
  }
  platform.vp_pool_.rebuild(platform.probes_);
  return platform;
}

void VpPool::rebuild(const std::vector<Probe>& probes) {
  probe_index_.clear();
  resolver_.clear();
  for (std::size_t p = 0; p < probes.size(); ++p) {
    for (const net::Address resolver : probes[p].resolvers) {
      probe_index_.push_back(static_cast<std::uint32_t>(p));
      resolver_.push_back(resolver);
    }
  }
}

void VpPool::validate(std::size_t probe_count) const {
  constexpr const char* kWhat = "atlas::VpPool";
  DNSTTL_AUDIT_CHECK(kWhat, probe_index_.size() == resolver_.size(),
                     "SoA arrays out of step: " +
                         std::to_string(probe_index_.size()) +
                         " probe indices vs " +
                         std::to_string(resolver_.size()) + " resolvers");
  std::uint32_t last = 0;
  for (std::size_t vp = 0; vp < probe_index_.size(); ++vp) {
    DNSTTL_AUDIT_CHECK(kWhat, probe_index_[vp] < probe_count,
                       "orphaned VP row " + std::to_string(vp) +
                           ": probe index out of range");
    DNSTTL_AUDIT_CHECK(kWhat, probe_index_[vp] >= last,
                       "VP rows not probe-major at row " + std::to_string(vp));
    last = probe_index_[vp];
  }
  check::count_audit();
}

std::string Platform::profile_of(net::Address address) const {
  if (address == google_anycast_) return "public-google";
  if (address == opendns_anycast_) return "public-opendns";
  for (const auto& member : population_.members()) {
    if (member.address == address) return member.profile;
  }
  for (const auto& forwarder : forwarders_) {
    if (forwarder->node_ref().address == address) return "forwarder";
  }
  return "?";
}

void Platform::flush_all() {
  population_.flush_all();
  for (auto& site : public_sites_) {
    site->flush();
  }
}

}  // namespace dnsttl::atlas
