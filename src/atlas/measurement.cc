#include "atlas/measurement.h"

#include <optional>
#include <unordered_map>

namespace dnsttl::atlas {

MeasurementRun MeasurementRun::execute(sim::Simulation& simulation,
                                       net::Network& network,
                                       Platform& platform,
                                       MeasurementSpec spec, sim::Rng& rng) {
  MeasurementRun run;
  run.spec_ = spec;

  std::uint16_t next_id = 1;
  for (auto& probe : platform.probes()) {
    if (!spec.covers_probe(probe.id)) {
      continue;
    }
    dns::Name qname = spec.per_probe_qname
                          ? spec.qname.prepend("p" + std::to_string(probe.id))
                          : spec.qname;
    // Sharded runs draw each probe's phase from a forked per-probe stream,
    // so the schedule is a function of the probe alone, not of which other
    // probes happen to precede it in this shard's iteration.
    std::optional<sim::Rng> probe_rng;
    if (spec.shard_count > 1) {
      probe_rng.emplace(
          rng.fork(static_cast<std::uint64_t>(probe.id)));
    }
    sim::Rng& phase_rng = probe_rng ? *probe_rng : rng;
    for (net::Address resolver : probe.resolvers) {
      // Atlas schedules each VP at a random phase within the period.
      sim::Duration phase = sim::Duration(static_cast<std::int64_t>(
          phase_rng.uniform(0.0, static_cast<double>(spec.frequency.count()))));
      for (sim::Duration offset = phase; offset < spec.duration;
           offset += spec.frequency) {
        sim::Time at = spec.start + offset;
        std::uint16_t id = next_id++;
        simulation.schedule_at(at, [&run, &network, &probe, resolver, qname,
                                    qtype = spec.qtype, id, at] {
          auto query = dns::Message::make_query(id, qname, qtype);
          query.add_edns();
          auto outcome = network.query(probe.ref, resolver, query, at);

          Sample sample;
          sample.probe_id = probe.id;
          sample.resolver = resolver;
          sample.sent = at;
          sample.rtt = outcome.elapsed;
          if (!outcome.response) {
            sample.timeout = true;
          } else {
            sample.rcode = outcome.response->flags.rcode;
            for (const auto& rr : outcome.response->answers) {
              if (rr.type() == qtype && rr.name == qname) {
                sample.has_answer = true;
                sample.ttl = rr.ttl;
                sample.rdata = dns::rdata_to_string(rr.rdata);
                break;
              }
            }
          }
          run.samples_.push_back(std::move(sample));
        });
      }
    }
  }

  simulation.run_until(spec.start + spec.duration + sim::kMinute);
  return run;
}

MeasurementRun MeasurementRun::merge(MeasurementSpec spec,
                                     std::vector<MeasurementRun> shards) {
  MeasurementRun merged;
  spec.shard_count = 1;
  spec.shard_index = 0;
  merged.spec_ = std::move(spec);
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.samples_.size();
  }
  merged.samples_.reserve(total);
  for (auto& shard : shards) {
    for (auto& sample : shard.samples_) {
      merged.samples_.push_back(std::move(sample));
    }
  }
  return merged;
}

std::size_t MeasurementRun::timeout_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (sample.timeout) ++count;
  }
  return count;
}

std::size_t MeasurementRun::valid_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) ++count;
  }
  return count;
}

stats::Cdf MeasurementRun::ttl_cdf() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(static_cast<double>(sample.ttl.value()));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms(net::Region region,
                                      const Platform& platform) const {
  std::unordered_map<int, net::Region> probe_region;
  for (const auto& probe : platform.probes()) {
    probe_region[probe.id] = probe.ref.location.region;
  }
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer &&
        probe_region[sample.probe_id] == region) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

}  // namespace dnsttl::atlas
