#include "atlas/measurement.h"

#include <unordered_map>

namespace dnsttl::atlas {

MeasurementRun MeasurementRun::execute(sim::Simulation& simulation,
                                       net::Network& network,
                                       Platform& platform,
                                       MeasurementSpec spec, sim::Rng& rng) {
  MeasurementRun run;
  run.spec_ = spec;

  std::uint16_t next_id = 1;
  for (auto& probe : platform.probes()) {
    dns::Name qname = spec.per_probe_qname
                          ? spec.qname.prepend("p" + std::to_string(probe.id))
                          : spec.qname;
    for (net::Address resolver : probe.resolvers) {
      // Atlas schedules each VP at a random phase within the period.
      sim::Duration phase = sim::Duration(static_cast<std::int64_t>(
          rng.uniform(0.0, static_cast<double>(spec.frequency.count()))));
      for (sim::Duration offset = phase; offset < spec.duration;
           offset += spec.frequency) {
        sim::Time at = spec.start + offset;
        std::uint16_t id = next_id++;
        simulation.schedule_at(at, [&run, &network, &probe, resolver, qname,
                                    qtype = spec.qtype, id, at] {
          auto query = dns::Message::make_query(id, qname, qtype);
          query.add_edns();
          auto outcome = network.query(probe.ref, resolver, query, at);

          Sample sample;
          sample.probe_id = probe.id;
          sample.resolver = resolver;
          sample.sent = at;
          sample.rtt = outcome.elapsed;
          if (!outcome.response) {
            sample.timeout = true;
          } else {
            sample.rcode = outcome.response->flags.rcode;
            for (const auto& rr : outcome.response->answers) {
              if (rr.type() == qtype && rr.name == qname) {
                sample.has_answer = true;
                sample.ttl = rr.ttl;
                sample.rdata = dns::rdata_to_string(rr.rdata);
                break;
              }
            }
          }
          run.samples_.push_back(std::move(sample));
        });
      }
    }
  }

  simulation.run_until(spec.start + spec.duration + sim::kMinute);
  return run;
}

std::size_t MeasurementRun::timeout_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (sample.timeout) ++count;
  }
  return count;
}

std::size_t MeasurementRun::valid_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) ++count;
  }
  return count;
}

stats::Cdf MeasurementRun::ttl_cdf() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(static_cast<double>(sample.ttl.value()));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms(net::Region region,
                                      const Platform& platform) const {
  std::unordered_map<int, net::Region> probe_region;
  for (const auto& probe : platform.probes()) {
    probe_region[probe.id] = probe.ref.location.region;
  }
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer &&
        probe_region[sample.probe_id] == region) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

}  // namespace dnsttl::atlas
