#include "atlas/measurement.h"

#include <optional>
#include <unordered_map>

#include "check/audit.h"
#include "sim/timer_wheel.h"

namespace dnsttl::atlas {
namespace {

/// Structure-of-arrays VP scheduler: one cohort-wheel entry per vantage
/// point (its next round) instead of one slab-heap node per (VP, round).
///
/// Byte-identity with the historical pre-scheduled path rests on two
/// reservations made in the old nested iteration order (probe-major,
/// resolver-minor, round-minor):
///  - each VP's rounds get a contiguous seq block from
///    Simulation::allocate_seq_block, so round k fires with the exact seq
///    the old code's k-th schedule_at would have drawn, and events other
///    code schedules mid-run see the same global counter value;
///  - each VP records the overall index of its round-0 query, so the
///    uint16 DNS message id (historical `next_id++`, wrapping) reproduces.
class VpSchedule final : public sim::CohortSource {
 public:
  VpSchedule(sim::Simulation& simulation, net::Network& network,
             std::vector<Sample>& samples, const MeasurementSpec& spec)
      : simulation_(simulation),
        network_(network),
        samples_(samples),
        wheel_(simulation.now()),
        start_(spec.start),
        frequency_(spec.frequency),
        qtype_(spec.qtype) {}

  /// Registers one vantage point; rounds_ may be zero (phase past the
  /// measurement window), in which case no wheel entry is created.
  void add_vp(const Probe* probe, net::Address resolver, dns::Name qname,
              sim::Duration phase, std::uint64_t rounds,
              std::uint64_t first_seq, std::uint64_t first_qid_index) {
    probes_.push_back(probe);
    resolvers_.push_back(resolver);
    qnames_.push_back(std::move(qname));
    phases_.push_back(phase);
    rounds_.push_back(rounds);
    next_round_.push_back(0);
    first_seq_.push_back(first_seq);
    first_qid_.push_back(first_qid_index);
  }

  /// Creates the round-0 wheel entry for every VP with rounds to run.
  void seed_rounds() {
    for (std::size_t vp = 0; vp < probes_.size(); ++vp) {
      if (rounds_[vp] > 0) {
        wheel_.schedule(start_ + phases_[vp], first_seq_[vp],
                        static_cast<std::uint64_t>(vp));
        ++live_;
      }
    }
  }

  bool peek(sim::Time& at, std::uint64_t& seq) override {
    if (wheel_.empty()) {
      return false;
    }
    const sim::TimerWheel::Entry& head = wheel_.head();
    at = head.at;
    seq = head.seq;
    return true;
  }

  void fire_until(sim::Time limit_at, std::uint64_t limit_seq) override {
    while (!wheel_.empty()) {
      const sim::TimerWheel::Entry& head = wheel_.head();
      const bool before_limit =
          head.at < limit_at || (head.at == limit_at && head.seq < limit_seq);
      if (!before_limit || simulation_.heap_interrupts(head.at, head.seq)) {
        break;
      }
      const sim::TimerWheel::Entry entry = wheel_.pop_head();
      simulation_.advance_clock(entry.at);
      const auto vp = static_cast<std::size_t>(entry.payload);
      DNSTTL_AUDIT_CHECK("atlas::VpSchedule", vp < probes_.size(),
                         "fired entry references an orphaned VP index");
      fire_round(vp, entry.at);
      if constexpr (check::kAuditEnabled) {
        if (++fires_since_audit_ >= kAuditInterval) {
          fires_since_audit_ = 0;
          validate();
        }
      }
    }
  }

  /// Deep audit: SoA arrays in step, per-VP round progress within bounds,
  /// live-entry accounting against the wheel, wheel invariants.
  void validate() const {
    constexpr const char* kWhat = "atlas::VpSchedule";
    const std::size_t n = probes_.size();
    DNSTTL_AUDIT_CHECK(kWhat,
                       resolvers_.size() == n && qnames_.size() == n &&
                           phases_.size() == n && rounds_.size() == n &&
                           next_round_.size() == n && first_seq_.size() == n &&
                           first_qid_.size() == n,
                       "SoA arrays out of step");
    for (std::size_t vp = 0; vp < n; ++vp) {
      DNSTTL_AUDIT_CHECK(kWhat, next_round_[vp] <= rounds_[vp],
                         "VP " + std::to_string(vp) +
                             " progressed past its round count");
    }
    DNSTTL_AUDIT_CHECK(kWhat, wheel_.pending() == live_,
                       "wheel pending entries disagree with live-VP "
                       "accounting");
    wheel_.validate();
    check::count_audit();
  }

 private:
  static constexpr std::uint64_t kAuditInterval = 4096;

  void fire_round(std::size_t vp, sim::Time at) {
    const std::uint64_t round = next_round_[vp]++;
    const Probe& probe = *probes_[vp];
    const net::Address resolver = resolvers_[vp];
    const dns::Name& qname = qnames_[vp];
    const auto id =
        static_cast<std::uint16_t>(1 + first_qid_[vp] + round);
    auto query = dns::Message::make_query(id, qname, qtype_);
    query.add_edns();
    auto outcome = network_.query(probe.ref, resolver, query, at);

    Sample sample;
    sample.probe_id = probe.id;
    sample.resolver = resolver;
    sample.sent = at;
    sample.rtt = outcome.elapsed;
    if (!outcome.response) {
      sample.timeout = true;
    } else {
      sample.rcode = outcome.response->flags.rcode;
      for (const auto& rr : outcome.response->answers) {
        if (rr.type() == qtype_ && rr.name == qname) {
          sample.has_answer = true;
          sample.ttl = rr.ttl;
          sample.rdata = dns::rdata_to_string(rr.rdata);
          break;
        }
      }
    }
    samples_.push_back(std::move(sample));

    if (round + 1 < rounds_[vp]) {
      wheel_.schedule(start_ + phases_[vp] +
                          frequency_ * static_cast<std::int64_t>(round + 1),
                      first_seq_[vp] + round + 1,
                      static_cast<std::uint64_t>(vp));
    } else {
      --live_;
    }
  }

  sim::Simulation& simulation_;
  net::Network& network_;
  std::vector<Sample>& samples_;
  sim::TimerWheel wheel_;
  sim::Time start_;
  sim::Duration frequency_;
  dns::RRType qtype_;

  // Parallel per-VP arrays (SoA): probe, resolver address, query name,
  // phase inside the period, total rounds, rounds fired, reserved seq
  // block base, overall index of round 0 in the historical qid sequence.
  std::vector<const Probe*> probes_;
  std::vector<net::Address> resolvers_;
  std::vector<dns::Name> qnames_;
  std::vector<sim::Duration> phases_;
  std::vector<std::uint64_t> rounds_;
  std::vector<std::uint64_t> next_round_;
  std::vector<std::uint64_t> first_seq_;
  std::vector<std::uint64_t> first_qid_;

  /// VPs holding a pending wheel entry; equals wheel_.pending() at every
  /// mutation boundary.
  std::size_t live_ = 0;
  std::uint64_t fires_since_audit_ = 0;
};

}  // namespace

MeasurementRun MeasurementRun::execute(sim::Simulation& simulation,
                                       net::Network& network,
                                       Platform& platform,
                                       MeasurementSpec spec, sim::Rng& rng) {
  MeasurementRun run;
  run.spec_ = spec;

  VpSchedule schedule(simulation, network, run.samples_, spec);
  std::uint64_t qid_index = 0;  // historical `next_id` minus the initial 1
  for (auto& probe : platform.probes()) {
    if (!spec.covers_probe(probe.id)) {
      continue;
    }
    dns::Name qname = spec.per_probe_qname
                          ? spec.qname.prepend("p" + std::to_string(probe.id))
                          : spec.qname;
    // Sharded runs draw each probe's phase from a forked per-probe stream,
    // so the schedule is a function of the probe alone, not of which other
    // probes happen to precede it in this shard's iteration.
    std::optional<sim::Rng> probe_rng;
    if (spec.shard_count > 1) {
      probe_rng.emplace(
          rng.fork(static_cast<std::uint64_t>(probe.id)));
    }
    sim::Rng& phase_rng = probe_rng ? *probe_rng : rng;
    for (net::Address resolver : probe.resolvers) {
      // Atlas schedules each VP at a random phase within the period.
      sim::Duration phase = sim::Duration(static_cast<std::int64_t>(
          phase_rng.uniform(0.0, static_cast<double>(spec.frequency.count()))));
      std::uint64_t rounds = 0;
      if (phase < spec.duration) {
        const std::int64_t span = (spec.duration - phase).count();
        rounds = static_cast<std::uint64_t>(
            (span + spec.frequency.count() - 1) / spec.frequency.count());
      }
      const std::uint64_t first_seq = simulation.allocate_seq_block(rounds);
      schedule.add_vp(&probe, resolver, qname, phase, rounds, first_seq,
                      qid_index);
      qid_index += rounds;
    }
  }

  simulation.attach_source(&schedule);
  const std::size_t audit_hook = simulation.add_audit_hook([&schedule] {
    schedule.validate();
  });
  schedule.seed_rounds();
  simulation.run_until(spec.start + spec.duration + sim::kMinute);
  simulation.remove_audit_hook(audit_hook);
  simulation.detach_source(&schedule);
  return run;
}

MeasurementRun MeasurementRun::merge(MeasurementSpec spec,
                                     std::vector<MeasurementRun> shards) {
  MeasurementRun merged;
  spec.shard_count = 1;
  spec.shard_index = 0;
  merged.spec_ = std::move(spec);
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.samples_.size();
  }
  merged.samples_.reserve(total);
  for (auto& shard : shards) {
    for (auto& sample : shard.samples_) {
      merged.samples_.push_back(std::move(sample));
    }
  }
  return merged;
}

std::size_t MeasurementRun::timeout_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (sample.timeout) ++count;
  }
  return count;
}

std::size_t MeasurementRun::valid_count() const {
  std::size_t count = 0;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) ++count;
  }
  return count;
}

stats::Cdf MeasurementRun::ttl_cdf() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(static_cast<double>(sample.ttl.value()));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms() const {
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

stats::Cdf MeasurementRun::rtt_cdf_ms(net::Region region,
                                      const Platform& platform) const {
  std::unordered_map<int, net::Region> probe_region;
  for (const auto& probe : platform.probes()) {
    probe_region[probe.id] = probe.ref.location.region;
  }
  stats::Cdf cdf;
  for (const auto& sample : samples_) {
    if (!sample.timeout && sample.has_answer &&
        probe_region[sample.probe_id] == region) {
      cdf.add(sim::to_milliseconds(sample.rtt));
    }
  }
  return cdf;
}

}  // namespace dnsttl::atlas
