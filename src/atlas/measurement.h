#ifndef DNSTTL_ATLAS_MEASUREMENT_H
#define DNSTTL_ATLAS_MEASUREMENT_H

#include <string>
#include <vector>

#include "atlas/platform.h"
#include "dns/message.h"
#include "sim/simulation.h"
#include "stats/cdf.h"

namespace dnsttl::atlas {

/// One periodic measurement, RIPE-Atlas style: every VP sends the query
/// every `frequency` for `duration`, with a random phase inside the first
/// interval (Atlas spreads probes across the period).
struct MeasurementSpec {
  std::string name;
  dns::Name qname;
  /// When set, the qname becomes "p<probe-id>.<qname>" — the paper's
  /// PROBEID.sub.cachetest.net trick that defeats cross-probe caching.
  bool per_probe_qname = false;
  dns::RRType qtype = dns::RRType::kAAAA;
  sim::Duration frequency = 600 * sim::kSecond;
  sim::Duration duration = 2 * sim::kHour;
  sim::Time start{};
};

/// One VP's observation for one round.
struct Sample {
  int probe_id = 0;
  net::Address resolver;
  sim::Time sent{};
  sim::Duration rtt{};
  bool timeout = false;
  dns::Rcode rcode = dns::Rcode::kNoError;
  bool has_answer = false;
  dns::Ttl ttl{};        ///< answer-section TTL for the queried type
  std::string rdata;       ///< answer identity (e.g. the returned address)
};

/// Executes a measurement over the platform inside a simulation and holds
/// the collected samples with the summaries the paper reports.
class MeasurementRun {
 public:
  /// Schedules all VP queries and runs the simulation to the measurement's
  /// end.  Events already scheduled on @p simulation (zone renumberings,
  /// TTL changes) interleave at their own times.
  static MeasurementRun execute(sim::Simulation& simulation,
                                net::Network& network, Platform& platform,
                                MeasurementSpec spec, sim::Rng& rng);

  const MeasurementSpec& spec() const noexcept { return spec_; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  std::size_t query_count() const noexcept { return samples_.size(); }
  std::size_t timeout_count() const;
  std::size_t response_count() const { return samples_.size() - timeout_count(); }
  /// Responses carrying the expected answer type.
  std::size_t valid_count() const;
  /// Responses that are not valid answers (Table 2's "disc." row).
  std::size_t discarded_count() const { return response_count() - valid_count(); }

  /// TTLs seen in valid answers (Figures 1 and 2).
  stats::Cdf ttl_cdf() const;

  /// Client-side RTT in milliseconds over valid answers (Figures 10/11).
  stats::Cdf rtt_cdf_ms() const;
  /// Same, restricted to probes in one region (Figure 10b).
  stats::Cdf rtt_cdf_ms(net::Region region, const Platform& platform) const;

 private:
  MeasurementSpec spec_;
  std::vector<Sample> samples_;
};

}  // namespace dnsttl::atlas

#endif  // DNSTTL_ATLAS_MEASUREMENT_H
