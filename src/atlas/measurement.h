#ifndef DNSTTL_ATLAS_MEASUREMENT_H
#define DNSTTL_ATLAS_MEASUREMENT_H

#include <string>
#include <vector>

#include "atlas/platform.h"
#include "dns/message.h"
#include "sim/simulation.h"
#include "stats/cdf.h"

namespace dnsttl::atlas {

/// One periodic measurement, RIPE-Atlas style: every VP sends the query
/// every `frequency` for `duration`, with a random phase inside the first
/// interval (Atlas spreads probes across the period).
struct MeasurementSpec {
  std::string name;
  dns::Name qname;
  /// When set, the qname becomes "p<probe-id>.<qname>" — the paper's
  /// PROBEID.sub.cachetest.net trick that defeats cross-probe caching.
  bool per_probe_qname = false;
  dns::RRType qtype = dns::RRType::kAAAA;
  sim::Duration frequency = 600 * sim::kSecond;
  sim::Duration duration = 2 * sim::kHour;
  sim::Time start{};

  /// VP sharding (deterministic parallel execution, see par::).  With
  /// shard_count > 1 only probes with id % shard_count == shard_index are
  /// scheduled, and each probe's query phase comes from an independent
  /// `rng.fork(probe.id)` stream instead of sequential draws, so a probe's
  /// schedule does not depend on which other probes share its shard.  Runs
  /// from different shards of identically-built worlds merge with
  /// MeasurementRun::merge.  shard_count == 1 is byte-identical to the
  /// historical serial path.
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;

  bool covers_probe(int probe_id) const noexcept {
    return shard_count <= 1 ||
           static_cast<std::size_t>(probe_id) % shard_count == shard_index;
  }
};

/// One VP's observation for one round.
struct Sample {
  int probe_id = 0;
  net::Address resolver;
  sim::Time sent{};
  sim::Duration rtt{};
  bool timeout = false;
  dns::Rcode rcode = dns::Rcode::kNoError;
  bool has_answer = false;
  dns::Ttl ttl{};        ///< answer-section TTL for the queried type
  std::string rdata;       ///< answer identity (e.g. the returned address)
};

/// Executes a measurement over the platform inside a simulation and holds
/// the collected samples with the summaries the paper reports.
class MeasurementRun {
 public:
  /// Schedules all VP queries and runs the simulation to the measurement's
  /// end.  Events already scheduled on @p simulation (zone renumberings,
  /// TTL changes) interleave at their own times.
  static MeasurementRun execute(sim::Simulation& simulation,
                                net::Network& network, Platform& platform,
                                MeasurementSpec spec, sim::Rng& rng);

  /// Stitches per-shard runs back into one run: samples are concatenated
  /// strictly in the order given (shard-index order), which keeps the
  /// merged sample stream — and everything derived from it — byte-identical
  /// at any job count.  The merged spec is @p spec with sharding cleared.
  static MeasurementRun merge(MeasurementSpec spec,
                              std::vector<MeasurementRun> shards);

  const MeasurementSpec& spec() const noexcept { return spec_; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  std::size_t query_count() const noexcept { return samples_.size(); }
  std::size_t timeout_count() const;
  std::size_t response_count() const { return samples_.size() - timeout_count(); }
  /// Responses carrying the expected answer type.
  std::size_t valid_count() const;
  /// Responses that are not valid answers (Table 2's "disc." row).
  std::size_t discarded_count() const { return response_count() - valid_count(); }

  /// TTLs seen in valid answers (Figures 1 and 2).
  stats::Cdf ttl_cdf() const;

  /// Client-side RTT in milliseconds over valid answers (Figures 10/11).
  stats::Cdf rtt_cdf_ms() const;
  /// Same, restricted to probes in one region (Figure 10b).
  stats::Cdf rtt_cdf_ms(net::Region region, const Platform& platform) const;

 private:
  MeasurementSpec spec_;
  std::vector<Sample> samples_;
};

}  // namespace dnsttl::atlas

#endif  // DNSTTL_ATLAS_MEASUREMENT_H
