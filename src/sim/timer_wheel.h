#ifndef DNSTTL_SIM_TIMER_WHEEL_H
#define DNSTTL_SIM_TIMER_WHEEL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dnsttl::sim {

/// Hierarchical timer wheel: batched scheduling for dense cohorts of
/// homogeneous actors (see docs/architecture.md §Workload engine).
///
/// The slab-heap inside sim::Simulation pays one 4-ary-heap node, one slab
/// slot and one EventFn per pending event.  That is the right shape for the
/// protocol layer (sparse, heterogeneous timers), but a million stubs that
/// all hold exactly one pending "next query" timer want the inverse layout:
/// the *engine* owns a SoA pool of per-actor state, and the scheduler only
/// needs to answer "which actor indices are due in this tick".  A wheel slot
/// therefore stores a cohort of (time, seq, payload) entries — payload is an
/// index into the caller's pool, not a callable — and firing a slot hands
/// the whole cohort back in one batch.
///
/// Layout: two levels of 1024 slots over a fixed tick (default one second),
/// plus a far heap.  Level 0 covers the next 1024 ticks exactly (one slot
/// per tick), level 1 the next ~2^20 ticks at 1024-tick granularity, and
/// anything beyond that waits in a 4-ary min-heap ordered by (time, seq) —
/// the "slab heap stays for sparse/far events" half of the design.  Entries
/// cascade toward level 0 as the wheel turns and are never scanned while
/// they sit in a far level.
///
/// Ordering contract: the wheel fires entries in exactly the strict
/// (time, seq) total order that Simulation's slab heap uses.  Sequence
/// numbers are supplied by the caller — cohort engines draw them from
/// Simulation::allocate_seq() — so wheel entries and heap events interleave
/// into one global deterministic order; the differential oracle test in
/// tests/sim_test.cc pins the equivalence over fuzzed traces.  Within a
/// slot, the cohort is materialized (sorted) once when the slot comes due;
/// entries scheduled *into the active slot while it fires* (zero-gap
/// reschedules) are merged at their correct (time, seq) position.
///
/// Monotonicity: schedule() requires `at` not earlier than the entry
/// currently at the head (callers schedule from a monotone virtual clock,
/// exactly as Simulation::schedule_at requires `at >= now()`), and `seq`
/// values must be unique.
class TimerWheel {
 public:
  struct Entry {
    Time at;
    std::uint64_t seq = 0;
    /// Caller-owned meaning; cohort engines store a pool index here.
    std::uint64_t payload = 0;
  };

  explicit TimerWheel(Time start = Time{}, Duration tick = kSecond);

  /// Enqueues (at, seq, payload).  `at` must not precede the wheel's
  /// current position (the tick of the last materialized cohort).
  void schedule(Time at, std::uint64_t seq, std::uint64_t payload);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

  /// The earliest pending entry under the strict (time, seq) order.
  /// Requires !empty().  Amortized O(1): materializing the head cohort
  /// sorts one slot; subsequent peeks and pops walk the sorted batch.
  [[nodiscard]] const Entry& head();

  /// Pops and returns the earliest pending entry.  Requires !empty().
  Entry pop_head();

  /// Deep structural audit: slot-residency invariants on both levels,
  /// occupancy-bitmap agreement, far-heap order, active-cohort sort order,
  /// pending-count accounting and (time, seq) consistency.  Throws
  /// check::AuditError on violation.  Compiled in every build; cohort
  /// engines call it from DNSTTL_AUDIT mutation-boundary hooks.
  void validate() const;

 private:
  static constexpr std::size_t kSlots = 1024;           // per level
  static constexpr std::size_t kSlotMask = kSlots - 1;  // tick -> slot
  static constexpr unsigned kLevelShift = 10;           // log2(kSlots)
  /// Ticks covered by level 0 + level 1; beyond this lives the far heap.
  static constexpr std::int64_t kWheelSpan =
      static_cast<std::int64_t>(kSlots) * static_cast<std::int64_t>(kSlots);

  [[nodiscard]] std::int64_t tick_of(Time t) const noexcept {
    return t.since_epoch() / tick_;
  }
  static bool entry_before(const Entry& a, const Entry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  void place(const Entry& entry);
  void far_push(const Entry& entry);
  Entry far_pop();
  /// Moves far-heap entries that now fit the two wheel levels in-window.
  void pull_far();
  /// Positions cur_tick_ on the lowest tick with a level-0 cohort,
  /// cascading level-1 slots and the far heap as boundaries are crossed.
  /// Requires pending entries outside the active cohort.
  void advance_to_cohort();
  /// Sorts the due cohort into scratch_; requires !empty().
  void materialize();

  Duration tick_;
  std::int64_t cur_tick_ = 0;  ///< lowest tick that may still hold entries

  std::array<std::vector<Entry>, kSlots> level0_;
  std::array<std::vector<Entry>, kSlots> level1_;
  /// Occupancy bitmaps (one bit per slot) so the advance scan skips empty
  /// runs a word at a time.
  std::array<std::uint64_t, kSlots / 64> level0_bits_{};
  std::array<std::uint64_t, kSlots / 64> level1_bits_{};
  /// 4-ary min-heap by (time, seq) for entries beyond the wheel span.
  std::vector<Entry> far_;

  /// Materialized head cohort, sorted ascending by (time, seq).
  std::vector<Entry> scratch_;
  std::size_t scratch_idx_ = 0;
  std::int64_t active_tick_ = 0;
  bool active_ = false;

  std::size_t pending_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_TIMER_WHEEL_H
