#include "sim/simulation.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace dnsttl::sim {

std::string format_time(Time t) {
  std::int64_t total_seconds = t / kSecond;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                static_cast<long long>(total_seconds / 3600),
                static_cast<long long>((total_seconds / 60) % 60),
                static_cast<long long>(total_seconds % 60));
  return buf;
}

void Simulation::throw_scheduled_in_past() {
  throw std::invalid_argument("cannot schedule an event in the past");
}

void Simulation::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.occupied = false;
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

Simulation::Event Simulation::heap_pop() {
  Event min = heap_.front();
  Event last = heap_.back();
  heap_.pop_back();
  std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      std::size_t first = (i << 2) + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t child = first + 1; child < end; ++child) {
        if (before(heap_[child], heap_[best])) {
          best = child;
        }
      }
      if (!before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return min;
}

std::uint64_t Simulation::schedule_at(Time at, Handler handler) {
  if (at < now_) {
    throw_scheduled_in_past();
  }
  std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(handler);
  heap_push(Event{at, next_seq_++, index, slot.generation});
  return (static_cast<std::uint64_t>(slot.generation) << 32) | index;
}

std::uint64_t Simulation::schedule_after(Duration delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulation::cancel(std::uint64_t event_id) {
  std::uint32_t index = static_cast<std::uint32_t>(event_id & 0xffffffffu);
  std::uint32_t generation = static_cast<std::uint32_t>(event_id >> 32);
  if (index >= slots_.size() || !slots_[index].occupied ||
      slots_[index].generation != generation) {
    return false;
  }
  release_slot(index);
  ++cancelled_;
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    Event ev = heap_pop();
    Slot& slot = slots_[ev.slot];
    if (!slot.occupied || slot.generation != ev.generation) {
      --cancelled_;  // was cancelled; skip
      continue;
    }
    now_ = ev.at;
    EventFn handler = std::move(slot.fn);
    // Free the slot before running: the handler may schedule new events and
    // reuse it (under a new generation).
    release_slot(ev.slot);
    ++processed_;
    handler.invoke_consume();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time deadline) {
  while (!heap_.empty() && heap_.front().at <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace dnsttl::sim
