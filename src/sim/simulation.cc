#include "sim/simulation.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace dnsttl::sim {

std::string format_time(Time t) {
  std::int64_t total_seconds = t.since_epoch() / kSecond;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                static_cast<long long>(total_seconds / 3600),
                static_cast<long long>((total_seconds / 60) % 60),
                static_cast<long long>(total_seconds % 60));
  return buf;
}

void Simulation::throw_scheduled_in_past() {
  throw std::invalid_argument("cannot schedule an event in the past");
}

void Simulation::throw_clock_backwards() {
  throw std::invalid_argument("cohort source advanced the clock backwards");
}

void Simulation::detach_source(CohortSource* source) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] == source) {
      sources_.erase(sources_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void Simulation::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.occupied = false;
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

Simulation::Event Simulation::heap_pop() {
  Event min = heap_.front();
  Event last = heap_.back();
  heap_.pop_back();
  std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      std::size_t first = (i << 2) + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t child = first + 1; child < end; ++child) {
        if (before(heap_[child], heap_[best])) {
          best = child;
        }
      }
      if (!before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return min;
}

std::uint64_t Simulation::schedule_at(Time at, Handler handler) {
  if (at < now_) {
    throw_scheduled_in_past();
  }
  std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(handler);
  heap_push(Event{at, next_seq_++, index, slot.generation});
  return (static_cast<std::uint64_t>(slot.generation) << 32) | index;
}

std::uint64_t Simulation::schedule_after(Duration delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulation::cancel(std::uint64_t event_id) {
  std::uint32_t index = static_cast<std::uint32_t>(event_id & 0xffffffffu);
  std::uint32_t generation = static_cast<std::uint32_t>(event_id >> 32);
  if (index >= slots_.size() || !slots_[index].occupied ||
      slots_[index].generation != generation) {
    return false;
  }
  release_slot(index);
  ++cancelled_;
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    Event ev = heap_pop();
    Slot& slot = slots_[ev.slot];
    if (!slot.occupied || slot.generation != ev.generation) {
      --cancelled_;  // was cancelled; skip
      continue;
    }
    now_ = ev.at;
    EventFn handler = std::move(slot.fn);
    // Free the slot before running: the handler may schedule new events and
    // reuse it (under a new generation).
    release_slot(ev.slot);
    ++processed_;
    handler.invoke_consume();
    if constexpr (check::kAuditEnabled) {
      if (--audit_countdown_ == 0) {
        audit_countdown_ = audit_interval_;
        run_audit();
      }
    }
    return true;
  }
  return false;
}

void Simulation::run_audit() const {
  validate();
  for (const auto& hook : audit_hooks_) {
    if (hook) {
      hook();
    }
  }
}

void Simulation::validate() const {
  constexpr const char* kWhat = "sim::Simulation";
  const std::size_t n = heap_.size();

  // 4-ary min-heap order under the strict (at, seq) total order, and no
  // event scheduled before the current virtual time.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = (i - 1) >> 2;
    DNSTTL_AUDIT_CHECK(kWhat, !before(heap_[i], heap_[parent]),
                       "heap order violated at index " + std::to_string(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    DNSTTL_AUDIT_CHECK(kWhat, heap_[i].at >= now_,
                       "pending event at index " + std::to_string(i) +
                           " is scheduled before now");
    DNSTTL_AUDIT_CHECK(kWhat, heap_[i].seq < next_seq_,
                       "event sequence number from the future at index " +
                           std::to_string(i));
  }

  // Slab free list: every reachable slot is unoccupied, the walk terminates
  // (no cycle), and together occupied + free cover the slab exactly.
  std::size_t occupied = 0;
  for (const Slot& slot : slots_) {
    if (slot.occupied) {
      ++occupied;
      DNSTTL_AUDIT_CHECK(kWhat, static_cast<bool>(slot.fn),
                         "occupied slot holds an empty handler");
    }
  }
  std::vector<bool> on_free_list(slots_.size(), false);
  std::size_t free_count = 0;
  for (std::uint32_t index = free_head_; index != kNilSlot;
       index = slots_[index].next_free) {
    DNSTTL_AUDIT_CHECK(kWhat, index < slots_.size(),
                       "free-list index out of range: " +
                           std::to_string(index));
    DNSTTL_AUDIT_CHECK(kWhat, !on_free_list[index],
                       "free-list cycle through slot " + std::to_string(index));
    DNSTTL_AUDIT_CHECK(kWhat, !slots_[index].occupied,
                       "occupied slot " + std::to_string(index) +
                           " reachable from the free list");
    on_free_list[index] = true;
    ++free_count;
  }
  DNSTTL_AUDIT_CHECK(kWhat, occupied + free_count == slots_.size(),
                     "slot leak: " + std::to_string(occupied) + " occupied + " +
                         std::to_string(free_count) + " free != " +
                         std::to_string(slots_.size()) + " slots");

  // Generation agreement: every occupied slot is referenced by exactly one
  // live heap event, and every other heap event is a cancelled leftover
  // accounted for by cancelled_.
  std::vector<std::uint32_t> refs(slots_.size(), 0);
  std::size_t stale = 0;
  for (const Event& ev : heap_) {
    DNSTTL_AUDIT_CHECK(kWhat, ev.slot < slots_.size(),
                       "heap event references slot out of range");
    const Slot& slot = slots_[ev.slot];
    if (slot.occupied && slot.generation == ev.generation) {
      ++refs[ev.slot];
    } else {
      ++stale;
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].occupied) {
      DNSTTL_AUDIT_CHECK(kWhat, refs[i] == 1,
                         "occupied slot " + std::to_string(i) +
                             " referenced by " + std::to_string(refs[i]) +
                             " live events (want exactly 1)");
    }
  }
  DNSTTL_AUDIT_CHECK(kWhat, stale == cancelled_,
                     "cancelled-event accounting: " + std::to_string(stale) +
                         " stale heap events vs cancelled_ = " +
                         std::to_string(cancelled_));
  check::count_audit();
}

void Simulation::run() {
  if (sources_.empty()) {
    while (step()) {
    }
    return;
  }
  // Drain heap and sources completely without bumping now_ past the last
  // fired event (run_until's deadline semantics do not apply here).
  run_mixed(Time(INT64_MAX));
}

void Simulation::run_until(Time deadline) {
  if (sources_.empty()) {
    while (!heap_.empty() && heap_.front().at <= deadline) {
      step();
    }
  } else {
    run_mixed(deadline);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulation::run_mixed(Time deadline) {
  for (;;) {
    prune_stale_front();
    // Pick the source with the globally earliest head; every other pending
    // head (including the displaced previous best) tightens the strict
    // (time, seq) limit the chosen source may fire up to.  The slab-heap
    // bound is dynamic — fired entries may schedule new heap events — so
    // sources re-check heap_interrupts per entry instead.
    CohortSource* best = nullptr;
    Time best_at;
    std::uint64_t best_seq = 0;
    Time limit_at = deadline;
    std::uint64_t limit_seq = UINT64_MAX;
    for (CohortSource* source : sources_) {
      Time at;
      std::uint64_t seq = 0;
      if (!source->peek(at, seq)) {
        continue;
      }
      if (best == nullptr || at < best_at ||
          (at == best_at && seq < best_seq)) {
        if (best != nullptr &&
            (best_at < limit_at ||
             (best_at == limit_at && best_seq < limit_seq))) {
          limit_at = best_at;
          limit_seq = best_seq;
        }
        best = source;
        best_at = at;
        best_seq = seq;
      } else if (at < limit_at || (at == limit_at && seq < limit_seq)) {
        limit_at = at;
        limit_seq = seq;
      }
    }
    const bool heap_ready = !heap_.empty() && heap_.front().at <= deadline;
    const bool source_ready = best != nullptr && best_at <= deadline;
    if (source_ready &&
        (!heap_ready ||
         before(Event{best_at, best_seq, 0, 0}, heap_.front()))) {
      best->fire_until(limit_at, limit_seq);
      continue;
    }
    if (heap_ready) {
      step();
      continue;
    }
    return;
  }
}

}  // namespace dnsttl::sim
