#include "sim/simulation.h"

#include <cstdio>
#include <stdexcept>

namespace dnsttl::sim {

std::string format_time(Time t) {
  std::int64_t total_seconds = t / kSecond;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                static_cast<long long>(total_seconds / 3600),
                static_cast<long long>((total_seconds / 60) % 60),
                static_cast<long long>(total_seconds % 60));
  return buf;
}

std::uint64_t Simulation::schedule_at(Time at, Handler handler) {
  if (at < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  std::uint64_t id = next_seq_++;
  queue_.push(Event{at, id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

std::uint64_t Simulation::schedule_after(Duration delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulation::cancel(std::uint64_t event_id) {
  if (handlers_.erase(event_id) > 0) {
    ++cancelled_;
    return true;
  }
  return false;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = handlers_.find(ev.seq);
    if (it == handlers_.end()) {
      --cancelled_;  // was cancelled; skip
      continue;
    }
    now_ = ev.at;
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    handler();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace dnsttl::sim
