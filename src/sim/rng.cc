#include "sim/rng.h"

#include <numbers>
#include <stdexcept>

namespace dnsttl::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("uniform_int: lo > hi");
  }
  std::uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return next();
  }
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t value;
  do {
    value = next();
  } while (value >= limit);
  return lo + value % span;
}

bool Rng::chance(double probability) { return uniform() < probability; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("weighted_index: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: weights sum to zero");
  }
  double target = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Derive a child seed from our original seed and the stream id so that
  // forked streams are stable regardless of how much the parent was used.
  std::uint64_t mix = seed_ ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng{splitmix64(mix)};
}

}  // namespace dnsttl::sim
