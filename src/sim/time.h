#ifndef DNSTTL_SIM_TIME_H
#define DNSTTL_SIM_TIME_H

#include <cstdint>
#include <string>

namespace dnsttl::sim {

/// Virtual time: microseconds since experiment start.  Integral so that
/// event ordering is exact and runs are reproducible.
using Time = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

constexpr Duration milliseconds(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// "h:mm:ss" rendering for logs.
std::string format_time(Time t);

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_TIME_H
