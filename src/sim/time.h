#ifndef DNSTTL_SIM_TIME_H
#define DNSTTL_SIM_TIME_H

#include <cstdint>
#include <string>
#include <type_traits>

#include "check/audit.h"

namespace dnsttl::sim {

/// Unit-safe virtual time (see docs/architecture.md §Static analysis).
///
/// The simulator's base tick is one microsecond, cache TTLs are seconds and
/// network latencies are milliseconds; before this layer existed all three
/// travelled as bare int64/uint32 and a seconds-for-microseconds mixup
/// compiled silently.  `Duration` (a span) and `SimTime` (a point on the
/// virtual clock) are now distinct wrapper types: construction from a raw
/// integer is explicit, unit-named factories (`seconds(5)`,
/// `milliseconds(30)`) are the normal spelling, and cross-type arithmetic
/// only exists where it is meaningful (time − time = duration, time +
/// duration = time).  Arithmetic is overflow-checked: audit builds trap
/// (check::AuditError), non-audit builds wrap deterministically in two's
/// complement so a release overflow is at least reproducible.
namespace internal {

/// Throws under the audit preset; never returns.  Kept header-inline so
/// sim/time.h stays usable from every library without a link dependency.
[[noreturn]] inline void overflow_trap(const char* op, std::int64_t a,
                                       std::int64_t b) {
  throw check::AuditError(std::string("sim time arithmetic overflow: ") + op +
                          " with operands " + std::to_string(a) + " and " +
                          std::to_string(b));
}

constexpr std::int64_t checked_add(std::int64_t a, std::int64_t b,
                                   const char* op) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    if constexpr (check::kAuditEnabled) {
      overflow_trap(op, a, b);
    }
    // Fall through with the wrapped (two's-complement) value already in r:
    // deterministic, reproducible with the same seed.
  }
  return r;
}

constexpr std::int64_t checked_sub(std::int64_t a, std::int64_t b,
                                   const char* op) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    if constexpr (check::kAuditEnabled) {
      overflow_trap(op, a, b);
    }
  }
  return r;
}

constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b,
                                   const char* op) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    if constexpr (check::kAuditEnabled) {
      overflow_trap(op, a, b);
    }
  }
  return r;
}

}  // namespace internal

/// A span of virtual time.  Internally integral microseconds so that event
/// ordering is exact and runs are reproducible; use count() only at
/// serialization boundaries, unit factories everywhere else.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  /// Raw-tick (microsecond) construction.  Explicit on purpose: call sites
  /// should almost always prefer a unit-named factory.
  constexpr explicit Duration(std::int64_t microsecond_ticks) noexcept
      : us_(microsecond_ticks) {}

  /// Microsecond tick count.  The escape hatch to raw integers; arithmetic
  /// on the result is outside the checked-unit regime.
  [[nodiscard]] constexpr std::int64_t count() const noexcept { return us_; }

  [[nodiscard]] friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(internal::checked_add(a.us_, b.us_, "Duration+Duration"));
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(internal::checked_sub(a.us_, b.us_, "Duration-Duration"));
  }
  [[nodiscard]] constexpr Duration operator-() const {
    return Duration(internal::checked_sub(0, us_, "-Duration"));
  }
  [[nodiscard]] friend constexpr Duration operator*(Duration d,
                                                    std::int64_t k) {
    return Duration(internal::checked_mul(d.us_, k, "Duration*int"));
  }
  [[nodiscard]] friend constexpr Duration operator*(std::int64_t k,
                                                    Duration d) {
    return d * k;
  }
  [[nodiscard]] friend constexpr Duration operator/(Duration d,
                                                    std::int64_t k) {
    return Duration(d.us_ / k);
  }
  /// Ratio of two spans (e.g. remaining / kSecond for whole seconds).
  [[nodiscard]] friend constexpr std::int64_t operator/(Duration a,
                                                        Duration b) {
    return a.us_ / b.us_;
  }
  [[nodiscard]] friend constexpr Duration operator%(Duration a, Duration b) {
    return Duration(a.us_ % b.us_);
  }

  constexpr Duration& operator+=(Duration other) {
    us_ = internal::checked_add(us_, other.us_, "Duration+=Duration");
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    us_ = internal::checked_sub(us_, other.us_, "Duration-=Duration");
    return *this;
  }
  constexpr Duration& operator*=(std::int64_t k) {
    us_ = internal::checked_mul(us_, k, "Duration*=int");
    return *this;
  }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;

  /// Extremal spans, chrono-style.  Spelled as members because the generic
  /// std::numeric_limits<Duration> is NOT specialized and silently yields
  /// Duration() — use these instead of numeric_limits.
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration(INT64_MAX);
  }
  [[nodiscard]] static constexpr Duration min() noexcept {
    return Duration(INT64_MIN);
  }

 private:
  std::int64_t us_ = 0;
};

/// A point on the virtual clock: microseconds since experiment start.
/// Points and spans do not mix: SimTime + SimTime does not exist, and
/// SimTime − SimTime yields a Duration.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  /// Raw-tick construction (microseconds since epoch); explicit on purpose.
  constexpr explicit SimTime(std::int64_t microsecond_ticks) noexcept
      : us_(microsecond_ticks) {}

  [[nodiscard]] static constexpr SimTime epoch() noexcept { return {}; }

  /// Microsecond tick count since epoch (serialization escape hatch).
  [[nodiscard]] constexpr std::int64_t ticks() const noexcept { return us_; }

  [[nodiscard]] constexpr Duration since_epoch() const noexcept {
    return Duration(us_);
  }

  [[nodiscard]] friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime(
        internal::checked_add(t.us_, d.count(), "SimTime+Duration"));
  }
  [[nodiscard]] friend constexpr SimTime operator+(Duration d, SimTime t) {
    return t + d;
  }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime(
        internal::checked_sub(t.us_, d.count(), "SimTime-Duration"));
  }
  [[nodiscard]] friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration(internal::checked_sub(a.us_, b.us_, "SimTime-SimTime"));
  }

  constexpr SimTime& operator+=(Duration d) {
    us_ = internal::checked_add(us_, d.count(), "SimTime+=Duration");
    return *this;
  }
  constexpr SimTime& operator-=(Duration d) {
    us_ = internal::checked_sub(us_, d.count(), "SimTime-=Duration");
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

 private:
  std::int64_t us_ = 0;
};

/// Scaling a span by a floating factor truncates; that needs the
/// approx_scale() spelling so the truncation is visible at the call site.
/// (Constrained templates so they match float/double exactly without making
/// `d * 2` ambiguous.)
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration operator*(Duration, F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration operator*(F, Duration) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration operator/(Duration, F) = delete;

/// Historical spelling; the event loop and every subsystem use sim::Time
/// for clock readings.
using Time = SimTime;

/// The point @p d after the epoch — the usual way to name an absolute
/// experiment timestamp: `run_until(sim::at(2 * sim::kDay))`.
[[nodiscard]] constexpr SimTime at(Duration d) noexcept {
  return SimTime(d.count());
}

inline constexpr Duration kMicrosecond{1};
inline constexpr Duration kMillisecond{1000};
inline constexpr Duration kSecond{1000 * 1000};
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// Exact unit-named factories.  Integer-only: passing a double is a
/// compile error (deleted overloads below) — fractional quantities must use
/// the approx_ spellings, which make the truncation explicit.
[[nodiscard]] constexpr Duration microseconds(std::int64_t n) noexcept {
  return Duration(n);
}
[[nodiscard]] constexpr Duration milliseconds(std::int64_t n) {
  return Duration(internal::checked_mul(n, kMillisecond.count(),
                                        "milliseconds(int)"));
}
[[nodiscard]] constexpr Duration seconds(std::int64_t n) {
  return Duration(internal::checked_mul(n, kSecond.count(), "seconds(int)"));
}
[[nodiscard]] constexpr Duration minutes(std::int64_t n) {
  return Duration(internal::checked_mul(n, kMinute.count(), "minutes(int)"));
}
[[nodiscard]] constexpr Duration hours(std::int64_t n) {
  return Duration(internal::checked_mul(n, kHour.count(), "hours(int)"));
}
[[nodiscard]] constexpr Duration days(std::int64_t n) {
  return Duration(internal::checked_mul(n, kDay.count(), "days(int)"));
}
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration microseconds(F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration milliseconds(F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration seconds(F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration minutes(F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration hours(F) = delete;
template <typename F, typename = std::enable_if_t<std::is_floating_point_v<F>>>
constexpr Duration days(F) = delete;

/// Fractional factories: truncate toward zero exactly like the historical
/// `static_cast<Duration>(x * kUnit)` did, but say so in their name.
[[nodiscard]] constexpr Duration approx_milliseconds(double ms) {
  return Duration(
      static_cast<std::int64_t>(ms * static_cast<double>(kMillisecond.count())));
}
[[nodiscard]] constexpr Duration approx_seconds(double s) {
  return Duration(
      static_cast<std::int64_t>(s * static_cast<double>(kSecond.count())));
}

/// Scales a span by a floating factor, truncating toward zero.
[[nodiscard]] constexpr Duration approx_scale(Duration d, double factor) {
  return Duration(
      static_cast<std::int64_t>(static_cast<double>(d.count()) * factor));
}

[[nodiscard]] constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) /
         static_cast<double>(kMillisecond.count());
}
[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) /
         static_cast<double>(kSecond.count());
}

/// "h:mm:ss" rendering for logs.
std::string format_time(Time t);

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_TIME_H
