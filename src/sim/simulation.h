#ifndef DNSTTL_SIM_SIMULATION_H
#define DNSTTL_SIM_SIMULATION_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace dnsttl::sim {

/// Discrete-event simulation core: a virtual clock plus an event queue.
///
/// All network transmission, cache expiry and measurement scheduling in the
/// library run on one Simulation instance; nothing reads wall-clock time.
/// Events at equal timestamps run in scheduling (FIFO) order, which makes
/// every experiment deterministic given a fixed Rng seed.
class Simulation {
 public:
  using Handler = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedules @p handler at absolute virtual time @p at (>= now).
  /// Returns an event id usable with cancel().
  std::uint64_t schedule_at(Time at, Handler handler);

  /// Schedules @p handler @p delay after the current time.
  std::uint64_t schedule_after(Duration delay, Handler handler);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool cancel(std::uint64_t event_id);

  /// Runs until the queue is empty.
  void run();

  /// Runs events with time <= @p deadline, then sets now to the deadline.
  void run_until(Time deadline);

  std::size_t pending() const noexcept { return queue_.size() - cancelled_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    // Handlers are stored out-of-line so cancel() is O(1).
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  bool step();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t cancelled_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // seq -> handler; erased entries mean the event was cancelled.
  std::unordered_map<std::uint64_t, Handler> handlers_;
};

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_SIMULATION_H
