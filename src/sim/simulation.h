#ifndef DNSTTL_SIM_SIMULATION_H
#define DNSTTL_SIM_SIMULATION_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/audit.h"
#include "sim/time.h"

namespace dnsttl::sim {

/// Move-only `void()` callable with a small-buffer optimization: captures up
/// to kInlineSize bytes live inside the object, so scheduling the common
/// event lambda performs no heap allocation (std::function allocated for
/// anything beyond two pointers of capture on most ABIs).
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors
                    // std::function's converting constructor.
    emplace(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs @p f in place.
  /// Inlined at call sites, this compiles down to a plain member copy for
  /// small captures — no virtual dispatch on the scheduling path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      // lint:allow(raw-new) EventFn IS the owner: oversized callables spill
      // to the heap and the vtable below is the matching deleter.
      heap_ = new Fn(std::forward<F>(f));
      vt_ = &heap_vtable<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(storage()); }

  /// Invokes the callable and destroys it in one virtual dispatch; the
  /// object is empty afterwards.  The event loop's fire path uses this to
  /// save an indirect call over operator() followed by the destructor.
  void invoke_consume() {
    const VTable* vt = vt_;
    vt_ = nullptr;
    vt->invoke_destroy(storage_for(vt));
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage());
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// invoke() followed by destroy(), fused.
    void (*invoke_destroy)(void*);
    /// Move-constructs into @p dst from @p src and destroys @p src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool stores_inline;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) {
        Fn* fn = static_cast<Fn*>(p);
        (*fn)();
        fn->~Fn();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* p) {
        Fn* fn = *static_cast<Fn**>(p);
        (*fn)();
        delete fn;  // lint:allow(raw-new) deleter half of EventFn's heap path
      },
      [](void* dst, void* src) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      // lint:allow(raw-new) deleter half of EventFn's heap path
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
      false,
  };

  void* storage_for(const VTable* vt) noexcept {
    return !vt->stores_inline ? static_cast<void*>(&heap_)
                              : static_cast<void*>(buf_);
  }

  void* storage() noexcept {
    return vt_ != nullptr ? storage_for(vt_) : static_cast<void*>(buf_);
  }

  void move_from(EventFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage(), other.storage());
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  union {
    void* heap_;
    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  };
};

/// Batched event source driven by the Simulation run loop.
///
/// A source owns its own pending entries — typically a sim::TimerWheel over
/// a structure-of-arrays pool — but draws sequence numbers from the
/// simulation's global counter (allocate_seq / allocate_seq_block), so
/// source entries and slab-heap events interleave into one strict
/// (time, seq) total order.  The slab heap stays the scheduler for sparse,
/// heterogeneous timers; sources take over the dense homogeneous hot path
/// (one pending "next query" timer per stub) without a heap node per actor.
class CohortSource {
 public:
  CohortSource() = default;
  CohortSource(const CohortSource&) = delete;
  CohortSource& operator=(const CohortSource&) = delete;
  virtual ~CohortSource() = default;

  /// Reports the earliest pending (time, seq), if any.
  virtual bool peek(Time& at, std::uint64_t& seq) = 0;

  /// Fires pending entries in (time, seq) order while they sort strictly
  /// before (limit_at, limit_seq) AND the simulation's earliest slab-heap
  /// event does not sort first — re-checked per entry through
  /// Simulation::heap_interrupts, because a fired entry may schedule new
  /// heap events.  Implementations call Simulation::advance_clock before
  /// running each entry, and may schedule into the slab heap or back into
  /// this source; scheduling into a *different* attached source from inside
  /// fire_until is not supported.
  virtual void fire_until(Time limit_at, std::uint64_t limit_seq) = 0;
};

/// Discrete-event simulation core: a virtual clock plus an event queue.
///
/// All network transmission, cache expiry and measurement scheduling in the
/// library run on one Simulation instance; nothing reads wall-clock time.
/// Events at equal timestamps run in scheduling (FIFO) order, which makes
/// every experiment deterministic given a fixed Rng seed.
///
/// Handlers live in a slab with an intrusive free list: scheduling reuses a
/// slot instead of hitting the allocator, and cancel() stays O(1) through
/// per-slot generation counters (an event id embeds slot index + generation,
/// so a recycled slot cannot be cancelled through a stale id).
class Simulation {
 public:
  using Handler = EventFn;

  Time now() const noexcept { return now_; }

  /// Schedules @p handler at absolute virtual time @p at (>= now).
  /// Returns an event id usable with cancel().
  std::uint64_t schedule_at(Time at, Handler handler);

  /// Schedules @p handler @p delay after the current time.
  std::uint64_t schedule_after(Duration delay, Handler handler);

  /// Callable overloads: construct the handler directly inside its slab
  /// slot.  Fully inlined, the schedule path performs no virtual dispatch
  /// and (for captures within EventFn::kInlineSize) no allocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  std::uint64_t schedule_at(Time at, F&& f) {
    if (at < now_) {
      throw_scheduled_in_past();
    }
    std::uint32_t index = acquire_slot();
    Slot& slot = slots_[index];
    slot.fn.emplace(std::forward<F>(f));
    heap_push(Event{at, next_seq_++, index, slot.generation});
    return (static_cast<std::uint64_t>(slot.generation) << 32) | index;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  std::uint64_t schedule_after(Duration delay, F&& f) {
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool cancel(std::uint64_t event_id);

  /// Runs until the queue (and every attached cohort source) is empty.
  void run();

  /// Runs events with time <= @p deadline, then sets now to the deadline.
  /// Attached cohort sources fire interleaved with heap events in global
  /// (time, seq) order.
  void run_until(Time deadline);

  /// Attaches a cohort source for the duration of a run; the caller keeps
  /// ownership and must detach before the source is destroyed.
  void attach_source(CohortSource* source) { sources_.push_back(source); }
  void detach_source(CohortSource* source);

  /// Allocates one sequence number from the global schedule-order counter.
  /// Cohort sources stamp their entries with these so they interleave with
  /// slab-heap events deterministically.
  std::uint64_t allocate_seq() noexcept { return next_seq_++; }

  /// Reserves @p n consecutive sequence numbers, returning the first.
  /// Engines that pre-plan an actor's whole firing series (one entry live
  /// at a time) reserve its block up front and address it by round index.
  std::uint64_t allocate_seq_block(std::uint64_t n) noexcept {
    const std::uint64_t first = next_seq_;
    next_seq_ += n;
    return first;
  }

  /// Advances the virtual clock to @p t; cohort sources call this before
  /// running each fired entry.  @p t must not precede now().
  void advance_clock(Time t) {
    if (t < now_) {
      throw_clock_backwards();
    }
    now_ = t;
  }

  /// True when the earliest live slab-heap event sorts strictly before
  /// (at, seq).  Cohort sources test this per entry inside fire_until and
  /// yield back to the run loop when it fires.
  bool heap_interrupts(Time at, std::uint64_t seq) {
    prune_stale_front();
    return !heap_.empty() &&
           before(heap_.front(), Event{at, seq, 0, 0});
  }

  /// Pending slab-heap events (cohort-source entries are counted by their
  /// owning engines, not here).
  std::size_t pending() const noexcept { return heap_.size() - cancelled_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Deep structural audit: 4-ary heap order, slab free-list consistency,
  /// generation-counter agreement between heap events and slots, and
  /// cancelled-event accounting.  Throws check::AuditError on violation.
  /// Compiled in every build (tests call it directly); automatic periodic
  /// invocation happens only when built with DNSTTL_AUDIT=ON.
  void validate() const;

  /// Registers a hook run with every periodic audit (audit builds only;
  /// a no-op invocation-wise otherwise).  Experiments register the caches
  /// of their resolver populations here so cross-structure state is audited
  /// while the simulation runs, not just at test boundaries.  Returns an id
  /// for remove_audit_hook — engines whose pools outlive a single run must
  /// deregister before the pool is destroyed.
  std::size_t add_audit_hook(std::function<void()> hook) {
    audit_hooks_.push_back(std::move(hook));
    return audit_hooks_.size() - 1;
  }

  /// Deregisters a hook returned by add_audit_hook (slot is retired, not
  /// reused; ids stay stable).
  void remove_audit_hook(std::size_t id) {
    if (id < audit_hooks_.size()) {
      audit_hooks_[id] = nullptr;
    }
  }

  /// Sets how many processed events elapse between periodic audits.
  void set_audit_interval(std::uint64_t events) {
    audit_interval_ = events > 0 ? events : 1;
    audit_countdown_ = audit_interval_;
  }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    bool occupied = false;
  };
  struct Event {
    Time at;
    std::uint64_t seq;  ///< global schedule order; FIFO tiebreak at equal at
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Strict total order on (at, seq): no two events compare equal, so any
  /// min-heap pops the same sequence — heap arity is a pure perf knob.
  static bool before(const Event& a, const Event& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  void heap_push(const Event& ev) {
    std::size_t i = heap_.size();
    heap_.emplace_back();  // hole; filled below after sift-up
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (!before(ev, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = ev;
  }

  Event heap_pop();

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      std::uint32_t index = free_head_;
      free_head_ = slots_[index].next_free;
      slots_[index].occupied = true;
      return index;
    }
    slots_.emplace_back();
    slots_.back().occupied = true;
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  [[noreturn]] static void throw_scheduled_in_past();
  [[noreturn]] static void throw_clock_backwards();

  bool step();
  /// Pops cancelled leftovers off the heap front so (time, seq)
  /// comparisons against cohort sources see a live event.
  void prune_stale_front() {
    while (!heap_.empty()) {
      const Event& ev = heap_.front();
      const Slot& slot = slots_[ev.slot];
      if (slot.occupied && slot.generation == ev.generation) {
        break;
      }
      heap_pop();
      --cancelled_;
    }
  }
  /// Run loop for the attached-source case: interleaves heap events and
  /// source batches in global (time, seq) order up to @p deadline.
  void run_mixed(Time deadline);
  void release_slot(std::uint32_t index);
  /// Self-validate plus registered hooks; called from step() every
  /// audit_interval_ events in audit builds.
  void run_audit() const;

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t cancelled_ = 0;
  /// 4-ary min-heap: children of i are 4i+1..4i+4.  Half the levels of a
  /// binary heap, and sifting writes one hole instead of swapping pairs.
  std::vector<Event> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  /// Attached cohort sources (non-owning); empty on the historical fast
  /// path, which then compiles to the exact pre-source run loop.
  std::vector<CohortSource*> sources_;

  static constexpr std::uint64_t kDefaultAuditInterval = 1024;
  std::vector<std::function<void()>> audit_hooks_;
  // lint:allow(raw-time-param) event count, not a time value.
  std::uint64_t audit_interval_ = kDefaultAuditInterval;
  std::uint64_t audit_countdown_ = kDefaultAuditInterval;
};

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_SIMULATION_H
