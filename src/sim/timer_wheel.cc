#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "check/audit.h"

namespace dnsttl::sim {

TimerWheel::TimerWheel(Time start, Duration tick) : tick_(tick) {
  if (tick_.count() <= 0) {
    throw std::invalid_argument("TimerWheel tick must be positive");
  }
  if (start.since_epoch().count() < 0) {
    throw std::invalid_argument("TimerWheel start must not precede the epoch");
  }
  cur_tick_ = tick_of(start);
}

void TimerWheel::schedule(Time at, std::uint64_t seq, std::uint64_t payload) {
  const std::int64_t at_tick = tick_of(at);
  if (at_tick < cur_tick_) {
    throw std::invalid_argument("cannot schedule into a fired wheel tick");
  }
  if (active_ && at_tick == active_tick_) {
    // The slot is mid-fire (its vector already moved into scratch_): merge
    // the entry at its (time, seq) position among the not-yet-fired tail,
    // so zero-gap reschedules keep exact slab-heap order.
    const Entry entry{at, seq, payload};
    auto pos = std::upper_bound(
        scratch_.begin() + static_cast<std::ptrdiff_t>(scratch_idx_),
        scratch_.end(), entry, entry_before);
    scratch_.insert(pos, entry);
    ++pending_;
    return;
  }
  place(Entry{at, seq, payload});
  ++pending_;
}

void TimerWheel::place(const Entry& entry) {
  const std::int64_t at_tick = tick_of(entry.at);
  const std::int64_t delta = at_tick - cur_tick_;
  if (delta < static_cast<std::int64_t>(kSlots)) {
    const auto slot = static_cast<std::size_t>(at_tick) & kSlotMask;
    level0_[slot].push_back(entry);
    level0_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63u);
    return;
  }
  const std::int64_t coarse_delta =
      (at_tick >> kLevelShift) - (cur_tick_ >> kLevelShift);
  if (coarse_delta < static_cast<std::int64_t>(kSlots)) {
    const auto slot =
        static_cast<std::size_t>(at_tick >> kLevelShift) & kSlotMask;
    level1_[slot].push_back(entry);
    level1_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63u);
    return;
  }
  far_push(entry);
}

void TimerWheel::far_push(const Entry& entry) {
  std::size_t i = far_.size();
  far_.emplace_back();  // hole; filled below after sift-up
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(entry, far_[parent])) {
      break;
    }
    far_[i] = far_[parent];
    i = parent;
  }
  far_[i] = entry;
}

TimerWheel::Entry TimerWheel::far_pop() {
  Entry min = far_.front();
  Entry last = far_.back();
  far_.pop_back();
  const std::size_t n = far_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t child = first + 1; child < end; ++child) {
        if (entry_before(far_[child], far_[best])) {
          best = child;
        }
      }
      if (!entry_before(far_[best], last)) {
        break;
      }
      far_[i] = far_[best];
      i = best;
    }
    far_[i] = last;
  }
  return min;
}

void TimerWheel::pull_far() {
  while (!far_.empty()) {
    const std::int64_t min_tick = tick_of(far_.front().at);
    const std::int64_t coarse_delta =
        (min_tick >> kLevelShift) - (cur_tick_ >> kLevelShift);
    if (coarse_delta >= static_cast<std::int64_t>(kSlots)) {
      break;
    }
    place(far_pop());
  }
}

void TimerWheel::advance_to_cohort() {
  for (;;) {
    pull_far();
    // Within one coarse window the level-0 range [cur_tick_, boundary) maps
    // to the contiguous slot run [cur & mask, kSlots): no ring wrap, so the
    // occupancy bitmap scan is a straight word walk.
    const std::size_t first_slot = static_cast<std::size_t>(cur_tick_) &
                                   kSlotMask;
    const std::int64_t window_base =
        (cur_tick_ >> kLevelShift) << kLevelShift;
    std::size_t word = first_slot >> 6;
    std::uint64_t bits = level0_bits_[word] &
                         (~std::uint64_t{0} << (first_slot & 63u));
    for (;;) {
      if (bits != 0) {
        const std::size_t slot =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        cur_tick_ = window_base + static_cast<std::int64_t>(slot);
        return;
      }
      if (++word == level0_bits_.size()) {
        break;
      }
      bits = level0_bits_[word];
    }
    // Nothing due before the coarse boundary: cross it and cascade the
    // level-1 slot that just came into level-0 range.
    cur_tick_ = window_base + static_cast<std::int64_t>(kSlots);
    bool level1_empty = true;
    for (const std::uint64_t w : level1_bits_) {
      level1_empty = level1_empty && w == 0;
    }
    if (level1_empty) {
      bool level0_empty = true;
      for (const std::uint64_t w : level0_bits_) {
        level0_empty = level0_empty && w == 0;
      }
      if (level0_empty) {
        if (far_.empty()) {
          throw check::AuditError(
              "sim::TimerWheel: advance_to_cohort on an empty wheel");
        }
        // Only far entries remain: jump straight to the window holding the
        // earliest one instead of cranking empty coarse slots.
        const std::int64_t min_tick = tick_of(far_.front().at);
        cur_tick_ = (min_tick >> kLevelShift) << kLevelShift;
        if (cur_tick_ < window_base + static_cast<std::int64_t>(kSlots)) {
          cur_tick_ = window_base + static_cast<std::int64_t>(kSlots);
        }
        continue;
      }
    }
    const auto slot =
        static_cast<std::size_t>(cur_tick_ >> kLevelShift) & kSlotMask;
    std::vector<Entry>& coarse = level1_[slot];
    if (!coarse.empty()) {
      level1_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63u));
      for (const Entry& entry : coarse) {
        place(entry);  // coarse window now within level-0 range
      }
      coarse.clear();
    }
  }
}

void TimerWheel::materialize() {
  if (active_ && scratch_idx_ < scratch_.size()) {
    return;
  }
  advance_to_cohort();
  const std::size_t slot = static_cast<std::size_t>(cur_tick_) & kSlotMask;
  scratch_.clear();
  scratch_.swap(level0_[slot]);
  level0_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63u));
  std::sort(scratch_.begin(), scratch_.end(), entry_before);
  scratch_idx_ = 0;
  active_tick_ = cur_tick_;
  active_ = true;
}

const TimerWheel::Entry& TimerWheel::head() {
  materialize();
  return scratch_[scratch_idx_];
}

TimerWheel::Entry TimerWheel::pop_head() {
  materialize();
  const Entry entry = scratch_[scratch_idx_++];
  --pending_;
  ++fired_;
  if (scratch_idx_ == scratch_.size()) {
    // Leave cur_tick_ on the drained tick: a zero-gap reschedule lands back
    // in this tick's level-0 slot and the next materialize picks it up.
    active_ = false;
    scratch_.clear();
    scratch_idx_ = 0;
  }
  return entry;
}

void TimerWheel::validate() const {
  constexpr const char* kWhat = "sim::TimerWheel";
  std::size_t counted = 0;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(pending_);

  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    const bool bit =
        (level0_bits_[slot >> 6] >> (slot & 63u) & 1u) != 0;
    DNSTTL_AUDIT_CHECK(kWhat, bit == !level0_[slot].empty(),
                       "level-0 occupancy bit disagrees with slot " +
                           std::to_string(slot));
    for (const Entry& entry : level0_[slot]) {
      const std::int64_t at_tick = tick_of(entry.at);
      DNSTTL_AUDIT_CHECK(kWhat,
                         at_tick >= cur_tick_ &&
                             at_tick - cur_tick_ <
                                 static_cast<std::int64_t>(kSlots),
                         "level-0 entry outside the live window in slot " +
                             std::to_string(slot));
      DNSTTL_AUDIT_CHECK(kWhat,
                         (static_cast<std::size_t>(at_tick) & kSlotMask) ==
                             slot,
                         "level-0 entry misfiled: tick " +
                             std::to_string(at_tick) + " in slot " +
                             std::to_string(slot));
      ++counted;
      seqs.push_back(entry.seq);
    }
  }

  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    const bool bit =
        (level1_bits_[slot >> 6] >> (slot & 63u) & 1u) != 0;
    DNSTTL_AUDIT_CHECK(kWhat, bit == !level1_[slot].empty(),
                       "level-1 occupancy bit disagrees with slot " +
                           std::to_string(slot));
    for (const Entry& entry : level1_[slot]) {
      const std::int64_t coarse_delta =
          (tick_of(entry.at) >> kLevelShift) - (cur_tick_ >> kLevelShift);
      DNSTTL_AUDIT_CHECK(kWhat,
                         coarse_delta >= 1 &&
                             coarse_delta < static_cast<std::int64_t>(kSlots),
                         "level-1 entry outside its coarse window in slot " +
                             std::to_string(slot));
      DNSTTL_AUDIT_CHECK(
          kWhat,
          (static_cast<std::size_t>(tick_of(entry.at) >> kLevelShift) &
           kSlotMask) == slot,
          "level-1 entry misfiled in slot " + std::to_string(slot));
      ++counted;
      seqs.push_back(entry.seq);
    }
  }

  for (std::size_t i = 0; i < far_.size(); ++i) {
    if (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      DNSTTL_AUDIT_CHECK(kWhat, !entry_before(far_[i], far_[parent]),
                         "far-heap order violated at index " +
                             std::to_string(i));
    }
    DNSTTL_AUDIT_CHECK(kWhat, tick_of(far_[i].at) >= cur_tick_,
                       "far-heap entry behind the wheel position at index " +
                           std::to_string(i));
    ++counted;
    seqs.push_back(far_[i].seq);
  }

  if (active_) {
    DNSTTL_AUDIT_CHECK(kWhat, scratch_idx_ < scratch_.size(),
                       "active cohort fully drained but still marked active");
    DNSTTL_AUDIT_CHECK(kWhat, active_tick_ == cur_tick_,
                       "active cohort tick disagrees with wheel position");
    for (std::size_t i = scratch_idx_; i < scratch_.size(); ++i) {
      DNSTTL_AUDIT_CHECK(kWhat, tick_of(scratch_[i].at) == active_tick_,
                         "active-cohort entry outside the active tick at "
                         "index " +
                             std::to_string(i));
      if (i > scratch_idx_) {
        DNSTTL_AUDIT_CHECK(kWhat,
                           entry_before(scratch_[i - 1], scratch_[i]),
                           "active cohort not strictly ordered at index " +
                               std::to_string(i));
      }
      ++counted;
      seqs.push_back(scratch_[i].seq);
    }
  } else {
    DNSTTL_AUDIT_CHECK(kWhat, scratch_.empty(),
                       "inactive scratch buffer holds entries");
  }

  DNSTTL_AUDIT_CHECK(kWhat, counted == pending_,
                     "pending-count accounting: " + std::to_string(counted) +
                         " entries found vs pending_ = " +
                         std::to_string(pending_));
  std::sort(seqs.begin(), seqs.end());
  DNSTTL_AUDIT_CHECK(kWhat,
                     std::adjacent_find(seqs.begin(), seqs.end()) ==
                         seqs.end(),
                     "duplicate sequence number among pending entries");
  check::count_audit();
}

}  // namespace dnsttl::sim
