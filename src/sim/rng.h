#ifndef DNSTTL_SIM_RNG_H
#define DNSTTL_SIM_RNG_H

#include <cstdint>
#include <cmath>
#include <vector>

namespace dnsttl::sim {

/// Deterministic random source for the whole simulator (xoshiro256**,
/// seeded via SplitMix64).  Every experiment takes an explicit seed so each
/// table/figure regenerates identically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed0d05) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponential with the given mean (for Poisson interarrivals).
  double exponential(double mean);

  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto with scale xm and shape alpha (heavy-tailed demand).
  double pareto(double xm, double alpha);

  /// Index drawn according to non-negative weights (must not sum to zero).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fork a child generator with an independent stream derived from this
  /// generator's state plus @p stream_id (stable across runs).
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t state_[4] = {};
  std::uint64_t seed_ = 0;
};

}  // namespace dnsttl::sim

#endif  // DNSTTL_SIM_RNG_H
