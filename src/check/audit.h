#ifndef DNSTTL_CHECK_AUDIT_H
#define DNSTTL_CHECK_AUDIT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

/// DNSTTL_AUDIT is defined to 1 by the build system (-DDNSTTL_AUDIT=ON in
/// CMake) for audit builds.  The validate() bodies themselves are compiled
/// in every configuration so they cannot rot; only the automatic hot-path
/// hooks (`if constexpr (check::kAuditEnabled)`) compile away when off.
#ifndef DNSTTL_AUDIT
#define DNSTTL_AUDIT 0
#endif

namespace dnsttl::check {

/// True in audit builds.  Hot paths guard audit hooks with
/// `if constexpr (kAuditEnabled)` so the disabled configuration carries
/// zero code, not a runtime branch.
inline constexpr bool kAuditEnabled = DNSTTL_AUDIT != 0;

/// Thrown when a structural invariant audit fails.  Derived from
/// std::logic_error: an audit failure is a library bug, never an input
/// error, and must not be swallowed by the WireError/MasterFileError
/// handlers on the parsing paths.
class AuditError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Counters for audit activity; audit-mode tests assert these move so a
/// silently disabled audit hook cannot pass for a healthy one.  The
/// counters are THREAD-LOCAL (shard-local): every par:: worker thread —
/// and therefore every experiment shard — accumulates its own block, so
/// audit hooks stay race-free and zero-contention under parallel
/// execution.  Read them from the thread that did the work.
struct AuditStats {
  std::uint64_t audits = 0;    ///< completed validate() passes
  std::uint64_t checks = 0;    ///< individual invariants evaluated
  std::uint64_t failures = 0;  ///< invariant violations detected
};

AuditStats& audit_stats() noexcept;

/// Records one completed validate() pass.
void count_audit() noexcept;

/// Builds the failure message and throws AuditError.  @p structure names
/// the audited structure ("sim::Simulation", "cache::Cache", "dns::Name"),
/// @p invariant is the stringified condition, @p detail adds values.
[[noreturn]] void audit_fail(std::string_view structure,
                             std::string_view invariant,
                             const std::string& detail);

namespace internal {
inline void count_check() noexcept { ++audit_stats().checks; }
}  // namespace internal

}  // namespace dnsttl::check

/// Evaluates one invariant inside a validate() implementation.  @p detail
/// is only evaluated on failure, so it may build strings freely.
#define DNSTTL_AUDIT_CHECK(structure, cond, detail)            \
  do {                                                         \
    ::dnsttl::check::internal::count_check();                  \
    if (!(cond)) {                                             \
      ::dnsttl::check::audit_fail((structure), #cond, (detail)); \
    }                                                          \
  } while (false)

#endif  // DNSTTL_CHECK_AUDIT_H
