#include "check/audit.h"

namespace dnsttl::check {

AuditStats& audit_stats() noexcept {
  // Shard-local: parallel experiment shards (par::parallel_for_shards) each
  // run their own World/Simulation on their own worker thread, and the
  // audit hooks inside them must not contend on — or race over — one global
  // counter block.
  thread_local AuditStats stats;
  return stats;
}

void count_audit() noexcept { ++audit_stats().audits; }

void audit_fail(std::string_view structure, std::string_view invariant,
                const std::string& detail) {
  ++audit_stats().failures;
  std::string message;
  message.reserve(structure.size() + invariant.size() + detail.size() + 32);
  message += "audit failure in ";
  message += structure;
  message += ": !(";
  message += invariant;
  message += ")";
  if (!detail.empty()) {
    message += " — ";
    message += detail;
  }
  throw AuditError(message);
}

}  // namespace dnsttl::check
