#include "crawl/population_generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace dnsttl::crawl {

std::string_view to_string(ContentClass content) {
  switch (content) {
    case ContentClass::kUnclassified:
      return "unclassified";
    case ContentClass::kPlaceholder:
      return "Placeholder";
    case ContentClass::kEcommerce:
      return "E-commerce";
    case ContentClass::kParking:
      return "Parking";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------- TTL grids
// Weights are calibrated to the CDF knees of Figure 9 (see DESIGN.md §4).

TtlDist top_list_ns_ttl() {
  return {{0, 60, 300, 900, 3600, 7200, 14400, 21600, 43200, 86400, 172800},
          {0.004, 0.012, 0.035, 0.022, 0.15, 0.08, 0.10, 0.08, 0.07, 0.30,
           0.147}};
}

TtlDist top_list_a_ttl() {
  return {{0, 60, 300, 600, 900, 1800, 3600, 14400, 43200, 86400},
          {0.001, 0.06, 0.22, 0.10, 0.05, 0.07, 0.26, 0.10, 0.05, 0.089}};
}

TtlDist top_list_mx_ttl() {
  return {{0, 300, 1800, 3600, 14400, 43200, 86400},
          {0.0005, 0.05, 0.04, 0.38, 0.20, 0.08, 0.25}};
}

TtlDist dnskey_ttl_dist() {
  return {{3600, 14400, 43200, 86400, 172800},
          {0.20, 0.20, 0.10, 0.35, 0.15}};
}

TtlDist generic_cname_ttl() {
  return {{60, 300, 3600, 14400, 86400}, {0.15, 0.35, 0.30, 0.10, 0.10}};
}

}  // namespace

ListParams alexa_params(std::size_t domains) {
  ListParams params;
  params.name = "Alexa";
  params.domains = domains;
  params.responsive = 0.99;
  params.cname_answer = 0.052;
  params.soa_answer = 0.013;
  params.out_only = 0.950;
  params.in_only = 0.041;
  params.providers = 4500;
  params.a_presence = 0.95;
  params.aaaa_presence = 0.22;
  params.mx_presence = 0.68;
  params.dnskey_presence = 0.043;
  params.cname_rr_presence = 0.046;
  params.cname_shared = 0.85;  // CDN endpoints: high target sharing
  params.ns_ttl = top_list_ns_ttl();
  params.a_ttl = top_list_a_ttl();
  params.aaaa_ttl = top_list_a_ttl();
  params.mx_ttl = top_list_mx_ttl();
  params.dnskey_ttl = dnskey_ttl_dist();
  params.cname_ttl = generic_cname_ttl();
  return params;
}

ListParams majestic_params(std::size_t domains) {
  ListParams params = alexa_params(domains);
  params.name = "Majestic";
  params.responsive = 0.93;
  params.cname_answer = 0.008;
  params.soa_answer = 0.009;
  params.out_only = 0.957;
  params.in_only = 0.031;
  params.aaaa_presence = 0.20;
  params.mx_presence = 0.63;
  params.cname_rr_presence = 0.003;
  params.cname_shared = 0.35;
  return params;
}

ListParams umbrella_params(std::size_t domains) {
  ListParams params;
  params.name = "Umbrella";
  params.domains = domains;
  // FQDNs pointing into clouds/CDNs: many transient, unresponsive names.
  params.responsive = 0.78;
  params.cname_answer = 0.58;  // most Umbrella names alias into CDNs
  params.soa_answer = 0.075;
  params.out_only = 0.901;
  params.in_only = 0.074;
  params.providers = 1200;
  params.a_presence = 0.95;
  params.aaaa_presence = 0.30;
  params.mx_presence = 0.35;
  params.dnskey_presence = 0.015;
  params.cname_rr_presence = 0.44;
  params.cname_shared = 0.55;
  params.providers = 2000;
  // 25% of NS TTLs under one minute (cloud automation).
  params.ns_ttl = {{0, 30, 60, 300, 900, 3600, 14400, 86400, 172800},
                   {0.005, 0.09, 0.16, 0.15, 0.07, 0.20, 0.09, 0.16, 0.075}};
  params.a_ttl = {{0, 20, 60, 300, 600, 3600, 14400, 86400},
                  {0.001, 0.14, 0.28, 0.25, 0.08, 0.15, 0.05, 0.049}};
  params.aaaa_ttl = params.a_ttl;
  params.mx_ttl = top_list_mx_ttl();
  params.dnskey_ttl = dnskey_ttl_dist();
  params.cname_ttl = {{20, 60, 300, 3600, 86400},
                      {0.20, 0.30, 0.30, 0.15, 0.05}};
  return params;
}

ListParams nl_params(std::size_t domains) {
  ListParams params;
  params.name = ".nl";
  params.domains = domains;
  params.responsive = 0.94;
  params.cname_answer = 0.0017;
  params.soa_answer = 0.0022;
  // Near-total reliance on shared hosting (Table 9: 99.7% out-only).
  params.out_only = 0.997;
  params.in_only = 0.0023;
  params.providers = 1200;
  params.a_shared = 0.95;
  params.provider_ip_pool = 4;
  params.a_presence = 0.95;
  params.aaaa_presence = 0.38;
  params.mx_presence = 0.80;
  // SIDN's DNSSEC incentives: most .nl domains are signed, each with its
  // own key (Table 5's 1.06 unique ratio).
  params.registry_ns_ttl = dns::Ttl{3600};  // .nl delegations carry a 1-hour TTL
  params.dnskey_presence = 0.70;
  params.dnskey_two_keys = 0.06;
  params.dnskey_shared = 0.05;  // SIDN: per-domain keys
  params.cname_rr_presence = 0.002;
  // ~40% of .nl children under one hour (§5.1).
  params.ns_ttl = {{0, 300, 600, 900, 1800, 3600, 7200, 14400, 86400, 172800},
                   {0.0006, 0.11, 0.10, 0.06, 0.12, 0.22, 0.06, 0.14, 0.13,
                    0.0494}};
  params.a_ttl = top_list_a_ttl();
  params.aaaa_ttl = top_list_a_ttl();
  params.mx_ttl = top_list_mx_ttl();
  params.dnskey_ttl = dnskey_ttl_dist();
  params.cname_ttl = generic_cname_ttl();
  // DMap web classification (§5.1.1): of the crawlable population, ~27%
  // classify into one of the three page classes (1.475M of 5.45M).
  params.classified_fraction = 0.27;
  params.placeholder_share = 0.813;
  params.ecommerce_share = 0.101;
  return params;
}

ListParams root_params() {
  ListParams params;
  params.name = "Root";
  params.domains = 1562;
  params.responsive = 0.983;
  params.cname_answer = 0.0;
  params.soa_answer = 0.0;
  // TLDs split roughly half out-of-bailiwick, half in/mixed (Table 9).
  params.out_only = 0.487;
  params.in_only = 0.426;
  params.providers = 250;
  params.ns_min = 3;
  params.ns_max = 7;
  params.a_presence = 1.0;   // NS-server addresses reported for the root
  params.aaaa_presence = 0.92;
  params.mx_presence = 0.057;
  params.dnskey_presence = 0.0;  // root list carries no DNSKEY rows
  params.cname_rr_presence = 0.0;
  // ~80% of root-zone records at 1-2 days; 34 TLDs under 30 min and 122
  // under 2 h (§5.2).
  params.ns_ttl = {{30, 300, 600, 1800, 3600, 7200, 14400, 21600, 43200,
                    86400, 172800},
                   {0.008, 0.009, 0.003, 0.002, 0.040, 0.017, 0.011, 0.030,
                    0.060, 0.350, 0.470}};
  params.a_ttl = {{3600, 43200, 86400, 172800}, {0.05, 0.10, 0.40, 0.45}};
  params.aaaa_ttl = params.a_ttl;
  params.mx_ttl = top_list_mx_ttl();
  params.dnskey_ttl = dnskey_ttl_dist();
  params.cname_ttl = generic_cname_ttl();
  return params;
}

namespace {

/// Provider rank: a Zipf head (the big hosters capture most customers)
/// plus a uniform tail (the long tail of small hosters), matching how
/// Table 5's unique-NS counts split between giant and boutique providers.
std::size_t sample_provider(const ListParams& params, sim::Rng& rng) {
  if (rng.chance(0.3)) {
    return rng.uniform_int(0, params.providers - 1);
  }
  double rank = rng.pareto(1.0, params.provider_zipf);
  auto index = static_cast<std::size_t>(rank) - 1;
  return std::min(index, params.providers - 1);
}

/// Class-conditional TTL distributions reproducing Table 7's medians
/// (hours): e-commerce NS 4 / AAAA 0.1, parking NS 24 / DNSKEY 24,
/// placeholder NS 4 / AAAA 4 / DNSKEY 4; A and MX at 1 h for all classes.
TtlDist class_ttl(ContentClass content, dns::RRType type) {
  const TtlDist one_hour{{300, 3600, 14400}, {0.25, 0.50, 0.25}};
  const TtlDist four_hours{{3600, 14400, 86400}, {0.30, 0.45, 0.25}};
  const TtlDist one_day{{14400, 86400, 172800}, {0.25, 0.50, 0.25}};
  const TtlDist six_minutes{{60, 300, 600, 3600}, {0.25, 0.30, 0.25, 0.20}};

  switch (type) {
    case dns::RRType::kNS:
      return content == ContentClass::kParking ? one_day : four_hours;
    case dns::RRType::kA:
    case dns::RRType::kMX:
      return one_hour;
    case dns::RRType::kAAAA:
      if (content == ContentClass::kEcommerce) return six_minutes;
      return content == ContentClass::kParking ? one_hour : four_hours;
    case dns::RRType::kDNSKEY:
      if (content == ContentClass::kEcommerce) return one_hour;
      return content == ContentClass::kParking ? one_day : four_hours;
    default:
      return one_hour;
  }
}

}  // namespace

std::string list_suffix(const ListParams& params) {
  std::string suffix;
  for (char c : params.name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return suffix;
}

void generate_domain(const ListParams& params, const std::string& suffix,
                     std::size_t index, sim::Rng& rng,
                     GeneratedDomain& domain) {
  domain.records.clear();
  domain.content = ContentClass::kUnclassified;
  domain.ns_answer = NsAnswerKind::kNsRecords;
  domain.name.clear();
  domain.name += 'd';
  domain.name += std::to_string(index);
  domain.name += '.';
  domain.name += suffix;
  domain.parent_ns_ttl = params.registry_ns_ttl;
  domain.responsive = rng.chance(params.responsive);
  if (!domain.responsive) {
    return;
  }

  // Content class (only meaningful for .nl).
  if (params.classified_fraction > 0.0 &&
      rng.chance(params.classified_fraction)) {
    double roll = rng.uniform();
    domain.content = roll < params.placeholder_share
                         ? ContentClass::kPlaceholder
                         : (roll < params.placeholder_share +
                                       params.ecommerce_share
                                ? ContentClass::kEcommerce
                                : ContentClass::kParking);
  }

  auto ttl_for = [&](dns::RRType type, const TtlDist& list_dist) {
    if (domain.content != ContentClass::kUnclassified) {
      return class_ttl(domain.content, type).sample(rng);
    }
    return list_dist.sample(rng);
  };

  // NS answer behavior.
  double roll = rng.uniform();
  if (roll < params.cname_answer) {
    domain.ns_answer = NsAnswerKind::kCname;
  } else if (roll < params.cname_answer + params.soa_answer) {
    domain.ns_answer = NsAnswerKind::kSoa;
  } else {
    domain.ns_answer = NsAnswerKind::kNsRecords;
  }

  std::size_t provider = sample_provider(params, rng);
  std::string provider_tag = "provider" + std::to_string(provider);

  if (domain.ns_answer == NsAnswerKind::kNsRecords) {
    auto ns_count = rng.uniform_int(
        static_cast<std::uint64_t>(params.ns_min),
        static_cast<std::uint64_t>(params.ns_max));
    dns::Ttl ns_ttl = ttl_for(dns::RRType::kNS, params.ns_ttl);

    double bw = rng.uniform();
    bool all_out = bw < params.out_only;
    bool all_in = !all_out && bw < params.out_only + params.in_only;
    for (std::size_t i = 0; i < ns_count; ++i) {
      bool in_bailiwick = all_in || (!all_out && i % 2 == 1);
      std::string target =
          in_bailiwick ? "ns" + std::to_string(i + 1) + "." + domain.name
                       : "ns" + std::to_string(i + 1) + "." + provider_tag +
                             ".example";
      domain.records.push_back(
          HarvestedRecord{dns::RRType::kNS, ns_ttl, std::move(target)});
    }
  }

  auto add_addresses = [&](dns::RRType type, const TtlDist& dist,
                           double presence) {
    if (!rng.chance(presence)) return;
    dns::Ttl ttl = ttl_for(type, dist);
    std::size_t count = rng.chance(0.3) ? 2 : 1;
    for (std::size_t i = 0; i < count; ++i) {
      std::string value =
          rng.chance(params.a_shared)
              ? provider_tag + "-ip" +
                    std::to_string(rng.uniform_int(
                        0, params.provider_ip_pool - 1)) +
                    (type == dns::RRType::kAAAA ? "-v6" : "")
              : domain.name + "-ip" + std::to_string(i) +
                    (type == dns::RRType::kAAAA ? "-v6" : "");
      domain.records.push_back(HarvestedRecord{type, ttl, std::move(value)});
    }
  };
  add_addresses(dns::RRType::kA, params.a_ttl, params.a_presence);
  add_addresses(dns::RRType::kAAAA, params.aaaa_ttl, params.aaaa_presence);

  if (rng.chance(params.mx_presence)) {
    dns::Ttl ttl = ttl_for(dns::RRType::kMX, params.mx_ttl);
    std::size_t count = rng.chance(0.5) ? 2 : 1;
    for (std::size_t i = 0; i < count; ++i) {
      std::string value = rng.chance(params.mx_shared)
                              ? "mx" + std::to_string(i) + "." +
                                    provider_tag + ".example"
                              : "mail" + std::to_string(i) + "." +
                                    domain.name;
      domain.records.push_back(
          HarvestedRecord{dns::RRType::kMX, ttl, std::move(value)});
    }
  }

  if (rng.chance(params.dnskey_presence)) {
    dns::Ttl ttl = ttl_for(dns::RRType::kDNSKEY, params.dnskey_ttl);
    std::size_t keys = rng.chance(params.dnskey_two_keys) ? 2 : 1;
    for (std::size_t i = 0; i < keys; ++i) {
      std::string value = rng.chance(params.dnskey_shared)
                              ? "key-" + provider_tag + "-" +
                                    std::to_string(i)
                              : "key-" + domain.name + "-" +
                                    std::to_string(i);
      domain.records.push_back(
          HarvestedRecord{dns::RRType::kDNSKEY, ttl, std::move(value)});
    }
  }

  if (rng.chance(params.cname_rr_presence)) {
    dns::Ttl ttl = params.cname_ttl.sample(rng);
    std::string value = rng.chance(params.cname_shared)
                            ? "edge." + provider_tag + ".example"
                            : "www." + domain.name;
    domain.records.push_back(
        HarvestedRecord{dns::RRType::kCNAME, ttl, std::move(value)});
  }
}

std::vector<GeneratedDomain> generate_population(const ListParams& params,
                                                 sim::Rng& rng) {
  std::vector<GeneratedDomain> population;
  population.reserve(params.domains);
  const std::string suffix = list_suffix(params);
  for (std::size_t d = 0; d < params.domains; ++d) {
    GeneratedDomain domain;
    generate_domain(params, suffix, d, rng, domain);
    population.push_back(std::move(domain));
  }
  return population;
}

std::vector<GeneratedDomain> generate_population_forked(
    const ListParams& params, sim::Rng& rng) {
  std::vector<GeneratedDomain> population;
  population.reserve(params.domains);
  const std::string suffix = list_suffix(params);
  for (std::size_t d = 0; d < params.domains; ++d) {
    sim::Rng domain_rng = rng.fork(static_cast<std::uint64_t>(d));
    GeneratedDomain domain;
    generate_domain(params, suffix, d, domain_rng, domain);
    population.push_back(std::move(domain));
  }
  return population;
}

}  // namespace dnsttl::crawl
