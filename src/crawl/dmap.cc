#include "crawl/dmap.h"

#include "stats/cdf.h"

namespace dnsttl::crawl {

std::size_t DmapReport::total_classified() const {
  std::size_t total = 0;
  for (const auto& [content, count] : class_counts) {
    if (content != ContentClass::kUnclassified) {
      total += count;
    }
  }
  return total;
}

DmapReport classify_content(const std::vector<GeneratedDomain>& population) {
  DmapReport report;
  std::map<std::pair<ContentClass, dns::RRType>, stats::Cdf> ttls;

  for (const auto& domain : population) {
    if (!domain.responsive) continue;
    ++report.class_counts[domain.content];
    if (domain.content == ContentClass::kUnclassified) continue;
    for (const auto& record : domain.records) {
      ttls[{domain.content, record.type}].add(static_cast<double>(record.ttl.value()));
    }
  }

  for (const auto& [key, cdf] : ttls) {
    if (!cdf.empty()) {
      report.median_ttl_hours[key] = cdf.median() / 3600.0;
    }
  }
  return report;
}

}  // namespace dnsttl::crawl
