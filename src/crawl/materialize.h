#ifndef DNSTTL_CRAWL_MATERIALIZE_H
#define DNSTTL_CRAWL_MATERIALIZE_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "crawl/population_generator.h"
#include "dns/name.h"
#include "dns/rr.h"

namespace dnsttl::crawl {

/// Deterministic value→address mappings so every consumer of generated
/// crawl data (live checks, the nested bulk-crawl driver, the engine's
/// wire-collapse rule) derives addresses from the same opaque record
/// values.
inline dns::Ipv4 ipv4_for(const std::string& value) {
  auto h = static_cast<std::uint32_t>(std::hash<std::string>{}(value));
  return dns::Ipv4{0x0a000000u | (h & 0x00ffffffu)};  // 10.x.y.z
}

inline dns::Ipv6 ipv6_for(const std::string& value) {
  auto h = std::hash<std::string>{}(value);
  std::array<std::uint8_t, 16> octets{};
  octets[0] = 0x20;
  octets[1] = 0x01;
  for (int i = 0; i < 8; ++i) {
    octets[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(h >> (i * 8));
  }
  return dns::Ipv6{octets};
}

/// Turns one generated record into the rdata a live zone would serve.
inline dns::Rdata materialize(const HarvestedRecord& record) {
  switch (record.type) {
    case dns::RRType::kA:
      return dns::ARdata{ipv4_for(record.value)};
    case dns::RRType::kAAAA:
      return dns::AaaaRdata{ipv6_for(record.value)};
    case dns::RRType::kNS:
      return dns::NsRdata{dns::Name::from_string(record.value)};
    case dns::RRType::kMX:
      return dns::MxRdata{10, dns::Name::from_string(record.value)};
    case dns::RRType::kCNAME:
      return dns::CnameRdata{dns::Name::from_string(record.value)};
    case dns::RRType::kDNSKEY: {
      dns::DnskeyRdata key;
      key.public_key = record.value;
      return key;
    }
    default:
      return dns::TxtRdata{record.value};
  }
}

/// The owner name a crawler queries for @p type under @p base.  CNAMEs
/// cannot coexist with other data at a node; crawlers harvest them from
/// www-style aliases.
inline dns::Name harvest_owner(const dns::Name& base, dns::RRType type) {
  return type == dns::RRType::kCNAME ? base.prepend("alias") : base;
}

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_MATERIALIZE_H
