#ifndef DNSTTL_CRAWL_LIVE_CHECK_H
#define DNSTTL_CRAWL_LIVE_CHECK_H

#include <cstddef>

#include "core/world.h"
#include "crawl/population_generator.h"

namespace dnsttl::crawl {

/// Result of cross-checking generated crawl data against live servers.
struct LiveCheckReport {
  std::size_t domains_checked = 0;
  std::size_t records_checked = 0;
  std::size_t mismatches = 0;

  bool clean() const noexcept { return mismatches == 0; }
};

/// Integrity check for the synthetic-crawl shortcut: materializes a sample
/// of generated domains as real zones on a real authoritative server inside
/// @p world, queries every record through the simulator's DNS path, and
/// verifies that what a live crawl harvests equals what the generator
/// tabulated.  This is what justifies tabulating the §5 analyses directly
/// from generator output at full scale (DESIGN.md §5).
LiveCheckReport verify_population_live(core::World& world,
                                       const std::vector<GeneratedDomain>&
                                           population,
                                       std::size_t sample_size,
                                       sim::Rng& rng);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_LIVE_CHECK_H
