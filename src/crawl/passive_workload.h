#ifndef DNSTTL_CRAWL_PASSIVE_WORKLOAD_H
#define DNSTTL_CRAWL_PASSIVE_WORKLOAD_H

#include <cstdint>

#include "core/world.h"
#include "stats/cdf.h"

namespace dnsttl::crawl {

/// Configuration of the §3.4 passive `.nl` reproduction: a resolver
/// population generates Poisson demand for names under .nl for two days;
/// the authoritative servers log queries; the analysis groups queries for
/// the NS-server address records by (resolver, qname).
struct PassiveConfig {
  std::size_t resolver_count = 20000;  ///< paper: 205k (scaled, see DESIGN)
  sim::Duration duration = 2 * sim::kDay;

  /// Per-resolver demand: lookups/day drawn Pareto (heavy tail — a few
  /// busy public resolvers, many quiet forwarders).
  double demand_xm_per_day = 1.0;
  double demand_alpha = 1.2;
  double demand_cap_per_day = 400.0;

  dns::Ttl parent_glue_ttl = dns::kTtl2Days;  ///< root-zone copies
  dns::Ttl child_a_ttl = dns::kTtl1Hour;      ///< dns.nl child copies
  std::uint64_t seed = 42;
};

/// The Figure 3 / Figure 4 measurements.
struct PassiveReport {
  std::size_t client_queries = 0;       ///< demand generated
  std::size_t logged_queries = 0;       ///< seen at the 2 observed auths
  std::size_t unique_resolvers = 0;     ///< distinct sources at those auths
  std::size_t groups = 0;               ///< (resolver, ns-qname) pairs
  std::size_t single_query_groups = 0;  ///< the paper's 48%
  double single_fraction = 0.0;
  double multi_fraction = 0.0;
  /// Of single-query sources, the share also present in multi-query groups
  /// for another name (the paper's 14%).
  double single_ips_also_multi = 0.0;

  stats::Cdf queries_per_group;           ///< Figure 3, "all"
  stats::Cdf queries_per_group_filtered;  ///< Figure 3, interarrival > 2 s
  stats::Cdf min_interarrival_hours;      ///< Figure 4
};

/// Builds the .nl serving infrastructure (4 nameservers ns[1-4].dns.nl,
/// glue in the root at parent_glue_ttl, child copies at child_a_ttl),
/// drives the demand, and analyzes the logs of servers 1 and 3 — observing
/// 2 of 4 authoritatives exactly as the paper did.
PassiveReport run_passive_nl(core::World& world, const PassiveConfig& config);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_PASSIVE_WORKLOAD_H
