#ifndef DNSTTL_CRAWL_ENGINE_H
#define DNSTTL_CRAWL_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crawl/crawler.h"
#include "crawl/dmap.h"
#include "crawl/population_generator.h"
#include "crawl/tabulate.h"
#include "sim/rng.h"

namespace dnsttl::crawl {

/// Counters the bulk resolution engine (and its nested reference driver)
/// report alongside the crawl itself — BENCH_crawl_engine.json's columns.
struct EngineStats {
  std::size_t resolutions = 0;  ///< domains fully resolved (incl. dead ones)
  std::size_t queries = 0;      ///< per-type harvest queries answered
  std::size_t steps = 0;        ///< scheduler micro-steps executed
  /// Highest number of simultaneously live resolution tasks observed in
  /// any one shard's scheduler.
  std::size_t in_flight_high_water = 0;
  std::size_t shards = 0;
};

struct EngineOptions {
  std::size_t shard_count = 0;  ///< 0: par::shard_count_for(domain count)
  std::size_t jobs = 1;
  /// Per-shard admission window: how many resolutions one scheduler keeps
  /// in flight at once before admitting more from its domain range.
  std::size_t max_in_flight = 512;
  bool collect_content = false;  ///< also run the DMap streaming hook
};

struct EngineResult {
  CrawlReport report;
  DmapReport dmap;  ///< populated only when options.collect_content
  EngineStats stats;
};

/// Bulk resolution engine: crawls the list described by @p params without
/// ever materializing its population.  Each shard owns a contiguous domain
/// range and an SoA pool of resumable resolution tasks; a batch scheduler
/// advances every live task one protocol step per wave (NS answer, then one
/// record type per step), admitting new domains as finished ones retire.
/// Domain @p i is drawn from `list_rng.fork(i)`, so any shard regenerates
/// exactly its own slice; partial tallies fold in shard order through
/// finalize_crawl().  Output is therefore a pure function of
/// (params, list_rng, shard_count) — identical at any --jobs.
EngineResult crawl_engine(const ListParams& params, const sim::Rng& list_rng,
                          const EngineOptions& options = {});

/// What the nested reference driver measured while harvesting.
struct NestedResult {
  CrawlReport report;
  DmapReport dmap;  ///< populated only when @p collect_content
  std::size_t queries = 0;
  /// Wire answers that disagreed with the collapsed tabulation input —
  /// must be zero; non-zero means the drivers' collapse semantics diverged
  /// from the authoritative RRset semantics.
  std::size_t harvest_mismatches = 0;
};

/// Nested reference driver: materializes the same forked population
/// (generate_population_forked over a copy of @p list_rng), then crawls it
/// the pre-engine way — each domain is stood up as a zone on a live
/// authoritative server and every record type is fetched with a
/// dns::Message through the simulator's network, wire codec round-trip
/// included (the harvest path verify_population_live() uses).  The
/// verified harvest is tabulated through the same collapse rule as the
/// engine, so reports are field-identical on the same (params, list_rng);
/// the engine's speedup is measured against this driver.
NestedResult crawl_nested(const ListParams& params, const sim::Rng& list_rng,
                          bool collect_content = false);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_ENGINE_H
