#include "crawl/passive_workload.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/audit.h"
#include "resolver/population.h"
#include "sim/timer_wheel.h"

namespace dnsttl::crawl {
namespace {

/// Structure-of-arrays demand pool: per-resolver arrival state in parallel
/// arrays, driven by a cohort timer wheel instead of one slab-heap node and
/// EventFn closure per pending arrival (docs/architecture.md §Workload
/// engine).  Each resolver holds exactly one pending "next query" entry;
/// the payload is its pool index.  Sequence numbers come from
/// Simulation::allocate_seq in the same order the object-per-actor code
/// consumed them, so outputs at historical scales are byte-identical.
class DemandPool final : public sim::CohortSource {
 public:
  DemandPool(sim::Simulation& simulation, sim::Rng gap_rng, sim::Time end)
      : simulation_(simulation),
        wheel_(simulation.now()),
        gap_rng_(gap_rng),
        end_(end) {}

  void add(resolver::RecursiveResolver* resolver, double mean_gap_seconds) {
    resolvers_.push_back(resolver);
    mean_gap_seconds_.push_back(mean_gap_seconds);
    counters_.push_back(0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return resolvers_.size(); }
  [[nodiscard]] std::size_t client_queries() const noexcept {
    return client_queries_;
  }

  /// Draws the first arrival for every resolver in index order — the same
  /// stream order the per-actor closures used.
  void seed_arrivals() {
    live_ = size();
    for (std::size_t i = 0; i < size(); ++i) {
      schedule_next(i, simulation_.now());
    }
  }

  bool peek(sim::Time& at, std::uint64_t& seq) override {
    if (wheel_.empty()) {
      return false;
    }
    const sim::TimerWheel::Entry& head = wheel_.head();
    at = head.at;
    seq = head.seq;
    return true;
  }

  void fire_until(sim::Time limit_at, std::uint64_t limit_seq) override {
    while (!wheel_.empty()) {
      const sim::TimerWheel::Entry& head = wheel_.head();
      const bool before_limit =
          head.at < limit_at || (head.at == limit_at && head.seq < limit_seq);
      if (!before_limit || simulation_.heap_interrupts(head.at, head.seq)) {
        break;
      }
      const sim::TimerWheel::Entry entry = wheel_.pop_head();
      simulation_.advance_clock(entry.at);
      const auto index = static_cast<std::size_t>(entry.payload);
      DNSTTL_AUDIT_CHECK("crawl::DemandPool", index < size(),
                         "fired entry references an orphaned resolver index");
      dns::Name qname = dns::Name::from_string(
          "u" + std::to_string(counters_[index]++) + "-r" +
          std::to_string(index) + ".nl");
      resolvers_[index]->resolve(
          dns::Question{qname, dns::RRType::kA, dns::RClass::kIN}, entry.at);
      ++client_queries_;
      schedule_next(index, entry.at);
      if constexpr (check::kAuditEnabled) {
        if (++fires_since_audit_ >= kAuditInterval) {
          fires_since_audit_ = 0;
          validate();
        }
      }
    }
  }

  /// Deep audit: SoA arrays in step, wheel/pool pending accounting in
  /// agreement, and the wheel's own structural invariants.
  void validate() const {
    constexpr const char* kWhat = "crawl::DemandPool";
    DNSTTL_AUDIT_CHECK(kWhat,
                       mean_gap_seconds_.size() == resolvers_.size() &&
                           counters_.size() == resolvers_.size(),
                       "SoA arrays out of step");
    DNSTTL_AUDIT_CHECK(kWhat, wheel_.pending() == live_,
                       "wheel pending entries disagree with live-resolver "
                       "accounting");
    DNSTTL_AUDIT_CHECK(kWhat, live_ <= resolvers_.size(),
                       "more live arrivals than resolvers in the pool");
    wheel_.validate();
    check::count_audit();
  }

 private:
  static constexpr std::uint64_t kAuditInterval = 4096;

  void schedule_next(std::size_t index, sim::Time from) {
    const double gap = gap_rng_.exponential(mean_gap_seconds_[index]);
    const sim::Time due = from + sim::approx_seconds(gap);
    if (due >= end_) {
      --live_;  // retires on first arrival past the horizon
      return;
    }
    wheel_.schedule(due, simulation_.allocate_seq(), entry_payload(index));
  }

  static std::uint64_t entry_payload(std::size_t index) noexcept {
    return static_cast<std::uint64_t>(index);
  }

  sim::Simulation& simulation_;
  sim::TimerWheel wheel_;
  sim::Rng gap_rng_;
  sim::Time end_;

  std::vector<resolver::RecursiveResolver*> resolvers_;
  std::vector<double> mean_gap_seconds_;
  std::vector<std::uint64_t> counters_;

  std::size_t client_queries_ = 0;
  /// Resolvers whose next arrival is still inside the horizon; equals the
  /// wheel's pending count at every mutation boundary.
  std::size_t live_ = 0;
  std::uint64_t fires_since_audit_ = 0;
};

}  // namespace

PassiveReport run_passive_nl(core::World& world, const PassiveConfig& config) {
  const auto nl = dns::Name::from_string("nl");
  const auto dnsnl = dns::Name::from_string("dns.nl");

  // The .nl zone and the dns.nl zone that carries the nameserver addresses,
  // both served by all four servers (as SIDN does).
  auto nl_zone = world.create_zone("nl", dns::Ttl{3600});
  auto dnsnl_zone = world.create_zone("dns.nl", dns::Ttl{3600});

  std::vector<std::pair<dns::Name, net::Address>> servers;
  std::vector<std::string> observed;  // we watch 2 of the 4
  for (int i = 1; i <= 4; ++i) {
    auto ns_name = dnsnl.prepend("ns" + std::to_string(i));
    auto& server = world.add_server(ns_name.to_string(),
                                    net::Location{net::Region::kEU, 1.0});
    server.add_zone(nl_zone);
    server.add_zone(dnsnl_zone);
    if (i == 1 || i == 3) {
      server.set_logging(true);
      observed.push_back(ns_name.to_string());
    }
    auto address = world.address_of(ns_name.to_string());
    servers.emplace_back(ns_name, address);

    nl_zone->add(dns::make_ns(nl, dns::Ttl{3600}, ns_name));
    dnsnl_zone->add(dns::make_ns(dnsnl, dns::Ttl{3600}, ns_name));
    // Child copy of the address: the 1-hour TTL the paper contrasts with
    // the root's 2-day glue.
    dnsnl_zone->add(dns::make_a(ns_name, config.child_a_ttl, address));
  }
  // dns.nl is a delegation inside .nl served by the same hosts.
  for (const auto& [ns_name, address] : servers) {
    nl_zone->add(dns::make_ns(dnsnl, dns::Ttl{3600}, ns_name));
  }
  // Root-side delegation with the 2-day glue.
  world.delegate(*world.root_zone(), nl, servers, config.parent_glue_ttl,
                 config.parent_glue_ttl);

  // The resolver population generating demand.
  sim::Rng rng = world.rng().fork(0x9a551e);
  auto population = resolver::ResolverPopulation::build(
      world.network(), world.hints(), world.root_zone(),
      resolver::paper_profiles(), config.resolver_count,
      resolver::atlas_region_weights(), rng);

  PassiveReport report;

  // Poisson demand per resolver, rate Pareto-distributed across resolvers,
  // held in a SoA pool driven by the cohort timer wheel: one pending
  // arrival per resolver, no heap node or closure per event.
  auto& simulation = world.simulation();
  DemandPool pool(simulation, rng.fork(0xdeaadd), sim::at(config.duration));
  for (auto& member : population.members()) {
    double per_day = std::min(config.demand_cap_per_day,
                              rng.pareto(config.demand_xm_per_day,
                                         config.demand_alpha));
    pool.add(member.resolver.get(), 86400.0 / per_day);
  }

  simulation.attach_source(&pool);
  const std::size_t audit_hook =
      simulation.add_audit_hook([&pool] { pool.validate(); });
  pool.seed_arrivals();
  simulation.run_until(sim::at(config.duration));
  simulation.remove_audit_hook(audit_hook);
  simulation.detach_source(&pool);
  report.client_queries = pool.client_queries();

  // ENTRADA-style analysis over the two observed servers: group queries
  // for the four nameserver address records by (source, qname).
  std::set<std::string> ns_names;
  for (const auto& [ns_name, address] : servers) {
    ns_names.insert(ns_name.to_string());
  }

  std::map<std::pair<std::uint32_t, std::string>, std::vector<sim::Time>>
      group_times;
  std::set<std::uint32_t> sources;
  for (const auto& ident : observed) {
    const auto& log = world.server(ident).log();
    for (const auto& entry : log.entries()) {
      ++report.logged_queries;
      sources.insert(entry.client.value());
      std::string qname = entry.qname.to_string();
      if ((entry.qtype == dns::RRType::kA ||
           entry.qtype == dns::RRType::kAAAA) &&
          ns_names.contains(qname)) {
        group_times[{entry.client.value(), qname}].push_back(entry.time);
      }
    }
  }
  report.unique_resolvers = sources.size();

  std::set<std::uint32_t> single_ips;
  std::set<std::uint32_t> multi_ips;
  for (auto& [key, times] : group_times) {
    std::sort(times.begin(), times.end());
    ++report.groups;
    report.queries_per_group.add(static_cast<double>(times.size()));

    // Figure 3's "filtered" curve: drop retransmission-like duplicates
    // (interarrival <= 2 s).
    std::size_t filtered = 1;
    sim::Duration min_gap{-1};
    for (std::size_t i = 1; i < times.size(); ++i) {
      sim::Duration gap = times[i] - times[i - 1];
      if (gap > 2 * sim::kSecond) {
        ++filtered;
      }
      if (min_gap.count() < 0 || gap < min_gap) {
        min_gap = gap;
      }
    }
    report.queries_per_group_filtered.add(static_cast<double>(filtered));

    if (times.size() == 1) {
      ++report.single_query_groups;
      single_ips.insert(key.first);
    } else {
      multi_ips.insert(key.first);
      report.min_interarrival_hours.add(sim::to_seconds(min_gap) / 3600.0);
    }
  }

  if (report.groups > 0) {
    report.single_fraction = static_cast<double>(report.single_query_groups) /
                             static_cast<double>(report.groups);
    report.multi_fraction = 1.0 - report.single_fraction;
  }
  if (!single_ips.empty()) {
    std::size_t also_multi = 0;
    for (std::uint32_t ip : single_ips) {
      if (multi_ips.contains(ip)) ++also_multi;
    }
    report.single_ips_also_multi =
        static_cast<double>(also_multi) / static_cast<double>(single_ips.size());
  }
  return report;
}

}  // namespace dnsttl::crawl
