#include "crawl/passive_workload.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "resolver/population.h"

namespace dnsttl::crawl {

PassiveReport run_passive_nl(core::World& world, const PassiveConfig& config) {
  const auto nl = dns::Name::from_string("nl");
  const auto dnsnl = dns::Name::from_string("dns.nl");

  // The .nl zone and the dns.nl zone that carries the nameserver addresses,
  // both served by all four servers (as SIDN does).
  auto nl_zone = world.create_zone("nl", dns::Ttl{3600});
  auto dnsnl_zone = world.create_zone("dns.nl", dns::Ttl{3600});

  std::vector<std::pair<dns::Name, net::Address>> servers;
  std::vector<std::string> observed;  // we watch 2 of the 4
  for (int i = 1; i <= 4; ++i) {
    auto ns_name = dnsnl.prepend("ns" + std::to_string(i));
    auto& server = world.add_server(ns_name.to_string(),
                                    net::Location{net::Region::kEU, 1.0});
    server.add_zone(nl_zone);
    server.add_zone(dnsnl_zone);
    if (i == 1 || i == 3) {
      server.set_logging(true);
      observed.push_back(ns_name.to_string());
    }
    auto address = world.address_of(ns_name.to_string());
    servers.emplace_back(ns_name, address);

    nl_zone->add(dns::make_ns(nl, dns::Ttl{3600}, ns_name));
    dnsnl_zone->add(dns::make_ns(dnsnl, dns::Ttl{3600}, ns_name));
    // Child copy of the address: the 1-hour TTL the paper contrasts with
    // the root's 2-day glue.
    dnsnl_zone->add(dns::make_a(ns_name, config.child_a_ttl, address));
  }
  // dns.nl is a delegation inside .nl served by the same hosts.
  for (const auto& [ns_name, address] : servers) {
    nl_zone->add(dns::make_ns(dnsnl, dns::Ttl{3600}, ns_name));
  }
  // Root-side delegation with the 2-day glue.
  world.delegate(*world.root_zone(), nl, servers, config.parent_glue_ttl,
                 config.parent_glue_ttl);

  // The resolver population generating demand.
  sim::Rng rng = world.rng().fork(0x9a551e);
  auto population = resolver::ResolverPopulation::build(
      world.network(), world.hints(), world.root_zone(),
      resolver::paper_profiles(), config.resolver_count,
      resolver::atlas_region_weights(), rng);

  PassiveReport report;

  // Poisson demand per resolver, rate Pareto-distributed across resolvers.
  struct Demand {
    resolver::RecursiveResolver* resolver;
    double mean_gap_seconds;
    std::uint64_t counter = 0;
  };
  auto demands = std::make_shared<std::vector<Demand>>();
  demands->reserve(population.size());
  for (auto& member : population.members()) {
    double per_day = std::min(config.demand_cap_per_day,
                              rng.pareto(config.demand_xm_per_day,
                                         config.demand_alpha));
    demands->push_back(Demand{member.resolver.get(), 86400.0 / per_day});
  }

  auto& simulation = world.simulation();
  auto rng_ptr = std::make_shared<sim::Rng>(rng.fork(0xdeaadd));
  auto client_queries = std::make_shared<std::size_t>(0);

  std::function<void(std::size_t)> schedule_next =
      [&simulation, demands, rng_ptr, client_queries, &schedule_next,
       end = sim::at(config.duration)](std::size_t index) {
        auto& demand = (*demands)[index];
        double gap = rng_ptr->exponential(demand.mean_gap_seconds);
        sim::Time at = simulation.now() + sim::approx_seconds(gap);
        if (at >= end) {
          return;
        }
        simulation.schedule_at(at, [&simulation, demands, rng_ptr,
                                    client_queries, &schedule_next, index] {
          auto& d = (*demands)[index];
          dns::Name qname = dns::Name::from_string(
              "u" + std::to_string(d.counter++) + "-r" +
              std::to_string(index) + ".nl");
          d.resolver->resolve(
              dns::Question{qname, dns::RRType::kA, dns::RClass::kIN},
              simulation.now());
          ++*client_queries;
          schedule_next(index);
        });
      };

  for (std::size_t i = 0; i < demands->size(); ++i) {
    schedule_next(i);
  }
  simulation.run_until(sim::at(config.duration));
  report.client_queries = *client_queries;

  // ENTRADA-style analysis over the two observed servers: group queries
  // for the four nameserver address records by (source, qname).
  std::set<std::string> ns_names;
  for (const auto& [ns_name, address] : servers) {
    ns_names.insert(ns_name.to_string());
  }

  std::map<std::pair<std::uint32_t, std::string>, std::vector<sim::Time>>
      group_times;
  std::set<std::uint32_t> sources;
  for (const auto& ident : observed) {
    const auto& log = world.server(ident).log();
    for (const auto& entry : log.entries()) {
      ++report.logged_queries;
      sources.insert(entry.client.value());
      std::string qname = entry.qname.to_string();
      if ((entry.qtype == dns::RRType::kA ||
           entry.qtype == dns::RRType::kAAAA) &&
          ns_names.contains(qname)) {
        group_times[{entry.client.value(), qname}].push_back(entry.time);
      }
    }
  }
  report.unique_resolvers = sources.size();

  std::set<std::uint32_t> single_ips;
  std::set<std::uint32_t> multi_ips;
  for (auto& [key, times] : group_times) {
    std::sort(times.begin(), times.end());
    ++report.groups;
    report.queries_per_group.add(static_cast<double>(times.size()));

    // Figure 3's "filtered" curve: drop retransmission-like duplicates
    // (interarrival <= 2 s).
    std::size_t filtered = 1;
    sim::Duration min_gap{-1};
    for (std::size_t i = 1; i < times.size(); ++i) {
      sim::Duration gap = times[i] - times[i - 1];
      if (gap > 2 * sim::kSecond) {
        ++filtered;
      }
      if (min_gap.count() < 0 || gap < min_gap) {
        min_gap = gap;
      }
    }
    report.queries_per_group_filtered.add(static_cast<double>(filtered));

    if (times.size() == 1) {
      ++report.single_query_groups;
      single_ips.insert(key.first);
    } else {
      multi_ips.insert(key.first);
      report.min_interarrival_hours.add(sim::to_seconds(min_gap) / 3600.0);
    }
  }

  if (report.groups > 0) {
    report.single_fraction = static_cast<double>(report.single_query_groups) /
                             static_cast<double>(report.groups);
    report.multi_fraction = 1.0 - report.single_fraction;
  }
  if (!single_ips.empty()) {
    std::size_t also_multi = 0;
    for (std::uint32_t ip : single_ips) {
      if (multi_ips.contains(ip)) ++also_multi;
    }
    report.single_ips_also_multi =
        static_cast<double>(also_multi) / static_cast<double>(single_ips.size());
  }
  return report;
}

}  // namespace dnsttl::crawl
