#include "crawl/engine.h"

#include <algorithm>
#include <functional>

#include "core/world.h"
#include "crawl/materialize.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "par/pool.h"
#include "resolver/recursive_resolver.h"
#include "stats/cdf.h"

namespace dnsttl::crawl {

namespace {

constexpr std::size_t kContentClasses = 4;

std::uint32_t slot_bit(dns::RRType type) {
  return std::uint32_t{1} << TypeTallyTable::slot_of(type);
}

/// True when two generated values materialize to the same wire rdata and
/// would therefore merge into one RRset member on a live server.  Address
/// types materialize through a hash, so distinct values can (rarely)
/// collide; name- and key-valued types materialize injectively.
bool same_wire_rdata(dns::RRType type, const std::string& a,
                     const std::string& b) {
  if (a == b) return true;
  switch (type) {
    case dns::RRType::kA:
      return (std::hash<std::string>{}(a) & 0x00ffffffu) ==
             (std::hash<std::string>{}(b) & 0x00ffffffu);
    case dns::RRType::kAAAA:
      return std::hash<std::string>{}(a) == std::hash<std::string>{}(b);
    default:
      return false;
  }
}

/// Appends @p domain's records of @p type to @p out with duplicates (by
/// wire rdata) collapsed, keeping the first occurrence — exactly the RRset
/// a live harvest of that type returns.  Both bulk-crawl drivers tabulate
/// through this rule, which is what makes their reports identical.
void collapse_type(const GeneratedDomain& domain, dns::RRType type,
                   std::vector<HarvestedRecord>& out) {
  const std::size_t start = out.size();
  for (const auto& record : domain.records) {
    if (record.type != type) continue;
    bool dup = false;
    for (std::size_t i = start; i < out.size() && !dup; ++i) {
      dup = same_wire_rdata(type, out[i].value, record.value);
    }
    if (!dup) out.push_back(record);
  }
}

/// Per-shard DMap accumulator: flat class counters plus one TTL sample set
/// per (class, type) cell, folded in shard order like the crawl partials.
struct DmapPartial {
  std::array<std::size_t, kContentClasses> class_counts{};
  std::array<stats::Cdf, kContentClasses * TypeTallyTable::kSlots.size()>
      ttls;

  static std::size_t cell(ContentClass content, std::size_t slot) {
    return static_cast<std::size_t>(content) * TypeTallyTable::kSlots.size() +
           slot;
  }
};

void dmap_tabulate(const GeneratedDomain& domain,
                   const std::vector<HarvestedRecord>& harvested,
                   DmapPartial& dmap) {
  if (!domain.responsive) return;
  ++dmap.class_counts[static_cast<std::size_t>(domain.content)];
  if (domain.content == ContentClass::kUnclassified) return;
  for (const auto& record : harvested) {
    dmap.ttls[DmapPartial::cell(domain.content,
                                TypeTallyTable::slot_of(record.type))]
        .add(static_cast<double>(record.ttl.value()));
  }
}

DmapReport finalize_dmap(std::vector<DmapPartial> partials) {
  DmapPartial merged;
  for (auto& partial : partials) {
    for (std::size_t c = 0; c < kContentClasses; ++c) {
      merged.class_counts[c] += partial.class_counts[c];
    }
    for (std::size_t cell = 0; cell < merged.ttls.size(); ++cell) {
      if (!partial.ttls[cell].empty()) {
        merged.ttls[cell].add_all(partial.ttls[cell].sorted_samples());
      }
    }
  }

  DmapReport report;
  for (std::size_t c = 0; c < kContentClasses; ++c) {
    if (merged.class_counts[c] != 0) {
      report.class_counts[static_cast<ContentClass>(c)] =
          merged.class_counts[c];
    }
  }
  for (std::size_t c = 0; c < kContentClasses; ++c) {
    for (std::size_t slot = 0; slot < TypeTallyTable::kSlots.size(); ++slot) {
      const auto& cdf = merged.ttls[DmapPartial::cell(
          static_cast<ContentClass>(c), slot)];
      if (!cdf.empty()) {
        report.median_ttl_hours[{static_cast<ContentClass>(c),
                                 TypeTallyTable::kSlots[slot]}] =
            cdf.median() / 3600.0;
      }
    }
  }
  return report;
}

/// Resolution lifecycle of one task slot.  A task is created when its
/// domain is admitted, performs the crawler's NS probe, then fetches the
/// remaining record types one query per step, and retires by folding its
/// collapsed harvest into the shard's partial tallies.
enum Phase : std::uint8_t {
  kFree = 0,     ///< slot available for admission
  kNsProbe,      ///< pending query: the NS probe every crawl starts with
  kHarvest,      ///< pending query: next unharvested record type
};

/// Everything one shard's scheduler produced.
struct ShardOut {
  PartialCrawl partial;
  DmapPartial dmap;
  std::size_t resolutions = 0;
  std::size_t queries = 0;
  std::size_t steps = 0;
  std::size_t high_water = 0;
};

/// One shard of the bulk resolution engine: an SoA pool of resumable
/// resolution tasks over the contiguous domain range [begin, end), advanced
/// in waves.  Every admitted domain is regenerated from its own forked
/// stream, so the shard needs nothing from its neighbours and the fold
/// stays a pure function of (params, list_rng, range).
ShardOut run_shard(const ListParams& params, const std::string& suffix,
                   const sim::Rng& list_rng, std::size_t begin,
                   std::size_t end, const EngineOptions& options) {
  ShardOut out;
  const std::size_t range = end - begin;
  const std::size_t capacity =
      std::min(std::max<std::size_t>(1, options.max_in_flight), range);
  if (range == 0) return out;

  // Task pool, struct-of-arrays: the scheduler scans the small hot arrays
  // (phase/cursor/pending) every wave and touches a task's domain buffers
  // only on the step that advances it.
  std::vector<std::uint8_t> phase(capacity, kFree);
  std::vector<std::uint32_t> cursor(capacity, 0);     ///< next record index
  std::vector<std::uint32_t> harvested(capacity, 0);  ///< slot bitmask done
  std::vector<GeneratedDomain> domain(capacity);
  std::vector<std::vector<HarvestedRecord>> harvest(capacity);

  std::size_t live = 0;
  std::size_t next = begin;

  auto retire = [&](std::size_t slot) {
    tabulate_domain(domain[slot], harvest[slot], out.partial);
    if (options.collect_content) {
      dmap_tabulate(domain[slot], harvest[slot], out.dmap);
    }
    phase[slot] = kFree;
    --live;
    ++out.resolutions;
  };

  while (live > 0 || next < end) {
    // Admission: refill every free slot from the shard's domain range.
    // The generated buffers (name, record strings) are recycled across the
    // domains a slot hosts, so steady-state allocation is near zero.
    if (next < end && live < capacity) {
      for (std::size_t slot = 0; slot < capacity && next < end; ++slot) {
        if (phase[slot] != kFree) continue;
        sim::Rng domain_rng = list_rng.fork(next);
        generate_domain(params, suffix, next, domain_rng, domain[slot]);
        harvest[slot].clear();
        cursor[slot] = 0;
        harvested[slot] = 0;
        phase[slot] = kNsProbe;
        ++live;
        ++next;
      }
    }
    out.high_water = std::max(out.high_water, live);

    // One wave: every live task advances exactly one step (at most one
    // query), so thousands of resolutions interleave like they would over
    // a real upstream, and completion order is deterministic.
    for (std::size_t slot = 0; slot < capacity; ++slot) {
      if (phase[slot] == kFree) continue;
      ++out.steps;
      GeneratedDomain& d = domain[slot];

      if (phase[slot] == kNsProbe) {
        ++out.queries;
        if (!d.responsive) {
          retire(slot);
          continue;
        }
        // The NS answer arrives with this probe: harvest the NS RRset (if
        // the domain answered with one) before moving to per-type fetches.
        const std::uint32_t ns_bit = slot_bit(dns::RRType::kNS);
        collapse_type(d, dns::RRType::kNS, harvest[slot]);
        harvested[slot] |= ns_bit;
        phase[slot] = kHarvest;
        continue;
      }

      // kHarvest: fetch the next record type this domain still owes us.
      auto& c = cursor[slot];
      while (c < d.records.size() &&
             (harvested[slot] & slot_bit(d.records[c].type)) != 0) {
        ++c;
      }
      if (c >= d.records.size()) {
        retire(slot);
        continue;
      }
      const dns::RRType type = d.records[c].type;
      ++out.queries;
      collapse_type(d, type, harvest[slot]);
      harvested[slot] |= slot_bit(type);
    }
  }
  return out;
}

}  // namespace

EngineResult crawl_engine(const ListParams& params, const sim::Rng& list_rng,
                          const EngineOptions& options) {
  const std::size_t domains = params.domains;
  std::size_t shard_count = options.shard_count != 0
                                ? options.shard_count
                                : par::shard_count_for(domains);
  if (shard_count == 0) shard_count = 1;
  if (shard_count > domains) shard_count = domains == 0 ? 1 : domains;

  const std::string suffix = list_suffix(params);
  const std::size_t chunk = (domains + shard_count - 1) / shard_count;
  auto outs = par::map_shards(shard_count, options.jobs,
                              [&](std::size_t shard) {
                                const std::size_t begin =
                                    std::min(shard * chunk, domains);
                                const std::size_t end =
                                    std::min(begin + chunk, domains);
                                return run_shard(params, suffix, list_rng,
                                                 begin, end, options);
                              });

  EngineResult result;
  std::vector<PartialCrawl> partials;
  std::vector<DmapPartial> dmap_partials;
  partials.reserve(outs.size());
  for (auto& out : outs) {
    result.stats.resolutions += out.resolutions;
    result.stats.queries += out.queries;
    result.stats.steps += out.steps;
    result.stats.in_flight_high_water =
        std::max(result.stats.in_flight_high_water, out.high_water);
    partials.push_back(std::move(out.partial));
    if (options.collect_content) {
      dmap_partials.push_back(std::move(out.dmap));
    }
  }
  result.stats.shards = shard_count;
  result.report = finalize_crawl(params.name, domains, std::move(partials));
  if (options.collect_content) {
    result.dmap = finalize_dmap(std::move(dmap_partials));
  }
  return result;
}

NestedResult crawl_nested(const ListParams& params, const sim::Rng& list_rng,
                          bool collect_content) {
  sim::Rng rng = list_rng;
  auto population = generate_population_forked(params, rng);

  NestedResult out;
  PartialCrawl partial;
  DmapPartial dmap;
  std::vector<HarvestedRecord> harvest;

  // The pre-engine nested-call discipline: every record type of every
  // domain is fetched by a full recursive resolution — root referral, TLD
  // referral, child answer, each leg a real Message through the
  // simulator's network with its wire-codec round trip.  The resolver is
  // flushed between fetches, because that is what "spawn the resolution
  // machinery per query" means: no state is shared across resolutions,
  // which is exactly what the bulk engine's multiplexed scheduler amortizes
  // away.
  core::World world(core::World::Options{1, /*loss_rate=*/0.0, {}});
  const auto location = net::Location{net::Region::kEU, 1.0};
  const std::string suffix = list_suffix(params);
  auto tld_zone = world.add_tld(suffix, "ns", dns::kTtl2Days, dns::Ttl{3600},
                                dns::Ttl{3600}, location);
  auto& child_host = world.add_server("bulk-crawl-child", location);
  const auto child_address = world.address_of("bulk-crawl-child");

  resolver::RecursiveResolver resolver("bulk-crawl-nested",
                                       resolver::ResolverConfig{},
                                       world.network(), world.hints());
  const auto resolver_address = world.network().attach(resolver, location);
  resolver.set_node_ref(net::NodeRef{resolver_address, location});

  for (const auto& domain : population) {
    harvest.clear();
    if (domain.responsive && !domain.records.empty()) {
      auto origin = dns::Name::from_string(domain.name);
      auto zone = std::make_shared<dns::Zone>(origin);
      zone->add(dns::make_soa(origin, dns::Ttl{3600}, origin.prepend("ns1"),
                              1));
      for (const auto& record : domain.records) {
        zone->add(dns::ResourceRecord{harvest_owner(origin, record.type),
                                      dns::RClass::kIN, record.ttl,
                                      materialize(record)});
      }
      const auto ns_name = origin.prepend("ns0");
      world.delegate(*tld_zone, origin, {{ns_name, child_address}},
                     params.registry_ns_ttl, dns::Ttl{3600});
      child_host.add_zone(zone);

      std::uint32_t asked = 0;
      for (const auto& record : domain.records) {
        const std::uint32_t bit = slot_bit(record.type);
        if ((asked & bit) != 0) continue;
        asked |= bit;

        const auto owner = harvest_owner(origin, record.type);
        resolver.flush();  // cold machinery for every fetch
        auto outcome = resolver.resolve(
            dns::Question{owner, record.type, dns::RClass::kIN},
            sim::Time{});
        out.queries += static_cast<std::size_t>(outcome.upstream_queries);

        // Tabulate the collapsed harvest, verified against the resolved
        // answer: it must carry exactly one RRset member per collapsed
        // record, at the record's TTL.
        const std::size_t before = harvest.size();
        collapse_type(domain, record.type, harvest);
        std::size_t wire = 0;
        bool bad = outcome.response.flags.rcode != dns::Rcode::kNoError;
        for (const auto& rr : outcome.response.answers) {
          if (rr.type() != record.type) continue;
          ++wire;
          if (rr.ttl != record.ttl) bad = true;
        }
        if (wire != harvest.size() - before) bad = true;
        if (bad) ++out.harvest_mismatches;
      }
      child_host.remove_zone(zone);
      tld_zone->remove(origin, dns::RRType::kNS);
      tld_zone->remove(ns_name, dns::RRType::kA);
    }
    tabulate_domain(domain, harvest, partial);
    if (collect_content) {
      dmap_tabulate(domain, harvest, dmap);
    }
  }

  std::vector<PartialCrawl> partials;
  partials.push_back(std::move(partial));
  out.report =
      finalize_crawl(params.name, population.size(), std::move(partials));
  if (collect_content) {
    std::vector<DmapPartial> dmap_partials;
    dmap_partials.push_back(std::move(dmap));
    out.dmap = finalize_dmap(std::move(dmap_partials));
  }
  return out;
}

}  // namespace dnsttl::crawl
