#include "crawl/crawler.h"

#include <optional>
#include <set>

namespace dnsttl::crawl {

namespace {

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

int classify_bailiwick(const GeneratedDomain& domain) {
  bool any_in = false;
  bool any_out = false;
  for (const auto& record : domain.records) {
    if (record.type != dns::RRType::kNS) continue;
    // In bailiwick: the NS target name lies under the domain itself.
    if (ends_with(record.value, "." + domain.name)) {
      any_in = true;
    } else {
      any_out = true;
    }
  }
  if (any_in && any_out) return 2;
  return any_in ? 1 : 0;
}

CrawlReport crawl(const std::string& list,
                  const std::vector<GeneratedDomain>& population) {
  CrawlReport report;
  report.list = list;
  report.domains = population.size();

  std::map<dns::RRType, std::set<std::string>> uniques;

  for (const auto& domain : population) {
    if (!domain.responsive) continue;
    ++report.responsive;
    ++report.bailiwick.responsive;

    switch (domain.ns_answer) {
      case NsAnswerKind::kCname:
        ++report.bailiwick.cname;
        break;
      case NsAnswerKind::kSoa:
        ++report.bailiwick.soa;
        break;
      case NsAnswerKind::kNsRecords: {
        bool has_ns = false;
        for (const auto& record : domain.records) {
          if (record.type == dns::RRType::kNS) {
            has_ns = true;
            break;
          }
        }
        if (has_ns) {
          ++report.bailiwick.respond_ns;
          switch (classify_bailiwick(domain)) {
            case 0:
              ++report.bailiwick.out_only;
              break;
            case 1:
              ++report.bailiwick.in_only;
              break;
            default:
              ++report.bailiwick.mixed;
          }
        }
        break;
      }
    }

    std::set<dns::RRType> ttl_zero_seen;
    for (const auto& record : domain.records) {
      auto& tally = report.by_type[record.type];
      ++tally.records;
      tally.ttl_cdf.add(static_cast<double>(record.ttl.value()));
      uniques[record.type].insert(record.value);
      if (record.ttl == dns::Ttl{} && !ttl_zero_seen.contains(record.type)) {
        ttl_zero_seen.insert(record.type);
        ++tally.ttl_zero_domains;
      }
    }
  }

  for (auto& [type, tally] : report.by_type) {
    tally.unique_values = uniques[type].size();
  }
  return report;
}

ParentChildReport compare_parent_child(
    const std::vector<GeneratedDomain>& population) {
  ParentChildReport report;
  for (const auto& domain : population) {
    if (!domain.responsive ||
        domain.ns_answer != NsAnswerKind::kNsRecords) {
      continue;
    }
    std::optional<dns::Ttl> child_ttl;
    for (const auto& record : domain.records) {
      if (record.type == dns::RRType::kNS) {
        child_ttl = record.ttl;
        break;
      }
    }
    if (!child_ttl || domain.parent_ns_ttl == dns::Ttl{}) {
      continue;
    }
    ++report.compared;
    if (*child_ttl < domain.parent_ns_ttl) {
      ++report.child_shorter;
    } else if (*child_ttl == domain.parent_ns_ttl) {
      ++report.equal;
    } else {
      ++report.child_longer;
    }
    report.child_over_parent_ratio.add(
        static_cast<double>(child_ttl->value()) /
        static_cast<double>(domain.parent_ns_ttl.value()));
  }
  return report;
}

}  // namespace dnsttl::crawl
