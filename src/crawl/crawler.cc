#include "crawl/crawler.h"

#include <algorithm>
#include <optional>
#include <set>

#include "par/pool.h"

namespace dnsttl::crawl {

namespace {

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// One slice's tallies before unique-value counting: the report plus the
/// raw per-type value sets (sets must survive the fold so cross-shard
/// duplicates collapse exactly as in a serial crawl).
struct PartialCrawl {
  CrawlReport report;
  std::map<dns::RRType, std::set<std::string>> uniques;
};

PartialCrawl tabulate_slice(const std::vector<GeneratedDomain>& population,
                            std::size_t begin, std::size_t end) {
  PartialCrawl partial;
  auto& report = partial.report;

  for (std::size_t i = begin; i < end; ++i) {
    const auto& domain = population[i];
    if (!domain.responsive) continue;
    ++report.responsive;
    ++report.bailiwick.responsive;

    switch (domain.ns_answer) {
      case NsAnswerKind::kCname:
        ++report.bailiwick.cname;
        break;
      case NsAnswerKind::kSoa:
        ++report.bailiwick.soa;
        break;
      case NsAnswerKind::kNsRecords: {
        bool has_ns = false;
        for (const auto& record : domain.records) {
          if (record.type == dns::RRType::kNS) {
            has_ns = true;
            break;
          }
        }
        if (has_ns) {
          ++report.bailiwick.respond_ns;
          switch (classify_bailiwick(domain)) {
            case 0:
              ++report.bailiwick.out_only;
              break;
            case 1:
              ++report.bailiwick.in_only;
              break;
            default:
              ++report.bailiwick.mixed;
          }
        }
        break;
      }
    }

    std::set<dns::RRType> ttl_zero_seen;
    for (const auto& record : domain.records) {
      auto& tally = report.by_type[record.type];
      ++tally.records;
      tally.ttl_cdf.add(static_cast<double>(record.ttl.value()));
      partial.uniques[record.type].insert(record.value);
      if (record.ttl == dns::Ttl{} && !ttl_zero_seen.contains(record.type)) {
        ttl_zero_seen.insert(record.type);
        ++tally.ttl_zero_domain_count;
      }
    }
  }
  return partial;
}

CrawlReport finalize_crawl(const std::string& list, std::size_t domains,
                           std::vector<PartialCrawl> partials) {
  CrawlReport report;
  report.list = list;
  report.domains = domains;

  std::map<dns::RRType, std::set<std::string>> uniques;
  for (auto& partial : partials) {
    report.responsive += partial.report.responsive;
    auto& b = report.bailiwick;
    const auto& pb = partial.report.bailiwick;
    b.responsive += pb.responsive;
    b.cname += pb.cname;
    b.soa += pb.soa;
    b.respond_ns += pb.respond_ns;
    b.out_only += pb.out_only;
    b.in_only += pb.in_only;
    b.mixed += pb.mixed;

    for (auto& [type, tally] : partial.report.by_type) {
      auto& merged = report.by_type[type];
      merged.records += tally.records;
      merged.ttl_zero_domain_count += tally.ttl_zero_domain_count;
      merged.ttl_cdf.add_all(tally.ttl_cdf.sorted_samples());
    }
    for (auto& [type, values] : partial.uniques) {
      uniques[type].merge(values);
    }
  }
  for (auto& [type, tally] : report.by_type) {
    tally.unique_values = uniques[type].size();
  }
  return report;
}

}  // namespace

int classify_bailiwick(const GeneratedDomain& domain) {
  bool any_in = false;
  bool any_out = false;
  for (const auto& record : domain.records) {
    if (record.type != dns::RRType::kNS) continue;
    // In bailiwick: the NS target name lies under the domain itself.
    if (ends_with(record.value, "." + domain.name)) {
      any_in = true;
    } else {
      any_out = true;
    }
  }
  if (any_in && any_out) return 2;
  return any_in ? 1 : 0;
}

CrawlReport crawl(const std::string& list,
                  const std::vector<GeneratedDomain>& population) {
  return crawl_sharded(list, population, 1, 1);
}

CrawlReport crawl_sharded(const std::string& list,
                          const std::vector<GeneratedDomain>& population,
                          std::size_t shard_count, std::size_t jobs) {
  if (shard_count == 0) shard_count = 1;
  if (shard_count > population.size()) {
    shard_count = population.size() == 0 ? 1 : population.size();
  }

  // Contiguous slices, so folding the partials in shard order visits the
  // domains exactly as a serial pass would.
  const std::size_t chunk = (population.size() + shard_count - 1) / shard_count;
  auto partials =
      par::map_shards(shard_count, jobs, [&](std::size_t shard) {
        std::size_t begin = shard * chunk;
        std::size_t end = std::min(begin + chunk, population.size());
        return tabulate_slice(population, std::min(begin, end), end);
      });
  return finalize_crawl(list, population.size(), std::move(partials));
}

ParentChildReport compare_parent_child(
    const std::vector<GeneratedDomain>& population) {
  ParentChildReport report;
  for (const auto& domain : population) {
    if (!domain.responsive ||
        domain.ns_answer != NsAnswerKind::kNsRecords) {
      continue;
    }
    std::optional<dns::Ttl> child_ttl;
    for (const auto& record : domain.records) {
      if (record.type == dns::RRType::kNS) {
        child_ttl = record.ttl;
        break;
      }
    }
    if (!child_ttl || domain.parent_ns_ttl == dns::Ttl{}) {
      continue;
    }
    ++report.compared;
    if (*child_ttl < domain.parent_ns_ttl) {
      ++report.child_shorter;
    } else if (*child_ttl == domain.parent_ns_ttl) {
      ++report.equal;
    } else {
      ++report.child_longer;
    }
    report.child_over_parent_ratio.add(
        static_cast<double>(child_ttl->value()) /
        static_cast<double>(domain.parent_ns_ttl.value()));
  }
  return report;
}

}  // namespace dnsttl::crawl
