#include "crawl/crawler.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "crawl/tabulate.h"
#include "par/pool.h"

namespace dnsttl::crawl {

namespace {

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

PartialCrawl tabulate_slice(const std::vector<GeneratedDomain>& population,
                            std::size_t begin, std::size_t end) {
  PartialCrawl partial;
  for (std::size_t i = begin; i < end; ++i) {
    tabulate_domain(population[i], partial);
  }
  return partial;
}

}  // namespace

void tabulate_domain(const GeneratedDomain& domain, PartialCrawl& partial) {
  tabulate_domain(domain, domain.records, partial);
}

void tabulate_domain(const GeneratedDomain& domain,
                     const std::vector<HarvestedRecord>& harvested,
                     PartialCrawl& partial) {
  auto& report = partial.report;
  if (!domain.responsive) return;
  ++report.responsive;
  ++report.bailiwick.responsive;

  switch (domain.ns_answer) {
    case NsAnswerKind::kCname:
      ++report.bailiwick.cname;
      break;
    case NsAnswerKind::kSoa:
      ++report.bailiwick.soa;
      break;
    case NsAnswerKind::kNsRecords: {
      bool has_ns = false;
      for (const auto& record : harvested) {
        if (record.type == dns::RRType::kNS) {
          has_ns = true;
          break;
        }
      }
      if (has_ns) {
        ++report.bailiwick.respond_ns;
        switch (classify_bailiwick(domain)) {
          case 0:
            ++report.bailiwick.out_only;
            break;
          case 1:
            ++report.bailiwick.in_only;
            break;
          default:
            ++report.bailiwick.mixed;
        }
      }
      break;
    }
  }

  // Per-domain TTL=0 dedup as a slot bitmask instead of a heap-allocated
  // std::set — this runs once per record of every domain crawled.
  std::uint32_t ttl_zero_seen = 0;
  for (const auto& record : harvested) {
    const std::size_t slot = TypeTallyTable::slot_of(record.type);
    auto& tally = report.by_type[record.type];
    ++tally.records;
    tally.ttl_cdf.add(static_cast<double>(record.ttl.value()));
    partial.uniques[slot].insert(record.value);
    const std::uint32_t bit = std::uint32_t{1} << slot;
    if (record.ttl == dns::Ttl{} && (ttl_zero_seen & bit) == 0) {
      ttl_zero_seen |= bit;
      ++tally.ttl_zero_domain_count;
    }
  }
}

CrawlReport finalize_crawl(const std::string& list, std::size_t domains,
                           std::vector<PartialCrawl> partials) {
  CrawlReport report;
  report.list = list;
  report.domains = domains;

  std::array<std::unordered_set<std::string>, TypeTallyTable::kSlots.size()>
      uniques;
  for (auto& partial : partials) {
    report.responsive += partial.report.responsive;
    auto& b = report.bailiwick;
    const auto& pb = partial.report.bailiwick;
    b.responsive += pb.responsive;
    b.cname += pb.cname;
    b.soa += pb.soa;
    b.respond_ns += pb.respond_ns;
    b.out_only += pb.out_only;
    b.in_only += pb.in_only;
    b.mixed += pb.mixed;

    for (std::size_t slot = 0; slot < TypeTallyTable::kSlots.size(); ++slot) {
      if (!partial.report.by_type.slot_used(slot)) continue;
      auto& tally = partial.report.by_type.slot(slot);
      report.by_type.mark_used(slot);
      auto& merged = report.by_type.slot(slot);
      merged.records += tally.records;
      merged.ttl_zero_domain_count += tally.ttl_zero_domain_count;
      merged.ttl_cdf.add_all(tally.ttl_cdf.sorted_samples());
      uniques[slot].merge(partial.uniques[slot]);
    }
  }
  for (std::size_t slot = 0; slot < TypeTallyTable::kSlots.size(); ++slot) {
    if (report.by_type.slot_used(slot)) {
      report.by_type.slot(slot).unique_values = uniques[slot].size();
    }
  }
  return report;
}

int classify_bailiwick(const GeneratedDomain& domain) {
  bool any_in = false;
  bool any_out = false;
  for (const auto& record : domain.records) {
    if (record.type != dns::RRType::kNS) continue;
    // In bailiwick: the NS target name lies under the domain itself.
    if (ends_with(record.value, "." + domain.name)) {
      any_in = true;
    } else {
      any_out = true;
    }
  }
  if (any_in && any_out) return 2;
  return any_in ? 1 : 0;
}

CrawlReport crawl(const std::string& list,
                  const std::vector<GeneratedDomain>& population) {
  return crawl_sharded(list, population, 1, 1);
}

CrawlReport crawl_sharded(const std::string& list,
                          const std::vector<GeneratedDomain>& population,
                          std::size_t shard_count, std::size_t jobs) {
  if (shard_count == 0) shard_count = 1;
  if (shard_count > population.size()) {
    shard_count = population.size() == 0 ? 1 : population.size();
  }

  // Contiguous slices, so folding the partials in shard order visits the
  // domains exactly as a serial pass would.
  const std::size_t chunk = (population.size() + shard_count - 1) / shard_count;
  auto partials =
      par::map_shards(shard_count, jobs, [&](std::size_t shard) {
        std::size_t begin = shard * chunk;
        std::size_t end = std::min(begin + chunk, population.size());
        return tabulate_slice(population, std::min(begin, end), end);
      });
  return finalize_crawl(list, population.size(), std::move(partials));
}

ParentChildReport compare_parent_child(
    const std::vector<GeneratedDomain>& population) {
  ParentChildReport report;
  for (const auto& domain : population) {
    if (!domain.responsive ||
        domain.ns_answer != NsAnswerKind::kNsRecords) {
      continue;
    }
    std::optional<dns::Ttl> child_ttl;
    for (const auto& record : domain.records) {
      if (record.type == dns::RRType::kNS) {
        child_ttl = record.ttl;
        break;
      }
    }
    if (!child_ttl || domain.parent_ns_ttl == dns::Ttl{}) {
      continue;
    }
    ++report.compared;
    if (*child_ttl < domain.parent_ns_ttl) {
      ++report.child_shorter;
    } else if (*child_ttl == domain.parent_ns_ttl) {
      ++report.equal;
    } else {
      ++report.child_longer;
    }
    report.child_over_parent_ratio.add(
        static_cast<double>(child_ttl->value()) /
        static_cast<double>(domain.parent_ns_ttl.value()));
  }
  return report;
}

}  // namespace dnsttl::crawl
