#ifndef DNSTTL_CRAWL_DMAP_H
#define DNSTTL_CRAWL_DMAP_H

#include <map>
#include <string>
#include <vector>

#include "crawl/population_generator.h"

namespace dnsttl::crawl {

/// DMap-style content analysis of a `.nl`-like population (§5.1.1):
/// how many domains fall in each web-content class, and the median TTL per
/// class and record type (Tables 6 and 7).
struct DmapReport {
  std::map<ContentClass, std::size_t> class_counts;
  /// median TTL in hours per (class, type) — Table 7's cells.
  std::map<std::pair<ContentClass, dns::RRType>, double> median_ttl_hours;

  std::size_t total_classified() const;
};

DmapReport classify_content(const std::vector<GeneratedDomain>& population);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_DMAP_H
