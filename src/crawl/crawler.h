#ifndef DNSTTL_CRAWL_CRAWLER_H
#define DNSTTL_CRAWL_CRAWLER_H

#include <map>
#include <string>
#include <vector>

#include "crawl/population_generator.h"
#include "stats/cdf.h"

namespace dnsttl::crawl {

/// Per-record-type tabulation for one list — a Table 5 column.
struct TypeTally {
  std::size_t records = 0;
  std::size_t unique_values = 0;
  std::size_t ttl_zero_domain_count = 0;  ///< Table 8's per-type domain counts
  stats::Cdf ttl_cdf;                ///< Figure 9's curves

  double unique_ratio() const {
    return unique_values == 0
               ? 0.0
               : static_cast<double>(records) /
                     static_cast<double>(unique_values);
  }
};

/// Bailiwick classification of NS-responding domains — a Table 9 column.
struct BailiwickTally {
  std::size_t responsive = 0;
  std::size_t cname = 0;
  std::size_t soa = 0;
  std::size_t respond_ns = 0;
  std::size_t out_only = 0;
  std::size_t in_only = 0;
  std::size_t mixed = 0;
};

/// Everything the §5.1 analyses extract from one list crawl.
struct CrawlReport {
  std::string list;
  std::size_t domains = 0;
  std::size_t responsive = 0;
  std::map<dns::RRType, TypeTally> by_type;
  BailiwickTally bailiwick;

  double responsive_ratio() const {
    return domains == 0 ? 0.0
                        : static_cast<double>(responsive) /
                              static_cast<double>(domains);
  }
};

/// Tabulates a generated population exactly as the paper's crawler
/// tabulated its DNS harvest: counts, unique values, TTL CDFs, TTL=0
/// domains, and the bailiwick configuration of each domain's NS set.
CrawlReport crawl(const std::string& list,
                  const std::vector<GeneratedDomain>& population);

/// Sharded crawl: tabulates @p shard_count contiguous slices of the
/// population concurrently (at most @p jobs threads) and folds the partial
/// tallies in shard order.  Unique-value counting keeps per-shard sets that
/// are unioned at the fold, so every report field matches crawl() exactly
/// for any shard/job split.
CrawlReport crawl_sharded(const std::string& list,
                          const std::vector<GeneratedDomain>& population,
                          std::size_t shard_count, std::size_t jobs);

/// Classifies one domain's NS targets against its own name:
/// 0 = out-of-bailiwick only, 1 = in-bailiwick only, 2 = mixed.
int classify_bailiwick(const GeneratedDomain& domain);

/// The parent-vs-child TTL comparison the paper lists as future work
/// (§5.1): for every NS-responding domain, compare the child's apex NS TTL
/// with the registry's delegation copy.
struct ParentChildReport {
  std::size_t compared = 0;
  std::size_t child_shorter = 0;
  std::size_t equal = 0;
  std::size_t child_longer = 0;
  stats::Cdf child_over_parent_ratio;  ///< child TTL / parent TTL

  double child_shorter_fraction() const {
    return compared == 0 ? 0.0
                         : static_cast<double>(child_shorter) /
                               static_cast<double>(compared);
  }
};

ParentChildReport compare_parent_child(
    const std::vector<GeneratedDomain>& population);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_CRAWLER_H
