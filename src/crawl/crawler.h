#ifndef DNSTTL_CRAWL_CRAWLER_H
#define DNSTTL_CRAWL_CRAWLER_H

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "crawl/population_generator.h"
#include "stats/cdf.h"

namespace dnsttl::crawl {

/// Per-record-type tabulation for one list — a Table 5 column.
struct TypeTally {
  std::size_t records = 0;
  std::size_t unique_values = 0;
  std::size_t ttl_zero_domain_count = 0;  ///< Table 8's per-type domain counts
  stats::Cdf ttl_cdf;                ///< Figure 9's curves

  double unique_ratio() const {
    return unique_values == 0
               ? 0.0
               : static_cast<double>(records) /
                     static_cast<double>(unique_values);
  }
};

/// Flat per-type tally table: one fixed slot per record type a crawl can
/// harvest, in ascending RRType order.  Replaces the former
/// std::map<dns::RRType, TypeTally> on the tabulation hot path — slot
/// lookup is a switch instead of a tree walk — while iteration still
/// visits touched slots in RRType order, so rendered tables are
/// byte-identical to the map-backed output.
class TypeTallyTable {
 public:
  /// Every type the generator or a live crawl can produce, ascending.
  static constexpr std::array<dns::RRType, 8> kSlots = {
      dns::RRType::kA,     dns::RRType::kNS,  dns::RRType::kCNAME,
      dns::RRType::kSOA,   dns::RRType::kMX,  dns::RRType::kTXT,
      dns::RRType::kAAAA,  dns::RRType::kDNSKEY};

  /// Map-style access: touching a slot makes it visible to iteration,
  /// exactly as operator[] inserted a key into the old map.
  TypeTally& operator[](dns::RRType type) {
    const std::size_t slot = slot_of(type);
    used_[slot] = true;
    return tallies_[slot];
  }

  /// nullptr when the crawl never saw this type (the old map.find == end).
  const TypeTally* find(dns::RRType type) const {
    const std::size_t slot = slot_of(type);
    return used_[slot] ? &tallies_[slot] : nullptr;
  }

  const TypeTally& at(dns::RRType type) const {
    const TypeTally* tally = find(type);
    if (tally == nullptr) {
      throw std::out_of_range("TypeTallyTable::at: type never tallied");
    }
    return *tally;
  }

  std::size_t size() const {
    std::size_t count = 0;
    for (bool used : used_) count += used;
    return count;
  }

  /// Iterates touched slots in ascending RRType order (the map's order).
  class const_iterator {
   public:
    const_iterator(const TypeTallyTable* table, std::size_t slot)
        : table_(table), slot_(slot) {
      skip_unused();
    }
    std::pair<dns::RRType, const TypeTally&> operator*() const {
      return {kSlots[slot_], table_->tallies_[slot_]};
    }
    const_iterator& operator++() {
      ++slot_;
      skip_unused();
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }

   private:
    void skip_unused() {
      while (slot_ < kSlots.size() && !table_->used_[slot_]) ++slot_;
    }
    const TypeTallyTable* table_;
    std::size_t slot_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, kSlots.size()); }

  /// Mutable slot access by index for fold loops; pairs with kSlots.
  TypeTally& slot(std::size_t index) { return tallies_[index]; }
  bool slot_used(std::size_t index) const { return used_[index]; }
  void mark_used(std::size_t index) { used_[index] = true; }

  static std::size_t slot_of(dns::RRType type) {
    switch (type) {
      case dns::RRType::kA: return 0;
      case dns::RRType::kNS: return 1;
      case dns::RRType::kCNAME: return 2;
      case dns::RRType::kSOA: return 3;
      case dns::RRType::kMX: return 4;
      case dns::RRType::kTXT: return 5;
      case dns::RRType::kAAAA: return 6;
      case dns::RRType::kDNSKEY: return 7;
      default:
        throw std::out_of_range("TypeTallyTable: type outside crawl slots");
    }
  }

 private:
  std::array<TypeTally, kSlots.size()> tallies_{};
  std::array<bool, kSlots.size()> used_{};
};

/// Bailiwick classification of NS-responding domains — a Table 9 column.
struct BailiwickTally {
  std::size_t responsive = 0;
  std::size_t cname = 0;
  std::size_t soa = 0;
  std::size_t respond_ns = 0;
  std::size_t out_only = 0;
  std::size_t in_only = 0;
  std::size_t mixed = 0;
};

/// Everything the §5.1 analyses extract from one list crawl.
struct CrawlReport {
  std::string list;
  std::size_t domains = 0;
  std::size_t responsive = 0;
  TypeTallyTable by_type;
  BailiwickTally bailiwick;

  double responsive_ratio() const {
    return domains == 0 ? 0.0
                        : static_cast<double>(responsive) /
                              static_cast<double>(domains);
  }
};

/// Tabulates a generated population exactly as the paper's crawler
/// tabulated its DNS harvest: counts, unique values, TTL CDFs, TTL=0
/// domains, and the bailiwick configuration of each domain's NS set.
CrawlReport crawl(const std::string& list,
                  const std::vector<GeneratedDomain>& population);

/// Sharded crawl: tabulates @p shard_count contiguous slices of the
/// population concurrently (at most @p jobs threads) and folds the partial
/// tallies in shard order.  Unique-value counting keeps per-shard sets that
/// are unioned at the fold, so every report field matches crawl() exactly
/// for any shard/job split.
CrawlReport crawl_sharded(const std::string& list,
                          const std::vector<GeneratedDomain>& population,
                          std::size_t shard_count, std::size_t jobs);

/// Classifies one domain's NS targets against its own name:
/// 0 = out-of-bailiwick only, 1 = in-bailiwick only, 2 = mixed.
int classify_bailiwick(const GeneratedDomain& domain);

/// The parent-vs-child TTL comparison the paper lists as future work
/// (§5.1): for every NS-responding domain, compare the child's apex NS TTL
/// with the registry's delegation copy.
struct ParentChildReport {
  std::size_t compared = 0;
  std::size_t child_shorter = 0;
  std::size_t equal = 0;
  std::size_t child_longer = 0;
  stats::Cdf child_over_parent_ratio;  ///< child TTL / parent TTL

  double child_shorter_fraction() const {
    return compared == 0 ? 0.0
                         : static_cast<double>(child_shorter) /
                               static_cast<double>(compared);
  }
};

ParentChildReport compare_parent_child(
    const std::vector<GeneratedDomain>& population);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_CRAWLER_H
