#include "crawl/live_check.h"

#include <map>
#include <set>

#include "crawl/materialize.h"

namespace dnsttl::crawl {

LiveCheckReport verify_population_live(
    core::World& world, const std::vector<GeneratedDomain>& population,
    std::size_t sample_size, sim::Rng& rng) {
  LiveCheckReport report;
  auto& server =
      world.add_server("live-check", net::Location{net::Region::kEU, 1.0});
  auto address = world.address_of("live-check");
  net::NodeRef client{dns::Ipv4(10, 250, 0, 1),
                      net::Location{net::Region::kEU, 1.0}};

  std::size_t attempts = 0;
  while (report.domains_checked < sample_size &&
         attempts < sample_size * 20) {
    ++attempts;
    const auto& domain =
        population[rng.uniform_int(0, population.size() - 1)];
    if (!domain.responsive || domain.records.empty() ||
        domain.ns_answer != NsAnswerKind::kNsRecords) {
      continue;
    }

    // Materialize the domain as a live zone.
    auto origin = dns::Name::from_string(domain.name);
    auto zone = std::make_shared<dns::Zone>(origin);
    zone->add(dns::make_soa(origin, dns::Ttl{3600}, origin.prepend("ns1"), 1));
    for (const auto& record : domain.records) {
      zone->add(dns::ResourceRecord{harvest_owner(origin, record.type),
                                    dns::RClass::kIN, record.ttl,
                                    materialize(record)});
    }
    server.add_zone(zone);
    ++report.domains_checked;

    // Crawl it back through the wire and compare with the tabulated view.
    std::map<dns::RRType, std::vector<const HarvestedRecord*>> expected;
    for (const auto& record : domain.records) {
      expected[record.type].push_back(&record);
    }
    for (const auto& [type, records] : expected) {
      auto query = dns::Message::make_query(1, harvest_owner(origin, type), type);
      query.add_edns();
      auto outcome = world.network().query(client, address, query, sim::Time{});
      ++report.records_checked;
      if (!outcome.response || !outcome.response->flags.aa) {
        ++report.mismatches;
        continue;
      }
      std::size_t harvested = 0;
      bool bad = false;
      for (const auto& rr : outcome.response->answers) {
        if (rr.type() != type) {
          continue;  // RRSIGs etc.
        }
        ++harvested;
        if (rr.ttl != records.front()->ttl) {
          bad = true;
        }
        // Value check: the harvested rdata must equal some generated
        // record's materialization.
        bool matched = false;
        for (const auto* record : records) {
          if (rr.rdata == materialize(*record)) {
            matched = true;
            break;
          }
        }
        bad |= !matched;
      }
      // Duplicate generated values collapse into one RRset member.
      std::set<std::string> distinct;
      for (const auto* record : records) {
        distinct.insert(record->value);
      }
      if (bad || harvested != distinct.size()) {
        ++report.mismatches;
      }
    }
    server.remove_zone(zone);
  }
  return report;
}

}  // namespace dnsttl::crawl
