#include "crawl/live_check.h"

#include <functional>
#include <map>
#include <set>

namespace dnsttl::crawl {

namespace {

/// Deterministic value→address mappings so both sides of the check derive
/// addresses from the same opaque record values.
dns::Ipv4 ipv4_for(const std::string& value) {
  auto h = static_cast<std::uint32_t>(std::hash<std::string>{}(value));
  return dns::Ipv4{0x0a000000u | (h & 0x00ffffffu)};  // 10.x.y.z
}

dns::Ipv6 ipv6_for(const std::string& value) {
  auto h = std::hash<std::string>{}(value);
  std::array<std::uint8_t, 16> octets{};
  octets[0] = 0x20;
  octets[1] = 0x01;
  for (int i = 0; i < 8; ++i) {
    octets[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(h >> (i * 8));
  }
  return dns::Ipv6{octets};
}

dns::Rdata materialize(const HarvestedRecord& record,
                       const dns::Name& owner) {
  switch (record.type) {
    case dns::RRType::kA:
      return dns::ARdata{ipv4_for(record.value)};
    case dns::RRType::kAAAA:
      return dns::AaaaRdata{ipv6_for(record.value)};
    case dns::RRType::kNS:
      return dns::NsRdata{dns::Name::from_string(record.value)};
    case dns::RRType::kMX:
      return dns::MxRdata{10, dns::Name::from_string(record.value)};
    case dns::RRType::kCNAME:
      return dns::CnameRdata{dns::Name::from_string(record.value)};
    case dns::RRType::kDNSKEY: {
      dns::DnskeyRdata key;
      key.public_key = record.value;
      return key;
    }
    default:
      (void)owner;
      return dns::TxtRdata{record.value};
  }
}

dns::Name owner_for(const GeneratedDomain& domain, dns::RRType type) {
  auto base = dns::Name::from_string(domain.name);
  // CNAMEs cannot coexist with other data at a node; crawlers harvest them
  // from www-style aliases.
  return type == dns::RRType::kCNAME ? base.prepend("alias") : base;
}

}  // namespace

LiveCheckReport verify_population_live(
    core::World& world, const std::vector<GeneratedDomain>& population,
    std::size_t sample_size, sim::Rng& rng) {
  LiveCheckReport report;
  auto& server =
      world.add_server("live-check", net::Location{net::Region::kEU, 1.0});
  auto address = world.address_of("live-check");
  net::NodeRef client{dns::Ipv4(10, 250, 0, 1),
                      net::Location{net::Region::kEU, 1.0}};

  std::size_t attempts = 0;
  while (report.domains_checked < sample_size &&
         attempts < sample_size * 20) {
    ++attempts;
    const auto& domain =
        population[rng.uniform_int(0, population.size() - 1)];
    if (!domain.responsive || domain.records.empty() ||
        domain.ns_answer != NsAnswerKind::kNsRecords) {
      continue;
    }

    // Materialize the domain as a live zone.
    auto origin = dns::Name::from_string(domain.name);
    auto zone = std::make_shared<dns::Zone>(origin);
    zone->add(dns::make_soa(origin, dns::Ttl{3600}, origin.prepend("ns1"), 1));
    for (const auto& record : domain.records) {
      zone->add(dns::ResourceRecord{owner_for(domain, record.type),
                                    dns::RClass::kIN, record.ttl,
                                    materialize(record, origin)});
    }
    server.add_zone(zone);
    ++report.domains_checked;

    // Crawl it back through the wire and compare with the tabulated view.
    std::map<dns::RRType, std::vector<const HarvestedRecord*>> expected;
    for (const auto& record : domain.records) {
      expected[record.type].push_back(&record);
    }
    for (const auto& [type, records] : expected) {
      auto query = dns::Message::make_query(1, owner_for(domain, type), type);
      query.add_edns();
      auto outcome = world.network().query(client, address, query, sim::Time{});
      ++report.records_checked;
      if (!outcome.response || !outcome.response->flags.aa) {
        ++report.mismatches;
        continue;
      }
      std::size_t harvested = 0;
      bool bad = false;
      for (const auto& rr : outcome.response->answers) {
        if (rr.type() != type) {
          continue;  // RRSIGs etc.
        }
        ++harvested;
        if (rr.ttl != records.front()->ttl) {
          bad = true;
        }
        // Value check: the harvested rdata must equal some generated
        // record's materialization.
        bool matched = false;
        for (const auto* record : records) {
          if (rr.rdata == materialize(*record, origin)) {
            matched = true;
            break;
          }
        }
        bad |= !matched;
      }
      // Duplicate generated values collapse into one RRset member.
      std::set<std::string> distinct;
      for (const auto* record : records) {
        distinct.insert(record->value);
      }
      if (bad || harvested != distinct.size()) {
        ++report.mismatches;
      }
    }
    server.remove_zone(zone);
  }
  return report;
}

}  // namespace dnsttl::crawl
