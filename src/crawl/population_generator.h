#ifndef DNSTTL_CRAWL_POPULATION_GENERATOR_H
#define DNSTTL_CRAWL_POPULATION_GENERATOR_H

#include <string>
#include <vector>

#include "dns/types.h"
#include "sim/rng.h"

namespace dnsttl::crawl {

/// Weighted TTL distribution over the human-chosen value grid the paper
/// observes (Figure 9): {0, 30, 60, 300, ..., 172800}.
struct TtlDist {
  std::vector<dns::Ttl> values;
  std::vector<double> weights;

  TtlDist() = default;
  /// Grid values are spelled in seconds; each entry is RFC 2181-clamped on
  /// the way in, so the distribution can never emit an out-of-range TTL.
  TtlDist(std::initializer_list<std::uint32_t> ttl_seconds,
          std::initializer_list<double> ttl_weights)
      : weights(ttl_weights) {
    values.reserve(ttl_seconds.size());
    for (std::uint32_t s : ttl_seconds) {
      values.emplace_back(s);
    }
  }

  dns::Ttl sample(sim::Rng& rng) const {
    return values[rng.weighted_index(weights)];
  }
};

/// DMap content classes for `.nl` (§5.1.1, Table 6).
enum class ContentClass : std::uint8_t {
  kUnclassified = 0,
  kPlaceholder,
  kEcommerce,
  kParking,
};

std::string_view to_string(ContentClass content);

/// One record as the crawler would harvest it from the child authoritative.
struct HarvestedRecord {
  dns::RRType type = dns::RRType::kA;
  dns::Ttl ttl = dns::Ttl{3600};
  std::string value;  ///< rdata identity (address / target name / key)
};

/// How a domain answered the crawler's NS query (Table 9's rows).
enum class NsAnswerKind : std::uint8_t { kNsRecords, kCname, kSoa };

/// One crawled domain with everything the §5 analyses need.
struct GeneratedDomain {
  std::string name;
  bool responsive = true;
  NsAnswerKind ns_answer = NsAnswerKind::kNsRecords;
  std::vector<HarvestedRecord> records;
  ContentClass content = ContentClass::kUnclassified;
  /// The registry's (parent-side) copy of the NS TTL — what a crawl of the
  /// parent authoritative would harvest for this delegation.
  dns::Ttl parent_ns_ttl = dns::kTtl2Days;
};

/// Knobs of one synthetic list population, calibrated per list to Table 5 /
/// Figure 9 / Table 9 (see list parameter factories below).
struct ListParams {
  std::string name;
  std::size_t domains = 100000;
  double responsive = 0.95;

  /// NS-query answer behavior of responsive domains.
  double cname_answer = 0.02;
  double soa_answer = 0.01;

  /// Bailiwick mix among NS-responding domains (Table 9).
  double out_only = 0.95;
  double in_only = 0.035;
  // remainder: mixed

  /// Registry-imposed TTL of the parent-side delegation copy (e.g. 172800 s
  /// for .com/.net, 3600 s for .nl's children) — the other half of the
  /// parent/child comparison the paper leaves as future work (§5.1).
  dns::Ttl registry_ns_ttl = dns::kTtl2Days;

  /// Hosting provider pool (drives Table 5's unique-record ratios):
  /// a Zipf-ish pool of providers whose NS names and address blocks are
  /// shared across customer domains.
  std::size_t providers = 4000;
  double provider_zipf = 1.0;

  /// Record presence and multiplicity.
  double ns_min = 2, ns_max = 4;
  double a_presence = 0.95;
  double aaaa_presence = 0.25;
  double mx_presence = 0.65;
  double dnskey_presence = 0.04;
  double cname_rr_presence = 0.04;

  /// Record-value sharing (drives Table 5's unique-record ratios):
  /// probability that a value comes from the hosting provider's shared
  /// pool rather than being domain-unique.
  double a_shared = 0.5;
  double mx_shared = 0.7;
  double cname_shared = 0.5;
  double dnskey_two_keys = 0.6;  ///< chance of a second (KSK) key record
  /// Probability a DNSKEY is a hosting provider's shared signing key
  /// rather than a per-domain one (drives Table 5's 1.6 vs 1.06 ratios).
  double dnskey_shared = 0.45;
  std::size_t provider_ip_pool = 8;

  /// Per-type TTL distributions (child authoritative view, Figure 9).
  TtlDist ns_ttl;
  TtlDist a_ttl;
  TtlDist aaaa_ttl;
  TtlDist mx_ttl;
  TtlDist dnskey_ttl;
  TtlDist cname_ttl;

  /// Content classification (only used for `.nl`): fraction of domains
  /// classified at all, then the class split among classified ones.
  double classified_fraction = 0.0;
  double placeholder_share = 0.81;
  double ecommerce_share = 0.10;
  // remainder: parking
};

/// Per-list calibrated parameter factories (DESIGN.md §4).
ListParams alexa_params(std::size_t domains = 100000);
ListParams majestic_params(std::size_t domains = 100000);
ListParams umbrella_params(std::size_t domains = 100000);
ListParams nl_params(std::size_t domains = 500000);
ListParams root_params();  ///< 1535 responsive TLDs, fixed small size

/// Lowercased alphanumeric form of the list name, used as the synthetic
/// TLD of its domains ("Alexa" → "alexa", ".nl" → "nl").
std::string list_suffix(const ListParams& params);

/// Generates domain @p index of the list into @p domain (which is reset
/// first, retaining its buffers), consuming draws from @p rng in the exact
/// order the serial generator always has.  With the shared list stream this
/// reproduces generate_population() element-for-element; with a per-domain
/// forked stream (`rng.fork(index)`) the domain becomes a pure function of
/// (params, seed, index), which is what lets the bulk resolution engine
/// generate shards independently and stream populations it never
/// materializes.
void generate_domain(const ListParams& params, const std::string& suffix,
                     std::size_t index, sim::Rng& rng,
                     GeneratedDomain& domain);

/// Generates the synthetic population for one list.
std::vector<GeneratedDomain> generate_population(const ListParams& params,
                                                 sim::Rng& rng);

/// Forked-stream variant: domain i is drawn from `rng.fork(i)`, so any
/// contiguous slice can be regenerated independently of the rest of the
/// list.  This is the population discipline of the bulk resolution engine;
/// it draws different (equally calibrated) populations than the serial
/// shared-stream generator.
std::vector<GeneratedDomain> generate_population_forked(
    const ListParams& params, sim::Rng& rng);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_POPULATION_GENERATOR_H
