#ifndef DNSTTL_CRAWL_TABULATE_H
#define DNSTTL_CRAWL_TABULATE_H

#include <array>
#include <string>
#include <unordered_set>
#include <vector>

#include "crawl/crawler.h"

namespace dnsttl::crawl {

/// One slice's tallies before unique-value counting: the report plus the
/// raw per-type value sets (sets must survive the fold so cross-shard
/// duplicates collapse exactly as in a serial crawl).  Shared between the
/// slice-based crawl_sharded() driver and the bulk resolution engine: both
/// fold partials in shard order through finalize_crawl(), which is what
/// makes their reports comparable field-for-field.
struct PartialCrawl {
  CrawlReport report;
  std::array<std::unordered_set<std::string>, TypeTallyTable::kSlots.size()>
      uniques;
};

/// Tabulates one domain into @p partial: responsiveness, NS answer
/// behavior, bailiwick class, per-type record/TTL/unique tallies.
void tabulate_domain(const GeneratedDomain& domain, PartialCrawl& partial);

/// Same fold, but tabulating @p harvested instead of the domain's raw
/// record list.  Both bulk-crawl drivers feed their (wire-collapsed)
/// harvest through this overload, so their reports agree record for
/// record; bailiwick classification still reads the domain itself, which
/// collapse cannot change.
void tabulate_domain(const GeneratedDomain& domain,
                     const std::vector<HarvestedRecord>& harvested,
                     PartialCrawl& partial);

/// Folds shard partials strictly in shard order into the final report;
/// unique-value sets union here so cross-shard duplicates collapse exactly
/// as in a serial crawl.
CrawlReport finalize_crawl(const std::string& list, std::size_t domains,
                           std::vector<PartialCrawl> partials);

}  // namespace dnsttl::crawl

#endif  // DNSTTL_CRAWL_TABULATE_H
