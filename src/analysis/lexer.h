#ifndef DNSTTL_ANALYSIS_LEXER_H
#define DNSTTL_ANALYSIS_LEXER_H

#include <string_view>

#include "analysis/token.h"

namespace dnsttl::analysis {

/// Tokenizes one C++ translation unit (or header) into a flat token list.
/// The lexer is deliberately approximate where full fidelity needs a
/// preprocessor — it never expands macros — but it is exact about the things
/// the rules depend on: string/char/raw-string literals never leak their
/// contents into the code stream, comments survive as trivia (the
/// suppression scanner needs them), preprocessor lines (with backslash
/// continuations) collapse into single kPreproc tokens, and multi-character
/// punctuators lex longest-match so `::`, `->`, `&&`, `<<` are single
/// tokens.
TokenList lex(std::string_view source);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_LEXER_H
