#ifndef DNSTTL_ANALYSIS_INDEX_H
#define DNSTTL_ANALYSIS_INDEX_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/summary.h"
#include "analysis/token.h"

namespace dnsttl::analysis {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// What kind of construct a brace pair opens.  The classifier is heuristic
/// (no preprocessor, no symbol table) but tuned to this repo's idiom; every
/// misclassification mode it accepts is documented in index.cc.
enum class ScopeKind {
  kNamespace,
  kClass,     // class/struct/union/enum bodies
  kFunction,  // free/member function bodies (incl. ctor bodies)
  kLambda,
  kBlock,     // control-flow blocks: if/for/while/switch/try/else/do
  kInit,      // braced initializers
};

struct Scope {
  ScopeKind kind;
  std::size_t open;        // code-token index of '{'
  std::size_t close;       // code-token index of matching '}' (or kNpos)
  std::size_t params_open = kNpos;  // functions/lambdas: index of '(' if any
  std::string name;        // namespace name when known
};

/// One declared variable (or data member) found by the statement scanner.
struct VarDecl {
  std::string name;
  std::string type_text;   // joined type tokens left of the name
  std::size_t name_idx;    // code-token index of the declared name
  std::size_t line;
  ScopeKind scope;         // kind of the enclosing scope
  bool static_kw = false;
  bool is_const = false;       // const / constexpr / constinit
  bool is_thread_local = false;
  bool ptr_or_ref = false;     // '*' or '&' among the type tokens
};

/// A parsed function parameter (used by raw-time-param and the unit map).
struct Param {
  std::string name;
  std::string type_text;
  std::size_t line;
  bool ptr_or_ref = false;
};

/// Token stream + bracket matching + scope tree + declaration index +
/// suppression table for one source file.  All rule logic runs against this.
class FileIndex {
 public:
  FileIndex(std::string path, std::string_view source);

  const std::string& path() const { return path_; }
  /// Code tokens only (trivia stripped); rule positions index this vector.
  const TokenList& code() const { return code_; }
  /// Matching bracket for code()[i] when it is one of ()[]{}; kNpos if
  /// unmatched.
  std::size_t match(std::size_t i) const {
    return i < match_.size() ? match_[i] : kNpos;
  }
  const std::vector<Scope>& scopes() const { return scopes_; }
  /// Innermost scope whose extent contains code-token i (kNpos = file
  /// scope, treated as namespace scope for declaration purposes).
  std::size_t innermost_scope(std::size_t i) const;
  ScopeKind scope_kind_at(std::size_t i) const;

  const std::vector<VarDecl>& var_decls() const { return var_decls_; }
  /// Names declared anywhere in this file as std::unordered_{map,set,...}.
  const std::set<std::string>& unordered_names() const {
    return unordered_names_;
  }
  /// name -> unit ("us"/"s") for identifiers declared with a strong
  /// time/TTL type (Duration, SimTime/Time, Ttl) in this file.
  const std::map<std::string, std::string>& unit_typed() const {
    return unit_typed_;
  }

  /// Parse the parameter list whose '(' sits at code-token index open.
  std::vector<Param> parse_params(std::size_t open) const;

  /// True when `rule` is suppressed on `line` via `// lint:allow(rule)` or
  /// `// analyze:allow(rule)` on that line or a comment line directly above.
  bool suppressed(std::size_t line, std::string_view rule) const;

  /// The whole suppression table (line -> allowed rules) and the allow
  /// comments as sites — the interprocedural pass suppresses against the
  /// former, the stale-suppression rule audits the latter.
  const std::map<std::size_t, std::set<std::string>>& allow_lines() const {
    return allow_;
  }
  const std::vector<AllowSite>& allow_sites() const { return allow_sites_; }

 private:
  void build_matches();
  void build_scopes();
  void scan_declarations();
  void scan_statement(std::size_t begin, std::size_t end, ScopeKind scope);
  void build_suppressions(const TokenList& all);

  std::string path_;
  TokenList code_;
  std::vector<std::size_t> match_;
  std::vector<Scope> scopes_;
  std::vector<VarDecl> var_decls_;
  std::set<std::string> unordered_names_;
  std::map<std::string, std::string> unit_typed_;
  std::map<std::size_t, std::set<std::string>> allow_;  // line -> rules
  std::vector<AllowSite> allow_sites_;
};

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_INDEX_H
