#include "analysis/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/index.h"
#include "analysis/rules.h"

namespace dnsttl::analysis {
namespace {

namespace fs = std::filesystem;

std::string slashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

Findings analyze_source(const std::string& rel_path,
                        const std::string& source) {
  FileIndex index(rel_path, source);
  return run_rules(index, slashes(rel_path));
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths,
                                         std::string* error) {
  std::vector<std::string> out;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && source_extension(it->path())) {
          out.push_back(
              slashes(fs::relative(it->path(), root_path, ec).string()));
        }
      }
    } else if (fs::is_regular_file(abs, ec)) {
      out.push_back(slashes(fs::relative(abs, root_path, ec).string()));
    } else if (error != nullptr && error->empty()) {
      *error = "no such file or directory: " + abs.string();
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Findings analyze_paths(const std::string& root,
                       const std::vector<std::string>& rel_paths) {
  Findings all;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(std::filesystem::path(root) / rel,
                     std::ios::in | std::ios::binary);
    if (!in) {
      all.push_back({"analyzer-io", rel, 0,
                     "could not read file for analysis", rel});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Findings file_findings = analyze_source(rel, buffer.str());
    all.insert(all.end(), file_findings.begin(), file_findings.end());
  }
  return all;
}

}  // namespace dnsttl::analysis
