#include "analysis/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/callgraph.h"
#include "analysis/dataflow.h"
#include "analysis/index.h"
#include "analysis/rules.h"
#include "par/pool.h"

namespace dnsttl::analysis {
namespace {

namespace fs = std::filesystem;

std::string slashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

/// Phase-1 output for one file: intraprocedural findings (visible and
/// allow-silenced) plus the call summary phase 2 links.
struct FileResult {
  Findings findings;
  Findings suppressed;
  FileSummary summary;
};

FileResult analyze_one(const std::string& rel, const std::string& source) {
  FileResult out;
  FileIndex index(rel, source);
  const std::string rel_slashes = slashes(rel);
  out.findings = run_rules(index, rel_slashes, &out.suppressed);
  out.summary = summarize_file(index, rel_slashes);
  return out;
}

/// The stale-suppression audit: every allow comment naming a registered
/// rule must have a finding of that rule (visible or silenced — silenced
/// is the normal case) on one of its covered lines; otherwise the allow
/// is dead weight and gets its own finding.  Runs after phase 2 so an
/// allow justified by an interprocedural finding counts as used.
void audit_suppressions(const std::vector<FileSummary>& summaries,
                        const Findings& all_would_fire, Findings& out) {
  std::set<std::string> registered;
  for (const RuleInfo& info : rule_infos()) registered.insert(info.name);

  // (file, rule, line) lookup over every finding either emitted or
  // suppressed anywhere in the run.
  std::set<std::string> fired;
  for (const Finding& f : all_would_fire) {
    fired.insert(f.file + "\x1f" + f.rule + "\x1f" + std::to_string(f.line));
  }

  for (const FileSummary& file : summaries) {
    for (const AllowSite& site : file.allow_sites) {
      if (registered.count(site.rule) == 0) continue;  // lint.py-owned etc.
      bool used = false;
      for (std::size_t line : site.covered_lines) {
        if (fired.count(file.path + "\x1f" + site.rule + "\x1f" +
                        std::to_string(line)) != 0) {
          used = true;
          break;
        }
      }
      if (used) continue;
      // The stale finding itself honours the suppression table (an allow
      // comment can whitelist its own audit: `lint:allow(x,
      // stale-suppression)` keeps a deliberately pre-emptive allow).
      auto it = file.allow_lines.find(site.comment_line);
      if (it != file.allow_lines.end() &&
          (it->second.count("stale-suppression") != 0 ||
           it->second.count("*") != 0)) {
        continue;
      }
      out.push_back(
          {"stale-suppression", file.path, site.comment_line,
           "suppression names '" + site.rule + "' but that rule no longer "
           "fires on the covered line; delete the dead allow comment (or "
           "fix the rule name)",
           "allow(" + site.rule + ")"});
    }
  }
}

}  // namespace

Findings analyze_sources(const std::vector<SourceFile>& sources,
                         std::size_t jobs) {
  // Phase 1: per-file, sharded over the pool.  The shard split is a pure
  // function of the workload (shard_count_for), never of `jobs`, and the
  // merge walks shards in index order — so any jobs value produces the
  // same findings in the same order.
  const std::size_t shards = par::shard_count_for(sources.size());
  const auto shard_results =
      par::map_shards(shards, jobs, [&](std::size_t shard) {
        std::vector<FileResult> block;
        for (std::size_t i = shard; i < sources.size(); i += shards) {
          block.push_back(analyze_one(sources[i].first, sources[i].second));
        }
        return block;
      });

  // Stitch back into file order: shard s holds files s, s+shards, ...
  std::vector<const FileResult*> per_file(sources.size(), nullptr);
  for (std::size_t s = 0; s < shard_results.size(); ++s) {
    std::size_t i = s;
    for (const FileResult& r : shard_results[s]) {
      per_file[i] = &r;
      i += shards;
    }
  }

  Findings visible;
  Findings would_fire;  // visible + suppressed, for the stale audit
  std::vector<FileSummary> summaries;
  summaries.reserve(sources.size());
  for (const FileResult* r : per_file) {
    visible.insert(visible.end(), r->findings.begin(), r->findings.end());
    would_fire.insert(would_fire.end(), r->findings.begin(),
                      r->findings.end());
    would_fire.insert(would_fire.end(), r->suppressed.begin(),
                      r->suppressed.end());
    summaries.push_back(r->summary);
  }

  // Phase 2: whole-repo call graph + interprocedural dataflow (serial; the
  // graph needs every summary).
  DataflowResult ip = run_dataflow(summaries);
  visible.insert(visible.end(), ip.findings.begin(), ip.findings.end());
  would_fire.insert(would_fire.end(), ip.findings.begin(),
                    ip.findings.end());
  would_fire.insert(would_fire.end(), ip.suppressed.begin(),
                    ip.suppressed.end());

  audit_suppressions(summaries, would_fire, visible);
  return visible;
}

Findings analyze_source(const std::string& rel_path,
                        const std::string& source) {
  return analyze_sources({{rel_path, source}});
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths,
                                         std::string* error) {
  std::vector<std::string> out;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && source_extension(it->path())) {
          out.push_back(
              slashes(fs::relative(it->path(), root_path, ec).string()));
        }
      }
    } else if (fs::is_regular_file(abs, ec)) {
      out.push_back(slashes(fs::relative(abs, root_path, ec).string()));
    } else if (error != nullptr && error->empty()) {
      *error = "no such file or directory: " + abs.string();
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Findings analyze_paths(const std::string& root,
                       const std::vector<std::string>& rel_paths,
                       std::size_t jobs) {
  Findings io_errors;
  std::vector<SourceFile> sources;
  sources.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(std::filesystem::path(root) / rel,
                     std::ios::in | std::ios::binary);
    if (!in) {
      io_errors.push_back({"analyzer-io", rel, 0,
                           "could not read file for analysis", rel});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(rel, buffer.str());
  }
  Findings all = analyze_sources(sources, jobs);
  all.insert(all.end(), io_errors.begin(), io_errors.end());
  return all;
}

}  // namespace dnsttl::analysis
