#ifndef DNSTTL_ANALYSIS_FINDING_H
#define DNSTTL_ANALYSIS_FINDING_H

#include <cstddef>
#include <string>
#include <vector>

namespace dnsttl::analysis {

/// One rule violation.  `excerpt` is a short normalized snippet of the
/// offending tokens; baseline matching keys on (rule, file, excerpt) so
/// unrelated edits that shift line numbers do not resurrect old findings.
struct Finding {
  std::string rule;
  std::string file;  // repo-relative, forward slashes
  std::size_t line = 0;
  std::string message;
  std::string excerpt;

  std::string key() const { return rule + "\x1f" + file + "\x1f" + excerpt; }
  std::string to_string() const {
    return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
  }
};

using Findings = std::vector<Finding>;

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_FINDING_H
