#ifndef DNSTTL_ANALYSIS_RULES_H
#define DNSTTL_ANALYSIS_RULES_H

#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/index.h"

namespace dnsttl::analysis {

/// Rule metadata for --list-rules and the analyze.py delegation handshake.
struct RuleInfo {
  const char* name;
  const char* contract;  // which repo contract the rule enforces
  const char* summary;
};

const std::vector<RuleInfo>& rule_infos();

/// Runs every intraprocedural rule over one indexed file.  `rel_path` is
/// the repo-relative path with forward slashes; path-scoped rules
/// (raw-time-param headers only, unit-float-cast stats exemption) key on
/// it.  Suppressions (`lint:allow`/`analyze:allow`) are already applied:
/// suppressed findings never come back — but when `suppressed` is non-null
/// the silenced findings are appended there, so the stale-suppression
/// audit can tell a used allow from a dead one.
Findings run_rules(const FileIndex& index, const std::string& rel_path,
                   Findings* suppressed = nullptr);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_RULES_H
