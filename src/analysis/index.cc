#include "analysis/index.h"

#include <algorithm>

#include "analysis/lexer.h"

namespace dnsttl::analysis {
namespace {

bool is_open(const Token& t) {
  return t.kind == TokenKind::kPunct &&
         (t.text == "(" || t.text == "[" || t.text == "{");
}
bool is_close(const Token& t) {
  return t.kind == TokenKind::kPunct &&
         (t.text == ")" || t.text == "]" || t.text == "}");
}

bool is_qualifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "constinit" ||
         s == "static" || s == "thread_local" || s == "inline" ||
         s == "mutable" || s == "volatile" || s == "extern";
}

// Statement-leading keywords that can never start a variable declaration we
// care about (control flow, type definitions, access specifiers, ...).
bool starts_non_decl(const std::string& s) {
  return s == "using" || s == "typedef" || s == "friend" ||
         s == "template" || s == "static_assert" || s == "namespace" ||
         s == "public" || s == "private" || s == "protected" ||
         s == "case" || s == "default" || s == "return" || s == "if" ||
         s == "for" || s == "while" || s == "do" || s == "switch" ||
         s == "goto" || s == "break" || s == "continue" || s == "else" ||
         s == "try" || s == "catch" || s == "throw" || s == "operator" ||
         s == "struct" || s == "class" || s == "union" || s == "enum" ||
         s == "extern" || s == "requires" || s == "concept" || s == "asm";
}

bool control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

// Tokens allowed between the closing ')' of a parameter list and the '{'
// of the body: cv/ref qualifiers, noexcept, override/final, and the pieces
// of a trailing return type.
bool function_suffix_token(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return true;  // noexcept, type names
  if (t.kind == TokenKind::kNumber) return true;      // noexcept(...) args
  return t.punct("->") || t.punct("::") || t.punct("<") || t.punct(">") ||
         t.punct("*") || t.punct("&") || t.punct("&&") || t.punct(",");
}

}  // namespace

FileIndex::FileIndex(std::string path, std::string_view source)
    : path_(std::move(path)) {
  TokenList all = lex(source);
  code_.reserve(all.size());
  for (const Token& t : all) {
    if (!t.is_trivia()) code_.push_back(t);
  }
  build_matches();
  build_scopes();
  scan_declarations();
  build_suppressions(all);
}

void FileIndex::build_matches() {
  match_.assign(code_.size(), kNpos);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (is_open(code_[i])) {
      stack.push_back(i);
    } else if (is_close(code_[i])) {
      // Tolerate mismatched nesting (macro tricks): pop until the opener
      // that pairs with this closer kind, dropping unmatched openers.
      static const auto pairs = [](const std::string& open,
                                   const std::string& close) {
        return (open == "(" && close == ")") ||
               (open == "[" && close == "]") ||
               (open == "{" && close == "}");
      };
      while (!stack.empty() && !pairs(code_[stack.back()].text,
                                      code_[i].text)) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        match_[stack.back()] = i;
        match_[i] = stack.back();
        stack.pop_back();
      }
    }
  }
}

void FileIndex::build_scopes() {
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (!code_[i].punct("{")) continue;

    // Collect the top-level tokens of the statement prefix: walk backwards,
    // hopping over bracketed extents, until a statement boundary.
    std::vector<std::size_t> top;  // reversed during collection
    std::size_t j = i;
    while (j > 0) {
      --j;
      const Token& t = code_[j];
      if (t.punct(")") || t.punct("]")) {
        std::size_t m = match(j);
        top.push_back(j);
        if (m == kNpos) break;
        top.push_back(m);
        j = m;
        continue;
      }
      if (t.punct(";") || t.punct("{") || t.punct("}") || t.punct(",") ||
          t.punct("(") || t.punct("[")) {
        break;
      }
      top.push_back(j);
    }
    std::reverse(top.begin(), top.end());

    Scope scope{ScopeKind::kBlock, i, match(i), kNpos, {}};
    scope.kind = [&]() -> ScopeKind {
      auto text = [&](std::size_t k) -> const std::string& {
        return code_[top[k]].text;
      };
      // namespace [name] {
      for (std::size_t k = 0; k < top.size(); ++k) {
        if (code_[top[k]].ident("namespace")) {
          for (std::size_t n = k + 1; n < top.size(); ++n) {
            if (code_[top[n]].kind == TokenKind::kIdentifier) {
              scope.name += (scope.name.empty() ? "" : "::") + text(n);
            }
          }
          return ScopeKind::kNamespace;
        }
      }
      // class/struct/union/enum ... {
      for (std::size_t k = 0; k < top.size(); ++k) {
        const std::string& s = text(k);
        if (s == "class" || s == "struct" || s == "union" || s == "enum") {
          return ScopeKind::kClass;
        }
      }
      if (top.empty()) return ScopeKind::kBlock;
      const std::string& first = text(0);
      if (first == "else" || first == "do" || first == "try" ||
          first == "case" || first == "default") {
        return ScopeKind::kBlock;
      }
      // Find the last top-level ')' ; if everything after it is a valid
      // function suffix, this brace opens a function, lambda, or control
      // block body depending on what precedes the matching '('.
      for (std::size_t k = top.size(); k-- > 0;) {
        if (!code_[top[k]].punct(")")) continue;
        bool suffix_ok = true;
        for (std::size_t n = k + 1; n < top.size(); ++n) {
          if (!function_suffix_token(code_[top[n]])) {
            suffix_ok = false;
            break;
          }
        }
        if (!suffix_ok) break;
        // top[k] is ')'; its '(' was pushed right after it in the backward
        // walk, so it sits at top[k-1] when matched.
        std::size_t open_paren = kNpos;
        if (k > 0 && code_[top[k - 1]].punct("(")) open_paren = top[k - 1];
        if (open_paren == kNpos) break;
        scope.params_open = open_paren;
        if (k >= 2) {
          const Token& before = code_[top[k - 2]];
          if (control_keyword(before.text)) return ScopeKind::kBlock;
          if (before.punct("]")) return ScopeKind::kLambda;
        } else if (open_paren > 0 && code_[open_paren - 1].punct("]")) {
          // The '[' capture list sat beyond the statement-boundary ',' the
          // backward walk stopped at.
          return ScopeKind::kLambda;
        }
        return ScopeKind::kFunction;
      }
      // Capture-only lambda: [...] {
      if (code_[top.back()].punct("]")) return ScopeKind::kLambda;
      const Token& last = code_[top.back()];
      if (last.punct("=") || last.punct(",") || last.punct("(") ||
          last.ident("return") || last.kind == TokenKind::kIdentifier ||
          last.punct(">") || last.punct("::")) {
        return ScopeKind::kInit;
      }
      return ScopeKind::kBlock;
    }();
    scopes_.push_back(std::move(scope));
  }
}

std::size_t FileIndex::innermost_scope(std::size_t i) const {
  std::size_t best = kNpos;
  for (std::size_t s = 0; s < scopes_.size(); ++s) {
    const Scope& scope = scopes_[s];
    if (scope.open < i && (scope.close == kNpos || i < scope.close)) {
      if (best == kNpos || scope.open > scopes_[best].open) best = s;
    }
  }
  return best;
}

ScopeKind FileIndex::scope_kind_at(std::size_t i) const {
  std::size_t s = innermost_scope(i);
  return s == kNpos ? ScopeKind::kNamespace : scopes_[s].kind;
}

void FileIndex::scan_declarations() {
  // Iterate the immediate statements of the file scope and of every
  // namespace/class/function/lambda/block scope.  Init scopes hold
  // expressions, not declarations.
  struct Range {
    std::size_t begin, end;
    ScopeKind kind;
  };
  std::vector<Range> ranges;
  ranges.push_back({0, code_.size(), ScopeKind::kNamespace});
  for (const Scope& s : scopes_) {
    if (s.kind == ScopeKind::kInit) continue;
    ranges.push_back(
        {s.open + 1, s.close == kNpos ? code_.size() : s.close, s.kind});
  }
  for (const Range& r : ranges) {
    std::size_t stmt = r.begin;
    std::size_t j = r.begin;
    while (j < r.end) {
      const Token& t = code_[j];
      if (is_open(t)) {
        std::size_t m = match(j);
        if (t.text == "{") {
          // Statement ends at the brace (function/class body, braced init).
          scan_statement(stmt, j, r.kind);
          stmt = (m == kNpos ? r.end : m + 1);
        }
        j = (m == kNpos || m >= r.end) ? r.end : m + 1;
        continue;
      }
      if (t.punct(";")) {
        scan_statement(stmt, j, r.kind);
        stmt = j + 1;
      }
      ++j;
    }
    scan_statement(stmt, r.end, r.kind);
  }
}

void FileIndex::scan_statement(std::size_t begin, std::size_t end,
                               ScopeKind scope) {
  if (begin >= end) return;

  // Top-level tokens of the statement (extents hopped, markers kept).
  std::vector<std::size_t> top;
  for (std::size_t j = begin; j < end; ++j) {
    top.push_back(j);
    if (is_open(code_[j])) {
      std::size_t m = match(j);
      if (m == kNpos || m >= end) return;  // malformed; stay conservative
      top.push_back(m);
      j = m;
    }
  }
  if (top.empty()) return;
  if (starts_non_decl(code_[top[0]].text)) return;

  VarDecl decl;
  decl.scope = scope;
  bool seen_eq = false;
  std::size_t name_pos = kNpos;  // position within `top`
  int angle = 0;
  for (std::size_t k = 0; k < top.size() && !seen_eq; ++k) {
    const Token& t = code_[top[k]];
    if (t.punct("<") && k > 0 &&
        (code_[top[k - 1]].kind == TokenKind::kIdentifier ||
         code_[top[k - 1]].punct(">"))) {
      ++angle;
      continue;
    }
    if (t.punct(">") && angle > 0) {
      --angle;
      continue;
    }
    if (t.punct(">>") && angle > 0) {
      angle = angle >= 2 ? angle - 2 : 0;
      continue;
    }
    if (angle > 0) continue;
    if (t.punct("=")) {
      seen_eq = true;
      continue;
    }
    if (t.punct("(")) {
      // `ident(` anywhere at the top level means a function declaration,
      // a call, or a function-style initializer — none of which the
      // statement scanner tracks (documented miss: `static int x(3);`).
      if (k > 0 && code_[top[k - 1]].kind == TokenKind::kIdentifier) {
        return;
      }
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      const std::string& s = t.text;
      // `std::ostream& operator<<(...)`: the '(' test below cannot catch
      // it (the token before '(' is '<<'), so bail on the keyword itself.
      if (s == "operator") return;
      if (s == "static") decl.static_kw = true;
      if (s == "const" || s == "constexpr" || s == "constinit") {
        decl.is_const = true;
      }
      if (s == "thread_local") decl.is_thread_local = true;
      if (!is_qualifier(s)) name_pos = k;
      continue;
    }
  }
  if (name_pos == kNpos) return;

  // Everything left of the name is the type/declarator text.
  std::string type_text;
  bool has_type_ident = false;
  for (std::size_t k = 0; k < name_pos; ++k) {
    const Token& t = code_[top[k]];
    if (t.punct("*") || t.punct("&") || t.punct("&&")) decl.ptr_or_ref = true;
    if (t.kind == TokenKind::kIdentifier && !is_qualifier(t.text)) {
      has_type_ident = true;
    }
    if (t.punct(".") || t.punct("->") || t.punct("++") || t.punct("--") ||
        t.punct("!") || t.punct(")")) {
      return;  // expression statement, not a declaration
    }
    if (!type_text.empty()) type_text += ' ';
    type_text += t.text;
  }
  if (!has_type_ident) return;

  decl.name = code_[top[name_pos]].text;
  decl.type_text = type_text;
  decl.name_idx = top[name_pos];
  decl.line = code_[top[name_pos]].line;
  var_decls_.push_back(decl);

  if (type_text.find("unordered_map") != std::string::npos ||
      type_text.find("unordered_set") != std::string::npos ||
      type_text.find("unordered_multimap") != std::string::npos ||
      type_text.find("unordered_multiset") != std::string::npos) {
    unordered_names_.insert(decl.name);
  }
  for (std::size_t k = 0; k < name_pos; ++k) {
    const std::string& s = code_[top[k]].text;
    if (s == "Duration" || s == "SimTime") {
      unit_typed_[decl.name] = "us";
    } else if (s == "Ttl") {
      unit_typed_[decl.name] = "s";
    } else if (s == "Time" && k >= 2 && code_[top[k - 2]].ident("sim")) {
      unit_typed_[decl.name] = "us";
    }
  }
}

std::vector<Param> FileIndex::parse_params(std::size_t open) const {
  std::vector<Param> params;
  std::size_t close = match(open);
  if (close == kNpos) return params;

  std::size_t item_begin = open + 1;
  auto flush = [&](std::size_t item_end) {
    if (item_begin >= item_end) return;
    Param p;
    std::size_t name_pos = kNpos;
    std::vector<std::size_t> top;
    for (std::size_t j = item_begin; j < item_end; ++j) {
      top.push_back(j);
      if (is_open(code_[j])) {
        std::size_t m = match(j);
        if (m == kNpos || m >= item_end) break;
        top.push_back(m);
        j = m;
      }
    }
    int angle = 0;
    for (std::size_t k = 0; k < top.size(); ++k) {
      const Token& t = code_[top[k]];
      if (t.punct("<") && k > 0 &&
          (code_[top[k - 1]].kind == TokenKind::kIdentifier ||
           code_[top[k - 1]].punct(">"))) {
        ++angle;
        continue;
      }
      if (t.punct(">") && angle > 0) {
        --angle;
        continue;
      }
      if (t.punct(">>") && angle > 0) {
        angle = angle >= 2 ? angle - 2 : 0;
        continue;
      }
      if (angle > 0) continue;
      if (t.punct("=")) break;  // default argument
      if (t.punct("*") || t.punct("&") || t.punct("&&")) p.ptr_or_ref = true;
      if (t.kind == TokenKind::kIdentifier && !is_qualifier(t.text)) {
        name_pos = k;
      }
    }
    if (name_pos == kNpos) return;
    p.name = code_[top[name_pos]].text;
    p.line = code_[top[name_pos]].line;
    for (std::size_t k = 0; k < name_pos; ++k) {
      if (code_[top[k]].punct("<") || code_[top[k]].punct(">")) continue;
      if (!p.type_text.empty()) p.type_text += ' ';
      p.type_text += code_[top[k]].text;
    }
    if (p.type_text.empty()) {
      // Unnamed parameter: the lone identifier is the type, not a name.
      p.type_text = p.name;
      p.name.clear();
    }
    params.push_back(std::move(p));
  };

  std::size_t j = open + 1;
  std::size_t item = j;
  while (j < close) {
    if (is_open(code_[j])) {
      std::size_t m = match(j);
      j = (m == kNpos || m >= close) ? close : m + 1;
      continue;
    }
    if (code_[j].punct(",")) {
      item_begin = item;
      flush(j);
      item = j + 1;
    }
    ++j;
  }
  item_begin = item;
  flush(close);
  return params;
}

void FileIndex::build_suppressions(const TokenList& all) {
  auto harvest = [](const std::string& text, std::set<std::string>& rules) {
    for (const char* prefix : {"lint:allow(", "analyze:allow("}) {
      std::size_t at = 0;
      while ((at = text.find(prefix, at)) != std::string::npos) {
        std::size_t open = at + std::string(prefix).size();
        std::size_t close = text.find(')', open);
        if (close == std::string::npos) break;
        rules.insert(text.substr(open, close - open));
        at = close;
      }
    }
  };

  std::size_t last_code_line = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Token& t = all[i];
    if (t.kind != TokenKind::kComment) {
      if (t.kind != TokenKind::kPreproc) last_code_line = t.line;
      continue;
    }
    std::set<std::string> rules;
    harvest(t.text, rules);
    if (rules.empty()) continue;
    allow_[t.line].insert(rules.begin(), rules.end());
    std::vector<std::size_t> covered = {t.line};
    if (last_code_line != t.line) {
      // Comment-only line: the allow also covers the next code line.
      for (std::size_t n = i + 1; n < all.size(); ++n) {
        if (all[n].kind == TokenKind::kComment) continue;
        allow_[all[n].line].insert(rules.begin(), rules.end());
        covered.push_back(all[n].line);
        break;
      }
    }
    for (const std::string& rule : rules) {
      allow_sites_.push_back({t.line, rule, covered});
    }
  }
}

bool FileIndex::suppressed(std::size_t line, std::string_view rule) const {
  auto it = allow_.find(line);
  return it != allow_.end() &&
         it->second.count(std::string(rule)) > 0;
}

}  // namespace dnsttl::analysis
