#ifndef DNSTTL_ANALYSIS_ANALYZER_H
#define DNSTTL_ANALYSIS_ANALYZER_H

#include <string>
#include <vector>

#include "analysis/finding.h"

namespace dnsttl::analysis {

/// Analyzes one source string as if it lived at `rel_path` (repo-relative,
/// forward slashes).  This is the entry the selftest and the fixture tests
/// use; path-scoped rules see exactly the given path.
Findings analyze_source(const std::string& rel_path,
                        const std::string& source);

/// Recursively collects .cc/.h files under each of `paths` (files are
/// taken as-is), resolved against `root`, sorted for determinism.
/// Returned paths are root-relative with forward slashes.
std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths,
                                         std::string* error);

/// Reads and analyzes every collected file.  IO errors append a synthetic
/// `analyzer-io` finding so a vanished file can never silently pass.
Findings analyze_paths(const std::string& root,
                       const std::vector<std::string>& rel_paths);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_ANALYZER_H
