#ifndef DNSTTL_ANALYSIS_ANALYZER_H
#define DNSTTL_ANALYSIS_ANALYZER_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "analysis/finding.h"

namespace dnsttl::analysis {

/// One in-memory source file: (repo-relative path, contents).
using SourceFile = std::pair<std::string, std::string>;

/// The full two-phase pipeline over in-memory sources.
///
/// Phase 1 (per file, independent — this is what --jobs shards over the
/// par:: pool): lex + index + intraprocedural rules + call-summary
/// extraction.  Phase 2 (whole-repo, serial): link the summaries into a
/// call graph, run the interprocedural dataflow rules, then audit every
/// `lint:allow`/`analyze:allow` comment against the complete finding set
/// (stale-suppression).  Findings come back in deterministic order.
Findings analyze_sources(const std::vector<SourceFile>& sources,
                         std::size_t jobs = 1);

/// Analyzes one source string as if it lived at `rel_path` (repo-relative,
/// forward slashes).  This is the entry the selftest and the fixture tests
/// use; path-scoped rules see exactly the given path.  Interprocedural
/// rules run too — the call graph is just single-TU.
Findings analyze_source(const std::string& rel_path,
                        const std::string& source);

/// Recursively collects .cc/.h files under each of `paths` (files are
/// taken as-is), resolved against `root`, sorted for determinism.
/// Returned paths are root-relative with forward slashes.
std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths,
                                         std::string* error);

/// Reads every collected file, then runs analyze_sources over them with
/// the given worker count.  IO errors append a synthetic `analyzer-io`
/// finding so a vanished file can never silently pass.  Output is
/// byte-identical at any `jobs` value: the shard split is a pure function
/// of the workload and the merge happens in file order.
Findings analyze_paths(const std::string& root,
                       const std::vector<std::string>& rel_paths,
                       std::size_t jobs = 1);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_ANALYZER_H
