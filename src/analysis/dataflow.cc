#include "analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace dnsttl::analysis {

namespace {

bool unit_type_name(const std::string& s) {
  return s == "Duration" || s == "SimTime" || s == "Ttl" || s == "WireTtl";
}

bool allow_covers(const FileSummary& file, std::size_t line,
                  const std::string& rule) {
  auto it = file.allow_lines.find(line);
  if (it == file.allow_lines.end()) return false;
  return it->second.count(rule) != 0 || it->second.count("*") != 0;
}

class Dataflow {
 public:
  explicit Dataflow(const std::vector<FileSummary>& files)
      : files_(files), graph_(files) {
    for (const FileSummary& f : files_) by_path_[f.path] = &f;
    const auto& nodes = graph_.nodes();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      node_id_[nodes[id]] = id;
    }
    compute_output_depth();
    compute_unit_flow();
  }

  DataflowResult run() {
    for (const FileSummary& file : files_) {
      for (const FunctionSummary& fn : file.functions) {
        if (fn.is_shard_body) {
          rng_escape(file, fn);
          shard_escape(file, fn);
        }
        unordered_output_flow_ip(file, fn);
        raw_time_flow(file, fn);
      }
    }
    return std::move(result_);
  }

 private:
  using NodeParam = std::pair<std::size_t, std::string>;

  const FunctionSummary& node(std::size_t id) const {
    return *graph_.nodes()[id];
  }

  void add(const FileSummary& file, const std::string& rule,
           std::size_t line, std::string message, std::string excerpt) {
    Finding f{rule, file.path, line, std::move(message), std::move(excerpt)};
    if (allow_covers(file, line, rule)) {
      result_.suppressed.push_back(std::move(f));
    } else {
      result_.findings.push_back(std::move(f));
    }
  }

  /// Does `node(id)` draw from its parameter `param`, directly or through
  /// callees it forwards the parameter to (depth-bounded, cycle-safe)?
  bool draws_from_param(std::size_t id, const std::string& param,
                        std::size_t depth, std::set<NodeParam>& visited) {
    if (depth > kMaxCallDepth) return false;
    if (!visited.insert({id, param}).second) return false;
    const FunctionSummary& fn = node(id);
    if (fn.draws_from.count(param) != 0) return true;
    for (const CallSite& call : fn.calls) {
      for (std::size_t k = 0; k < call.args.size(); ++k) {
        if (call.args[k].head != param || call.args[k].forked) continue;
        for (std::size_t target : graph_.resolve(call)) {
          const FunctionSummary& callee = node(target);
          if (k >= callee.params.size()) continue;
          const ParamFacts& p = callee.params[k];
          if (p.name.empty() || p.is_const) continue;
          if (draws_from_param(target, p.name, depth + 1, visited)) {
            return true;
          }
        }
      }
      // Member draws on the forwarded stream: `rng.next()` in the callee
      // is covered above; `helper(rng)` where helper receives by value
      // cannot mutate the caller's stream, so const/value params stop the
      // walk (handled by the by-ref check at the rng-escape call site).
    }
    return false;
  }

  /// Does `node(id)` store its parameter `param` past the call (member /
  /// static / container), directly or through callees?
  bool stores_param(std::size_t id, const std::string& param,
                    std::size_t depth, std::set<NodeParam>& visited) {
    if (depth > kMaxCallDepth) return false;
    if (!visited.insert({id, param}).second) return false;
    const FunctionSummary& fn = node(id);
    if (fn.stored_params.count(param) != 0) return true;
    for (const CallSite& call : fn.calls) {
      for (std::size_t k = 0; k < call.args.size(); ++k) {
        if (call.args[k].head != param) continue;
        for (std::size_t target : graph_.resolve(call)) {
          const FunctionSummary& callee = node(target);
          if (k >= callee.params.size()) continue;
          const ParamFacts& p = callee.params[k];
          if (p.name.empty() || (!p.by_ref && !p.by_ptr)) continue;
          if (stores_param(target, p.name, depth + 1, visited)) return true;
        }
      }
    }
    return false;
  }

  /// output_depth_[id] = shortest call-chain distance to a function that
  /// writes output directly (0 = writes itself); absent = unreachable
  /// within kMaxCallDepth.
  void compute_output_depth() {
    const auto& nodes = graph_.nodes();
    // Forward edges caller -> callees, resolved once.
    std::vector<std::vector<std::size_t>> edges(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      std::set<std::size_t> targets;
      for (const CallSite& call : nodes[id]->calls) {
        for (std::size_t t : graph_.resolve(call)) targets.insert(t);
      }
      edges[id].assign(targets.begin(), targets.end());
    }
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (nodes[id]->writes_output) output_depth_[id] = 0;
    }
    for (std::size_t round = 1; round <= kMaxCallDepth; ++round) {
      bool changed = false;
      for (std::size_t id = 0; id < nodes.size(); ++id) {
        if (output_depth_.count(id) != 0) continue;
        for (std::size_t t : edges[id]) {
          auto it = output_depth_.find(t);
          if (it != output_depth_.end() && it->second < round) {
            output_depth_[id] = round;
            changed = true;
            break;
          }
        }
      }
      if (!changed) break;
    }
  }

  /// unit_flow_: (node, param index) pairs whose raw-integer parameter
  /// reaches a Duration/SimTime/Ttl construction, directly (lexical seed
  /// from the summary) or via forwarding through callees.
  void compute_unit_flow() {
    const auto& nodes = graph_.nodes();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      const FunctionSummary& fn = *nodes[id];
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (fn.params[i].raw_int &&
            fn.unit_ctor_flow.count(fn.params[i].name) != 0) {
          unit_flow_.insert({id, i});
        }
      }
    }
    for (std::size_t round = 1; round <= kMaxCallDepth; ++round) {
      bool changed = false;
      for (std::size_t id = 0; id < nodes.size(); ++id) {
        const FunctionSummary& fn = *nodes[id];
        for (const CallSite& call : fn.calls) {
          if (unit_type_name(call.callee) || unit_type_name(call.qualifier)) {
            continue;  // explicit construction, seeded lexically already
          }
          for (std::size_t k = 0; k < call.args.size(); ++k) {
            const std::string& head = call.args[k].head;
            if (head.empty()) continue;
            for (std::size_t i = 0; i < fn.params.size(); ++i) {
              if (fn.params[i].name != head || !fn.params[i].raw_int) {
                continue;
              }
              if (unit_flow_.count({id, i}) != 0) continue;
              for (std::size_t target : graph_.resolve(call)) {
                if (unit_flow_.count({target, k}) != 0) {
                  unit_flow_.insert({id, i});
                  changed = true;
                  break;
                }
              }
            }
          }
        }
      }
      if (!changed) break;
    }
  }

  // ------------------------------------------------------------- rules

  void rng_escape(const FileSummary& file, const FunctionSummary& fn) {
    for (const CallSite& call : fn.calls) {
      for (std::size_t k = 0; k < call.args.size(); ++k) {
        const CallArg& arg = call.args[k];
        if (arg.head.empty() || arg.forked) continue;
        const bool rng_head =
            rng_ish_name(arg.head) || fn.rng_locals.count(arg.head) != 0;
        if (!rng_head || fn.forked.count(arg.head) != 0) continue;
        for (std::size_t target : graph_.resolve(call)) {
          const FunctionSummary& callee = node(target);
          if (k >= callee.params.size()) continue;
          const ParamFacts& p = callee.params[k];
          if (!p.rng || p.is_const || (!p.by_ref && !p.by_ptr)) continue;
          std::set<NodeParam> visited;
          if (!draws_from_param(target, p.name, 1, visited)) continue;
          add(file, "rng-escape", call.line,
              "unforked RNG '" + arg.head + "' passed by mutable reference "
              "into '" + call.callee + "', which draws from it inside a "
              "shard body; fork a per-shard stream before the call "
              "(rng.fork(shard))",
              call.callee + "(" + arg.head + ")");
          break;  // one finding per argument is enough
        }
      }
    }
  }

  void shard_escape(const FileSummary& file, const FunctionSummary& fn) {
    for (const EscapedLocal& esc : fn.escaped_locals) {
      add(file, "shard-escape", esc.line,
          std::string("address of shard-local '") + esc.name +
              (esc.via_return ? "' returned from" : "' stored past") +
              " the shard body; shard state must not outlive its shard",
          std::string(esc.via_return ? "return &" : "= &") + esc.name);
    }
    for (const CallSite& call : fn.calls) {
      for (std::size_t k = 0; k < call.args.size(); ++k) {
        const CallArg& arg = call.args[k];
        if (arg.head.empty() || fn.locals.count(arg.head) == 0) continue;
        for (std::size_t target : graph_.resolve(call)) {
          const FunctionSummary& callee = node(target);
          if (k >= callee.params.size()) continue;
          const ParamFacts& p = callee.params[k];
          if (p.name.empty()) continue;
          // The callee can only retain the local if it sees a reference
          // or pointer to it.
          if (!arg.address_of && !p.by_ref && !p.by_ptr) continue;
          std::set<NodeParam> visited;
          if (!stores_param(target, p.name, 1, visited)) continue;
          add(file, "shard-escape", call.line,
              "shard-local '" + arg.head + "' escapes through '" +
                  call.callee + "', which stores the reference past the "
                  "shard body",
              call.callee + "(&" + arg.head + ")");
          break;
        }
      }
    }
  }

  void unordered_output_flow_ip(const FileSummary& file,
                                const FunctionSummary& fn) {
    for (const CallSite& call : fn.calls) {
      if (!call.in_unordered_loop) continue;
      // Direct output callees are the intraprocedural rule's territory.
      if (output_callee_names().count(call.callee) != 0) continue;
      for (std::size_t target : graph_.resolve(call)) {
        auto it = output_depth_.find(target);
        if (it == output_depth_.end()) continue;
        add(file, "unordered-output-flow-ip", call.line,
            "iteration over an unordered container reaches output through "
            "'" + call.callee + "' (" +
                std::to_string(it->second + 1) +
                " call(s) deep); order the keys before emitting",
            call.callee + "() in unordered loop");
        break;
      }
    }
  }

  void raw_time_flow(const FileSummary& file, const FunctionSummary& fn) {
    // Findings only at the origin of the raw value (a literal or a raw-int
    // local): forwarded parameters propagate taint via unit_flow_ instead,
    // so a wrapper chain reports once at the point the number enters it.
    for (const CallSite& call : fn.calls) {
      if (unit_type_name(call.callee) || unit_type_name(call.qualifier)) {
        continue;  // Duration::micros(123) is the sanctioned spelling
      }
      for (std::size_t k = 0; k < call.args.size(); ++k) {
        const CallArg& arg = call.args[k];
        const bool literal_origin = arg.is_literal;
        const bool local_origin =
            !arg.head.empty() && fn.raw_int_locals.count(arg.head) != 0;
        if (!literal_origin && !local_origin) continue;
        for (std::size_t target : graph_.resolve(call)) {
          if (unit_flow_.count({target, k}) == 0) continue;
          const std::string what =
              literal_origin ? "literal" : "'" + arg.head + "'";
          add(file, "raw-time-flow", call.line,
              "raw integer " + what + " crosses into '" + call.callee +
                  "', where it is wrapped into a Duration/Ttl; construct "
                  "the strong type at the origin instead",
              call.callee + "(" + (literal_origin ? "<literal>" : arg.head) +
                  " @" + std::to_string(k) + ")");
          break;
        }
      }
    }
  }

  const std::vector<FileSummary>& files_;
  CallGraph graph_;
  std::map<std::string, const FileSummary*> by_path_;
  std::map<const FunctionSummary*, std::size_t> node_id_;
  std::map<std::size_t, std::size_t> output_depth_;
  std::set<std::pair<std::size_t, std::size_t>> unit_flow_;
  DataflowResult result_;
};

}  // namespace

DataflowResult run_dataflow(const std::vector<FileSummary>& files) {
  return Dataflow(files).run();
}

}  // namespace dnsttl::analysis
