#include "analysis/rules.h"

#include <algorithm>
#include <array>
#include <set>
#include <string>
#include <utility>

#include "analysis/callgraph.h"

namespace dnsttl::analysis {
namespace {

using std::size_t;

// ------------------------------------------------------------------ helpers
// The lexical vocabulary (what an RNG/draw/shard entry/output sink looks
// like) lives in callgraph.h, shared with the summary extraction pass.

std::string make_excerpt(const FileIndex& ix, size_t from, size_t to) {
  std::string out;
  for (size_t i = from; i < to && i < ix.code().size(); ++i) {
    if (!out.empty()) out += ' ';
    out += ix.code()[i].text;
    if (out.size() > 96) {
      out.resize(96);
      out += "...";
      break;
    }
  }
  return out;
}

/// Finding sink: applies the suppression table, and keeps the silenced
/// findings around so the stale-suppression audit can tell a used allow
/// from a dead one.
struct Sink {
  const FileIndex& ix;
  const std::string& rel;
  Findings& out;
  Findings* suppressed;

  void add(const char* rule, size_t line, std::string message,
           std::string excerpt) const {
    Finding f{rule, rel, line, std::move(message), std::move(excerpt)};
    if (ix.suppressed(line, rule)) {
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
      return;
    }
    out.push_back(std::move(f));
  }
};

bool path_has_component(const std::string& rel, const char* component) {
  std::string needle = std::string("/") + component + "/";
  std::string padded = "/" + rel;
  return padded.find(needle) != std::string::npos;
}

// ------------------------------------------------------- rng-raw-source

void rule_rng_raw_source(const FileIndex& ix, const Sink& sink) {
  static const std::set<std::string> kLibc = {"rand", "srand", "random",
                                              "drand48", "lrand48"};
  static const std::set<std::string> kStd = {
      "random_device",      "mt19937",
      "mt19937_64",         "minstd_rand",
      "minstd_rand0",       "default_random_engine",
      "knuth_b",            "uniform_int_distribution",
      "uniform_real_distribution", "bernoulli_distribution",
      "normal_distribution",       "discrete_distribution"};
  const TokenList& code = ix.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kLibc.count(t.text) != 0 && i + 1 < code.size() &&
        code[i + 1].punct("(") &&
        (i == 0 || (!is_member_access(code[i - 1]) &&
                    !code[i - 1].punct("::")))) {
      sink.add("rng-raw-source", t.line,
               "`" + t.text + "()` bypasses the seeded sim::Rng; every draw "
               "must flow through an approved Rng accessor so runs replay "
               "byte-identically",
               make_excerpt(ix, i, i + 4));
      continue;
    }
    if (kStd.count(t.text) != 0 && i >= 2 && code[i - 1].punct("::") &&
        code[i - 2].ident("std")) {
      sink.add("rng-raw-source", t.line,
               "`std::" + t.text + "` bypasses the seeded sim::Rng; every "
               "draw must flow through an approved Rng accessor",
               make_excerpt(ix, i - 2, i + 3));
    }
  }
}

// ----------------------------------------------------------- wall-clock

void rule_wall_clock(const FileIndex& ix, const Sink& sink) {
  static const std::set<std::string> kLibc = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime"};
  static const std::set<std::string> kChrono = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const TokenList& code = ix.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kLibc.count(t.text) != 0 && i + 1 < code.size() &&
        code[i + 1].punct("(") &&
        (i == 0 || (!is_member_access(code[i - 1]) &&
                    !code[i - 1].punct("::")))) {
      sink.add("wall-clock", t.line,
               "`" + t.text + "()` reads the wall clock; simulated time "
               "comes from sim::Simulation::now() so replays are "
               "deterministic",
               make_excerpt(ix, i, i + 4));
      continue;
    }
    if (kChrono.count(t.text) != 0 && i >= 4 && code[i - 1].punct("::") &&
        code[i - 2].ident("chrono") && code[i - 3].punct("::") &&
        code[i - 4].ident("std")) {
      sink.add("wall-clock", t.line,
               "`std::chrono::" + t.text + "` reads the wall clock; "
               "simulated time comes from sim::Simulation::now()",
               make_excerpt(ix, i - 4, i + 1));
    }
  }
}

// ------------------------------------------------- unordered-output-flow

void rule_unordered_output_flow(const FileIndex& ix, const Sink& sink) {
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!code[i].ident("for") || !code[i + 1].punct("(")) continue;
    size_t open = i + 1;
    size_t close = ix.match(open);
    if (close == kNpos) continue;

    // Range-for: a top-level ':' inside the parens.
    std::vector<size_t> top = top_level_positions(ix, open + 1, close);
    size_t colon = kNpos;
    for (size_t k : top) {
      if (code[k].punct(":")) {
        colon = k;
        break;
      }
    }
    if (colon == kNpos) continue;

    bool unordered = false;
    for (size_t k = colon + 1; k < close; ++k) {
      const Token& t = code[k];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (ix.unordered_names().count(t.text) != 0 ||
          t.text.rfind("unordered_", 0) == 0) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;

    // Body extent: the following '{...}' or the single statement to ';'.
    size_t body_begin = close + 1;
    size_t body_end;
    if (body_begin < code.size() && code[body_begin].punct("{")) {
      body_end = ix.match(body_begin);
      if (body_end == kNpos) continue;
      ++body_begin;
    } else {
      body_end = body_begin;
      while (body_end < code.size() && !code[body_end].punct(";")) {
        ++body_end;
      }
    }
    for (size_t k = body_begin; k < body_end; ++k) {
      const Token& t = code[k];
      bool hit = false;
      std::string what;
      if (t.punct("<<")) {
        hit = true;
        what = "operator<<";
      } else if (t.kind == TokenKind::kIdentifier &&
                 output_callee_names().count(t.text) != 0 &&
                 k + 1 < code.size() && code[k + 1].punct("(")) {
        hit = true;
        what = t.text + "()";
      }
      if (hit) {
        sink.add("unordered-output-flow", code[i].line,
                 "range-for over an unordered container reaches `" + what +
                     "` (line " + std::to_string(t.line) +
                     "); iteration order is hash/libstdc++-dependent and "
                     "breaks the byte-identical-output contract — sort into "
                     "a vector first",
                 make_excerpt(ix, i, close + 1));
        break;
      }
    }
  }
}

// ---------------------------------------------- shared-mutable-in-shard

void rule_shared_mutable(const FileIndex& ix, const Sink& sink) {
  for (const VarDecl& d : ix.var_decls()) {
    const bool static_storage =
        d.scope == ScopeKind::kNamespace || d.static_kw;
    if (!static_storage || d.is_thread_local) continue;
    if (d.ptr_or_ref && pool_type_text(d.type_text)) {
      sink.add("shared-mutable-in-shard", d.line,
               "`" + d.name + "` (" + d.type_text + ") is a static-storage "
               "alias into an SoA pool: the pointee is rebuilt/compacted "
               "per shard, so the alias dangles across shard boundaries "
               "even though it is const — thread the pool through the "
               "shard callback",
               d.type_text + " " + d.name);
      continue;
    }
    if (d.is_const) continue;
    sink.add("shared-mutable-in-shard", d.line,
             "`" + d.name + "` (" + d.type_text + ") has static storage and "
             "is mutable: shards run this code concurrently on the par:: "
             "pool, so it is shared state — a data race and a determinism "
             "leak; make it const, thread_local, or shard-local",
             d.type_text + " " + d.name);
  }
}

// -------------------------------------------------------- raw-time-param

bool time_ish_name(const std::string& name) {
  static const std::set<std::string> kWords = {
      "ttl",    "time",    "timeout", "deadline", "duration",
      "interval", "delay", "expiry",  "latency",  "rtt",
      "outage", "backoff", "stale",   "horizon"};
  static const std::set<std::string> kSuffixes = {
      "us", "ms", "sec", "secs", "seconds", "micros", "millis"};
  std::string low = lower_ascii(name);
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin <= low.size()) {
    size_t end = low.find('_', begin);
    if (end == std::string::npos) end = low.size();
    if (end > begin) segments.push_back(low.substr(begin, end - begin));
    if (end == low.size()) break;
    begin = end + 1;
  }
  // `timeout_count`, `retry_total`, ... are tallies, not time values.
  static const std::set<std::string> kCounters = {"count",  "counts", "total",
                                                  "totals", "num",    "idx",
                                                  "index",  "id"};
  if (!segments.empty() && kCounters.count(segments.back()) != 0) return false;
  for (const std::string& s : segments) {
    if (kWords.count(s) != 0) return true;
  }
  return segments.size() >= 2 && kSuffixes.count(segments.back()) != 0;
}

void rule_raw_time_param(const FileIndex& ix, const std::string& rel,
                         const Sink& sink) {
  if (rel.size() < 2 || rel.compare(rel.size() - 2, 2, ".h") != 0) return;
  const TokenList& code = ix.code();
  for (size_t i = 1; i < code.size(); ++i) {
    if (!code[i].punct("(")) continue;
    const Token& prev = code[i - 1];
    if (prev.kind != TokenKind::kIdentifier) continue;
    static const std::set<std::string> kNotAFunction = {
        "if",       "for",      "while",    "switch",     "return",
        "catch",    "sizeof",   "alignof",  "decltype",   "noexcept",
        "static_assert", "defined", "assert"};
    if (kNotAFunction.count(prev.text) != 0) continue;
    ScopeKind scope = ix.scope_kind_at(i);
    if (scope != ScopeKind::kNamespace && scope != ScopeKind::kClass) {
      continue;
    }
    for (const Param& p : ix.parse_params(i)) {
      if (p.name.empty() || p.ptr_or_ref) continue;
      if (!time_ish_name(p.name)) continue;
      if (!raw_int_type_text(p.type_text)) continue;
      sink.add("raw-time-param", p.line,
               "public-header parameter `" + p.name + "` carries time as a "
               "raw `" + p.type_text + "`; take sim::Duration, sim::Time, "
               "or dns::Ttl so the unit lives in the type",
               prev.text + "(... " + p.type_text + " " + p.name + " ...)");
    }
  }
  // Data members too: a raw-int field named like a time quantity leaks the
  // unit out of the type system exactly like a parameter does.
  for (const VarDecl& d : ix.var_decls()) {
    if (d.scope != ScopeKind::kClass || d.ptr_or_ref) continue;
    if (!time_ish_name(d.name)) continue;
    if (!raw_int_type_text(d.type_text)) continue;
    sink.add("raw-time-param", d.line,
             "public-header member `" + d.name + "` carries time as a raw `" +
                 d.type_text + "`; use sim::Duration, sim::Time, or "
                 "dns::Ttl so the unit lives in the type",
             d.type_text + " " + d.name);
  }
}

// ------------------------------------------------------- unit-float-cast

void rule_unit_float_cast(const FileIndex& ix, const std::string& rel,
                          const Sink& sink) {
  if (path_has_component(rel, "stats")) return;  // sanctioned float layer
  static const std::set<std::string> kEscapes = {
      "count",      "value",           "ticks",
      "to_seconds", "to_milliseconds", "approx_seconds",
      "approx_milliseconds", "approx_scale"};
  // Unit-typed names: local/namespace declarations plus every unit-typed
  // function/lambda parameter in the file.
  std::set<std::string> unit_names;
  for (const auto& [name, unit] : ix.unit_typed()) {
    unit_names.insert(name);
  }
  for (const Scope& s : ix.scopes()) {
    if (s.params_open == kNpos) continue;
    for (const Param& p : ix.parse_params(s.params_open)) {
      if (!p.name.empty() && unit_type_text(p.type_text)) {
        unit_names.insert(p.name);
      }
    }
  }
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (!code[i].ident("static_cast") || !code[i + 1].punct("<")) continue;
    // Destination type between < >.
    size_t k = i + 2;
    std::string dest;
    int depth = 1;
    while (k < code.size() && depth > 0) {
      if (code[k].punct("<")) ++depth;
      if (code[k].punct(">")) --depth;
      if (depth > 0) {
        if (!dest.empty()) dest += ' ';
        dest += code[k].text;
      }
      ++k;
    }
    if (dest != "float" && dest != "double" && dest != "long double") {
      continue;
    }
    if (k >= code.size() || !code[k].punct("(")) continue;
    size_t close = ix.match(k);
    if (close == kNpos) continue;

    bool has_escape = false;
    bool has_unit = false;
    std::string unit_name;
    for (size_t j = k + 1; j < close; ++j) {
      const Token& t = code[j];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (kEscapes.count(t.text) != 0) has_escape = true;
      if (unit_names.count(t.text) != 0) {
        has_unit = true;
        unit_name = t.text;
      }
      if ((t.text == "Duration" || t.text == "SimTime" ||
           t.text == "Ttl") &&
          j >= 2 && code[j - 1].punct("::")) {
        has_unit = true;
        unit_name = t.text;
      }
    }
    if (has_unit && !has_escape) {
      sink.add("unit-float-cast", code[i].line,
               "cast of unit-typed `" + unit_name + "` to " + dest +
                   " outside src/stats/; use sim::to_seconds()/"
                   "to_milliseconds() or keep float conversions in the "
                   "stats layer",
               make_excerpt(ix, i, close + 1));
    }
  }
}

// -------------------------------------------------------- rng-gated-draw

void rule_rng_gated_draw(const FileIndex& ix, const Sink& sink) {
  const std::set<std::string> rng_typed = rng_typed_names(ix);
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(code[i].ident("if") || code[i].ident("while"))) continue;
    if (!code[i + 1].punct("(")) continue;
    size_t open = i + 1;
    size_t close = ix.match(open);
    if (close == kNpos) continue;

    // Split the condition on top-level '&&'.
    std::vector<std::pair<size_t, size_t>> operands;
    size_t begin = open + 1;
    for (size_t k : top_level_positions(ix, open + 1, close)) {
      if (code[k].punct("&&")) {
        operands.emplace_back(begin, k);
        begin = k + 1;
      }
    }
    operands.emplace_back(begin, close);
    if (operands.size() < 2) continue;

    std::vector<bool> has_draw(operands.size(), false);
    std::vector<size_t> draw_at(operands.size(), kNpos);
    for (size_t n = 0; n < operands.size(); ++n) {
      for (size_t j = operands[n].first; j < operands[n].second; ++j) {
        if (draw_site_at(ix, j, nullptr, &rng_typed)) {
          has_draw[n] = true;
          draw_at[n] = j;
          break;
        }
      }
    }
    for (size_t n = 0; n + 1 < operands.size(); ++n) {
      if (!has_draw[n]) continue;
      bool later_gate = false;
      for (size_t m = n + 1; m < operands.size(); ++m) {
        if (!has_draw[m]) later_gate = true;
      }
      if (!later_gate) continue;
      sink.add("rng-gated-draw", code[draw_at[n]].line,
               "RNG draw runs before a cheaper gate in the same `&&` chain: "
               "an inactive window / zero rate must burn no draw "
               "(RNG-stream contract) — reorder so the predicate "
               "short-circuits first",
               make_excerpt(ix, open + 1, close));
      break;
    }
  }
}

// ------------------------------------------------------ rng-fork-in-shard

void rule_rng_fork_in_shard(const FileIndex& ix, const Sink& sink) {
  const TokenList& code = ix.code();
  const std::set<std::string> rng_typed = rng_typed_names(ix);
  for (size_t open : shard_body_opens(ix)) {
    const size_t body_begin = open + 1;
    const size_t body_end = ix.match(open);
    if (body_end == kNpos) continue;
    // Locally-bound names: lambda parameters + declarations in the body.
    // An Rng declared IN the body only counts as bound when its initializer
    // went through fork(): `sim::Rng a = src.fork(shard)` is the contract,
    // `sim::Rng a = src` is just a renamed capture of a shared stream.
    std::set<std::string> bound;
    for (const Scope& s : ix.scopes()) {
      if (s.open == open && s.params_open != kNpos) {
        for (const Param& p : ix.parse_params(s.params_open)) {
          if (!p.name.empty()) bound.insert(p.name);
        }
      }
    }
    for (const VarDecl& d : ix.var_decls()) {
      if (d.name_idx < body_begin || d.name_idx >= body_end) continue;
      bool forked = false;
      if (rng_typed.count(d.name) != 0) {
        for (size_t k = d.name_idx;
             k < code.size() && !code[k].punct(";"); ++k) {
          if (code[k].ident("fork")) {
            forked = true;
            break;
          }
        }
      } else {
        forked = true;  // not an Rng: irrelevant to fork discipline
      }
      if (forked) bound.insert(d.name);
    }
    for (size_t j = body_begin; j < body_end; ++j) {
      std::string head;
      if (!draw_site_at(ix, j, &head, &rng_typed)) continue;
      if (!head.empty() && bound.count(head) != 0) continue;
      sink.add("rng-fork-in-shard", code[j].line,
               "shard body draws from a captured RNG stream (`" +
                   (head.empty() ? std::string("<expr>") : head) +
                   "`): every shard must draw from its own forked stream "
                   "(rng.fork(shard)) or one threaded through the callback, "
                   "or results depend on shard interleaving",
               make_excerpt(ix, j > 3 ? j - 3 : 0, j + 3));
    }
  }
}

// ------------------------------------------------------ task-state-escape

/// Resumable-task purity: a struct with a `phase` member (or Phase-typed
/// member) is a suspended computation — the bulk resolution engine parks it
/// between scheduler waves, and other tasks retire/admit (compacting the
/// shard's SoA pools) while it sleeps.  A raw pointer or reference member
/// into a pool type therefore dangles across the suspension point even
/// though it was valid when the step stored it.  Task state must hold
/// indices or values; the pool is re-derived from the shard context each
/// step.  Same type vocabulary as shared-mutable-in-shard (the PR 8 escape
/// machinery's pool_type_text).
void rule_task_state_escape(const FileIndex& ix, const Sink& sink) {
  const std::vector<Scope>& scopes = ix.scopes();
  for (size_t si = 0; si < scopes.size(); ++si) {
    const Scope& s = scopes[si];
    if (s.kind != ScopeKind::kClass || s.close == kNpos) continue;
    // Direct members only (innermost scope is this class): nested enums
    // and structs keep their own membership.
    bool resumable = false;
    for (const VarDecl& d : ix.var_decls()) {
      if (d.scope != ScopeKind::kClass) continue;
      if (ix.innermost_scope(d.name_idx) != si) continue;
      if (d.name == "phase" ||
          d.type_text.find("Phase") != std::string::npos) {
        resumable = true;
        break;
      }
    }
    if (!resumable) continue;
    for (const VarDecl& d : ix.var_decls()) {
      if (d.scope != ScopeKind::kClass) continue;
      if (ix.innermost_scope(d.name_idx) != si) continue;
      if (!d.ptr_or_ref || !pool_type_text(d.type_text)) continue;
      sink.add("task-state-escape", d.line,
               "`" + d.name + "` (" + d.type_text + ") aliases an SoA pool "
               "from inside a resumable task (the struct has a phase "
               "member, so it suspends between steps): the pool compacts "
               "as sibling tasks retire, dangling this member across the "
               "suspension point — store an index and re-derive the alias "
               "each step",
               d.type_text + " " + d.name);
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_infos() {
  static const std::vector<RuleInfo> kInfos = {
      {"rng-raw-source", "rng-stream",
       "draws must flow through the seeded sim::Rng accessors, never libc "
       "rand()/std::random_device/std engines"},
      {"rng-gated-draw", "rng-stream",
       "in a `&&` chain, cheap gates run before RNG draws so inactive "
       "windows burn no draw"},
      {"rng-fork-in-shard", "rng-stream",
       "par:: shard bodies draw only from forked or threaded-through RNG "
       "streams, never captured ones"},
      {"rng-escape", "rng-stream",
       "shard bodies must not pass an unforked RNG by mutable reference "
       "into callees that draw from it (interprocedural)"},
      {"shared-mutable-in-shard", "shard-purity",
       "no mutable static-storage state (or SoA-pool aliases, even const) "
       "reachable from par:: shard bodies"},
      {"shard-escape", "shard-purity",
       "no reference/pointer to shard-local state stored or returned past "
       "the shard body (interprocedural)"},
      {"task-state-escape", "shard-purity",
       "resumable-task structs (phase-tagged, suspended between scheduler "
       "steps) hold no raw pointers/references into SoA pools — indices "
       "only"},
      {"unordered-output-flow", "determinism",
       "no range-for over unordered containers feeding render()/output/"
       "scheduling paths"},
      {"unordered-output-flow-ip", "determinism",
       "no range-for over unordered containers reaching an output sink "
       "through a call chain (interprocedural, depth <= 4)"},
      {"wall-clock", "determinism",
       "no wall-clock reads; simulated time comes from "
       "sim::Simulation::now()"},
      {"raw-time-param", "unit-safety",
       "public-header parameters carry time as sim::Duration/sim::Time/"
       "dns::Ttl, not raw integers"},
      {"raw-time-flow", "unit-safety",
       "no raw integer literal/local crossing a call boundary into a "
       "Duration/Ttl construction site (interprocedural)"},
      {"unit-float-cast", "unit-safety",
       "no float casts of unit-typed values outside src/stats/"},
      {"stale-suppression", "hygiene",
       "every lint:allow/analyze:allow names a rule that still fires on "
       "the covered line; dead allows must be deleted"},
  };
  return kInfos;
}

Findings run_rules(const FileIndex& ix, const std::string& rel_path,
                   Findings* suppressed) {
  Findings out;
  const Sink sink{ix, rel_path, out, suppressed};
  rule_rng_raw_source(ix, sink);
  rule_wall_clock(ix, sink);
  rule_unordered_output_flow(ix, sink);
  rule_shared_mutable(ix, sink);
  rule_raw_time_param(ix, rel_path, sink);
  rule_unit_float_cast(ix, rel_path, sink);
  rule_rng_gated_draw(ix, sink);
  rule_rng_fork_in_shard(ix, sink);
  rule_task_state_escape(ix, sink);
  return out;
}

}  // namespace dnsttl::analysis
