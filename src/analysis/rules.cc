#include "analysis/rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <string>

namespace dnsttl::analysis {
namespace {

using std::size_t;

// ------------------------------------------------------------------ helpers

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool rng_ish(const std::string& name) {
  return lower(name).find("rng") != std::string::npos;
}

const std::set<std::string>& draw_names() {
  static const std::set<std::string> kDraws = {
      "next",   "uniform",   "uniform_int", "chance",        "exponential",
      "normal", "lognormal", "pareto",      "weighted_index"};
  return kDraws;
}

bool member_access(const Token& t) { return t.punct(".") || t.punct("->"); }

std::string make_excerpt(const FileIndex& ix, size_t from, size_t to) {
  std::string out;
  for (size_t i = from; i < to && i < ix.code().size(); ++i) {
    if (!out.empty()) out += ' ';
    out += ix.code()[i].text;
    if (out.size() > 96) {
      out.resize(96);
      out += "...";
      break;
    }
  }
  return out;
}

void add(Findings& out, const FileIndex& ix, const std::string& rel,
         const char* rule, size_t line, std::string message,
         std::string excerpt) {
  if (ix.suppressed(line, rule)) return;
  out.push_back({rule, rel, line, std::move(message), std::move(excerpt)});
}

/// Top-level token positions of [begin, end): nested ()[]{} extents hopped,
/// the open/close markers themselves kept.
std::vector<size_t> top_level(const FileIndex& ix, size_t begin, size_t end) {
  std::vector<size_t> top;
  for (size_t j = begin; j < end; ++j) {
    const Token& t = ix.code()[j];
    top.push_back(j);
    if (t.punct("(") || t.punct("[") || t.punct("{")) {
      size_t m = ix.match(j);
      if (m == kNpos || m >= end) break;
      top.push_back(m);
      j = m;
    }
  }
  return top;
}

/// Names declared anywhere in the file with an Rng-flavoured type (local
/// declarations and function/lambda parameters).  Lets the draw detector
/// recognise `sim::Rng bad = nl_rng; bad.uniform();` even though "bad"
/// itself does not look rng-ish.
std::set<std::string> rng_typed_names(const FileIndex& ix) {
  std::set<std::string> out;
  for (const VarDecl& d : ix.var_decls()) {
    if (d.type_text.find("Rng") != std::string::npos) out.insert(d.name);
  }
  for (const Scope& s : ix.scopes()) {
    if (s.params_open == kNpos) continue;
    for (const Param& p : ix.parse_params(s.params_open)) {
      if (!p.name.empty() && p.type_text.find("Rng") != std::string::npos) {
        out.insert(p.name);
      }
    }
  }
  return out;
}

/// A draw site: `<chain> .|-> <draw-name> (` where the postfix chain
/// mentions an RNG (by name, or by declared type via `rng_typed`).
/// Returns the chain-head identifier via `head`.
bool draw_site_at(const FileIndex& ix, size_t i, std::string* head,
                  const std::set<std::string>* rng_typed = nullptr) {
  const TokenList& code = ix.code();
  if (i + 1 >= code.size() || i == 0) return false;
  if (code[i].kind != TokenKind::kIdentifier) return false;
  if (draw_names().count(code[i].text) == 0) return false;
  if (!code[i + 1].punct("(")) return false;
  if (!member_access(code[i - 1])) return false;

  // Walk the postfix chain backwards: ident, ., ->, (), [] links.
  bool chain_has_rng = false;
  std::string chain_head;
  size_t k = i - 1;  // at the '.'/'->'
  while (k > 0) {
    --k;
    const Token& t = code[k];
    if (t.punct(")") || t.punct("]")) {
      size_t m = ix.match(k);
      if (m == kNpos || m == 0) break;
      k = m;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      chain_head = t.text;
      if (rng_ish(t.text) ||
          (rng_typed != nullptr && rng_typed->count(t.text) != 0)) {
        chain_has_rng = true;
      }
      // Keep walking only if another chain link precedes this identifier.
      if (k == 0 || (!member_access(code[k - 1]) && !code[k - 1].punct("::"))) {
        break;
      }
      continue;
    }
    if (member_access(t) || t.punct("::")) continue;
    if (t.ident("this")) {
      chain_head = "this";
      break;
    }
    break;
  }
  if (!chain_has_rng && !rng_ish(code[i].text)) return false;
  if (head != nullptr) *head = chain_head;
  return true;
}

bool path_has_component(const std::string& rel, const char* component) {
  std::string needle = std::string("/") + component + "/";
  std::string padded = "/" + rel;
  return padded.find(needle) != std::string::npos;
}

// ------------------------------------------------------- rng-raw-source

void rule_rng_raw_source(const FileIndex& ix, const std::string& rel,
                         Findings& out) {
  static const std::set<std::string> kLibc = {"rand", "srand", "random",
                                              "drand48", "lrand48"};
  static const std::set<std::string> kStd = {
      "random_device",      "mt19937",
      "mt19937_64",         "minstd_rand",
      "minstd_rand0",       "default_random_engine",
      "knuth_b",            "uniform_int_distribution",
      "uniform_real_distribution", "bernoulli_distribution",
      "normal_distribution",       "discrete_distribution"};
  const TokenList& code = ix.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kLibc.count(t.text) != 0 && i + 1 < code.size() &&
        code[i + 1].punct("(") &&
        (i == 0 || (!member_access(code[i - 1]) &&
                    !code[i - 1].punct("::")))) {
      add(out, ix, rel, "rng-raw-source", t.line,
          "`" + t.text + "()` bypasses the seeded sim::Rng; every draw "
          "must flow through an approved Rng accessor so runs replay "
          "byte-identically",
          make_excerpt(ix, i, i + 4));
      continue;
    }
    if (kStd.count(t.text) != 0 && i >= 2 && code[i - 1].punct("::") &&
        code[i - 2].ident("std")) {
      add(out, ix, rel, "rng-raw-source", t.line,
          "`std::" + t.text + "` bypasses the seeded sim::Rng; every draw "
          "must flow through an approved Rng accessor",
          make_excerpt(ix, i - 2, i + 3));
    }
  }
}

// ----------------------------------------------------------- wall-clock

void rule_wall_clock(const FileIndex& ix, const std::string& rel,
                     Findings& out) {
  static const std::set<std::string> kLibc = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime"};
  static const std::set<std::string> kChrono = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const TokenList& code = ix.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kLibc.count(t.text) != 0 && i + 1 < code.size() &&
        code[i + 1].punct("(") &&
        (i == 0 || (!member_access(code[i - 1]) &&
                    !code[i - 1].punct("::")))) {
      add(out, ix, rel, "wall-clock", t.line,
          "`" + t.text + "()` reads the wall clock; simulated time comes "
          "from sim::Simulation::now() so replays are deterministic",
          make_excerpt(ix, i, i + 4));
      continue;
    }
    if (kChrono.count(t.text) != 0 && i >= 4 && code[i - 1].punct("::") &&
        code[i - 2].ident("chrono") && code[i - 3].punct("::") &&
        code[i - 4].ident("std")) {
      add(out, ix, rel, "wall-clock", t.line,
          "`std::chrono::" + t.text + "` reads the wall clock; simulated "
          "time comes from sim::Simulation::now()",
          make_excerpt(ix, i - 4, i + 1));
    }
  }
}

// ------------------------------------------------- unordered-output-flow

void rule_unordered_output_flow(const FileIndex& ix, const std::string& rel,
                                Findings& out) {
  static const std::set<std::string> kOutputCallees = {
      "printf",  "fprintf", "render",      "report",        "format",
      "to_string", "write", "schedule_at", "schedule_after"};
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!code[i].ident("for") || !code[i + 1].punct("(")) continue;
    size_t open = i + 1;
    size_t close = ix.match(open);
    if (close == kNpos) continue;

    // Range-for: a top-level ':' inside the parens.
    std::vector<size_t> top = top_level(ix, open + 1, close);
    size_t colon = kNpos;
    for (size_t k : top) {
      if (code[k].punct(":")) {
        colon = k;
        break;
      }
    }
    if (colon == kNpos) continue;

    bool unordered = false;
    for (size_t k = colon + 1; k < close; ++k) {
      const Token& t = code[k];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (ix.unordered_names().count(t.text) != 0 ||
          t.text.rfind("unordered_", 0) == 0) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;

    // Body extent: the following '{...}' or the single statement to ';'.
    size_t body_begin = close + 1;
    size_t body_end;
    if (body_begin < code.size() && code[body_begin].punct("{")) {
      body_end = ix.match(body_begin);
      if (body_end == kNpos) continue;
      ++body_begin;
    } else {
      body_end = body_begin;
      while (body_end < code.size() && !code[body_end].punct(";")) {
        ++body_end;
      }
    }
    for (size_t k = body_begin; k < body_end; ++k) {
      const Token& t = code[k];
      bool hit = false;
      std::string what;
      if (t.punct("<<")) {
        hit = true;
        what = "operator<<";
      } else if (t.kind == TokenKind::kIdentifier &&
                 kOutputCallees.count(t.text) != 0 && k + 1 < code.size() &&
                 code[k + 1].punct("(")) {
        hit = true;
        what = t.text + "()";
      }
      if (hit) {
        add(out, ix, rel, "unordered-output-flow", code[i].line,
            "range-for over an unordered container reaches `" + what +
                "` (line " + std::to_string(t.line) +
                "); iteration order is hash/libstdc++-dependent and breaks "
                "the byte-identical-output contract — sort into a vector "
                "first",
            make_excerpt(ix, i, close + 1));
        break;
      }
    }
  }
}

// ---------------------------------------------- shared-mutable-in-shard

bool pool_type(const std::string& type_text) {
  // Word-wise: any type word ending in "Pool", or the wheel/schedule SoA
  // types whose indices dangle across shard rebuilds.
  size_t begin = 0;
  while (begin <= type_text.size()) {
    size_t end = type_text.find(' ', begin);
    if (end == std::string::npos) end = type_text.size();
    std::string word = type_text.substr(begin, end - begin);
    if (!word.empty()) {
      if (word.size() >= 4 &&
          word.compare(word.size() - 4, 4, "Pool") == 0) {
        return true;
      }
      if (word == "TimerWheel" || word == "VpSchedule") return true;
    }
    if (end == type_text.size()) break;
    begin = end + 1;
  }
  return false;
}

void rule_shared_mutable(const FileIndex& ix, const std::string& rel,
                         Findings& out) {
  for (const VarDecl& d : ix.var_decls()) {
    const bool static_storage =
        d.scope == ScopeKind::kNamespace || d.static_kw;
    if (!static_storage || d.is_thread_local) continue;
    if (d.ptr_or_ref && pool_type(d.type_text)) {
      add(out, ix, rel, "shared-mutable-in-shard", d.line,
          "`" + d.name + "` (" + d.type_text + ") is a static-storage "
          "alias into an SoA pool: the pointee is rebuilt/compacted per "
          "shard, so the alias dangles across shard boundaries even though "
          "it is const — thread the pool through the shard callback",
          d.type_text + " " + d.name);
      continue;
    }
    if (d.is_const) continue;
    add(out, ix, rel, "shared-mutable-in-shard", d.line,
        "`" + d.name + "` (" + d.type_text + ") has static storage and is "
        "mutable: shards run this code concurrently on the par:: pool, so "
        "it is shared state — a data race and a determinism leak; make it "
        "const, thread_local, or shard-local",
        d.type_text + " " + d.name);
  }
}

// -------------------------------------------------------- raw-time-param

bool time_ish_name(const std::string& name) {
  static const std::set<std::string> kWords = {
      "ttl",    "time",    "timeout", "deadline", "duration",
      "interval", "delay", "expiry",  "latency",  "rtt",
      "outage", "backoff", "stale",   "horizon"};
  static const std::set<std::string> kSuffixes = {
      "us", "ms", "sec", "secs", "seconds", "micros", "millis"};
  std::string low = lower(name);
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin <= low.size()) {
    size_t end = low.find('_', begin);
    if (end == std::string::npos) end = low.size();
    if (end > begin) segments.push_back(low.substr(begin, end - begin));
    if (end == low.size()) break;
    begin = end + 1;
  }
  // `timeout_count`, `retry_total`, ... are tallies, not time values.
  static const std::set<std::string> kCounters = {"count",  "counts", "total",
                                                  "totals", "num",    "idx",
                                                  "index",  "id"};
  if (!segments.empty() && kCounters.count(segments.back()) != 0) return false;
  for (const std::string& s : segments) {
    if (kWords.count(s) != 0) return true;
  }
  return segments.size() >= 2 && kSuffixes.count(segments.back()) != 0;
}

bool raw_int_type(const std::string& type_text) {
  static const std::set<std::string> kIntWords = {
      "int",      "long",     "short",    "unsigned", "signed",
      "size_t",   "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "uint_fast8_t",
      "uint_fast16_t", "uint_fast32_t", "uint_fast64_t", "ptrdiff_t"};
  bool any = false;
  size_t begin = 0;
  while (begin <= type_text.size()) {
    size_t end = type_text.find(' ', begin);
    if (end == std::string::npos) end = type_text.size();
    std::string word = type_text.substr(begin, end - begin);
    if (!word.empty() && word != "std" && word != "::" && word != "const" &&
        word != "constexpr" && word != "inline" && word != "static" &&
        word != "volatile") {
      if (kIntWords.count(word) == 0) return false;
      any = true;
    }
    if (end == type_text.size()) break;
    begin = end + 1;
  }
  return any;
}

void rule_raw_time_param(const FileIndex& ix, const std::string& rel,
                         Findings& out) {
  if (rel.size() < 2 || rel.compare(rel.size() - 2, 2, ".h") != 0) return;
  const TokenList& code = ix.code();
  for (size_t i = 1; i < code.size(); ++i) {
    if (!code[i].punct("(")) continue;
    const Token& prev = code[i - 1];
    if (prev.kind != TokenKind::kIdentifier) continue;
    static const std::set<std::string> kNotAFunction = {
        "if",       "for",      "while",    "switch",     "return",
        "catch",    "sizeof",   "alignof",  "decltype",   "noexcept",
        "static_assert", "defined", "assert"};
    if (kNotAFunction.count(prev.text) != 0) continue;
    ScopeKind scope = ix.scope_kind_at(i);
    if (scope != ScopeKind::kNamespace && scope != ScopeKind::kClass) {
      continue;
    }
    for (const Param& p : ix.parse_params(i)) {
      if (p.name.empty() || p.ptr_or_ref) continue;
      if (!time_ish_name(p.name)) continue;
      if (!raw_int_type(p.type_text)) continue;
      add(out, ix, rel, "raw-time-param", p.line,
          "public-header parameter `" + p.name + "` carries time as a raw "
          "`" + p.type_text + "`; take sim::Duration, sim::Time, or "
          "dns::Ttl so the unit lives in the type",
          prev.text + "(... " + p.type_text + " " + p.name + " ...)");
    }
  }
  // Data members too: a raw-int field named like a time quantity leaks the
  // unit out of the type system exactly like a parameter does.
  for (const VarDecl& d : ix.var_decls()) {
    if (d.scope != ScopeKind::kClass || d.ptr_or_ref) continue;
    if (!time_ish_name(d.name)) continue;
    if (!raw_int_type(d.type_text)) continue;
    add(out, ix, rel, "raw-time-param", d.line,
        "public-header member `" + d.name + "` carries time as a raw `" +
            d.type_text + "`; use sim::Duration, sim::Time, or dns::Ttl so "
            "the unit lives in the type",
        d.type_text + " " + d.name);
  }
}

// ------------------------------------------------------- unit-float-cast

bool unit_typed_text(const std::string& type_text) {
  std::string prev;
  size_t begin = 0;
  while (begin <= type_text.size()) {
    size_t end = type_text.find(' ', begin);
    if (end == std::string::npos) end = type_text.size();
    std::string word = type_text.substr(begin, end - begin);
    if (word == "Duration" || word == "SimTime" || word == "Ttl") return true;
    if (word == "Time" && prev == "::") return true;
    if (!word.empty()) prev = word;
    if (end == type_text.size()) break;
    begin = end + 1;
  }
  return false;
}

void rule_unit_float_cast(const FileIndex& ix, const std::string& rel,
                          Findings& out) {
  if (path_has_component(rel, "stats")) return;  // sanctioned float layer
  static const std::set<std::string> kEscapes = {
      "count",      "value",           "ticks",
      "to_seconds", "to_milliseconds", "approx_seconds",
      "approx_milliseconds", "approx_scale"};
  // Unit-typed names: local/namespace declarations plus every unit-typed
  // function/lambda parameter in the file.
  std::set<std::string> unit_names;
  for (const auto& [name, unit] : ix.unit_typed()) {
    unit_names.insert(name);
  }
  for (const Scope& s : ix.scopes()) {
    if (s.params_open == kNpos) continue;
    for (const Param& p : ix.parse_params(s.params_open)) {
      if (!p.name.empty() && unit_typed_text(p.type_text)) {
        unit_names.insert(p.name);
      }
    }
  }
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (!code[i].ident("static_cast") || !code[i + 1].punct("<")) continue;
    // Destination type between < >.
    size_t k = i + 2;
    std::string dest;
    int depth = 1;
    while (k < code.size() && depth > 0) {
      if (code[k].punct("<")) ++depth;
      if (code[k].punct(">")) --depth;
      if (depth > 0) {
        if (!dest.empty()) dest += ' ';
        dest += code[k].text;
      }
      ++k;
    }
    if (dest != "float" && dest != "double" && dest != "long double") {
      continue;
    }
    if (k >= code.size() || !code[k].punct("(")) continue;
    size_t close = ix.match(k);
    if (close == kNpos) continue;

    bool has_escape = false;
    bool has_unit = false;
    std::string unit_name;
    for (size_t j = k + 1; j < close; ++j) {
      const Token& t = code[j];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (kEscapes.count(t.text) != 0) has_escape = true;
      if (unit_names.count(t.text) != 0) {
        has_unit = true;
        unit_name = t.text;
      }
      if ((t.text == "Duration" || t.text == "SimTime" ||
           t.text == "Ttl") &&
          j >= 2 && code[j - 1].punct("::")) {
        has_unit = true;
        unit_name = t.text;
      }
    }
    if (has_unit && !has_escape) {
      add(out, ix, rel, "unit-float-cast", code[i].line,
          "cast of unit-typed `" + unit_name + "` to " + dest + " outside "
          "src/stats/; use sim::to_seconds()/to_milliseconds() or keep "
          "float conversions in the stats layer",
          make_excerpt(ix, i, close + 1));
    }
  }
}

// -------------------------------------------------------- rng-gated-draw

void rule_rng_gated_draw(const FileIndex& ix, const std::string& rel,
                         Findings& out) {
  const std::set<std::string> rng_typed = rng_typed_names(ix);
  const TokenList& code = ix.code();
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(code[i].ident("if") || code[i].ident("while"))) continue;
    if (!code[i + 1].punct("(")) continue;
    size_t open = i + 1;
    size_t close = ix.match(open);
    if (close == kNpos) continue;

    // Split the condition on top-level '&&'.
    std::vector<std::pair<size_t, size_t>> operands;
    size_t begin = open + 1;
    for (size_t k : top_level(ix, open + 1, close)) {
      if (code[k].punct("&&")) {
        operands.emplace_back(begin, k);
        begin = k + 1;
      }
    }
    operands.emplace_back(begin, close);
    if (operands.size() < 2) continue;

    std::vector<bool> has_draw(operands.size(), false);
    std::vector<size_t> draw_at(operands.size(), kNpos);
    for (size_t n = 0; n < operands.size(); ++n) {
      for (size_t j = operands[n].first; j < operands[n].second; ++j) {
        if (draw_site_at(ix, j, nullptr, &rng_typed)) {
          has_draw[n] = true;
          draw_at[n] = j;
          break;
        }
      }
    }
    for (size_t n = 0; n + 1 < operands.size(); ++n) {
      if (!has_draw[n]) continue;
      bool later_gate = false;
      for (size_t m = n + 1; m < operands.size(); ++m) {
        if (!has_draw[m]) later_gate = true;
      }
      if (!later_gate) continue;
      add(out, ix, rel, "rng-gated-draw", code[draw_at[n]].line,
          "RNG draw runs before a cheaper gate in the same `&&` chain: an "
          "inactive window / zero rate must burn no draw (RNG-stream "
          "contract) — reorder so the predicate short-circuits first",
          make_excerpt(ix, open + 1, close));
      break;
    }
  }
}

// ------------------------------------------------------ rng-fork-in-shard

void collect_lambda_bodies(const FileIndex& ix, size_t begin, size_t end,
                           std::vector<std::pair<size_t, size_t>>& bodies) {
  const TokenList& code = ix.code();
  for (size_t j = begin; j < end; ++j) {
    if (!code[j].punct("[")) continue;
    size_t m = ix.match(j);
    if (m == kNpos || m + 1 >= end) continue;
    size_t k = m + 1;
    if (code[k].punct("(")) {
      size_t pc = ix.match(k);
      if (pc == kNpos) continue;
      k = pc + 1;
    }
    // Skip specifiers / trailing return, bounded.
    size_t guard = 0;
    while (k < end && !code[k].punct("{") && guard++ < 12) ++k;
    if (k >= end || !code[k].punct("{")) continue;
    size_t body_close = ix.match(k);
    if (body_close == kNpos) continue;
    bodies.emplace_back(k + 1, body_close);
  }
}

void rule_rng_fork_in_shard(const FileIndex& ix, const std::string& rel,
                            Findings& out) {
  static const std::set<std::string> kShardEntries = {
      "parallel_for_shards", "map_shards",           "ordered_reduce",
      "run_sharded_script",  "run_bailiwick_sharded", "crawl_sharded",
      "run_controlled_ttl_set"};
  const TokenList& code = ix.code();
  std::vector<std::pair<size_t, size_t>> bodies;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind == TokenKind::kIdentifier &&
        kShardEntries.count(code[i].text) != 0 && code[i + 1].punct("(")) {
      size_t close = ix.match(i + 1);
      if (close != kNpos) collect_lambda_bodies(ix, i + 2, close, bodies);
    }
    // Lambdas bound to ShardScript/EnvFactory variables are shard bodies
    // too: `ShardScript script = [...](...) { ... };`
    if ((code[i].ident("ShardScript") || code[i].ident("EnvFactory")) &&
        i + 3 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        code[i + 2].punct("=") && code[i + 3].punct("[")) {
      size_t stmt_end = i + 3;
      while (stmt_end < code.size() && !code[stmt_end].punct(";")) {
        if (code[stmt_end].punct("{")) {
          size_t m = ix.match(stmt_end);
          if (m == kNpos) break;
          stmt_end = m;
        }
        ++stmt_end;
      }
      collect_lambda_bodies(ix, i + 3, stmt_end, bodies);
    }
  }

  const std::set<std::string> rng_typed = rng_typed_names(ix);
  for (const auto& [body_begin, body_end] : bodies) {
    // Locally-bound names: lambda parameters + declarations in the body.
    // An Rng declared IN the body only counts as bound when its initializer
    // went through fork(): `sim::Rng a = src.fork(shard)` is the contract,
    // `sim::Rng a = src` is just a renamed capture of a shared stream.
    std::set<std::string> bound;
    // The body's scope (a kLambda scope opening at body_begin - 1).
    for (const Scope& s : ix.scopes()) {
      if (s.open == body_begin - 1 && s.params_open != kNpos) {
        for (const Param& p : ix.parse_params(s.params_open)) {
          if (!p.name.empty()) bound.insert(p.name);
        }
      }
    }
    for (const VarDecl& d : ix.var_decls()) {
      if (d.name_idx < body_begin || d.name_idx >= body_end) continue;
      bool forked = false;
      if (rng_typed.count(d.name) != 0) {
        for (size_t k = d.name_idx;
             k < code.size() && !code[k].punct(";"); ++k) {
          if (code[k].ident("fork")) {
            forked = true;
            break;
          }
        }
      } else {
        forked = true;  // not an Rng: irrelevant to fork discipline
      }
      if (forked) bound.insert(d.name);
    }
    for (size_t j = body_begin; j < body_end; ++j) {
      std::string head;
      if (!draw_site_at(ix, j, &head, &rng_typed)) continue;
      if (!head.empty() && bound.count(head) != 0) continue;
      add(out, ix, rel, "rng-fork-in-shard", code[j].line,
          "shard body draws from a captured RNG stream (`" +
              (head.empty() ? std::string("<expr>") : head) +
              "`): every shard must draw from its own forked stream "
              "(rng.fork(shard)) or one threaded through the callback, or "
              "results depend on shard interleaving",
          make_excerpt(ix, j > 3 ? j - 3 : 0, j + 3));
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_infos() {
  static const std::vector<RuleInfo> kInfos = {
      {"rng-raw-source", "rng-stream",
       "draws must flow through the seeded sim::Rng accessors, never libc "
       "rand()/std::random_device/std engines"},
      {"rng-gated-draw", "rng-stream",
       "in a `&&` chain, cheap gates run before RNG draws so inactive "
       "windows burn no draw"},
      {"rng-fork-in-shard", "rng-stream",
       "par:: shard bodies draw only from forked or threaded-through RNG "
       "streams, never captured ones"},
      {"shared-mutable-in-shard", "shard-purity",
       "no mutable static-storage state (or SoA-pool aliases, even const) "
       "reachable from par:: shard bodies"},
      {"unordered-output-flow", "determinism",
       "no range-for over unordered containers feeding render()/output/"
       "scheduling paths"},
      {"wall-clock", "determinism",
       "no wall-clock reads; simulated time comes from "
       "sim::Simulation::now()"},
      {"raw-time-param", "unit-safety",
       "public-header parameters carry time as sim::Duration/sim::Time/"
       "dns::Ttl, not raw integers"},
      {"unit-float-cast", "unit-safety",
       "no float casts of unit-typed values outside src/stats/"},
  };
  return kInfos;
}

Findings run_rules(const FileIndex& ix, const std::string& rel_path) {
  Findings out;
  rule_rng_raw_source(ix, rel_path, out);
  rule_wall_clock(ix, rel_path, out);
  rule_unordered_output_flow(ix, rel_path, out);
  rule_shared_mutable(ix, rel_path, out);
  rule_raw_time_param(ix, rel_path, out);
  rule_unit_float_cast(ix, rel_path, out);
  rule_rng_gated_draw(ix, rel_path, out);
  rule_rng_fork_in_shard(ix, rel_path, out);
  return out;
}

}  // namespace dnsttl::analysis
