#ifndef DNSTTL_ANALYSIS_REPORT_H
#define DNSTTL_ANALYSIS_REPORT_H

#include <cstddef>
#include <string>

#include "analysis/finding.h"

namespace dnsttl::analysis {

/// Machine-readable findings report.  Deterministic: findings are emitted
/// in (file, line, rule) order, keys in a fixed order, no timestamps.
std::string findings_to_json(const Findings& findings);

/// Loads a baseline previously written by findings_to_json (or
/// `dnsttl_analyze --write-baseline`).  Returns false and sets `error`
/// on malformed input.  Only rule/file/excerpt are required per entry —
/// line numbers in baselines are informational and may drift.
bool baseline_from_json(const std::string& text, Findings* out,
                        std::string* error);

/// Result of gating current findings against a committed baseline.
struct BaselineDiff {
  Findings fresh;        // findings with no matching baseline entry: FAIL
  std::size_t matched = 0;      // findings covered by the baseline
  std::size_t stale_count = 0;  // baseline entries nothing matched (fixed debt)
};

/// Multiset match on Finding::key() — (rule, file, excerpt) — so edits
/// that only shift line numbers neither hide nor resurrect findings.
BaselineDiff diff_against_baseline(const Findings& current,
                                   const Findings& baseline);

/// SARIF 2.1.0 report for CI PR annotations: one run, one result per
/// finding, rule metadata from rule_infos().  Deterministic: findings are
/// emitted in (file, line, rule) order, rules in registration order, no
/// timestamps or absolute paths.
std::string findings_to_sarif(const Findings& findings);

/// Rewrites the baseline file at `path` from `findings` (sorted, stable
/// key order — exactly the findings_to_json format, so --write-baseline,
/// --update-baseline, and the gate all read/write one representation).
/// Returns false and sets `error` on IO failure.
bool update_baseline_file(const std::string& path, const Findings& findings,
                          std::string* error);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_REPORT_H
