#ifndef DNSTTL_ANALYSIS_CALLGRAPH_H
#define DNSTTL_ANALYSIS_CALLGRAPH_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/index.h"
#include "analysis/summary.h"

namespace dnsttl::analysis {

// ------------------------------------------------------- lexical helpers
// Shared between the intraprocedural rules (rules.cc) and the summary
// extraction pass, so both layers agree on what "an RNG", "a draw", or
// "a shard entry" looks like.

std::string lower_ascii(std::string s);

/// Name smells like an RNG stream ("rng" anywhere, case-insensitive).
bool rng_ish_name(const std::string& name);

/// The sim::Rng draw accessors (next/uniform/chance/...).
const std::set<std::string>& rng_draw_names();

/// Callee names treated as output/format/scheduling sinks.
const std::set<std::string>& output_callee_names();

/// The par:: entry points whose lambda arguments run as shard bodies.
const std::set<std::string>& shard_entry_names();

bool is_member_access(const Token& t);

/// Top-level token positions of [begin, end): nested ()[]{} extents
/// hopped, the open/close markers themselves kept.
std::vector<std::size_t> top_level_positions(const FileIndex& ix,
                                             std::size_t begin,
                                             std::size_t end);

/// Type-text classifiers (word-wise over the joined declarator tokens).
bool pool_type_text(const std::string& type_text);
bool raw_int_type_text(const std::string& type_text);
bool unit_type_text(const std::string& type_text);

/// A draw site: `<chain> .|-> <draw-name> (` where the postfix chain
/// mentions an RNG (by name, or by declared type via `rng_typed`).
/// Returns the chain-head identifier via `head`.
bool draw_site_at(const FileIndex& ix, std::size_t i, std::string* head,
                  const std::set<std::string>* rng_typed = nullptr);

/// Names declared anywhere in the file with an Rng-flavoured type.
std::set<std::string> rng_typed_names(const FileIndex& ix);

/// Collects `[captures](params) { body }` extents between code-token
/// positions [begin, end); each pair is (body_begin, body_end) just inside
/// the braces.
void collect_lambda_bodies(const FileIndex& ix, std::size_t begin,
                           std::size_t end,
                           std::vector<std::pair<std::size_t, std::size_t>>&
                               bodies);

/// Code-token positions of every shard-body '{' in the file: lambdas
/// handed to the par:: shard entries, or bound to ShardScript/EnvFactory.
std::set<std::size_t> shard_body_opens(const FileIndex& ix);

// ---------------------------------------------------- summary extraction

/// Extracts the per-TU call summaries for one indexed file.  Pure function
/// of the file text — safe to shard over the par:: pool; the deterministic
/// merge is concatenation in sorted-file order.
FileSummary summarize_file(const FileIndex& ix, const std::string& rel_path);

// ------------------------------------------------------------ call graph

/// Whole-repo call graph: a flat node list (every FunctionSummary of every
/// file, in file order) plus a name index that links call sites across
/// translation units.  Resolution is by unqualified name with an arity
/// filter; a qualified call (`Class::f`) prefers candidates declared with
/// that qualifier.  Unresolvable calls (std::, libc, members of external
/// types) resolve to nothing and simply end the chain.
class CallGraph {
 public:
  explicit CallGraph(const std::vector<FileSummary>& files);

  const std::vector<const FunctionSummary*>& nodes() const { return nodes_; }

  /// Node ids whose summary the call site plausibly targets.
  std::vector<std::size_t> resolve(const CallSite& call) const;

 private:
  std::vector<const FunctionSummary*> nodes_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
};

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_CALLGRAPH_H
