#ifndef DNSTTL_ANALYSIS_TOKEN_H
#define DNSTTL_ANALYSIS_TOKEN_H

#include <cstddef>
#include <string>
#include <vector>

namespace dnsttl::analysis {

/// Lexical token classes.  Comments and preprocessor lines are kept in the
/// stream as trivia tokens: the suppression scanner reads allow-comments out
/// of kComment tokens, and rules skip trivia via TokenStream::next_code().
enum class TokenKind {
  kIdentifier,  // identifiers AND keywords (rules match on spelling)
  kNumber,
  kString,      // "..." including raw strings, text is the full literal
  kChar,        // '...'
  kPunct,       // operators/punctuators, longest-match ("::", "->", "&&"...)
  kComment,     // // and /* */ bodies, text includes the delimiters
  kPreproc,     // a whole preprocessor line (with continuations)
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line = 0;  // 1-based line of the token's first character

  bool is(TokenKind k, const char* spelling) const {
    return kind == k && text == spelling;
  }
  bool ident(const char* spelling) const {
    return is(TokenKind::kIdentifier, spelling);
  }
  bool punct(const char* spelling) const {
    return is(TokenKind::kPunct, spelling);
  }
  bool is_trivia() const {
    return kind == TokenKind::kComment || kind == TokenKind::kPreproc;
  }
};

using TokenList = std::vector<Token>;

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_TOKEN_H
