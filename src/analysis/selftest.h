#ifndef DNSTTL_ANALYSIS_SELFTEST_H
#define DNSTTL_ANALYSIS_SELFTEST_H

#include <iosfwd>

namespace dnsttl::analysis {

/// Runs the embedded rule-engine selftest (one hostile and one clean
/// miniature source per rule, plus suppression and baseline round-trip
/// cases).  Prints one line per case to `out`; returns the number of
/// failing cases (0 = all green).  Needs no filesystem and no compiler —
/// the analysis-selftest ctest runs it in every tree.
int selftest(std::ostream& out);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_SELFTEST_H
