#include "analysis/report.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "analysis/rules.h"

namespace dnsttl::analysis {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------- minimal JSON reader
// Just enough JSON for baseline files: objects, arrays, strings, integers,
// bools/null.  No external dependency, fully deterministic error strings.

struct Reader {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        char e = text[pos++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u': {
            // \u00XX only (our writer emits nothing above); decode low byte.
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned value = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text[pos++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            out->push_back(static_cast<char>(value & 0xff));
            break;
          }
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }
  // Skips any JSON value (used for keys we do not care about).
  bool skip_value() {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    char c = text[pos];
    if (c == '"') {
      std::string ignored;
      return string(&ignored);
    }
    if (c == '{' || c == '[') {
      char open = c;
      char close = (c == '{') ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      while (pos < text.size()) {
        char d = text[pos];
        if (in_str) {
          if (d == '\\') ++pos;
          else if (d == '"') in_str = false;
        } else if (d == '"') {
          in_str = true;
        } else if (d == open) {
          ++depth;
        } else if (d == close) {
          --depth;
          if (depth == 0) {
            ++pos;
            return true;
          }
        }
        ++pos;
      }
      return fail("unterminated value");
    }
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ']') {
      ++pos;
    }
    return true;
  }
};

}  // namespace

std::string findings_to_json(const Findings& findings) {
  Findings sorted = findings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  std::string out = "{\n  \"version\": 1,\n  \"count\": " +
                    std::to_string(sorted.size()) + ",\n  \"findings\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Finding& f = sorted[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"rule\": \"" + escape(f.rule) + "\", \"file\": \"" +
           escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"excerpt\": \"" + escape(f.excerpt) + "\", \"message\": \"" +
           escape(f.message) + "\"}";
  }
  out += sorted.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool baseline_from_json(const std::string& text, Findings* out,
                        std::string* error) {
  out->clear();
  Reader r{text, 0, {}};
  if (!r.consume('{')) {
    *error = r.error;
    return false;
  }
  bool found_findings = false;
  while (!r.peek('}')) {
    std::string key;
    if (!r.string(&key) || !r.consume(':')) {
      *error = r.error;
      return false;
    }
    if (key != "findings") {
      if (!r.skip_value()) {
        *error = r.error;
        return false;
      }
    } else {
      found_findings = true;
      if (!r.consume('[')) {
        *error = r.error;
        return false;
      }
      while (!r.peek(']')) {
        if (!r.consume('{')) {
          *error = r.error;
          return false;
        }
        Finding f;
        while (!r.peek('}')) {
          std::string field;
          if (!r.string(&field) || !r.consume(':')) {
            *error = r.error;
            return false;
          }
          if (field == "rule") {
            if (!r.string(&f.rule)) { *error = r.error; return false; }
          } else if (field == "file") {
            if (!r.string(&f.file)) { *error = r.error; return false; }
          } else if (field == "excerpt") {
            if (!r.string(&f.excerpt)) { *error = r.error; return false; }
          } else if (field == "message") {
            if (!r.string(&f.message)) { *error = r.error; return false; }
          } else if (field == "line") {
            r.skip_ws();
            std::size_t value = 0;
            while (r.pos < text.size() && text[r.pos] >= '0' &&
                   text[r.pos] <= '9') {
              value = value * 10 + static_cast<std::size_t>(text[r.pos] - '0');
              ++r.pos;
            }
            f.line = value;
          } else {
            if (!r.skip_value()) { *error = r.error; return false; }
          }
          if (!r.peek('}') && !r.consume(',')) {
            *error = r.error;
            return false;
          }
        }
        r.consume('}');
        if (f.rule.empty() || f.file.empty()) {
          *error = "baseline entry missing rule/file";
          return false;
        }
        out->push_back(std::move(f));
        if (!r.peek(']') && !r.consume(',')) {
          *error = r.error;
          return false;
        }
      }
      r.consume(']');
    }
    if (!r.peek('}') && !r.consume(',')) {
      *error = r.error;
      return false;
    }
  }
  if (!found_findings) {
    *error = "baseline has no \"findings\" array";
    return false;
  }
  return true;
}

BaselineDiff diff_against_baseline(const Findings& current,
                                   const Findings& baseline) {
  std::map<std::string, std::size_t> budget;
  for (const Finding& f : baseline) {
    ++budget[f.key()];
  }
  BaselineDiff diff;
  for (const Finding& f : current) {
    auto it = budget.find(f.key());
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++diff.matched;
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const auto& [key, remaining] : budget) {
    diff.stale_count += remaining;
  }
  return diff;
}

std::string findings_to_sarif(const Findings& findings) {
  Findings sorted = findings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"dnsttl_analyze\",\n"
      "          \"informationUri\": "
      "\"docs/architecture.md\",\n"
      "          \"rules\": [";
  const auto& infos = rule_infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "            {\"id\": \"" + escape(infos[i].name) +
           "\", \"shortDescription\": {\"text\": \"" +
           escape(infos[i].summary) +
           "\"}, \"properties\": {\"contract\": \"" +
           escape(infos[i].contract) + "\"}}";
  }
  out += infos.empty() ? "]\n" : "\n          ]\n";
  out +=
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Finding& f = sorted[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "        {\"ruleId\": \"" + escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(f.line == 0 ? 1 : f.line) + "}}}]}";
  }
  out += sorted.empty() ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

bool update_baseline_file(const std::string& path, const Findings& findings,
                          std::string* error) {
  std::ofstream out(path, std::ios::out | std::ios::binary |
                              std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "could not open for writing: " + path;
    return false;
  }
  out << findings_to_json(findings);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace dnsttl::analysis
