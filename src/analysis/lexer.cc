#include "analysis/lexer.h"

#include <array>
#include <cctype>

namespace dnsttl::analysis {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Longest-match punctuator table.  Only operators the rules care to see as
// single tokens need to be here; anything else lexes one character at a
// time, which is harmless.
constexpr std::array<std::string_view, 26> kPuncts3 = {
    "<<=", ">>=", "...", "->*", "<=>",
    // 2-char from here on; scanned after the 3-char ones miss.
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  TokenList run() {
    TokenList out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start(out)) {
        out.push_back(preproc());
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          out.push_back(line_comment());
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          out.push_back(block_comment());
          continue;
        }
      }
      if (const std::size_t quote_at = raw_string_quote(); quote_at != 0) {
        out.push_back(raw_string(quote_at));
        continue;
      }
      if (c == '"') {
        out.push_back(quoted('"', TokenKind::kString));
        continue;
      }
      if (c == '\'' && !(digit_left(out))) {
        out.push_back(quoted('\'', TokenKind::kChar));
        continue;
      }
      if (ident_start(c)) {
        out.push_back(identifier());
        continue;
      }
      if (digit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                       digit(src_[pos_ + 1]))) {
        out.push_back(number());
        continue;
      }
      out.push_back(punct());
    }
    return out;
  }

 private:
  // A '#' only opens a preprocessor line when nothing but whitespace
  // precedes it on its line — which, given the whitespace skipping above,
  // means the previous token (if any) sits on an earlier line.
  bool at_line_start(const TokenList& out) const {
    return out.empty() || out.back().line < line_ ||
           // A preceding trivia token that itself ended this line counts.
           false;
  }

  // Digit separator guard: '4'000'000' — a single-quote directly after an
  // alnum inside a number is a separator, not a char literal.  The number
  // lexer consumes separators itself; this guard covers the (impossible in
  // practice) stray case where run() sees the quote first.
  bool digit_left(const TokenList& out) const {
    return !out.empty() && out.back().kind == TokenKind::kNumber &&
           pos_ > 0 && ident_char(src_[pos_ - 1]);
  }

  Token preproc() {
    const std::size_t start_line = line_;
    std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        // Backslash continuation keeps the directive going.
        std::size_t back = pos_;
        while (back > begin && (src_[back - 1] == '\r')) --back;
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      ++pos_;
    }
    return {TokenKind::kPreproc,
            std::string(src_.substr(begin, pos_ - begin)), start_line};
  }

  Token line_comment() {
    const std::size_t start_line = line_;
    std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        // A backslash (modulo trailing '\r') splices the next line into
        // the comment, exactly like [lex.phases] phase 2 does.
        std::size_t back = pos_;
        while (back > begin && src_[back - 1] == '\r') --back;
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      ++pos_;
    }
    return {TokenKind::kComment,
            std::string(src_.substr(begin, pos_ - begin)), start_line};
  }

  Token block_comment() {
    const std::size_t start_line = line_;
    std::size_t begin = pos_;
    pos_ += 2;
    while (pos_ + 1 < src_.size() &&
           !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ + 2 <= src_.size() ? pos_ + 2 : src_.size();
    return {TokenKind::kComment,
            std::string(src_.substr(begin, pos_ - begin)), start_line};
  }

  Token quoted(char delim, TokenKind kind) {
    const std::size_t start_line = line_;
    std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != delim) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;  // unterminated literal: stay sane
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    return {kind, std::string(src_.substr(begin, pos_ - begin)), start_line};
  }

  // Offset of the '"' when pos_ sits on a raw-string literal (with any
  // encoding prefix: R" u8R" uR" LR" UR"), 0 otherwise.  The quote is part
  // of the match, so identifiers like `u8Radius` cannot trigger it.
  std::size_t raw_string_quote() const {
    static constexpr std::array<std::string_view, 5> kRawOpeners = {
        "R\"", "u8R\"", "uR\"", "LR\"", "UR\""};
    for (std::string_view opener : kRawOpeners) {
      if (src_.compare(pos_, opener.size(), opener) == 0) {
        return opener.size() - 1;
      }
    }
    return 0;
  }

  Token raw_string(std::size_t quote_at) {
    const std::size_t start_line = line_;
    std::size_t begin = pos_;
    pos_ += quote_at + 1;  // past the '"'
    std::size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    std::string closer = ")";
    closer += std::string(src_.substr(delim_begin, pos_ - delim_begin));
    closer += '"';
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ + closer.size() <= src_.size() ? pos_ + closer.size()
                                               : src_.size();
    return {TokenKind::kString,
            std::string(src_.substr(begin, pos_ - begin)), start_line};
  }

  Token identifier() {
    std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    return {TokenKind::kIdentifier,
            std::string(src_.substr(begin, pos_ - begin)), line_};
  }

  Token number() {
    std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        // Exponent signs: 1e-9, 0x1p+3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            pos_ + 1 < src_.size() &&
            (src_[pos_ + 1] == '+' || src_[pos_ + 1] == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      break;
    }
    return {TokenKind::kNumber,
            std::string(src_.substr(begin, pos_ - begin)), line_};
  }

  Token punct() {
    for (std::string_view op : kPuncts3) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return {TokenKind::kPunct, std::string(op), line_};
      }
    }
    Token t{TokenKind::kPunct, std::string(src_.substr(pos_, 1)), line_};
    ++pos_;
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

TokenList lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace dnsttl::analysis
