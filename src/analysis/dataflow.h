#ifndef DNSTTL_ANALYSIS_DATAFLOW_H
#define DNSTTL_ANALYSIS_DATAFLOW_H

#include <vector>

#include "analysis/callgraph.h"
#include "analysis/finding.h"
#include "analysis/summary.h"

namespace dnsttl::analysis {

/// Propagation depth bound for every interprocedural walk.  Chains longer
/// than this are assumed intentional plumbing; the bound also caps the cost
/// of the worklist passes to O(edges * depth).
constexpr std::size_t kMaxCallDepth = 4;

struct DataflowResult {
  Findings findings;    // visible interprocedural findings
  Findings suppressed;  // would-fire findings silenced by an allow comment
};

/// The interprocedural pass: links the per-TU summaries into a call graph
/// and runs the four cross-function rules (rng-escape, shard-escape,
/// unordered-output-flow-ip, raw-time-flow).  Deterministic: findings come
/// out in (file order, function order, call order); no iteration over
/// unordered state.
DataflowResult run_dataflow(const std::vector<FileSummary>& files);

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_DATAFLOW_H
