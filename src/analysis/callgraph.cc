#include "analysis/callgraph.h"

#include <algorithm>
#include <cctype>

namespace dnsttl::analysis {

// ------------------------------------------------------- lexical helpers

std::string lower_ascii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool rng_ish_name(const std::string& name) {
  return lower_ascii(name).find("rng") != std::string::npos;
}

const std::set<std::string>& rng_draw_names() {
  static const std::set<std::string> kDraws = {
      "next",   "uniform",   "uniform_int", "chance",        "exponential",
      "normal", "lognormal", "pareto",      "weighted_index"};
  return kDraws;
}

const std::set<std::string>& output_callee_names() {
  static const std::set<std::string> kOutput = {
      "printf",  "fprintf", "render",      "report",        "format",
      "to_string", "write", "schedule_at", "schedule_after"};
  return kOutput;
}

const std::set<std::string>& shard_entry_names() {
  static const std::set<std::string> kShardEntries = {
      "parallel_for_shards", "map_shards",           "ordered_reduce",
      "run_sharded_script",  "run_bailiwick_sharded", "crawl_sharded",
      "run_controlled_ttl_set"};
  return kShardEntries;
}

bool is_member_access(const Token& t) {
  return t.punct(".") || t.punct("->");
}

std::vector<std::size_t> top_level_positions(const FileIndex& ix,
                                             std::size_t begin,
                                             std::size_t end) {
  std::vector<std::size_t> top;
  for (std::size_t j = begin; j < end; ++j) {
    const Token& t = ix.code()[j];
    top.push_back(j);
    if (t.punct("(") || t.punct("[") || t.punct("{")) {
      std::size_t m = ix.match(j);
      if (m == kNpos || m >= end) break;
      top.push_back(m);
      j = m;
    }
  }
  return top;
}

namespace {

/// Word-wise iteration over a space-joined declarator text.
template <typename Fn>
void for_each_word(const std::string& text, Fn fn) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(' ', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) fn(text.substr(begin, end - begin));
    if (end == text.size()) break;
    begin = end + 1;
  }
}

}  // namespace

bool pool_type_text(const std::string& type_text) {
  bool hit = false;
  for_each_word(type_text, [&](const std::string& word) {
    if (word.size() >= 4 && word.compare(word.size() - 4, 4, "Pool") == 0) {
      hit = true;
    }
    if (word == "TimerWheel" || word == "VpSchedule") hit = true;
  });
  return hit;
}

bool raw_int_type_text(const std::string& type_text) {
  static const std::set<std::string> kIntWords = {
      "int",      "long",     "short",    "unsigned", "signed",
      "size_t",   "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "uint_fast8_t",
      "uint_fast16_t", "uint_fast32_t", "uint_fast64_t", "ptrdiff_t"};
  bool any = true;
  bool has_int = false;
  for_each_word(type_text, [&](const std::string& word) {
    if (word == "std" || word == "::" || word == "const" ||
        word == "constexpr" || word == "inline" || word == "static" ||
        word == "volatile") {
      return;
    }
    if (kIntWords.count(word) == 0) {
      any = false;
    } else {
      has_int = true;
    }
  });
  return any && has_int;
}

bool unit_type_text(const std::string& type_text) {
  bool hit = false;
  std::string prev;
  for_each_word(type_text, [&](const std::string& word) {
    if (word == "Duration" || word == "SimTime" || word == "Ttl" ||
        word == "WireTtl") {
      hit = true;
    }
    if (word == "Time" && prev == "::") hit = true;
    prev = word;
  });
  return hit;
}

bool draw_site_at(const FileIndex& ix, std::size_t i, std::string* head,
                  const std::set<std::string>* rng_typed) {
  const TokenList& code = ix.code();
  if (i + 1 >= code.size() || i == 0) return false;
  if (code[i].kind != TokenKind::kIdentifier) return false;
  if (rng_draw_names().count(code[i].text) == 0) return false;
  if (!code[i + 1].punct("(")) return false;
  if (!is_member_access(code[i - 1])) return false;

  // Walk the postfix chain backwards: ident, ., ->, (), [] links.
  bool chain_has_rng = false;
  std::string chain_head;
  std::size_t k = i - 1;  // at the '.'/'->'
  while (k > 0) {
    --k;
    const Token& t = code[k];
    if (t.punct(")") || t.punct("]")) {
      std::size_t m = ix.match(k);
      if (m == kNpos || m == 0) break;
      k = m;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      chain_head = t.text;
      if (rng_ish_name(t.text) ||
          (rng_typed != nullptr && rng_typed->count(t.text) != 0)) {
        chain_has_rng = true;
      }
      // Keep walking only if another chain link precedes this identifier.
      if (k == 0 ||
          (!is_member_access(code[k - 1]) && !code[k - 1].punct("::"))) {
        break;
      }
      continue;
    }
    if (is_member_access(t) || t.punct("::")) continue;
    if (t.ident("this")) {
      chain_head = "this";
      break;
    }
    break;
  }
  if (!chain_has_rng && !rng_ish_name(code[i].text)) return false;
  if (head != nullptr) *head = chain_head;
  return true;
}

std::set<std::string> rng_typed_names(const FileIndex& ix) {
  std::set<std::string> out;
  for (const VarDecl& d : ix.var_decls()) {
    if (d.type_text.find("Rng") != std::string::npos) out.insert(d.name);
  }
  for (const Scope& s : ix.scopes()) {
    if (s.params_open == kNpos) continue;
    for (const Param& p : ix.parse_params(s.params_open)) {
      if (!p.name.empty() && p.type_text.find("Rng") != std::string::npos) {
        out.insert(p.name);
      }
    }
  }
  return out;
}

void collect_lambda_bodies(const FileIndex& ix, std::size_t begin,
                           std::size_t end,
                           std::vector<std::pair<std::size_t, std::size_t>>&
                               bodies) {
  const TokenList& code = ix.code();
  for (std::size_t j = begin; j < end; ++j) {
    if (!code[j].punct("[")) continue;
    std::size_t m = ix.match(j);
    if (m == kNpos || m + 1 >= end) continue;
    std::size_t k = m + 1;
    if (code[k].punct("(")) {
      std::size_t pc = ix.match(k);
      if (pc == kNpos) continue;
      k = pc + 1;
    }
    // Skip specifiers / trailing return, bounded.
    std::size_t guard = 0;
    while (k < end && !code[k].punct("{") && guard++ < 12) ++k;
    if (k >= end || !code[k].punct("{")) continue;
    std::size_t body_close = ix.match(k);
    if (body_close == kNpos) continue;
    bodies.emplace_back(k + 1, body_close);
  }
}

std::set<std::size_t> shard_body_opens(const FileIndex& ix) {
  const TokenList& code = ix.code();
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind == TokenKind::kIdentifier &&
        shard_entry_names().count(code[i].text) != 0 &&
        code[i + 1].punct("(")) {
      std::size_t close = ix.match(i + 1);
      if (close != kNpos) collect_lambda_bodies(ix, i + 2, close, bodies);
    }
    // Lambdas bound to ShardScript/EnvFactory variables are shard bodies
    // too: `ShardScript script = [...](...) { ... };`
    if ((code[i].ident("ShardScript") || code[i].ident("EnvFactory")) &&
        i + 3 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        code[i + 2].punct("=") && code[i + 3].punct("[")) {
      std::size_t stmt_end = i + 3;
      while (stmt_end < code.size() && !code[stmt_end].punct(";")) {
        if (code[stmt_end].punct("{")) {
          std::size_t m = ix.match(stmt_end);
          if (m == kNpos) break;
          stmt_end = m;
        }
        ++stmt_end;
      }
      collect_lambda_bodies(ix, i + 3, stmt_end, bodies);
    }
  }
  std::set<std::size_t> opens;
  for (const auto& [body_begin, body_end] : bodies) {
    (void)body_end;
    opens.insert(body_begin - 1);  // the '{' itself
  }
  return opens;
}

// ---------------------------------------------------- summary extraction

namespace {

bool unit_type_name(const std::string& s) {
  return s == "Duration" || s == "SimTime" || s == "Ttl" || s == "WireTtl";
}

// Identifiers that can precede '(' without being a callee.
bool non_callee_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "noexcept" || s == "static_assert" ||
         s == "assert" || s == "defined" || s == "throw" ||
         s == "co_return" || s == "co_await" || s == "co_yield";
}

// Statement keywords after which `ident (` is still a call, not a
// `Type name(args)` declaration.
bool call_context_keyword(const std::string& s) {
  return s == "return" || s == "else" || s == "do" || s == "case" ||
         s == "goto" || s == "new" || s == "delete" || s == "throw" ||
         s == "co_return" || s == "co_await" || s == "co_yield";
}

// Identifiers never picked as an argument head (cast/forwarding plumbing
// and the raw integer type words that appear inside cast angle brackets).
bool never_a_head(const std::string& s) {
  static const std::set<std::string> kSkip = {
      "std",   "move", "forward", "ref",  "cref", "get",
      "static_cast",   "const_cast",      "reinterpret_cast",
      "dynamic_cast",  "sizeof",  "auto", "const", "constexpr",
      "unsigned",      "signed"};
  if (kSkip.count(s) != 0) return true;
  return raw_int_type_text(s);
}

struct Extractor {
  const FileIndex& ix;
  const std::string& rel;
  const std::set<std::string> rng_typed;
  const std::set<std::size_t> shard_opens;

  Extractor(const FileIndex& index, const std::string& rel_path)
      : ix(index),
        rel(rel_path),
        rng_typed(rng_typed_names(index)),
        shard_opens(shard_body_opens(index)) {}

  const TokenList& code() const { return ix.code(); }

  /// Child function/lambda extents directly or transitively inside `s`;
  /// tokens in these ranges belong to the nested summary, not to `s`.
  std::vector<std::pair<std::size_t, std::size_t>> child_ranges(
      const Scope& s) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (const Scope& t : ix.scopes()) {
      if (&t == &s) continue;
      if (t.kind != ScopeKind::kFunction && t.kind != ScopeKind::kLambda) {
        continue;
      }
      if (t.open > s.open && t.close != kNpos && t.close < s.close) {
        out.emplace_back(t.open, t.close);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static bool in_ranges(
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      std::size_t i) {
    for (const auto& [b, e] : ranges) {
      if (i >= b && i <= e) return true;
    }
    return false;
  }

  void fill_name(const Scope& s, FunctionSummary& fn) const {
    if (s.kind == ScopeKind::kLambda) {
      fn.name = "<lambda>";
      fn.is_lambda = true;
      return;
    }
    if (s.params_open == kNpos || s.params_open == 0) return;
    const Token& nm = code()[s.params_open - 1];
    if (nm.kind != TokenKind::kIdentifier) return;  // operator etc.
    fn.name = nm.text;
    std::string prefix;
    std::size_t k = s.params_open - 1;
    while (k >= 2 && code()[k - 1].punct("::") &&
           code()[k - 2].kind == TokenKind::kIdentifier) {
      prefix = code()[k - 2].text + "::" + prefix;
      k -= 2;
    }
    fn.qual = prefix + fn.name;
  }

  std::vector<ParamFacts> fill_params(const Scope& s) const {
    std::vector<ParamFacts> out;
    if (s.params_open == kNpos) return out;
    for (const Param& p : ix.parse_params(s.params_open)) {
      if (p.name.empty()) {
        // Unnamed parameter: keep the slot so argument positions line up.
        ParamFacts facts;
        facts.type_text = p.type_text;
        out.push_back(std::move(facts));
        continue;
      }
      ParamFacts facts;
      facts.name = p.name;
      facts.type_text = p.type_text;
      for_each_word(p.type_text, [&](const std::string& word) {
        if (word == "&" || word == "&&") facts.by_ref = true;
        if (word == "*") facts.by_ptr = true;
        if (word == "const") facts.is_const = true;
      });
      facts.rng = p.type_text.find("Rng") != std::string::npos;
      facts.pool = pool_type_text(p.type_text);
      facts.unordered =
          p.type_text.find("unordered_") != std::string::npos;
      facts.raw_int = raw_int_type_text(p.type_text);
      facts.unit = unit_type_text(p.type_text);
      out.push_back(std::move(facts));
    }
    return out;
  }

  /// Extents of range-for loops over unordered containers inside the body.
  std::vector<std::pair<std::size_t, std::size_t>> unordered_loops(
      std::size_t begin, std::size_t end,
      const std::vector<std::pair<std::size_t, std::size_t>>& skip) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t i = begin; i + 1 < end; ++i) {
      if (in_ranges(skip, i)) continue;
      if (!code()[i].ident("for") || !code()[i + 1].punct("(")) continue;
      std::size_t open = i + 1;
      std::size_t close = ix.match(open);
      if (close == kNpos || close >= end) continue;
      std::size_t colon = kNpos;
      for (std::size_t k : top_level_positions(ix, open + 1, close)) {
        if (code()[k].punct(":")) {
          colon = k;
          break;
        }
      }
      if (colon == kNpos) continue;
      bool unordered = false;
      for (std::size_t k = colon + 1; k < close; ++k) {
        const Token& t = code()[k];
        if (t.kind != TokenKind::kIdentifier) continue;
        if (ix.unordered_names().count(t.text) != 0 ||
            t.text.rfind("unordered_", 0) == 0) {
          unordered = true;
          break;
        }
      }
      if (!unordered) continue;
      std::size_t body_begin = close + 1;
      std::size_t body_end;
      if (body_begin < end && code()[body_begin].punct("{")) {
        body_end = ix.match(body_begin);
        if (body_end == kNpos) continue;
        ++body_begin;
      } else {
        body_end = body_begin;
        while (body_end < end && !code()[body_end].punct(";")) ++body_end;
      }
      out.emplace_back(body_begin, body_end);
    }
    return out;
  }

  /// One argument extent [begin, end) -> CallArg.
  CallArg parse_arg(std::size_t begin, std::size_t end) const {
    CallArg arg;
    bool saw_number = false;
    // Pass 1 (all tokens): fork / literal detection.
    for (std::size_t k = begin; k < end; ++k) {
      const Token& t = code()[k];
      if (t.kind == TokenKind::kNumber) saw_number = true;
      if (t.ident("fork") && k > begin && is_member_access(code()[k - 1])) {
        arg.forked = true;
      }
    }
    // Pass 2 (top level, nested call extents hopped): head selection.
    for (std::size_t k = begin; k < end; ++k) {
      const Token& t = code()[k];
      if (t.punct("(") || t.punct("[") || t.punct("{")) {
        std::size_t m = ix.match(k);
        if (m == kNpos || m >= end) break;
        k = m;
        continue;
      }
      if (k == begin && t.punct("&")) arg.address_of = true;
      if (t.kind != TokenKind::kIdentifier) continue;
      if (k + 1 < end &&
          (code()[k + 1].punct("(") || code()[k + 1].punct("::"))) {
        continue;  // callee or namespace qualifier, not a value head
      }
      if (never_a_head(t.text)) continue;
      arg.head = t.text;
      break;
    }
    if (arg.head.empty() && saw_number) arg.is_literal = true;
    return arg;
  }

  std::vector<CallArg> parse_args(std::size_t open) const {
    std::vector<CallArg> args;
    std::size_t close = ix.match(open);
    if (close == kNpos) return args;
    if (open + 1 == close) return args;  // zero-arg call
    std::size_t item = open + 1;
    for (std::size_t k : top_level_positions(ix, open + 1, close)) {
      if (code()[k].punct(",")) {
        args.push_back(parse_arg(item, k));
        item = k + 1;
      }
    }
    args.push_back(parse_arg(item, close));
    return args;
  }

  FunctionSummary summarize(const Scope& s) const {
    FunctionSummary fn;
    fn.file = rel;
    fn.line = code()[s.open].line;
    fill_name(s, fn);
    fn.is_shard_body = shard_opens.count(s.open) != 0;
    fn.params = fill_params(s);
    for (const ParamFacts& p : fn.params) {
      if (!p.name.empty()) fn.locals.insert(p.name);
    }

    const std::size_t begin = s.open + 1;
    const std::size_t end = s.close;
    const auto skip = child_ranges(s);

    // Locals declared in the body (block scopes included, nested
    // functions/lambdas excluded).
    for (const VarDecl& d : ix.var_decls()) {
      if (d.name_idx <= s.open || d.name_idx >= end) continue;
      if (in_ranges(skip, d.name_idx)) continue;
      fn.locals.insert(d.name);
      if (d.type_text.find("Rng") != std::string::npos) {
        fn.rng_locals.insert(d.name);
        for (std::size_t k = d.name_idx;
             k < code().size() && !code()[k].punct(";"); ++k) {
          if (code()[k].ident("fork")) {
            fn.forked.insert(d.name);
            break;
          }
        }
      }
      if (raw_int_type_text(d.type_text)) fn.raw_int_locals.insert(d.name);
    }

    const auto loops = unordered_loops(begin, end, skip);
    fn.has_unordered_loop = !loops.empty();

    const std::set<std::string> param_names = [&] {
      std::set<std::string> names;
      for (const ParamFacts& p : fn.params) {
        if (!p.name.empty()) names.insert(p.name);
      }
      return names;
    }();

    for (std::size_t j = begin; j < end; ++j) {
      if (in_ranges(skip, j)) continue;
      const Token& t = code()[j];

      // Draw sites.
      std::string head;
      if (draw_site_at(ix, j, &head, &rng_typed)) {
        fn.draws_from.insert(head.empty() ? "<expr>" : head);
      }

      // Output sinks (direct).
      if (t.punct("<<")) fn.writes_output = true;
      if (t.kind == TokenKind::kIdentifier &&
          output_callee_names().count(t.text) != 0 && j + 1 < end &&
          code()[j + 1].punct("(")) {
        fn.writes_output = true;
      }

      // `return &local` escapes.
      if (t.ident("return") && j + 2 < end && code()[j + 1].punct("&") &&
          code()[j + 2].kind == TokenKind::kIdentifier &&
          fn.locals.count(code()[j + 2].text) != 0) {
        fn.escaped_locals.push_back(
            {code()[j + 2].text, code()[j + 2].line, true});
      }

      // Param mutation.
      if (t.kind == TokenKind::kIdentifier &&
          param_names.count(t.text) != 0) {
        static const std::set<std::string> kMutOps = {
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
        const bool next_mutates =
            j + 1 < end && code()[j + 1].kind == TokenKind::kPunct &&
            kMutOps.count(code()[j + 1].text) != 0;
        const bool prev_mutates =
            j > begin && (code()[j - 1].punct("++") ||
                          code()[j - 1].punct("--"));
        if (next_mutates || prev_mutates) {
          for (ParamFacts& p : fn.params) {
            if (p.name == t.text) p.mutated = true;
          }
        }
      }

      // Assignments whose target is not a local: stored params + escaped
      // locals.
      if (t.punct("=")) scan_assignment(s, fn, j);

      // Unit-type brace construction: `Duration{expr}`.
      if (t.kind == TokenKind::kIdentifier && unit_type_name(t.text) &&
          j + 1 < end && code()[j + 1].punct("{")) {
        for (const CallArg& arg : parse_args(j + 1)) {
          if (!arg.head.empty() && param_names.count(arg.head) != 0) {
            fn.unit_ctor_flow.insert(arg.head);
          }
        }
      }

      // Call sites.
      if (t.kind != TokenKind::kIdentifier || j + 1 >= end ||
          !code()[j + 1].punct("(")) {
        continue;
      }
      if (non_callee_keyword(t.text)) continue;
      if (j > 0) {
        const Token& prev = code()[j - 1];
        // `Type name(args)` declarations are not calls.
        if (prev.kind == TokenKind::kIdentifier &&
            !call_context_keyword(prev.text)) {
          continue;
        }
      }
      CallSite call;
      call.callee = t.text;
      call.line = t.line;
      if (j >= 2 && code()[j - 1].punct("::") &&
          code()[j - 2].kind == TokenKind::kIdentifier) {
        call.qualifier = code()[j - 2].text;
      } else if (j >= 1 && is_member_access(code()[j - 1])) {
        call.member_call = true;
        // Walk the receiver chain back to its head identifier.
        std::size_t k = j - 1;
        while (k > 0) {
          --k;
          const Token& r = code()[k];
          if (r.punct(")") || r.punct("]")) {
            std::size_t m = ix.match(k);
            if (m == kNpos || m == 0) break;
            k = m;
            continue;
          }
          if (r.kind == TokenKind::kIdentifier) {
            call.qualifier = r.text;
            if (k == 0 || (!is_member_access(code()[k - 1]) &&
                           !code()[k - 1].punct("::"))) {
              break;
            }
            continue;
          }
          if (is_member_access(r) || r.punct("::")) continue;
          break;
        }
      }
      call.args = parse_args(j + 1);
      for (const auto& [lb, le] : loops) {
        if (j >= lb && j < le) {
          call.in_unordered_loop = true;
          break;
        }
      }

      // Lexical unit-construction flow: Duration(x) / Duration::micros(x)
      // / dns::Ttl(x) mark params feeding the construction.
      if (unit_type_name(call.callee) || unit_type_name(call.qualifier)) {
        for (const CallArg& arg : call.args) {
          if (!arg.head.empty() && param_names.count(arg.head) != 0) {
            fn.unit_ctor_flow.insert(arg.head);
          }
        }
      }

      // Container stores on non-local receivers: `sink_.push_back(&x)`.
      static const std::set<std::string> kStoreCallees = {
          "push_back", "emplace_back", "insert", "emplace", "push"};
      if (call.member_call && kStoreCallees.count(call.callee) != 0 &&
          !call.qualifier.empty() &&
          fn.locals.count(call.qualifier) == 0) {
        for (const CallArg& arg : call.args) {
          if (arg.head.empty()) continue;
          if (arg.address_of && fn.locals.count(arg.head) != 0) {
            fn.escaped_locals.push_back({arg.head, call.line, false});
          }
          for (const ParamFacts& p : fn.params) {
            if (p.name != arg.head) continue;
            if ((p.by_ptr && !arg.address_of) ||
                ((p.by_ref || p.by_ptr) && arg.address_of)) {
              fn.stored_params.insert(p.name);
            }
          }
        }
      }

      fn.calls.push_back(std::move(call));
    }
    return fn;
  }

  /// `=` at code-token j: if the assignment target is not a function
  /// local, record by-ref/pointer params stored through it and locals
  /// whose address escapes into it.
  void scan_assignment(const Scope& s, FunctionSummary& fn,
                       std::size_t j) const {
    // Statement start: nearest ';' '{' '}' walking back (extents hopped).
    std::size_t start = j;
    while (start > s.open) {
      --start;
      const Token& t = code()[start];
      if (t.punct(")") || t.punct("]")) {
        std::size_t m = ix.match(start);
        if (m == kNpos || m == 0) break;
        start = m;
        continue;
      }
      if (t.punct(";") || t.punct("{") || t.punct("}")) {
        ++start;
        break;
      }
    }
    // A declaration's `=` initializes a local: never a non-local store.
    for (const VarDecl& d : ix.var_decls()) {
      if (d.name_idx >= start && d.name_idx < j) return;
    }
    // LHS head: first non-qualifier identifier.
    std::string lhs;
    for (std::size_t k = start; k < j; ++k) {
      const Token& t = code()[k];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "const" || t.text == "constexpr" || t.text == "auto" ||
          t.text == "static") {
        continue;
      }
      lhs = t.text;
      break;
    }
    if (lhs.empty() || fn.locals.count(lhs) != 0) return;
    // RHS scan to ';'.
    std::size_t k = j + 1;
    while (k < s.close && !code()[k].punct(";")) {
      const Token& t = code()[k];
      if (t.punct("&") && k + 1 < s.close &&
          code()[k + 1].kind == TokenKind::kIdentifier &&
          (k == j + 1 || code()[k - 1].kind == TokenKind::kPunct)) {
        const std::string& name = code()[k + 1].text;
        if (fn.locals.count(name) != 0) {
          bool is_ref_param = false;
          for (const ParamFacts& p : fn.params) {
            if (p.name == name && (p.by_ref || p.by_ptr)) {
              is_ref_param = true;
            }
          }
          if (is_ref_param) {
            fn.stored_params.insert(name);
          } else {
            fn.escaped_locals.push_back({name, code()[k + 1].line, false});
          }
        }
      }
      if (t.kind == TokenKind::kIdentifier) {
        for (const ParamFacts& p : fn.params) {
          if (p.name != t.text || !p.by_ptr) continue;
          const bool deref =
              k > j + 1 && (code()[k - 1].punct("*") ||
                            code()[k - 1].punct("&"));
          const bool projected =
              k + 1 < s.close && (code()[k + 1].punct("->") ||
                                  code()[k + 1].punct(".") ||
                                  code()[k + 1].punct("["));
          if (!deref && !projected) fn.stored_params.insert(p.name);
        }
      }
      ++k;
    }
  }
};

}  // namespace

FileSummary summarize_file(const FileIndex& ix, const std::string& rel_path) {
  FileSummary out;
  out.path = rel_path;
  out.allow_lines = ix.allow_lines();
  out.allow_sites = ix.allow_sites();
  Extractor extractor(ix, rel_path);
  for (const Scope& s : ix.scopes()) {
    if (s.kind != ScopeKind::kFunction && s.kind != ScopeKind::kLambda) {
      continue;
    }
    if (s.close == kNpos) continue;
    out.functions.push_back(extractor.summarize(s));
  }
  return out;
}

// ------------------------------------------------------------ call graph

CallGraph::CallGraph(const std::vector<FileSummary>& files) {
  for (const FileSummary& file : files) {
    for (const FunctionSummary& fn : file.functions) {
      const std::size_t id = nodes_.size();
      nodes_.push_back(&fn);
      if (!fn.name.empty() && !fn.is_lambda) {
        by_name_[fn.name].push_back(id);
      }
    }
  }
}

std::vector<std::size_t> CallGraph::resolve(const CallSite& call) const {
  static const std::set<std::string> kExternalQuals = {
      "std", "chrono", "filesystem", "fs", "gtest", "testing"};
  if (call.callee.empty()) return {};
  if (!call.member_call && kExternalQuals.count(call.qualifier) != 0) {
    return {};
  }
  auto it = by_name_.find(call.callee);
  if (it == by_name_.end()) return {};
  std::vector<std::size_t> candidates;
  for (std::size_t id : it->second) {
    if (nodes_[id]->params.size() >= call.args.size()) {
      candidates.push_back(id);
    }
  }
  if (!call.qualifier.empty() && !call.member_call) {
    std::vector<std::size_t> qualified;
    const std::string want = call.qualifier + "::" + call.callee;
    for (std::size_t id : candidates) {
      if (nodes_[id]->qual == want) qualified.push_back(id);
    }
    if (!qualified.empty()) return qualified;
  }
  return candidates;
}

}  // namespace dnsttl::analysis
