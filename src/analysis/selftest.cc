#include "analysis/selftest.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/report.h"

namespace dnsttl::analysis {
namespace {

struct Case {
  const char* label;
  const char* path;
  const char* source;
  std::vector<const char*> expected_rules;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"rng-raw-source fires on std::random_device", "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "int draw() { std::random_device rd; return int(rd()); }\n"
       "}\n",
       {"rng-raw-source"}},
      {"rng-raw-source fires on libc rand()", "src/core/x.cc",
       "int f() { return rand() % 6; }\n",
       {"rng-raw-source"}},
      {"rng-raw-source silent on sim::Rng accessors", "src/core/x.cc",
       "double f(sim::Rng& rng) { return rng.uniform(); }\n",
       {}},
      {"wall-clock fires on std::chrono::steady_clock", "src/core/x.cc",
       "auto f() { return std::chrono::steady_clock::now(); }\n",
       {"wall-clock"}},
      {"wall-clock fires on time()", "src/core/x.cc",
       "long f() { return time(nullptr); }\n",
       {"wall-clock"}},
      {"wall-clock silent on sim::Time and member .time()", "src/core/x.cc",
       "sim::Time f(const Event& e) { return e.time(); }\n",
       {}},
      {"unordered-output-flow fires when the body streams", "src/core/x.cc",
       "void f(std::ostream& os) {\n"
       "  std::unordered_map<int, int> hits;\n"
       "  for (const auto& [k, v] : hits) {\n"
       "    os << k << v;\n"
       "  }\n"
       "}\n",
       {"unordered-output-flow"}},
      {"unordered-output-flow silent for pure aggregation", "src/core/x.cc",
       "int f() {\n"
       "  std::unordered_map<int, int> hits;\n"
       "  int total = 0;\n"
       "  for (const auto& [k, v] : hits) {\n"
       "    total += v;\n"
       "  }\n"
       "  return total;\n"
       "}\n",
       {}},
      {"shared-mutable-in-shard fires on a namespace-scope mutable",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "unsigned long g_call_count = 0;\n"
       "}\n",
       {"shared-mutable-in-shard"}},
      {"shared-mutable-in-shard fires on a function-local static",
       "src/core/x.cc",
       "int f() {\n"
       "  static std::vector<int> cache;\n"
       "  return int(cache.size());\n"
       "}\n",
       {"shared-mutable-in-shard"}},
      {"shared-mutable-in-shard silent on const/constexpr/thread_local",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "constexpr int kTableSize = 4;\n"
       "const std::array<int, 4> kTable = {1, 2, 3, 4};\n"
       "int f() {\n"
       "  static thread_local int scratch = 0;\n"
       "  return ++scratch;\n"
       "}\n"
       "}\n",
       {}},
      {"shared-mutable-in-shard fires on a const static SoA-pool alias",
       "src/core/x.cc",
       "int f(const atlas::VpPool& pool) {\n"
       "  static const atlas::VpPool* cached_pool = nullptr;\n"
       "  return cached_pool ? 1 : 0;\n"
       "}\n",
       {"shared-mutable-in-shard"}},
      {"shared-mutable-in-shard fires on a namespace-scope wheel reference",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "const sim::TimerWheel& g_wheel = instance();\n"
       "}\n",
       {"shared-mutable-in-shard"}},
      {"raw-time-param fires on std::uint32_t ttl in a header",
       "src/cache/cache.h",
       "namespace dnsttl::cache {\n"
       "class Cache {\n"
       " public:\n"
       "  void insert(const dns::Name& name, std::uint32_t ttl);\n"
       "};\n"
       "}\n",
       {"raw-time-param"}},
      {"raw-time-param fires across a parameter-list line break",
       "src/cache/cache.h",
       "namespace dnsttl::cache {\n"
       "void configure(std::size_t capacity,\n"
       "               std::uint64_t refresh_interval_ms);\n"
       "}\n",
       {"raw-time-param"}},
      {"raw-time-param silent on the strong types and in .cc files",
       "src/cache/cache.h",
       "namespace dnsttl::cache {\n"
       "void insert(const dns::Name& name, dns::Ttl ttl);\n"
       "void shift(sim::Duration delay);\n"
       "}\n",
       {}},
      {"raw-time-param silent on counters", "src/cache/cache.h",
       "namespace dnsttl::cache {\n"
       "void bump(std::uint64_t timeout_count);\n"
       "}\n",
       {}},
      {"unit-float-cast fires on static_cast<double>(duration)",
       "src/core/x.cc",
       "double f(sim::Duration elapsed) {\n"
       "  return static_cast<double>(elapsed);\n"
       "}\n",
       {"unit-float-cast"}},
      {"unit-float-cast silent via the sanctioned escape hatches",
       "src/core/x.cc",
       "double f(sim::Duration elapsed) {\n"
       "  return static_cast<double>(elapsed.count());\n"
       "}\n",
       {}},
      {"unit-float-cast silent inside the stats layer",
       "src/stats/summary.cc",
       "double f(sim::Duration elapsed) {\n"
       "  return static_cast<double>(elapsed);\n"
       "}\n",
       {}},
      {"rng-gated-draw fires when the draw precedes the gate",
       "src/net/x.cc",
       "bool f(sim::Rng& rng, double loss) {\n"
       "  if (rng.chance(loss) && loss > 0.0) {\n"
       "    return true;\n"
       "  }\n"
       "  return false;\n"
       "}\n",
       {"rng-gated-draw"}},
      {"rng-gated-draw silent when the gate short-circuits first",
       "src/net/x.cc",
       "bool f(sim::Rng& rng, double loss) {\n"
       "  if (loss > 0.0 && rng.chance(loss)) {\n"
       "    return true;\n"
       "  }\n"
       "  return false;\n"
       "}\n",
       {}},
      {"rng-fork-in-shard fires on a captured-stream draw",
       "src/core/x.cc",
       "void f(sim::Rng& rng, std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    return rng.uniform();\n"
       "  });\n"
       "}\n",
       {"rng-fork-in-shard"}},
      {"rng-fork-in-shard fires on an unforked local copy",
       "src/core/x.cc",
       "void f(const sim::Rng& nl_src, std::size_t shards,"
       " std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    sim::Rng bad = nl_src;\n"
       "    return bad.uniform();\n"
       "  });\n"
       "}\n",
       {"rng-fork-in-shard"}},
      {"rng-fork-in-shard silent when the shard forks its own stream",
       "src/core/x.cc",
       "void f(const sim::Rng& rng, std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    sim::Rng actor = rng.fork(shard);\n"
       "    return actor.uniform();\n"
       "  });\n"
       "}\n",
       {}},
      {"rng-fork-in-shard silent when the stream is threaded through",
       "src/core/x.cc",
       "void f(std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [](sim::Rng& shard_rng) {\n"
       "    return shard_rng.uniform();\n"
       "  });\n"
       "}\n",
       {}},
      {"suppression: lint:allow on the line covers the finding",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "unsigned long g_count = 0;  "
       "// lint:allow(shared-mutable-in-shard) test-only tally\n"
       "}\n",
       {}},
      {"suppression: analyze:allow on the comment line above",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "// analyze:allow(shared-mutable-in-shard) documented debt\n"
       "unsigned long g_count = 0;\n"
       "}\n",
       {}},
      {"suppression for one rule does not silence another",
       "src/core/x.cc",
       "namespace dnsttl::core {\n"
       "// analyze:allow(wall-clock) wrong rule name\n"
       "unsigned long g_count = 0;\n"
       "}\n",
       // The mutable still fires, and the wall-clock allow is dead weight:
       // the stale-suppression audit flags it.
       {"shared-mutable-in-shard", "stale-suppression"}},
      {"rng-escape fires when a shard body passes an unforked stream down",
       "src/core/x.cc",
       "void spin(sim::Rng& rng) { rng.uniform(); }\n"
       "void f(sim::Rng& rng, std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    spin(rng);\n"
       "    return shard;\n"
       "  });\n"
       "}\n",
       {"rng-escape"}},
      {"rng-escape silent when the shard forks before the call",
       "src/core/x.cc",
       "void spin(sim::Rng& rng) { rng.uniform(); }\n"
       "void f(const sim::Rng& rng, std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    sim::Rng mine = rng.fork(shard);\n"
       "    spin(mine);\n"
       "    return shard;\n"
       "  });\n"
       "}\n",
       {}},
      {"shard-escape fires when a callee stores a pointer to shard state",
       "src/core/x.cc",
       "class Registry {\n"
       " public:\n"
       "  void stash(const int* slot) { slots_.push_back(slot); }\n"
       " private:\n"
       "  std::vector<const int*> slots_;\n"
       "};\n"
       "void f(Registry& reg, std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    int tally = int(shard);\n"
       "    reg.stash(&tally);\n"
       "    return shard;\n"
       "  });\n"
       "}\n",
       {"shard-escape"}},
      {"shard-escape silent for value parameters",
       "src/core/x.cc",
       "int twice(int v) { return v + v; }\n"
       "void f(std::size_t shards, std::size_t jobs) {\n"
       "  par::map_shards(shards, jobs, [&](std::size_t shard) {\n"
       "    int tally = int(shard);\n"
       "    return twice(tally);\n"
       "  });\n"
       "}\n",
       {}},
      {"unordered-output-flow-ip fires through a call chain",
       "src/core/x.cc",
       "void emit(std::ostream& os, int k) { os << k; }\n"
       "void f(std::ostream& os) {\n"
       "  std::unordered_map<int, int> hits;\n"
       "  for (const auto& [k, v] : hits) {\n"
       "    emit(os, k);\n"
       "  }\n"
       "}\n",
       {"unordered-output-flow-ip"}},
      {"unordered-output-flow-ip silent when the callee only aggregates",
       "src/core/x.cc",
       "int bump(int total, int v) { return total + v; }\n"
       "int f() {\n"
       "  std::unordered_map<int, int> hits;\n"
       "  int total = 0;\n"
       "  for (const auto& [k, v] : hits) {\n"
       "    total = bump(total, v);\n"
       "  }\n"
       "  return total;\n"
       "}\n",
       {}},
      {"raw-time-flow fires when a raw count crosses into a Duration ctor",
       "src/core/x.cc",
       "void arm(Timer& t, std::uint64_t delay_us) {\n"
       "  t.set(sim::Duration::micros(delay_us));\n"
       "}\n"
       "void f(Timer& t) {\n"
       "  std::uint64_t lease = 5'000'000;\n"
       "  arm(t, lease);\n"
       "}\n",
       {"raw-time-flow"}},
      {"raw-time-flow silent when the boundary takes the strong type",
       "src/core/x.cc",
       "void arm(Timer& t, sim::Duration delay) { t.set(delay); }\n"
       "void f(Timer& t) {\n"
       "  arm(t, sim::Duration::micros(5'000'000));\n"
       "}\n",
       {}},
      {"task-state-escape fires on a pool alias in a phase-tagged struct",
       "src/crawl/x.h",
       "namespace dnsttl::crawl {\n"
       "struct ResolutionTask {\n"
       "  enum class Phase { kSetup, kDone };\n"
       "  Phase phase = Phase::kSetup;\n"
       "  const TaskPool* pool = nullptr;\n"
       "};\n"
       "}\n",
       {"task-state-escape"}},
      {"task-state-escape silent for index members and phaseless structs",
       "src/crawl/x.h",
       "namespace dnsttl::crawl {\n"
       "struct ResolutionTask {\n"
       "  enum class Phase { kSetup, kDone };\n"
       "  Phase phase = Phase::kSetup;\n"
       "  std::size_t slot = 0;\n"
       "};\n"
       "struct ShardContext {\n"
       "  const TaskPool* pool = nullptr;\n"
       "};\n"
       "}\n",
       {}},
      {"stale-suppression fires on an allow whose rule never fires",
       "src/core/x.cc",
       "// analyze:allow(wall-clock) leftover from an old refactor\n"
       "int f() { return 1; }\n",
       {"stale-suppression"}},
      {"stale-suppression ignores rules owned by other tools",
       "src/core/x.cc",
       "// lint:allow(raw-new) lint.py owns this rule\n"
       "int f() { return 1; }\n",
       {}},
  };
  return kCases;
}

bool baseline_roundtrip(std::ostream& out) {
  Findings findings;
  findings.push_back({"wall-clock", "src/core/x.cc", 7,
                      "`time()` reads the wall clock", "time ( nullptr )"});
  findings.push_back({"raw-time-param", "src/cache/cache.h", 12,
                      "raw `std::uint32_t` ttl", "insert(... ttl ...)"});
  const std::string json = findings_to_json(findings);
  Findings parsed;
  std::string error;
  if (!baseline_from_json(json, &parsed, &error)) {
    out << "selftest: FAIL: baseline round-trip parse: " << error << "\n";
    return false;
  }
  BaselineDiff same = diff_against_baseline(findings, parsed);
  BaselineDiff fresh = diff_against_baseline(findings, {});
  bool ok = same.fresh.empty() && same.matched == 2 &&
            same.stale_count == 0 &&
            fresh.fresh.size() == 2;
  out << "selftest: " << (ok ? "ok" : "FAIL")
      << ": baseline round-trip + diff semantics\n";
  return ok;
}

}  // namespace

int selftest(std::ostream& out) {
  int failures = 0;
  for (const Case& c : cases()) {
    Findings findings = analyze_source(c.path, c.source);
    std::set<std::string> got;
    for (const Finding& f : findings) {
      got.insert(f.rule);
    }
    std::set<std::string> want(c.expected_rules.begin(),
                               c.expected_rules.end());
    const bool ok = got == want;
    if (!ok) ++failures;
    out << "selftest: " << (ok ? "ok" : "FAIL") << ": " << c.label
        << " (got";
    if (got.empty()) {
      out << " -";
    } else {
      for (const std::string& r : got) out << " " << r;
    }
    out << ")\n";
  }
  if (!baseline_roundtrip(out)) ++failures;
  if (failures == 0) {
    out << "selftest: OK (" << cases().size() + 1 << " cases)\n";
  } else {
    out << "selftest: " << failures << " case(s) FAILED\n";
  }
  return failures;
}

}  // namespace dnsttl::analysis
