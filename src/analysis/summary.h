#ifndef DNSTTL_ANALYSIS_SUMMARY_H
#define DNSTTL_ANALYSIS_SUMMARY_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dnsttl::analysis {

/// Per-function call summaries: the unit of the interprocedural engine.
/// Phase 1 extracts one FileSummary per translation unit (shardable over
/// the par:: pool — extraction is a pure function of the file text); phase
/// 2 links them into a whole-repo call graph (callgraph.h) and propagates
/// taints through it (dataflow.h).  Everything here is plain data so the
/// deterministic shard merge is a straight concatenation in file order.

/// One declared parameter, with the type facts the dataflow pass keys on.
struct ParamFacts {
  std::string name;
  std::string type_text;
  bool by_ref = false;    // '&' among the type tokens
  bool by_ptr = false;    // '*' among the type tokens
  bool is_const = false;  // 'const' among the type tokens
  bool rng = false;       // Rng-flavoured type
  bool pool = false;      // SoA pool / TimerWheel / VpSchedule type
  bool unordered = false; // std::unordered_* type
  bool raw_int = false;   // raw integer type (int64_t, size_t, ...)
  bool unit = false;      // Duration / SimTime / Ttl strong type
  bool mutated = false;   // assigned / incremented in the body
};

/// One argument at a call site.  `head` is the head identifier of the
/// argument expression (`rng` for `rng`, `&x` and `x.field` both head to
/// `x`); literals carry an empty head with `is_literal` set.
struct CallArg {
  std::string head;
  bool address_of = false;  // argument spelled `&head...`
  bool forked = false;      // argument contains `.fork(` — already split
  bool is_literal = false;  // numeric literal argument
};

/// One call site in a function body.
struct CallSite {
  std::string callee;     // unqualified name (last identifier before '(')
  std::string qualifier;  // `std`, `Duration`, receiver head, ... or empty
  bool member_call = false;  // receiver.method(...) / receiver->method(...)
  std::size_t line = 0;
  std::vector<CallArg> args;
  bool in_unordered_loop = false;  // lexically inside a range-for over an
                                   // unordered container
};

/// One local whose address/reference escaped its scope (shard-escape raw
/// material): `return &x`, or `<non-local> = &x`.
struct EscapedLocal {
  std::string name;
  std::size_t line = 0;
  bool via_return = false;
};

struct FunctionSummary {
  std::string name;  // unqualified; lambdas use "<lambda>"
  std::string qual;  // qualified spelling when written (Class::name)
  std::string file;  // repo-relative path, forward slashes
  std::size_t line = 0;  // line of the body '{'
  bool is_lambda = false;
  bool is_shard_body = false;  // lambda handed to a par:: shard entry
  std::vector<ParamFacts> params;
  std::vector<CallSite> calls;
  std::set<std::string> locals;         // declared names (params included)
  std::set<std::string> rng_locals;     // Rng-typed locals
  std::set<std::string> raw_int_locals; // raw-integer-typed locals
  std::set<std::string> forked;         // names initialized via .fork(
  std::set<std::string> draws_from;     // chain heads of draw sites
  /// Param names whose value reaches a Duration/SimTime/Ttl construction
  /// in this body (lexically; the dataflow pass extends this transitively).
  std::set<std::string> unit_ctor_flow;
  /// By-ref/pointer params stored past the call (assigned to a member,
  /// static, or captured name, or pushed into a non-local container).
  std::set<std::string> stored_params;
  std::vector<EscapedLocal> escaped_locals;
  bool writes_output = false;       // `<<` or a known output callee, direct
  bool has_unordered_loop = false;
};

/// One `lint:allow`/`analyze:allow` comment, with the lines it covers —
/// the stale-suppression rule audits these after all findings are known.
struct AllowSite {
  std::size_t comment_line = 0;
  std::string rule;
  std::vector<std::size_t> covered_lines;
};

/// Everything phase 2 needs from one file: the function summaries plus the
/// suppression table (interprocedural findings honour allows the same way
/// intraprocedural ones do).
struct FileSummary {
  std::string path;
  std::vector<FunctionSummary> functions;
  std::map<std::size_t, std::set<std::string>> allow_lines;  // line -> rules
  std::vector<AllowSite> allow_sites;
};

}  // namespace dnsttl::analysis

#endif  // DNSTTL_ANALYSIS_SUMMARY_H
