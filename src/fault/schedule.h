#ifndef DNSTTL_FAULT_SCHEDULE_H
#define DNSTTL_FAULT_SCHEDULE_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dns/rdata.h"
#include "dns/types.h"
#include "sim/time.h"

namespace dnsttl::fault {

/// What a scheduled fault does to the exchanges it matches.
///
/// The taxonomy mirrors the failure modes the paper's resilience story
/// (§1, §7, the Dyn outage) cares about: a server that stops answering,
/// a lossy or slow path, a server that answers but wrongly (SERVFAIL /
/// REFUSED storms), a truncation storm forcing TCP retries, and a lame
/// delegation (the server answers, non-authoritatively, with nothing).
enum class FaultKind : std::uint8_t {
  kOutage,    ///< matching queries time out, deterministically
  kLoss,      ///< extra loss probability folded into the network's draw
  kLatency,   ///< RTT scaled by `factor` plus `extra` per exchange
  kServfail,  ///< server replies SERVFAIL without seeing the query
  kRefused,   ///< server replies REFUSED without seeing the query
  kTruncate,  ///< UDP responses come back TC=1 regardless of size
  kLame,      ///< non-AA empty NOERROR: a lame delegation flip
};

std::string_view to_string(FaultKind kind);

/// One timed, targeted fault.  The window is half-open — active while
/// `start <= now < end` — so back-to-back windows never double-fire on the
/// shared boundary instant.  A missing target means "every address".
struct FaultEvent {
  sim::Time start{};
  sim::Time end{};
  FaultKind kind = FaultKind::kOutage;
  std::optional<dns::Ipv4> target;  ///< nullopt = all addresses
  double rate = 1.0;      ///< kLoss: extra loss probability in [0, 1]
  double factor = 1.0;    ///< kLatency: multiplicative RTT scale, > 0
  sim::Duration extra{};  ///< kLatency: additive per-exchange delay

  /// True when this event applies to @p addr at @p now.
  bool applies(dns::Ipv4 addr, sim::Time now) const noexcept {
    return start <= now && now < end && (!target || *target == addr);
  }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Rejection channel of FaultSchedule::parse — malformed schedule text is
/// an input error, never a library bug (contrast check::AuditError).
class ScheduleParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deterministic script of faults consulted by net::Network on every
/// exchange.  Queries are pure functions of (schedule, address, now): the
/// schedule holds no RNG and mutates nothing at query time, so a fault
/// layer can be shared read-only across par:: shards and runs stay
/// byte-identical at any --jobs.
///
/// Text format (parse/to_string round-trip; '#' starts a comment):
///
///     outage   10s..20s addr=10.0.0.1
///     loss     0s..5m   rate=0.25
///     latency  1m..2m   factor=3.5 extra=50ms
///     servfail 30s..40s addr=10.0.0.5
///     truncate 0s..1h
///     lame     2m..3m   addr=10.0.0.9
///
/// Times are nonnegative integers with a unit suffix (us, ms, s, m, h, d),
/// measured from the experiment epoch.  `rate`, `factor` and `extra` apply
/// to the kinds documented on FaultEvent; unknown keys are errors.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Adds one event, keeping the list sorted by (start, end, kind) so the
  /// canonical rendering — and therefore every golden output built from a
  /// schedule — is independent of insertion order.
  void add(FaultEvent event);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// True when a kOutage window covers (addr, now): the exchange must time
  /// out without consuming any RNG draws.
  bool outage(dns::Ipv4 addr, sim::Time now) const;

  /// Combined extra loss probability from every active kLoss window
  /// (independent losses: 1 - prod(1 - rate)).  Zero when none match, so
  /// the network's gated single draw stays un-burned.
  double extra_loss(dns::Ipv4 addr, sim::Time now) const;

  /// Product of active kLatency factors (1.0 when none match).
  double latency_factor(dns::Ipv4 addr, sim::Time now) const;

  /// Sum of active kLatency additive delays.
  sim::Duration extra_latency(dns::Ipv4 addr, sim::Time now) const;

  /// Rcode forced by an active kServfail/kRefused window (first match in
  /// canonical order wins), or nullopt.
  std::optional<dns::Rcode> forced_rcode(dns::Ipv4 addr, sim::Time now) const;

  /// True when an active kTruncate window forces TC=1 on UDP.
  bool truncate(dns::Ipv4 addr, sim::Time now) const;

  /// True when an active kLame window turns the server lame.
  bool lame(dns::Ipv4 addr, sim::Time now) const;

  /// Parses the text format documented above; throws ScheduleParseError
  /// (with a line number) on malformed input.
  static FaultSchedule parse(std::string_view text);

  /// Canonical rendering: one event per line in sorted order, defaults
  /// omitted, durations in the largest unit that divides them exactly.
  /// Guaranteed to re-parse to an equal schedule (fuzzed in fuzz/).
  std::string to_string() const;

  /// Structural audit: windows well-formed (start <= end), rates in
  /// [0, 1], factors positive, extras nonnegative, list sorted.  Throws
  /// check::AuditError on violation.  Compiled in every build; called from
  /// the mutation boundary (add/parse) only under DNSTTL_AUDIT=ON.
  void validate() const;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (start, end, kind, target)
};

}  // namespace dnsttl::fault

#endif  // DNSTTL_FAULT_SCHEDULE_H
