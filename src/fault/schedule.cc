#include "fault/schedule.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <tuple>

#include "check/audit.h"

namespace dnsttl::fault {

namespace {

/// Total order used for the canonical event list: window first, then kind,
/// then target ("all" before any specific address), then the knobs.
auto sort_key(const FaultEvent& e) {
  return std::make_tuple(e.start.ticks(), e.end.ticks(),
                         static_cast<int>(e.kind), e.target.has_value(),
                         e.target ? e.target->value() : 0U, e.rate, e.factor,
                         e.extra.count());
}

struct Unit {
  std::string_view suffix;
  sim::Duration span;
};

/// Longest suffixes first so "ms"/"us" are not mistaken for "s".
constexpr std::array<Unit, 6> kUnits = {{
    {"us", sim::kMicrosecond},
    {"ms", sim::kMillisecond},
    {"s", sim::kSecond},
    {"m", sim::kMinute},
    {"h", sim::kHour},
    {"d", sim::kDay},
}};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ScheduleParseError("fault schedule line " + std::to_string(line) +
                           ": " + what);
}

sim::Duration parse_span(std::string_view token, std::size_t line) {
  std::size_t digits = 0;
  while (digits < token.size() &&
         token[digits] >= '0' && token[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) {
    fail(line, "expected a duration, got '" + std::string(token) + "'");
  }
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + digits, value);
  if (ec != std::errc{}) {
    fail(line, "duration out of range: '" + std::string(token) + "'");
  }
  std::string_view suffix = token.substr(digits);
  for (const auto& unit : kUnits) {
    if (suffix == unit.suffix) {
      std::int64_t ticks = 0;
      if (__builtin_mul_overflow(value, unit.span.count(), &ticks)) {
        fail(line, "duration overflows the tick clock: '" +
                       std::string(token) + "'");
      }
      return sim::Duration(ticks);
    }
  }
  fail(line, "unknown duration unit in '" + std::string(token) +
                 "' (use us, ms, s, m, h, d)");
}

double parse_number(std::string_view token, std::size_t line,
                    std::string_view key) {
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(line, std::string(key) + " is not a number: '" + std::string(token) +
                   "'");
  }
  return value;
}

std::optional<FaultKind> kind_from(std::string_view token) {
  if (token == "outage") return FaultKind::kOutage;
  if (token == "loss") return FaultKind::kLoss;
  if (token == "latency") return FaultKind::kLatency;
  if (token == "servfail") return FaultKind::kServfail;
  if (token == "refused") return FaultKind::kRefused;
  if (token == "truncate") return FaultKind::kTruncate;
  if (token == "lame") return FaultKind::kLame;
  return std::nullopt;
}

/// Renders @p span in the largest unit that divides it exactly, so the
/// canonical text is readable AND re-parses to the identical tick count.
std::string format_span(sim::Duration span) {
  for (std::size_t i = kUnits.size(); i-- > 0;) {
    const auto& unit = kUnits[i];
    if (span.count() % unit.span.count() == 0) {
      return std::to_string(span / unit.span) + std::string(unit.suffix);
    }
  }
  return std::to_string(span.count()) + "us";  // unreachable: us divides all
}

/// Shortest round-trip rendering of a double (std::to_chars guarantees
/// parse(format(x)) == x).
std::string format_number(double value) {
  std::array<char, 32> buffer{};
  auto [ptr, ec] = std::to_chars(buffer.data(),
                                 buffer.data() + buffer.size(), value);
  return std::string(buffer.data(), ptr);
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kServfail:
      return "servfail";
    case FaultKind::kRefused:
      return "refused";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kLame:
      return "lame";
  }
  return "?";
}

void FaultSchedule::add(FaultEvent event) {
  auto pos = std::upper_bound(events_.begin(), events_.end(), event,
                              [](const FaultEvent& a, const FaultEvent& b) {
                                return sort_key(a) < sort_key(b);
                              });
  events_.insert(pos, std::move(event));
  if constexpr (check::kAuditEnabled) {
    validate();
  }
}

bool FaultSchedule::outage(dns::Ipv4 addr, sim::Time now) const {
  for (const auto& event : events_) {
    if (event.start > now) {
      break;  // sorted by start: nothing later can be active yet
    }
    if (event.kind == FaultKind::kOutage && event.applies(addr, now)) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::extra_loss(dns::Ipv4 addr, sim::Time now) const {
  double pass = 1.0;  // probability the packet survives every loss window
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (event.kind == FaultKind::kLoss && event.applies(addr, now)) {
      pass *= 1.0 - event.rate;
    }
  }
  return 1.0 - pass;
}

double FaultSchedule::latency_factor(dns::Ipv4 addr, sim::Time now) const {
  double factor = 1.0;
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (event.kind == FaultKind::kLatency && event.applies(addr, now)) {
      factor *= event.factor;
    }
  }
  return factor;
}

sim::Duration FaultSchedule::extra_latency(dns::Ipv4 addr,
                                           sim::Time now) const {
  sim::Duration extra{};
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (event.kind == FaultKind::kLatency && event.applies(addr, now)) {
      extra += event.extra;
    }
  }
  return extra;
}

std::optional<dns::Rcode> FaultSchedule::forced_rcode(dns::Ipv4 addr,
                                                      sim::Time now) const {
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (!event.applies(addr, now)) {
      continue;
    }
    if (event.kind == FaultKind::kServfail) {
      return dns::Rcode::kServFail;
    }
    if (event.kind == FaultKind::kRefused) {
      return dns::Rcode::kRefused;
    }
  }
  return std::nullopt;
}

bool FaultSchedule::truncate(dns::Ipv4 addr, sim::Time now) const {
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (event.kind == FaultKind::kTruncate && event.applies(addr, now)) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::lame(dns::Ipv4 addr, sim::Time now) const {
  for (const auto& event : events_) {
    if (event.start > now) {
      break;
    }
    if (event.kind == FaultKind::kLame && event.applies(addr, now)) {
      return true;
    }
  }
  return false;
}

FaultSchedule FaultSchedule::parse(std::string_view text) {
  FaultSchedule schedule;
  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }

    // Tokenize on blanks.
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' ||
                                   line[pos] == '\r')) {
        ++pos;
      }
      std::size_t start = pos;
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
             line[pos] != '\r') {
        ++pos;
      }
      if (pos > start) {
        tokens.push_back(line.substr(start, pos - start));
      }
    }
    if (tokens.empty()) {
      continue;  // blank / comment-only line
    }
    if (tokens.size() < 2) {
      fail(line_number, "expected '<kind> <start>..<end> [key=value...]'");
    }

    FaultEvent event;
    auto kind = kind_from(tokens[0]);
    if (!kind) {
      fail(line_number, "unknown fault kind '" + std::string(tokens[0]) + "'");
    }
    event.kind = *kind;

    std::string_view window = tokens[1];
    std::size_t dots = window.find("..");
    if (dots == std::string_view::npos) {
      fail(line_number, "window must be '<start>..<end>', got '" +
                            std::string(window) + "'");
    }
    event.start =
        sim::at(parse_span(window.substr(0, dots), line_number));
    event.end =
        sim::at(parse_span(window.substr(dots + 2), line_number));
    if (event.end < event.start) {
      fail(line_number, "window ends before it starts: '" +
                            std::string(window) + "'");
    }

    for (std::size_t i = 2; i < tokens.size(); ++i) {
      std::string_view token = tokens[i];
      std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        fail(line_number,
             "expected key=value, got '" + std::string(token) + "'");
      }
      std::string_view key = token.substr(0, eq);
      std::string_view value = token.substr(eq + 1);
      if (key == "addr") {
        try {
          event.target = dns::Ipv4::from_string(value);
        } catch (const std::invalid_argument& error) {
          fail(line_number, "bad addr: " + std::string(error.what()));
        }
      } else if (key == "rate") {
        event.rate = parse_number(value, line_number, key);
        if (!(event.rate >= 0.0 && event.rate <= 1.0)) {
          fail(line_number, "rate must be in [0, 1]");
        }
      } else if (key == "factor") {
        event.factor = parse_number(value, line_number, key);
        if (!(event.factor > 0.0)) {
          fail(line_number, "factor must be positive");
        }
      } else if (key == "extra") {
        event.extra = parse_span(value, line_number);
      } else {
        fail(line_number, "unknown key '" + std::string(key) + "'");
      }
    }
    schedule.add(std::move(event));
  }
  if constexpr (check::kAuditEnabled) {
    schedule.validate();
  }
  return schedule;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const auto& event : events_) {
    out += fault::to_string(event.kind);
    out += ' ';
    out += format_span(event.start.since_epoch());
    out += "..";
    out += format_span(event.end.since_epoch());
    if (event.target) {
      out += " addr=" + event.target->to_string();
    }
    if (event.rate != 1.0) {
      out += " rate=" + format_number(event.rate);
    }
    if (event.factor != 1.0) {
      out += " factor=" + format_number(event.factor);
    }
    if (event.extra != sim::Duration{}) {
      out += " extra=" + format_span(event.extra);
    }
    out += '\n';
  }
  return out;
}

void FaultSchedule::validate() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    DNSTTL_AUDIT_CHECK("fault::FaultSchedule", event.start <= event.end,
                       "event " + std::to_string(i) + " window inverted");
    DNSTTL_AUDIT_CHECK("fault::FaultSchedule",
                       event.rate >= 0.0 && event.rate <= 1.0,
                       "event " + std::to_string(i) + " rate " +
                           format_number(event.rate));
    DNSTTL_AUDIT_CHECK("fault::FaultSchedule", event.factor > 0.0,
                       "event " + std::to_string(i) + " factor " +
                           format_number(event.factor));
    DNSTTL_AUDIT_CHECK("fault::FaultSchedule", event.extra >= sim::Duration{},
                       "event " + std::to_string(i) + " negative extra");
    if (i > 0) {
      DNSTTL_AUDIT_CHECK("fault::FaultSchedule",
                         !(sort_key(event) < sort_key(events_[i - 1])),
                         "events " + std::to_string(i - 1) + "/" +
                             std::to_string(i) + " out of canonical order");
    }
  }
  check::count_audit();
}

}  // namespace dnsttl::fault
