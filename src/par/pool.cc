#include "par/pool.h"

#include <cstdlib>

namespace dnsttl::par {

std::size_t hardware_jobs() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_jobs() noexcept {
  // DNSTTL_JOBS only selects the worker count, which never changes output.
  if (const char* env = std::getenv("DNSTTL_JOBS")) {
    char* end = nullptr;
    unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value < 4096) {
      return static_cast<std::size_t>(value);
    }
  }
  return hardware_jobs();
}

std::size_t shard_count_for(std::size_t items, std::size_t max_shards) noexcept {
  if (max_shards == 0) {
    max_shards = 1;
  }
  std::size_t shards = items / 256;
  if (shards < 1) {
    shards = 1;
  }
  return shards > max_shards ? max_shards : shards;
}

Pool::Pool(std::size_t workers) {
  if (workers == 0) {
    workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void Pool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void Pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();  // exceptions are the submitter's contract; see parallel_for_shards
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void parallel_for_shards(std::size_t shards, std::size_t jobs,
                         const std::function<void(std::size_t)>& fn) {
  if (shards == 0) {
    return;
  }
  std::vector<std::exception_ptr> errors(shards);
  if (jobs <= 1 || shards == 1) {
    // Same contract as the pooled path: every shard runs even when an
    // earlier one throws, and the lowest-indexed failure is rethrown.
    for (std::size_t shard = 0; shard < shards; ++shard) {
      try {
        fn(shard);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
    }
  } else {
    Pool pool(jobs < shards ? jobs : shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      pool.submit([&fn, &errors, shard] {
        try {
          fn(shard);
        } catch (...) {
          errors[shard] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const auto& error : errors) {  // lowest failing shard wins: deterministic
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace dnsttl::par
