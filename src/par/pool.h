#ifndef DNSTTL_PAR_POOL_H
#define DNSTTL_PAR_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace dnsttl::par {

/// Number of hardware threads (never zero).
std::size_t hardware_jobs() noexcept;

/// Default worker count for `--jobs`: the DNSTTL_JOBS environment variable
/// when set to a positive integer, otherwise hardware_jobs().
std::size_t default_jobs() noexcept;

/// Fixed shard count for a workload of @p items independent units.
///
/// The shard count is a pure function of the WORKLOAD, never of the
/// machine: the same items always produce the same shards, so per-shard
/// RNG streams (`Rng::fork(shard)`) and the ordered merge yield
/// byte-identical output at any `--jobs N`.  Roughly one shard per 256
/// items, clamped to [1, max_shards].
std::size_t shard_count_for(std::size_t items,
                            std::size_t max_shards = 16) noexcept;

/// A fixed-size worker pool with a strict-FIFO task queue.
///
/// Tasks are dequeued in submission order (which worker runs a given task
/// is of course scheduling-dependent — determinism comes from
/// parallel_for_shards / ordered_reduce, which assign work per shard and
/// merge results in shard-index order, not from the pool itself).
class Pool {
 public:
  /// Spawns @p workers threads (at least one).
  explicit Pool(std::size_t workers);

  /// Drains the queue, then joins every worker.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues @p task; runs as soon as a worker frees up, FIFO.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(shard) for every shard in [0, shards) on up to @p jobs worker
/// threads.  `jobs <= 1` runs every shard inline on the calling thread, in
/// index order, with no pool — the reference serial schedule.
///
/// Shards must be independent: they may not touch shared mutable state
/// (give each shard its own World/Simulation/cache and merge afterwards).
/// If any shards throw, every shard still runs to completion (or failure)
/// and then the exception of the LOWEST-indexed failing shard is rethrown,
/// so error reporting is as deterministic as success output.
void parallel_for_shards(std::size_t shards, std::size_t jobs,
                         const std::function<void(std::size_t)>& fn);

/// Deterministic parallel map: runs map(shard) for each shard (see
/// parallel_for_shards) and returns the results indexed by shard.
template <typename MapFn>
auto map_shards(std::size_t shards, std::size_t jobs, MapFn map)
    -> std::vector<decltype(map(std::size_t{}))> {
  using R = decltype(map(std::size_t{}));
  std::vector<std::optional<R>> slots(shards);
  parallel_for_shards(shards, jobs,
                      [&](std::size_t shard) { slots[shard].emplace(map(shard)); });
  std::vector<R> results;
  results.reserve(shards);
  for (auto& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

/// Deterministic ordered reduction: maps every shard in parallel, then
/// folds the results STRICTLY in shard-index order on the calling thread.
/// reduce(shard, result) sees shard 0 first, then 1, ... regardless of
/// completion order, so any fold — even a non-commutative one — produces
/// the same value at any job count.
template <typename MapFn, typename ReduceFn>
void ordered_reduce(std::size_t shards, std::size_t jobs, MapFn map,
                    ReduceFn reduce) {
  auto results = map_shards(shards, jobs, std::move(map));
  for (std::size_t shard = 0; shard < shards; ++shard) {
    reduce(shard, std::move(results[shard]));
  }
}

}  // namespace dnsttl::par

#endif  // DNSTTL_PAR_POOL_H
