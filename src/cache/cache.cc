#include "cache/cache.h"

#include <algorithm>
#include <utility>

namespace dnsttl::cache {

std::string_view to_string(Credibility credibility) {
  switch (credibility) {
    case Credibility::kAdditional:
      return "additional";
    case Credibility::kGlue:
      return "glue";
    case Credibility::kNonAuthAnswer:
      return "non-auth-answer";
    case Credibility::kAuthAnswer:
      return "auth-answer";
  }
  return "credibility?";
}

std::string_view to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kLfu:
      return "lfu";
    case EvictionPolicy::kTtlAware:
      return "ttl-aware";
  }
  return "policy?";
}

// ------------------------------------------------------------------ Table

template <typename V>
std::size_t Cache::Table<V>::probe(std::uint64_t hash, const dns::Name& name,
                                   dns::RRType type, bool& found) const {
  // Capacity is a power of two; linear probing terminates because load is
  // kept below 7/8 so an empty slot always exists.
  std::size_t mask = items_.size() - 1;
  std::size_t index = static_cast<std::size_t>(hash) & mask;
  std::size_t first_tombstone = items_.size();
  for (;;) {
    std::uint8_t state = ctrl_[index];
    if (state == kEmpty) {
      found = false;
      return first_tombstone < items_.size() ? first_tombstone : index;
    }
    if (state == kTombstone) {
      if (first_tombstone == items_.size()) {
        first_tombstone = index;
      }
    } else if (items_[index].hash == hash && items_[index].type == type &&
               items_[index].name == name) {
      found = true;
      return index;
    }
    index = (index + 1) & mask;
  }
}

template <typename V>
V* Cache::Table<V>::find(std::uint64_t hash, const dns::Name& name,
                         dns::RRType type) {
  if (size_ == 0) {
    return nullptr;
  }
  bool found = false;
  std::size_t index = probe(hash, name, type, found);
  return found ? &items_[index].value : nullptr;
}

template <typename V>
const V* Cache::Table<V>::find(std::uint64_t hash, const dns::Name& name,
                               dns::RRType type) const {
  if (size_ == 0) {
    return nullptr;
  }
  bool found = false;
  std::size_t index = probe(hash, name, type, found);
  return found ? &items_[index].value : nullptr;
}

template <typename V>
std::size_t Cache::Table<V>::find_slot(std::uint64_t hash,
                                       const dns::Name& name,
                                       dns::RRType type) const {
  if (size_ == 0) {
    return kNil;
  }
  bool found = false;
  std::size_t index = probe(hash, name, type, found);
  return found ? index : kNil;
}

template <typename V>
void Cache::Table<V>::link_front(std::size_t slot) {
  chain_prev_[slot] = kNil;
  chain_next_[slot] = head_;
  if (head_ != kNil) {
    chain_prev_[head_] = slot;
  }
  head_ = slot;
  if (tail_ == kNil) {
    tail_ = slot;
  }
}

template <typename V>
void Cache::Table<V>::link_back(std::size_t slot) {
  chain_next_[slot] = kNil;
  chain_prev_[slot] = tail_;
  if (tail_ != kNil) {
    chain_next_[tail_] = slot;
  }
  tail_ = slot;
  if (head_ == kNil) {
    head_ = slot;
  }
}

template <typename V>
void Cache::Table<V>::unlink(std::size_t slot) {
  std::size_t toward_head = chain_prev_[slot];
  std::size_t toward_tail = chain_next_[slot];
  if (toward_head != kNil) {
    chain_next_[toward_head] = toward_tail;
  } else {
    head_ = toward_tail;
  }
  if (toward_tail != kNil) {
    chain_prev_[toward_tail] = toward_head;
  } else {
    tail_ = toward_head;
  }
  chain_prev_[slot] = kNil;
  chain_next_[slot] = kNil;
}

template <typename V>
void Cache::Table<V>::touch(std::size_t slot) {
  if (head_ == slot) {
    return;
  }
  unlink(slot);
  link_front(slot);
}

template <typename V>
void Cache::Table<V>::grow() {
  std::size_t new_capacity = items_.empty() ? 16 : items_.size() * 2;
  // If growth is driven by tombstones rather than live items, rehashing in
  // place (same capacity) is enough; avoid doubling forever.
  if (size_ * 4 < new_capacity) {
    new_capacity = std::max<std::size_t>(16, items_.size());
  }
  std::vector<Item> old_items = std::move(items_);
  std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
  std::vector<std::size_t> old_next = std::move(chain_next_);
  std::size_t old_head = head_;
  items_.clear();
  items_.resize(new_capacity);
  ctrl_.assign(new_capacity, kEmpty);
  chain_prev_.assign(new_capacity, kNil);
  chain_next_.assign(new_capacity, kNil);
  head_ = kNil;
  tail_ = kNil;
  used_ = size_;
  std::size_t mask = new_capacity - 1;
  // Rehash, remembering where each old slot landed so the recency chain can
  // be rebuilt in its exact pre-rehash order.
  std::vector<std::size_t> relocated(old_items.size(), kNil);
  for (std::size_t i = 0; i < old_items.size(); ++i) {
    if (old_ctrl[i] != kFull) {
      continue;
    }
    std::size_t index = static_cast<std::size_t>(old_items[i].hash) & mask;
    while (ctrl_[index] == kFull) {
      index = (index + 1) & mask;
    }
    items_[index] = std::move(old_items[i]);
    ctrl_[index] = kFull;
    relocated[i] = index;
  }
  for (std::size_t i = old_head; i != kNil; i = old_next[i]) {
    link_back(relocated[i]);
  }
}

template <typename V>
std::size_t Cache::Table<V>::put(std::uint64_t hash, const dns::Name& name,
                                 dns::RRType type, V value) {
  if (items_.empty() || (used_ + 1) * 8 > items_.size() * 7) {
    grow();
  }
  bool found = false;
  std::size_t index = probe(hash, name, type, found);
  Item& item = items_[index];
  if (!found) {
    if (ctrl_[index] == kEmpty) {
      ++used_;
    }
    ++size_;
    ctrl_[index] = kFull;
    item.hash = hash;
    item.name = name;
    item.type = type;
    link_front(index);
  } else {
    touch(index);
  }
  item.value = std::move(value);
  return index;
}

template <typename V>
bool Cache::Table<V>::erase(std::uint64_t hash, const dns::Name& name,
                            dns::RRType type) {
  if (size_ == 0) {
    return false;
  }
  bool found = false;
  std::size_t index = probe(hash, name, type, found);
  if (!found) {
    return false;
  }
  unlink(index);
  items_[index] = Item{};  // release Name/RRset memory now
  ctrl_[index] = kTombstone;
  --size_;
  return true;
}

template <typename V>
void Cache::Table<V>::clear() {
  items_.clear();
  ctrl_.clear();
  chain_prev_.clear();
  chain_next_.clear();
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
  used_ = 0;
}

template <typename V>
void Cache::Table<V>::validate(const char* what) const {
  DNSTTL_AUDIT_CHECK(what, ctrl_.size() == items_.size(),
                     "control array and item array sizes disagree");
  const std::size_t capacity = items_.size();
  DNSTTL_AUDIT_CHECK(what, (capacity & (capacity - 1)) == 0,
                     "capacity " + std::to_string(capacity) +
                         " is not a power of two");
  std::size_t full = 0;
  std::size_t tombstones = 0;
  for (std::size_t i = 0; i < capacity; ++i) {
    DNSTTL_AUDIT_CHECK(what, ctrl_[i] <= kFull,
                       "control byte out of range at slot " +
                           std::to_string(i));
    if (ctrl_[i] == kFull) {
      ++full;
    } else if (ctrl_[i] == kTombstone) {
      ++tombstones;
    }
  }
  DNSTTL_AUDIT_CHECK(what, full == size_,
                     "live-entry accounting: " + std::to_string(full) +
                         " full slots vs size_ = " + std::to_string(size_));
  DNSTTL_AUDIT_CHECK(what, full + tombstones == used_,
                     "used-slot accounting: " +
                         std::to_string(full + tombstones) +
                         " full+tombstone slots vs used_ = " +
                         std::to_string(used_));
  // Probe termination requires a genuinely empty slot somewhere.
  DNSTTL_AUDIT_CHECK(what, capacity == 0 || used_ < capacity,
                     "table has no empty slot; probing cannot terminate");
  for (std::size_t i = 0; i < capacity; ++i) {
    if (ctrl_[i] != kFull) {
      continue;
    }
    const Item& item = items_[i];
    item.name.validate();
    DNSTTL_AUDIT_CHECK(what, key_hash(item.name, item.type) == item.hash,
                       "stored hash disagrees with key_hash for " +
                           item.name.to_string());
    // Probe-chain/tombstone agreement: the item must be reachable from its
    // home slot, i.e. a lookup for its key finds this exact slot.
    bool found = false;
    std::size_t at = probe(item.hash, item.name, item.type, found);
    DNSTTL_AUDIT_CHECK(what, found && at == i,
                       "item at slot " + std::to_string(i) + " (" +
                           item.name.to_string() +
                           ") unreachable by probing (probe returned " +
                           std::to_string(at) + ")");
  }
  // Recency chain <-> slot consistency: the chain visits every live slot
  // exactly once, links are symmetric, and dead slots are unlinked.
  DNSTTL_AUDIT_CHECK(what,
                     chain_prev_.size() == capacity &&
                         chain_next_.size() == capacity,
                     "recency chain arrays out of step with capacity");
  DNSTTL_AUDIT_CHECK(what, (head_ == kNil) == (size_ == 0),
                     "chain head/emptiness disagreement");
  DNSTTL_AUDIT_CHECK(what, (tail_ == kNil) == (size_ == 0),
                     "chain tail/emptiness disagreement");
  std::vector<std::uint8_t> seen(capacity, 0);
  std::size_t visited = 0;
  std::size_t prev = kNil;
  for (std::size_t i = head_; i != kNil; i = chain_next_[i]) {
    DNSTTL_AUDIT_CHECK(what, i < capacity,
                       "recency chain index out of range: " +
                           std::to_string(i));
    DNSTTL_AUDIT_CHECK(what, ctrl_[i] == kFull,
                       "recency chain visits dead slot " + std::to_string(i));
    DNSTTL_AUDIT_CHECK(what, seen[i] == 0,
                       "recency chain visits slot " + std::to_string(i) +
                           " twice (cycle)");
    seen[i] = 1;
    DNSTTL_AUDIT_CHECK(what, chain_prev_[i] == prev,
                       "recency chain prev/next asymmetry at slot " +
                           std::to_string(i));
    prev = i;
    ++visited;
  }
  DNSTTL_AUDIT_CHECK(what, tail_ == prev,
                     "recency chain tail does not terminate the walk");
  DNSTTL_AUDIT_CHECK(what, visited == size_,
                     "recency chain covers " + std::to_string(visited) +
                         " slots vs " + std::to_string(size_) + " live items");
  for (std::size_t i = 0; i < capacity; ++i) {
    if (ctrl_[i] != kFull) {
      DNSTTL_AUDIT_CHECK(what,
                         chain_prev_[i] == kNil && chain_next_[i] == kNil,
                         "dead slot " + std::to_string(i) +
                             " still linked into the recency chain");
    }
  }
}

// ------------------------------------------------------------------ Cache

void Cache::validate() const {
  constexpr const char* kWhat = "cache::Cache";
  entries_.validate("cache::Cache::entries");
  negatives_.validate("cache::Cache::negatives");

  // Expiry-heap coverage: every indexed entry must have a heap record with
  // exactly its (key, expiry, stamp) so lazy purging is guaranteed to visit
  // it and TTL-aware victim selection always finds a valid top.
  auto coverage = [](const ExpiryHeap& heap) {
    std::vector<std::tuple<std::uint64_t, sim::Time, std::uint64_t>> recs;
    recs.reserve(heap.container().size());
    for (const ExpiryRec& rec : heap.container()) {
      recs.emplace_back(key_hash(rec.name, rec.type), rec.at, rec.stamp);
    }
    std::sort(recs.begin(), recs.end());
    return recs;
  };
  const auto positive_recs = coverage(expiry_);
  const auto negative_recs = coverage(negative_expiry_);

  const dns::Ttl lo = std::min(config_.min_ttl, config_.max_ttl);
  const dns::Ttl hi = std::max(config_.min_ttl, config_.max_ttl);
  entries_.for_each([&](const Table<Entry>::Item& item) {
    const Entry& entry = item.value;
    DNSTTL_AUDIT_CHECK(kWhat, entry.rrset.name() == item.name,
                       "entry RRset owner disagrees with index key " +
                           item.name.to_string());
    DNSTTL_AUDIT_CHECK(kWhat, entry.rrset.type() == item.type,
                       "entry RRset type disagrees with index key for " +
                           item.name.to_string());
    DNSTTL_AUDIT_CHECK(kWhat, entry.rrset.ttl() >= lo && entry.rrset.ttl() <= hi,
                       "cached TTL outside the configured clamp for " +
                           item.name.to_string());
    DNSTTL_AUDIT_CHECK(
        kWhat,
        entry.expires ==
            entry.inserted + sim::seconds(entry.rrset.ttl().value()),
        "expiry arithmetic broken for " + item.name.to_string());
    DNSTTL_AUDIT_CHECK(
        kWhat,
        std::binary_search(positive_recs.begin(), positive_recs.end(),
                           std::make_tuple(key_hash(item.name, item.type),
                                           entry.expires, entry.stamp)),
        "no expiry-heap record covers " + item.name.to_string());
  });
  negatives_.for_each([&](const Table<NegativeEntry>::Item& item) {
    DNSTTL_AUDIT_CHECK(
        kWhat,
        std::binary_search(negative_recs.begin(), negative_recs.end(),
                           std::make_tuple(key_hash(item.name, item.type),
                                           item.value.expires,
                                           item.value.stamp)),
        "no negative-expiry record covers " + item.name.to_string());
  });

  // Frequency-counter and touch-clock invariants, plus strict recency order
  // along the chain (head = most recent; touches are unique clock draws, so
  // the order is strictly decreasing).
  auto check_chain = [&](const auto& table, const char* which) {
    bool first = true;
    std::uint64_t newer = 0;
    for (std::size_t i = table.head(); i != kNil; i = table.less_recent(i)) {
      const auto& value = table.at(i).value;
      DNSTTL_AUDIT_CHECK(kWhat, value.freq >= 1,
                         std::string(which) +
                             ": stored entry with zero frequency at " +
                             table.at(i).name.to_string());
      DNSTTL_AUDIT_CHECK(kWhat,
                         value.last_touch <= tick_ && value.stamp <= tick_,
                         std::string(which) +
                             ": touch/stamp ahead of the logical clock at " +
                             table.at(i).name.to_string());
      DNSTTL_AUDIT_CHECK(kWhat, value.stamp <= value.last_touch,
                         std::string(which) +
                             ": stamp newer than last touch at " +
                             table.at(i).name.to_string());
      DNSTTL_AUDIT_CHECK(kWhat, first || value.last_touch < newer,
                         std::string(which) +
                             ": recency chain out of touch order at " +
                             table.at(i).name.to_string());
      newer = value.last_touch;
      first = false;
    }
  };
  check_chain(entries_, "entries");
  check_chain(negatives_, "negatives");

  const std::size_t resident = entries_.size() + negatives_.size();
  DNSTTL_AUDIT_CHECK(kWhat,
                     config_.max_entries == 0 ||
                         resident <= config_.max_entries,
                     "combined population exceeds max_entries");
  DNSTTL_AUDIT_CHECK(kWhat, stats_.high_water >= resident,
                     "high-water mark below current population");
  check::count_audit();
}

dns::Ttl Cache::clamp_ttl(dns::Ttl ttl) const {
  return std::clamp(ttl, config_.min_ttl, config_.max_ttl);
}

bool Cache::entry_live(const Entry& entry, sim::Time now) const {
  return entry.expires > now;
}

bool Cache::ns_link_broken(const Entry& entry, sim::Time now) const {
  if (!config_.link_glue_to_ns || !entry.linked_ns_owner) {
    return false;
  }
  const Entry* ns = entries_.find(
      key_hash(*entry.linked_ns_owner, dns::RRType::kNS),
      *entry.linked_ns_owner, dns::RRType::kNS);
  if (ns == nullptr || !entry_live(*ns, now)) {
    return true;
  }
  // The covering NS set was replaced since this entry was cached: the old
  // delegation instance this address rode with no longer exists (§4.2).
  return ns->inserted != entry.linked_ns_inserted;
}

template <typename V>
void Cache::compact_heap(ExpiryHeap& heap, const Table<V>& table) {
  if (heap.size() <= 2 * table.size() + 64) {
    return;
  }
  std::vector<ExpiryRec> recs;
  recs.reserve(table.size());
  table.for_each([&recs](const auto& item) {
    recs.push_back(ExpiryRec{item.value.expires, item.name, item.type,
                             item.value.stamp});
  });
  heap = ExpiryHeap(LaterExpiry{}, std::move(recs));
}

void Cache::maybe_halve() {
  if (config_.policy != EvictionPolicy::kLfu ||
      config_.lfu_halving_period == 0 ||
      tick_ % config_.lfu_halving_period != 0) {
    return;
  }
  auto decay = [](auto& item) {
    std::uint8_t f = item.value.freq;
    item.value.freq = static_cast<std::uint8_t>(f < 2 ? 1 : f >> 1);
  };
  entries_.for_each_mut(decay);
  negatives_.for_each_mut(decay);
}

void Cache::enforce_capacity() {
  if (config_.max_entries != 0) {
    std::size_t resident = entries_.size() + negatives_.size();
    while (resident > config_.max_entries) {
      evict_one();
      std::size_t after = entries_.size() + negatives_.size();
      if (after == resident) {
        break;  // defensive: no victim found (cannot happen when over budget)
      }
      resident = after;
    }
  }
  const std::uint64_t resident =
      static_cast<std::uint64_t>(entries_.size() + negatives_.size());
  if (resident > stats_.high_water) {
    stats_.high_water = resident;
  }
}

void Cache::evict_one() {
  bool from_positive = false;
  dns::Name victim_name;
  dns::RRType victim_type{};
  switch (config_.policy) {
    case EvictionPolicy::kLru: {
      const std::size_t p = entries_.tail();
      const std::size_t n = negatives_.tail();
      if (p == kNil && n == kNil) {
        return;
      }
      from_positive =
          n == kNil || (p != kNil && entries_.at(p).value.last_touch <
                                         negatives_.at(n).value.last_touch);
      if (from_positive) {
        victim_name = entries_.at(p).name;
        victim_type = entries_.at(p).type;
      } else {
        victim_name = negatives_.at(n).name;
        victim_type = negatives_.at(n).type;
      }
      break;
    }
    case EvictionPolicy::kLfu: {
      // Walk each chain from the cold end.  The chain is touch-ordered, so
      // the first frequency-1 slot seen is the global (freq, recency)
      // minimum and the walk can stop there — on skewed workloads the tail
      // is dominated by once-touched entries and this is near-O(1).
      auto coldest = [](const auto& table) {
        std::size_t best = kNil;
        std::uint8_t best_freq = 255;
        for (std::size_t i = table.tail(); i != kNil;
             i = table.more_recent(i)) {
          const std::uint8_t f = table.at(i).value.freq;
          if (best == kNil || f < best_freq) {
            best = i;
            best_freq = f;
          }
          if (best_freq == 1) {
            break;
          }
        }
        return best;
      };
      const std::size_t p = coldest(entries_);
      const std::size_t n = coldest(negatives_);
      if (p == kNil && n == kNil) {
        return;
      }
      if (p == kNil) {
        from_positive = false;
      } else if (n == kNil) {
        from_positive = true;
      } else {
        const Entry& pe = entries_.at(p).value;
        const NegativeEntry& ne = negatives_.at(n).value;
        from_positive = pe.freq < ne.freq ||
                        (pe.freq == ne.freq && pe.last_touch < ne.last_touch);
      }
      if (from_positive) {
        victim_name = entries_.at(p).name;
        victim_type = entries_.at(p).type;
      } else {
        victim_name = negatives_.at(n).name;
        victim_type = negatives_.at(n).type;
      }
      break;
    }
    case EvictionPolicy::kTtlAware: {
      // Lazily discard heap records whose entry was refreshed or removed
      // (stamp mismatch); the surviving tops are the true soonest expiries.
      auto valid_top = [](ExpiryHeap& heap, auto& table) -> const ExpiryRec* {
        while (!heap.empty()) {
          const ExpiryRec& rec = heap.top();
          const auto* value =
              table.find(key_hash(rec.name, rec.type), rec.name, rec.type);
          if (value != nullptr && value->expires == rec.at &&
              value->stamp == rec.stamp) {
            return &rec;
          }
          heap.pop();
        }
        return nullptr;
      };
      const ExpiryRec* p = valid_top(expiry_, entries_);
      const ExpiryRec* n = valid_top(negative_expiry_, negatives_);
      if (p == nullptr && n == nullptr) {
        return;
      }
      from_positive =
          n == nullptr ||
          (p != nullptr &&
           (p->at < n->at || (p->at == n->at && p->stamp < n->stamp)));
      const ExpiryRec* chosen = from_positive ? p : n;
      victim_name = chosen->name;
      victim_type = chosen->type;
      // Consume the record now; the entry it covers is going away.
      if (from_positive) {
        expiry_.pop();
      } else {
        negative_expiry_.pop();
      }
      break;
    }
  }
  const std::uint64_t hash = key_hash(victim_name, victim_type);
  if (from_positive) {
    entries_.erase(hash, victim_name, victim_type);
    ++stats_.evicted_positive;
  } else {
    negatives_.erase(hash, victim_name, victim_type);
    ++stats_.evicted_negative;
  }
  ++stats_.capacity_evictions;
}

bool Cache::insert(const dns::RRset& rrset, Credibility credibility,
                   sim::Time now, std::optional<dns::Name> linked_ns_owner) {
  std::uint64_t hash = key_hash(rrset.name(), rrset.type());
  const std::size_t existing_slot =
      entries_.find_slot(hash, rrset.name(), rrset.type());
  const Entry* existing =
      existing_slot == kNil ? nullptr : &entries_.at(existing_slot).value;
  if (existing != nullptr && entry_live(*existing, now) &&
      !ns_link_broken(*existing, now)) {
    int have = static_cast<int>(existing->credibility);
    int incoming = static_cast<int>(credibility);
    if (have > incoming) {
      // RFC 2181 §5.4.1: never replace live, more-credible data.
      ++stats_.downgrades_refused;
      return false;
    }
    if (have == incoming && !config_.replace_same_credibility) {
      ++stats_.downgrades_refused;
      return false;
    }
    if (config_.prefer_parent_delegation &&
        (existing->credibility == Credibility::kGlue ||
         existing->credibility == Credibility::kAdditional) &&
        incoming > have) {
      // Parent-centric: the parent's delegation copy wins while it lives.
      ++stats_.downgrades_refused;
      return false;
    }
  }
  if (existing != nullptr && !entry_live(*existing, now) &&
      config_.serve_stale && now < existing->expires + config_.stale_window) {
    // The entry was expired but still servable stale, and fresh data just
    // arrived: an RFC 8767 resurrection (the §7 resilience accounting).
    ++stats_.resurrections;
  }
  Entry entry;
  entry.rrset = rrset;
  entry.credibility = credibility;
  entry.inserted = now;
  entry.original_ttl = rrset.ttl();
  dns::Ttl effective = clamp_ttl(rrset.ttl());
  entry.rrset.set_ttl(effective);
  entry.expires = now + sim::seconds(effective.value());
  entry.linked_ns_owner = std::move(linked_ns_owner);
  if (entry.linked_ns_owner) {
    const Entry* ns = entries_.find(
        key_hash(*entry.linked_ns_owner, dns::RRType::kNS),
        *entry.linked_ns_owner, dns::RRType::kNS);
    if (ns != nullptr && entry_live(*ns, now)) {
      entry.linked_ns_inserted = ns->inserted;
    } else {
      entry.linked_ns_owner.reset();  // no live covering NS: unlinked
    }
  }
  // A refresh of live data inherits (and bumps) its popularity; everything
  // else starts at frequency 1.
  if (existing != nullptr && entry_live(*existing, now)) {
    entry.freq = bump_freq(existing->freq);
  }
  entry.stamp = bump_tick();
  entry.last_touch = entry.stamp;
  sim::Time expires = entry.expires;
  std::uint64_t stamp = entry.stamp;
  entries_.put(hash, rrset.name(), rrset.type(), std::move(entry));
  expiry_.push(ExpiryRec{expires, rrset.name(), rrset.type(), stamp});
  compact_heap(expiry_, entries_);
  ++stats_.inserts;
  // Fresh positive data supersedes any negative entry.
  negatives_.erase(hash, rrset.name(), rrset.type());
  maybe_halve();
  enforce_capacity();
  if constexpr (check::kAuditEnabled) {
    validate();
  }
  return true;
}

void Cache::insert_negative(const dns::Name& name, dns::RRType type,
                            dns::Rcode rcode, dns::Ttl ttl, sim::Time now) {
  std::uint64_t hash = key_hash(name, type);
  dns::Ttl effective = clamp_ttl(ttl);
  sim::Time expires = now + sim::seconds(effective.value());
  NegativeEntry entry{rcode, expires};
  const NegativeEntry* existing = negatives_.find(hash, name, type);
  if (existing != nullptr && existing->expires > now) {
    entry.freq = bump_freq(existing->freq);
  }
  entry.stamp = bump_tick();
  entry.last_touch = entry.stamp;
  std::uint64_t stamp = entry.stamp;
  negatives_.put(hash, name, type, entry);
  negative_expiry_.push(ExpiryRec{expires, name, type, stamp});
  compact_heap(negative_expiry_, negatives_);
  maybe_halve();
  enforce_capacity();
  if constexpr (check::kAuditEnabled) {
    validate();
  }
}

std::optional<CacheHit> Cache::lookup(const dns::Name& name, dns::RRType type,
                                      sim::Time now, bool allow_stale) {
  const std::size_t slot = entries_.find_slot(key_hash(name, type), name, type);
  if (slot == kNil) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = entries_.at(slot).value;
  if (ns_link_broken(entry, now)) {
    // In-bailiwick policy: glue dies with its NS record (§4.2).
    ++stats_.ns_linked_drops;
    ++stats_.misses;
    return std::nullopt;
  }
  if (!entry_live(entry, now)) {
    bool within_stale_window =
        config_.serve_stale && allow_stale &&
        now < entry.expires + config_.stale_window;
    if (!within_stale_window) {
      ++stats_.expired;
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.stale_serves;
    ++stats_.hits;
    entry.last_touch = bump_tick();
    entry.freq = bump_freq(entry.freq);
    entries_.touch(slot);
    CacheHit hit;
    hit.rrset = entry.rrset;
    // RFC 8767: stale answers are served with a short fixed TTL.
    hit.rrset.set_ttl(dns::Ttl{30});
    hit.credibility = entry.credibility;
    hit.stale = true;
    hit.original_ttl = entry.original_ttl;
    hit.stale_for = now - entry.expires;
    maybe_halve();
    return hit;
  }
  ++stats_.hits;
  entry.last_touch = bump_tick();
  entry.freq = bump_freq(entry.freq);
  entries_.touch(slot);
  CacheHit hit;
  hit.rrset = entry.rrset;
  hit.rrset.set_ttl(
      dns::Ttl::of_seconds((entry.expires - now) / sim::kSecond));
  hit.credibility = entry.credibility;
  hit.original_ttl = entry.original_ttl;
  maybe_halve();
  return hit;
}

std::optional<CacheHit> Cache::peek(const dns::Name& name, dns::RRType type,
                                    sim::Time now) const {
  const Entry* entry = entries_.find(key_hash(name, type), name, type);
  if (entry == nullptr || !entry_live(*entry, now) ||
      ns_link_broken(*entry, now)) {
    return std::nullopt;
  }
  CacheHit hit;
  hit.rrset = entry->rrset;
  hit.rrset.set_ttl(
      dns::Ttl::of_seconds((entry->expires - now) / sim::kSecond));
  hit.credibility = entry->credibility;
  hit.original_ttl = entry->original_ttl;
  return hit;
}

std::optional<NegativeHit> Cache::lookup_negative(const dns::Name& name,
                                                  dns::RRType type,
                                                  sim::Time now) {
  const std::size_t slot =
      negatives_.find_slot(key_hash(name, type), name, type);
  if (slot == kNil) {
    return std::nullopt;
  }
  NegativeEntry& entry = negatives_.at(slot).value;
  if (entry.expires <= now) {
    return std::nullopt;
  }
  entry.last_touch = bump_tick();
  entry.freq = bump_freq(entry.freq);
  negatives_.touch(slot);
  NegativeHit hit{
      entry.rcode,
      dns::Ttl::of_seconds((entry.expires - now) / sim::kSecond)};
  maybe_halve();
  return hit;
}

bool Cache::evict(const dns::Name& name, dns::RRType type) {
  bool erased = entries_.erase(key_hash(name, type), name, type);
  if constexpr (check::kAuditEnabled) {
    entries_.validate("cache::Cache::entries");
  }
  return erased;
}

std::size_t Cache::purge_expired(sim::Time now) {
  std::size_t removed = 0;
  sim::Duration grace =
      config_.serve_stale ? config_.stale_window : sim::Duration{};
  while (!expiry_.empty() && expiry_.top().at + grace <= now) {
    ExpiryRec rec = expiry_.top();
    expiry_.pop();
    std::uint64_t hash = key_hash(rec.name, rec.type);
    const Entry* entry = entries_.find(hash, rec.name, rec.type);
    // The record is stale if the entry was refreshed (later expiry),
    // evicted, or already removed via an earlier duplicate record.
    if (entry != nullptr && entry->expires + grace <= now) {
      entries_.erase(hash, rec.name, rec.type);
      ++removed;
    }
  }
  while (!negative_expiry_.empty() && negative_expiry_.top().at <= now) {
    ExpiryRec rec = negative_expiry_.top();
    negative_expiry_.pop();
    std::uint64_t hash = key_hash(rec.name, rec.type);
    const NegativeEntry* entry = negatives_.find(hash, rec.name, rec.type);
    if (entry != nullptr && entry->expires <= now) {
      negatives_.erase(hash, rec.name, rec.type);
      ++removed;
    }
  }
  if constexpr (check::kAuditEnabled) {
    validate();
    // Purge guarantee: nothing past its (stale-window-extended) deadline
    // may survive a purge at @p now.
    entries_.for_each([&](const Table<Entry>::Item& item) {
      DNSTTL_AUDIT_CHECK("cache::Cache", item.value.expires + grace > now,
                         "entry survived purge past its deadline: " +
                             item.name.to_string());
    });
  }
  return removed;
}

void Cache::clear() {
  entries_.clear();
  negatives_.clear();
  expiry_ = ExpiryHeap{};
  negative_expiry_ = ExpiryHeap{};
  if constexpr (check::kAuditEnabled) {
    entries_.validate("cache::Cache::entries");
    negatives_.validate("cache::Cache::negatives");
  }
}

std::string Cache::dump(sim::Time now) const {
  // Reproduce the historical ordered-map iteration: canonical name order,
  // then record type.
  struct PositiveRef {
    const dns::Name* name;
    dns::RRType type;
    const Entry* entry;
  };
  std::vector<PositiveRef> live;
  live.reserve(entries_.size());
  entries_.for_each([&](const auto& item) {
    if (entry_live(item.value, now)) {
      live.push_back(PositiveRef{&item.name, item.type, &item.value});
    }
  });
  std::sort(live.begin(), live.end(),
            [](const PositiveRef& a, const PositiveRef& b) {
              if (auto cmp = *a.name <=> *b.name; cmp != 0) {
                return cmp < 0;
              }
              return a.type < b.type;
            });

  std::string out;
  for (const auto& ref : live) {
    auto remaining = (ref.entry->expires - now) / sim::kSecond;
    for (const auto& rdata : ref.entry->rrset.rdatas()) {
      out += ref.name->to_string() + " " + std::to_string(remaining) + " " +
             std::string(dns::to_string(ref.type)) + " " +
             dns::rdata_to_string(rdata) + " ; " +
             std::string(to_string(ref.entry->credibility));
      if (ref.entry->linked_ns_owner) {
        out += " linked=" + ref.entry->linked_ns_owner->to_string();
        if (ns_link_broken(*ref.entry, now)) {
          out += " (broken)";
        }
      }
      out += "\n";
    }
  }

  struct NegativeRef {
    const dns::Name* name;
    dns::RRType type;
    const NegativeEntry* entry;
  };
  std::vector<NegativeRef> negatives;
  negatives.reserve(negatives_.size());
  negatives_.for_each([&](const auto& item) {
    if (item.value.expires > now) {
      negatives.push_back(NegativeRef{&item.name, item.type, &item.value});
    }
  });
  std::sort(negatives.begin(), negatives.end(),
            [](const NegativeRef& a, const NegativeRef& b) {
              if (auto cmp = *a.name <=> *b.name; cmp != 0) {
                return cmp < 0;
              }
              return a.type < b.type;
            });
  for (const auto& ref : negatives) {
    out += ref.name->to_string() + " " +
           std::to_string((ref.entry->expires - now) / sim::kSecond) + " " +
           std::string(dns::to_string(ref.type)) + " ; negative " +
           std::string(dns::to_string(ref.entry->rcode)) + "\n";
  }
  return out;
}

std::optional<dns::Ttl> Cache::remaining_ttl(const dns::Name& name,
                                             dns::RRType type,
                                             sim::Time now) const {
  auto hit = peek(name, type, now);
  if (!hit) {
    return std::nullopt;
  }
  return hit->rrset.ttl();
}

// The table's out-of-line members live in this TU; snapshot.cc links
// against these instantiations.
template class Cache::Table<Cache::Entry>;
template class Cache::Table<Cache::NegativeEntry>;

}  // namespace dnsttl::cache
