#include "cache/cache.h"

#include <algorithm>

namespace dnsttl::cache {

std::string_view to_string(Credibility credibility) {
  switch (credibility) {
    case Credibility::kAdditional:
      return "additional";
    case Credibility::kGlue:
      return "glue";
    case Credibility::kNonAuthAnswer:
      return "non-auth-answer";
    case Credibility::kAuthAnswer:
      return "auth-answer";
  }
  return "credibility?";
}

dns::Ttl Cache::clamp_ttl(dns::Ttl ttl) const {
  return std::clamp(ttl, config_.min_ttl, config_.max_ttl);
}

bool Cache::entry_live(const Entry& entry, sim::Time now) const {
  return entry.expires > now;
}

bool Cache::ns_link_broken(const Entry& entry, sim::Time now) const {
  if (!config_.link_glue_to_ns || !entry.linked_ns_owner) {
    return false;
  }
  auto ns = entries_.find(Key{*entry.linked_ns_owner, dns::RRType::kNS});
  if (ns == entries_.end() || !entry_live(ns->second, now)) {
    return true;
  }
  // The covering NS set was replaced since this entry was cached: the old
  // delegation instance this address rode with no longer exists (§4.2).
  return ns->second.inserted != entry.linked_ns_inserted;
}

bool Cache::insert(const dns::RRset& rrset, Credibility credibility,
                   sim::Time now, std::optional<dns::Name> linked_ns_owner) {
  Key key{rrset.name(), rrset.type()};
  auto it = entries_.find(key);
  if (it != entries_.end() && entry_live(it->second, now) &&
      !ns_link_broken(it->second, now)) {
    int have = static_cast<int>(it->second.credibility);
    int incoming = static_cast<int>(credibility);
    if (have > incoming) {
      // RFC 2181 §5.4.1: never replace live, more-credible data.
      ++stats_.downgrades_refused;
      return false;
    }
    if (have == incoming && !config_.replace_same_credibility) {
      ++stats_.downgrades_refused;
      return false;
    }
    if (config_.prefer_parent_delegation &&
        (it->second.credibility == Credibility::kGlue ||
         it->second.credibility == Credibility::kAdditional) &&
        incoming > have) {
      // Parent-centric: the parent's delegation copy wins while it lives.
      ++stats_.downgrades_refused;
      return false;
    }
  }
  Entry entry;
  entry.rrset = rrset;
  entry.credibility = credibility;
  entry.inserted = now;
  entry.original_ttl = rrset.ttl();
  dns::Ttl effective = clamp_ttl(rrset.ttl());
  entry.rrset.set_ttl(effective);
  entry.expires = now + static_cast<sim::Duration>(effective) * sim::kSecond;
  entry.linked_ns_owner = std::move(linked_ns_owner);
  if (entry.linked_ns_owner) {
    auto ns = entries_.find(Key{*entry.linked_ns_owner, dns::RRType::kNS});
    if (ns != entries_.end() && entry_live(ns->second, now)) {
      entry.linked_ns_inserted = ns->second.inserted;
    } else {
      entry.linked_ns_owner.reset();  // no live covering NS: unlinked
    }
  }
  entries_[key] = std::move(entry);
  ++stats_.inserts;
  // Fresh positive data supersedes any negative entry.
  negatives_.erase(key);
  return true;
}

void Cache::insert_negative(const dns::Name& name, dns::RRType type,
                            dns::Rcode rcode, dns::Ttl ttl, sim::Time now) {
  dns::Ttl effective = clamp_ttl(ttl);
  negatives_[Key{name, type}] = NegativeEntry{
      rcode, now + static_cast<sim::Duration>(effective) * sim::kSecond};
}

std::optional<CacheHit> Cache::lookup(const dns::Name& name, dns::RRType type,
                                      sim::Time now, bool allow_stale) {
  auto it = entries_.find(Key{name, type});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const Entry& entry = it->second;
  if (ns_link_broken(entry, now)) {
    // In-bailiwick policy: glue dies with its NS record (§4.2).
    ++stats_.ns_linked_drops;
    ++stats_.misses;
    return std::nullopt;
  }
  if (!entry_live(entry, now)) {
    bool within_stale_window =
        config_.serve_stale && allow_stale &&
        now < entry.expires + config_.stale_window;
    if (!within_stale_window) {
      ++stats_.expired;
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.stale_serves;
    ++stats_.hits;
    CacheHit hit;
    hit.rrset = entry.rrset;
    // RFC 8767: stale answers are served with a short fixed TTL.
    hit.rrset.set_ttl(30);
    hit.credibility = entry.credibility;
    hit.stale = true;
    hit.original_ttl = entry.original_ttl;
    return hit;
  }
  ++stats_.hits;
  CacheHit hit;
  hit.rrset = entry.rrset;
  hit.rrset.set_ttl(
      static_cast<dns::Ttl>((entry.expires - now) / sim::kSecond));
  hit.credibility = entry.credibility;
  hit.original_ttl = entry.original_ttl;
  return hit;
}

std::optional<CacheHit> Cache::peek(const dns::Name& name, dns::RRType type,
                                    sim::Time now) const {
  auto it = entries_.find(Key{name, type});
  if (it == entries_.end() || !entry_live(it->second, now) ||
      ns_link_broken(it->second, now)) {
    return std::nullopt;
  }
  CacheHit hit;
  hit.rrset = it->second.rrset;
  hit.rrset.set_ttl(
      static_cast<dns::Ttl>((it->second.expires - now) / sim::kSecond));
  hit.credibility = it->second.credibility;
  hit.original_ttl = it->second.original_ttl;
  return hit;
}

std::optional<NegativeHit> Cache::lookup_negative(const dns::Name& name,
                                                  dns::RRType type,
                                                  sim::Time now) {
  auto it = negatives_.find(Key{name, type});
  if (it == negatives_.end() || it->second.expires <= now) {
    return std::nullopt;
  }
  return NegativeHit{
      it->second.rcode,
      static_cast<dns::Ttl>((it->second.expires - now) / sim::kSecond)};
}

bool Cache::evict(const dns::Name& name, dns::RRType type) {
  return entries_.erase(Key{name, type}) > 0;
}

std::size_t Cache::purge_expired(sim::Time now) {
  std::size_t removed = 0;
  sim::Duration grace = config_.serve_stale ? config_.stale_window : 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires + grace <= now) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = negatives_.begin(); it != negatives_.end();) {
    if (it->second.expires <= now) {
      it = negatives_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void Cache::clear() {
  entries_.clear();
  negatives_.clear();
}

std::string Cache::dump(sim::Time now) const {
  std::string out;
  for (const auto& [key, entry] : entries_) {
    if (!entry_live(entry, now)) {
      continue;
    }
    auto remaining =
        static_cast<dns::Ttl>((entry.expires - now) / sim::kSecond);
    for (const auto& rdata : entry.rrset.rdatas()) {
      out += key.name.to_string() + " " + std::to_string(remaining) + " " +
             std::string(dns::to_string(key.type)) + " " +
             dns::rdata_to_string(rdata) + " ; " +
             std::string(to_string(entry.credibility));
      if (entry.linked_ns_owner) {
        out += " linked=" + entry.linked_ns_owner->to_string();
        if (ns_link_broken(entry, now)) {
          out += " (broken)";
        }
      }
      out += "\n";
    }
  }
  for (const auto& [key, entry] : negatives_) {
    if (entry.expires <= now) {
      continue;
    }
    out += key.name.to_string() + " " +
           std::to_string((entry.expires - now) / sim::kSecond) + " " +
           std::string(dns::to_string(key.type)) + " ; negative " +
           std::string(dns::to_string(entry.rcode)) + "\n";
  }
  return out;
}

std::optional<dns::Ttl> Cache::remaining_ttl(const dns::Name& name,
                                             dns::RRType type,
                                             sim::Time now) const {
  auto hit = peek(name, type, now);
  if (!hit) {
    return std::nullopt;
  }
  return hit->rrset.ttl();
}

}  // namespace dnsttl::cache
