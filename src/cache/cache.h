#ifndef DNSTTL_CACHE_CACHE_H
#define DNSTTL_CACHE_CACHE_H

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/audit.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"
#include "sim/time.h"

namespace dnsttl::cache {

/// RFC 2181 §5.4.1 data ranking.  Higher values are more credible; a cache
/// must not replace more-credible data with less-credible data, and
/// parent-side glue (ranked low) must not override child authoritative
/// answers (ranked top).  Which rank *wins in practice* for TTL purposes is
/// exactly the parent/child-centricity question of the paper's §3.
enum class Credibility : std::uint8_t {
  kAdditional = 1,    ///< additional section of a non-authoritative response
  kGlue = 2,          ///< referral authority/glue from the parent
  kNonAuthAnswer = 3, ///< answer section, AA not set
  kAuthAnswer = 4,    ///< answer section with AA set (child zone data)
};

std::string_view to_string(Credibility credibility);

/// Victim-selection rule for capacity-bounded caches (max_entries > 0).
/// All three are fully deterministic: every touch (insert, hit, stale
/// serve, negative hit) draws a unique value from a per-cache logical
/// clock, so there are never ties to break arbitrarily.
enum class EvictionPolicy : std::uint8_t {
  kLru = 0,       ///< least recently touched entry goes first
  kLfu = 1,       ///< lowest (frequency, recency); 8-bit saturating counters
                  ///< with periodic halving so old popularity decays
  kTtlAware = 2,  ///< soonest-to-expire entry goes first (expiry heaps)
};

std::string_view to_string(EvictionPolicy policy);

/// Thrown by Cache::restore() on malformed, truncated or corrupt snapshot
/// input.  Mirrors dns::WireError: hostile bytes are a documented rejection,
/// never UB.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a cache lookup returns on a hit.
struct CacheHit {
  dns::RRset rrset;           ///< TTL field = remaining seconds at lookup
  Credibility credibility = Credibility::kGlue;
  bool stale = false;         ///< served past expiry (serve-stale mode)
  dns::Ttl original_ttl{};  ///< TTL as received, before counting down
  /// How far past expiry the entry is (zero for live hits).  Bounded by
  /// the configured stale window — RFC 8767's max-stale clamp.
  sim::Duration stale_for{};
};

/// A cached negative result (RFC 2308).
struct NegativeHit {
  dns::Rcode rcode = dns::Rcode::kNXDomain;
  dns::Ttl remaining{};
};

/// TTL-driven DNS cache with credibility ranks, TTL clamping, optional
/// NS-linked glue expiry, optional serve-stale, optional capacity bounds
/// with pluggable eviction, and deterministic snapshot/restore.
///
/// The index is an open-addressing hash table keyed on the Name's cached
/// 64-bit hash mixed with the record type — a probe is a couple of integer
/// compares plus one flat-buffer memcmp, where the previous std::map walked
/// a red-black tree doing label-by-label canonical comparisons at every
/// node.  Expiry is tracked lazily in a min-heap so purge_expired() costs
/// O(expired · log n) instead of a full O(entries) sweep.
///
/// Capacity: when config.max_entries > 0 the positive and negative tables
/// share one budget; any insert that pushes the combined population over
/// the limit evicts victims chosen by config.policy until it fits.  An
/// intrusive doubly-linked recency chain threaded through the table slots
/// makes the LRU victim O(1); the LFU walk starts at the cold end of that
/// chain and stops at the first frequency-1 entry, so on skewed workloads
/// it is near-O(1) too; TTL-aware victims come straight off the expiry
/// heaps.  The touch sequence a mutation performs is: bump the logical
/// clock, stamp the entry, move it to the chain head, apply the periodic
/// LFU halving, then enforce capacity — the differential oracle in
/// tests/cache_model_test.cc mirrors exactly this order.
///
/// The `link_glue_to_ns` knob reproduces the paper's §4.2 finding: for
/// in-bailiwick servers most resolvers tie the glue A record's lifetime to
/// the NS record and re-fetch both when the NS expires, even if the A's own
/// TTL has time left.
class Cache {
 public:
  struct Config {
    dns::Ttl max_ttl = dns::kTtl1Week;  ///< BIND default max-cache-ttl
    dns::Ttl min_ttl{};
    bool link_glue_to_ns = true;
    bool serve_stale = false;
    sim::Duration stale_window = 3 * sim::kDay;  ///< how long stale data lives
    /// When false, a live entry is kept even if equally-credible fresh data
    /// arrives (the "trust your cache to its TTL" style some resolvers show
    /// in §4.2: they keep a still-valid glue A past an NS refresh).
    bool replace_same_credibility = true;
    /// Parent-centric mode (§3): a live glue/referral entry is *not*
    /// overridden by child authoritative data; the parent's copy rules
    /// until it expires.
    bool prefer_parent_delegation = false;
    /// Combined positive+negative capacity; 0 = unbounded (the historical
    /// behavior — no eviction, no recency bookkeeping observable).
    std::size_t max_entries = 0;
    EvictionPolicy policy = EvictionPolicy::kLru;
    /// Every this-many clock ticks the LFU counters decay to max(1, f/2),
    /// so ancient popularity cannot pin an entry forever.  0 disables
    /// halving.  Only consulted when policy == kLfu.
    std::uint64_t lfu_halving_period = 1024;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t expired = 0;      ///< misses caused by TTL expiry
    std::uint64_t ns_linked_drops = 0;  ///< glue dropped due to expired NS
    // lint:allow(raw-time-param) event counter, not a time quantity
    std::uint64_t stale_serves = 0;
    /// RFC 8767 resurrections: an expired entry still inside its stale
    /// window replaced by fresh upstream data (the record "came back").
    std::uint64_t resurrections = 0;
    std::uint64_t inserts = 0;
    std::uint64_t downgrades_refused = 0;  ///< less-credible insert ignored
    /// Capacity-eviction accounting (max_entries > 0 only).
    std::uint64_t capacity_evictions = 0;  ///< total victims, either table
    std::uint64_t evicted_positive = 0;
    std::uint64_t evicted_negative = 0;
    /// Peak combined population observed at rest (after any eviction), so
    /// bounded caches report at most max_entries.
    std::uint64_t high_water = 0;
  };

  Cache() = default;
  explicit Cache(Config config) : config_(config) {}

  /// Inserts @p rrset observed at @p now with the given credibility.
  /// If @p linked_ns_owner is set, the entry is glue whose usability is tied
  /// to the liveness of that NS RRset (when config.link_glue_to_ns).
  /// Returns true if stored, false if refused by the credibility rule.
  bool insert(const dns::RRset& rrset, Credibility credibility, sim::Time now,
              std::optional<dns::Name> linked_ns_owner = std::nullopt);

  /// Caches a negative answer for (name, type) with TTL @p ttl.
  void insert_negative(const dns::Name& name, dns::RRType type,
                       dns::Rcode rcode, dns::Ttl ttl, sim::Time now);

  /// Looks up (name, type); counts down TTL; honours NS-glue links and
  /// serve-stale.  @p allow_stale lets the caller enable stale answers for
  /// this lookup only (resolvers serve stale only when upstream fails).
  std::optional<CacheHit> lookup(const dns::Name& name, dns::RRType type,
                                 sim::Time now, bool allow_stale = false);

  /// Peeks without touching statistics or recency state (analyzers/tests).
  std::optional<CacheHit> peek(const dns::Name& name, dns::RRType type,
                               sim::Time now) const;

  std::optional<NegativeHit> lookup_negative(const dns::Name& name,
                                             dns::RRType type, sim::Time now);

  /// Drops the (name, type) entry; returns true if present.
  bool evict(const dns::Name& name, dns::RRType type);

  /// Removes entries that expired before @p now (and past any stale window).
  std::size_t purge_expired(sim::Time now);

  void clear();
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t negative_size() const noexcept { return negatives_.size(); }
  const Stats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }
  /// The logical touch clock (test hook; every insert/hit advances it).
  std::uint64_t tick() const noexcept { return tick_; }

  /// Remaining TTL of an entry in whole seconds, or nullopt (test hook).
  std::optional<dns::Ttl> remaining_ttl(const dns::Name& name,
                                        dns::RRType type,
                                        sim::Time now) const;

  /// Human-readable dump of every live entry ("rndc dumpdb" style):
  /// one line per record with remaining TTL, credibility and link state.
  /// Ordering matches the historical std::map layout: canonical name order,
  /// then type.
  std::string dump(sim::Time now) const;

  /// Serializes the complete cache state — config, both tables, recency
  /// order, frequency counters, expiry deadlines and the logical clock —
  /// into a versioned, length-prefixed little-endian image ending in an
  /// FNV-1a checksum.  Canonical: equal states produce equal bytes, and
  /// snapshot(restore(image)) == image for every accepted image.  Runtime
  /// stats are deliberately excluded (they describe behavior, not state).
  std::vector<std::uint8_t> snapshot() const;

  /// Rebuilds the cache from @p image, replacing all current state and
  /// resetting stats.  Input is fully validated — magic, version, checksum,
  /// counts, canonical record/name encodings, TTL clamps, expiry
  /// arithmetic, recency ordering, capacity bound — and corrupt input
  /// throws SnapshotError leaving the cache unchanged.
  void restore(std::span<const std::uint8_t> image);

  /// Deep structural audit: probe-chain/tombstone agreement and live-entry
  /// accounting in both index tables, recency-chain <-> slot consistency
  /// and strict touch-order monotonicity, frequency-counter invariants,
  /// per-entry TTL-clamp and expiry arithmetic, stored-Name integrity,
  /// expiry-heap coverage of every indexed entry, and the capacity bound.
  /// Deliberately time-free: the resolver legitimately inserts on shifted
  /// virtual clocks during sub-resolutions, so mutation monotonicity is not
  /// a cache invariant (the purge deadline guarantee is asserted at the
  /// purge_expired boundary instead).  Throws check::AuditError on
  /// violation.  Compiled in every build; invoked automatically at mutation
  /// boundaries only when built with DNSTTL_AUDIT=ON.
  void validate() const;

 private:
  /// Sentinel slot index ("no slot" / chain end).
  static constexpr std::size_t kNil = static_cast<std::size_t>(-1);

  struct Entry {
    dns::RRset rrset;
    Credibility credibility = Credibility::kGlue;
    sim::Time inserted{};
    sim::Time expires{};
    dns::Ttl original_ttl{};
    std::optional<dns::Name> linked_ns_owner;
    /// Insert time of the NS entry this one rode in with.  If the NS RRset
    /// is later replaced (even by identical data), the link is considered
    /// broken: the address must be re-learned with the fresh delegation.
    sim::Time linked_ns_inserted{};
    /// Logical-clock value of the most recent touch (LRU/LFU recency).
    std::uint64_t last_touch = 0;
    /// Logical-clock value of the insert/refresh that created this entry
    /// instance; identifies the matching expiry-heap record.
    std::uint64_t stamp = 0;
    /// Saturating touch counter for LFU (>= 1 for every stored entry).
    std::uint8_t freq = 1;
  };
  struct NegativeEntry {
    dns::Rcode rcode = dns::Rcode::kNXDomain;
    sim::Time expires{};
    std::uint64_t last_touch = 0;
    std::uint64_t stamp = 0;
    std::uint8_t freq = 1;
  };

  /// Mixes the Name's cached hash with the record type into a table hash.
  static std::uint64_t key_hash(const dns::Name& name,
                                dns::RRType type) noexcept {
    std::uint64_t h =
        name.hash() ^ (static_cast<std::uint64_t>(type) * 0x9e3779b97f4a7c15ULL);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  /// Open-addressing hash table from (Name, RRType) to V with linear
  /// probing and tombstone deletion.  Keys carry their full 64-bit hash so
  /// probes compare integers before touching the Name bytes, and rehashing
  /// never recomputes a hash.
  ///
  /// A doubly-linked recency chain is threaded through the slots (parallel
  /// prev/next index arrays): head = most recently touched, tail = least.
  /// put() links/moves the slot to the head, erase() unlinks, grow()
  /// preserves the order across the rehash.  When the cache is unbounded
  /// the chain is maintained but never observed.
  template <typename V>
  class Table {
   public:
    struct Item {
      std::uint64_t hash = 0;
      dns::Name name;
      dns::RRType type{};
      V value{};
    };

    V* find(std::uint64_t hash, const dns::Name& name, dns::RRType type);
    const V* find(std::uint64_t hash, const dns::Name& name,
                  dns::RRType type) const;
    /// Slot of the live item for the key, or kNil.
    std::size_t find_slot(std::uint64_t hash, const dns::Name& name,
                          dns::RRType type) const;
    /// Inserts or overwrites, moving the slot to the chain head; returns
    /// the slot index.
    std::size_t put(std::uint64_t hash, const dns::Name& name, dns::RRType type,
                    V value);
    bool erase(std::uint64_t hash, const dns::Name& name, dns::RRType type);
    void clear();
    std::size_t size() const noexcept { return size_; }

    Item& at(std::size_t slot) noexcept { return items_[slot]; }
    const Item& at(std::size_t slot) const noexcept { return items_[slot]; }

    /// Recency chain access: head = most recent, tail = least recent.
    std::size_t head() const noexcept { return head_; }
    std::size_t tail() const noexcept { return tail_; }
    std::size_t more_recent(std::size_t slot) const noexcept {
      return chain_prev_[slot];
    }
    std::size_t less_recent(std::size_t slot) const noexcept {
      return chain_next_[slot];
    }
    /// Moves @p slot to the chain head (most recent).
    void touch(std::size_t slot);

    /// Structural audit of the open-addressing layout: control bytes vs
    /// live/used accounting, power-of-two capacity with a guaranteed empty
    /// slot, stored-hash agreement with key_hash, Name integrity,
    /// probe-chain reachability of every live item across tombstones, and
    /// recency-chain <-> slot consistency (every live slot on the chain
    /// exactly once, links symmetric, dead slots unlinked).
    void validate(const char* what) const;

    /// Invokes @p fn for every live item, in unspecified order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (ctrl_[i] == kFull) {
          fn(items_[i]);
        }
      }
    }

    /// Mutable variant (LFU halving), same unspecified order.
    template <typename Fn>
    void for_each_mut(Fn&& fn) {
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (ctrl_[i] == kFull) {
          fn(items_[i]);
        }
      }
    }

   private:
    enum : std::uint8_t { kEmpty = 0, kTombstone = 1, kFull = 2 };

    std::size_t probe(std::uint64_t hash, const dns::Name& name,
                      dns::RRType type, bool& found) const;
    void grow();
    void link_front(std::size_t slot);
    void link_back(std::size_t slot);
    void unlink(std::size_t slot);

    std::vector<std::uint8_t> ctrl_;
    std::vector<Item> items_;
    /// Intrusive recency chain, parallel to items_: toward the head (more
    /// recent) and toward the tail (less recent); kNil-terminated.
    std::vector<std::size_t> chain_prev_;
    std::vector<std::size_t> chain_next_;
    std::size_t head_ = kNil;
    std::size_t tail_ = kNil;
    std::size_t size_ = 0;  ///< live items
    std::size_t used_ = 0;  ///< live items + tombstones
  };

  /// One pending expiry deadline; stale records (entry refreshed, evicted
  /// or already purged) are skipped when popped.  The stamp ties a record
  /// to the exact entry instance that pushed it, and breaks ordering ties
  /// between equal deadlines so TTL-aware victim selection is
  /// deterministic.
  struct ExpiryRec {
    sim::Time at{};
    dns::Name name;
    dns::RRType type{};
    std::uint64_t stamp = 0;
  };
  struct LaterExpiry {
    bool operator()(const ExpiryRec& a, const ExpiryRec& b) const noexcept {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.stamp > b.stamp;
    }
  };
  /// priority_queue with audit access to the underlying container, so
  /// validate() can prove every indexed entry has expiry coverage.
  struct ExpiryHeap
      : std::priority_queue<ExpiryRec, std::vector<ExpiryRec>, LaterExpiry> {
    using priority_queue::priority_queue;
    const std::vector<ExpiryRec>& container() const noexcept { return c; }
  };

  dns::Ttl clamp_ttl(dns::Ttl ttl) const;
  bool entry_live(const Entry& entry, sim::Time now) const;
  /// True if the glue link invalidates @p entry at @p now.
  bool ns_link_broken(const Entry& entry, sim::Time now) const;
  /// Rebuilds @p heap from the live table when stale records dominate, so
  /// repeated refreshes of the same key cannot grow it without bound.
  template <typename V>
  static void compact_heap(ExpiryHeap& heap, const Table<V>& table);

  /// Advances the logical clock by one touch and returns the new value.
  std::uint64_t bump_tick() noexcept { return ++tick_; }
  /// Applies the periodic LFU decay if this tick lands on the period.
  void maybe_halve();
  /// Saturating frequency bump.
  static std::uint8_t bump_freq(std::uint8_t freq) noexcept {
    return freq < 255 ? static_cast<std::uint8_t>(freq + 1) : freq;
  }
  /// Evicts victims per config.policy until the combined population fits
  /// max_entries, then records the high-water mark.
  void enforce_capacity();
  void evict_one();

  Config config_;
  Stats stats_;
  Table<Entry> entries_;
  Table<NegativeEntry> negatives_;
  ExpiryHeap expiry_;
  ExpiryHeap negative_expiry_;
  /// Logical touch clock: unique, monotonically increasing stamp source for
  /// recency, frequency tie-breaks and expiry-record identity.
  std::uint64_t tick_ = 0;
};

}  // namespace dnsttl::cache

#endif  // DNSTTL_CACHE_CACHE_H
