// Deterministic cache snapshot/restore.
//
// Format (all integers little-endian, no padding):
//
//   u32  magic "dttl" (0x6c747464)
//   u16  version (1)
//   u16  reserved (must be 0)
//   u32  config.max_ttl seconds          u32  config.min_ttl seconds
//   u8   config flag bits (link_glue_to_ns=1, serve_stale=2,
//        replace_same_credibility=4, prefer_parent_delegation=8; others 0)
//   u8   config.policy                   i64  config.stale_window ticks
//   u64  config.max_entries              u64  config.lfu_halving_period
//   u64  tick (logical touch clock)
//   u64  positive count                  u64  negative count
//   positive entries, ascending last_touch (= recency chain tail -> head):
//     u64 last_touch  u64 stamp  u8 freq  u8 credibility
//     i64 inserted ticks  i64 expires ticks  u32 original_ttl seconds
//     u8 has_link [u16 owner length, owner presentation bytes,
//                  i64 linked_ns_inserted ticks]
//     u32 record blob length, blob = dns::encode(Message{answers: RRset})
//   negative entries, ascending last_touch:
//     u64 last_touch  u64 stamp  u8 freq  u8 rcode  i64 expires ticks
//     u16 name length, name presentation bytes  u16 rrtype
//   u64  FNV-1a 64 checksum of everything above
//
// The image is canonical: equal cache states serialize to equal bytes, and
// restore() rejects every non-canonical variation (non-minimal record
// encodings, reordered entries, unknown flag bits, trailing garbage), so
// snapshot(restore(image)) == image for every accepted image.  Rejection is
// the SnapshotError channel — hostile bytes are a documented error, never
// UB — and a full validate() pass seals the rebuilt structure before it
// replaces the live one.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "dns/message.h"
#include "dns/wire.h"

namespace dnsttl::cache {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x6c747464;  // "dttl"
constexpr std::uint16_t kSnapshotVersion = 1;
constexpr std::size_t kChecksumBytes = 8;

// Config flag bits.
constexpr std::uint8_t kFlagLinkGlue = 1u << 0;
constexpr std::uint8_t kFlagServeStale = 1u << 1;
constexpr std::uint8_t kFlagReplaceSame = 1u << 2;
constexpr std::uint8_t kFlagPreferParent = 1u << 3;
constexpr std::uint8_t kKnownFlags =
    kFlagLinkGlue | kFlagServeStale | kFlagReplaceSame | kFlagPreferParent;

/// Virtual-time bound accepted from a snapshot: far beyond any simulated
/// horizon but small enough that expiry/stale-window arithmetic on the
/// restored state can never overflow a signed 64-bit tick count.
constexpr std::int64_t kMaxTickMagnitude = std::int64_t{1} << 62;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_name(std::vector<std::uint8_t>& out, const dns::Name& name) {
  const std::string text = name.to_string();
  put_u16(out, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

/// Bounds-checked little-endian reader over the image body; every
/// truncation is a SnapshotError.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str(std::size_t n) {
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw SnapshotError("truncated snapshot");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// The one canonical wire image of an RRset: a default-header message whose
/// answer section is exactly the set's records.  Snapshot writes this;
/// restore re-derives it from the parsed records and rejects any input blob
/// that differs, so non-minimal or reordered encodings cannot survive a
/// round trip.
std::vector<std::uint8_t> encode_rrset_blob(const dns::RRset& rrset) {
  dns::Message message;
  message.answers = rrset.to_records();
  return dns::encode(message);
}

std::int64_t checked_ticks(std::int64_t ticks, const char* what) {
  if (ticks < -kMaxTickMagnitude || ticks > kMaxTickMagnitude) {
    throw SnapshotError(std::string(what) + " outside the accepted range");
  }
  return ticks;
}

dns::Name checked_name(const std::string& text, const char* what) {
  dns::Name name;
  try {
    name = dns::Name::from_string(text);
  } catch (const std::exception& e) {
    throw SnapshotError(std::string(what) + ": " + e.what());
  }
  if (name.to_string() != text) {
    throw SnapshotError(std::string(what) +
                        " is not in canonical presentation form");
  }
  return name;
}

}  // namespace

std::vector<std::uint8_t> Cache::snapshot() const {
  std::vector<std::uint8_t> out;
  put_u32(out, kSnapshotMagic);
  put_u16(out, kSnapshotVersion);
  put_u16(out, 0);  // reserved
  put_u32(out, config_.max_ttl.value());
  put_u32(out, config_.min_ttl.value());
  std::uint8_t flags = 0;
  if (config_.link_glue_to_ns) flags |= kFlagLinkGlue;
  if (config_.serve_stale) flags |= kFlagServeStale;
  if (config_.replace_same_credibility) flags |= kFlagReplaceSame;
  if (config_.prefer_parent_delegation) flags |= kFlagPreferParent;
  put_u8(out, flags);
  put_u8(out, static_cast<std::uint8_t>(config_.policy));
  put_i64(out, config_.stale_window.count());
  put_u64(out, static_cast<std::uint64_t>(config_.max_entries));
  put_u64(out, config_.lfu_halving_period);
  put_u64(out, tick_);
  put_u64(out, static_cast<std::uint64_t>(entries_.size()));
  put_u64(out, static_cast<std::uint64_t>(negatives_.size()));

  // Recency chain tail -> head = ascending last_touch: the canonical entry
  // order, and exactly the order restore() re-inserts to rebuild the chain.
  for (std::size_t i = entries_.tail(); i != kNil; i = entries_.more_recent(i)) {
    const Table<Entry>::Item& item = entries_.at(i);
    const Entry& entry = item.value;
    put_u64(out, entry.last_touch);
    put_u64(out, entry.stamp);
    put_u8(out, entry.freq);
    put_u8(out, static_cast<std::uint8_t>(entry.credibility));
    put_i64(out, entry.inserted.ticks());
    put_i64(out, entry.expires.ticks());
    put_u32(out, entry.original_ttl.value());
    if (entry.linked_ns_owner) {
      put_u8(out, 1);
      put_name(out, *entry.linked_ns_owner);
      put_i64(out, entry.linked_ns_inserted.ticks());
    } else {
      put_u8(out, 0);
    }
    const std::vector<std::uint8_t> blob = encode_rrset_blob(entry.rrset);
    put_u32(out, static_cast<std::uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  for (std::size_t i = negatives_.tail(); i != kNil;
       i = negatives_.more_recent(i)) {
    const Table<NegativeEntry>::Item& item = negatives_.at(i);
    const NegativeEntry& entry = item.value;
    put_u64(out, entry.last_touch);
    put_u64(out, entry.stamp);
    put_u8(out, entry.freq);
    put_u8(out, static_cast<std::uint8_t>(entry.rcode));
    put_i64(out, entry.expires.ticks());
    put_name(out, item.name);
    put_u16(out, static_cast<std::uint16_t>(item.type));
  }

  put_u64(out, fnv1a(out));
  return out;
}

void Cache::restore(std::span<const std::uint8_t> image) {
  if (image.size() < kChecksumBytes) {
    throw SnapshotError("snapshot shorter than its checksum");
  }
  const std::size_t body_size = image.size() - kChecksumBytes;
  Reader trailer(image.subspan(body_size));
  // Whole-image integrity first: any bit flip anywhere is caught here
  // before field-level parsing begins.
  if (trailer.u64() != fnv1a(image.first(body_size))) {
    throw SnapshotError("snapshot checksum mismatch");
  }

  Reader in(image.first(body_size));
  if (in.u32() != kSnapshotMagic) {
    throw SnapshotError("bad snapshot magic");
  }
  if (in.u16() != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version");
  }
  if (in.u16() != 0) {
    throw SnapshotError("reserved snapshot field not zero");
  }

  Cache fresh;
  const std::uint32_t max_ttl = in.u32();
  const std::uint32_t min_ttl = in.u32();
  if (max_ttl > dns::kMaxTtlSeconds || min_ttl > dns::kMaxTtlSeconds) {
    throw SnapshotError("config TTL clamp outside the RFC 2181 range");
  }
  fresh.config_.max_ttl = dns::Ttl{max_ttl};
  fresh.config_.min_ttl = dns::Ttl{min_ttl};
  const std::uint8_t flags = in.u8();
  if ((flags & ~kKnownFlags) != 0) {
    throw SnapshotError("unknown config flag bits");
  }
  fresh.config_.link_glue_to_ns = (flags & kFlagLinkGlue) != 0;
  fresh.config_.serve_stale = (flags & kFlagServeStale) != 0;
  fresh.config_.replace_same_credibility = (flags & kFlagReplaceSame) != 0;
  fresh.config_.prefer_parent_delegation = (flags & kFlagPreferParent) != 0;
  const std::uint8_t policy = in.u8();
  if (policy > static_cast<std::uint8_t>(EvictionPolicy::kTtlAware)) {
    throw SnapshotError("unknown eviction policy");
  }
  fresh.config_.policy = static_cast<EvictionPolicy>(policy);
  const std::int64_t stale_window = in.i64();
  if (stale_window < 0 || stale_window > kMaxTickMagnitude) {
    throw SnapshotError("stale window outside the accepted range");
  }
  fresh.config_.stale_window = sim::Duration{stale_window};
  fresh.config_.max_entries = static_cast<std::size_t>(in.u64());
  fresh.config_.lfu_halving_period = in.u64();
  fresh.tick_ = in.u64();

  const std::uint64_t positive_count = in.u64();
  const std::uint64_t negative_count = in.u64();
  if (fresh.config_.max_entries != 0 &&
      positive_count + negative_count > fresh.config_.max_entries) {
    throw SnapshotError("entry counts exceed the configured capacity");
  }

  std::uint64_t previous_touch = 0;
  bool first = true;
  for (std::uint64_t k = 0; k < positive_count; ++k) {
    Entry entry;
    entry.last_touch = in.u64();
    entry.stamp = in.u64();
    entry.freq = in.u8();
    const std::uint8_t credibility = in.u8();
    const std::int64_t inserted = checked_ticks(in.i64(), "insert time");
    const std::int64_t expires = checked_ticks(in.i64(), "expiry time");
    const std::uint32_t original_ttl = in.u32();
    if (!first && entry.last_touch <= previous_touch) {
      throw SnapshotError("positive entries out of touch order");
    }
    previous_touch = entry.last_touch;
    first = false;
    if (entry.last_touch > fresh.tick_ || entry.stamp > entry.last_touch) {
      throw SnapshotError("entry touch/stamp ahead of the snapshot clock");
    }
    if (entry.freq == 0) {
      throw SnapshotError("stored entry with zero frequency");
    }
    if (credibility < static_cast<std::uint8_t>(Credibility::kAdditional) ||
        credibility > static_cast<std::uint8_t>(Credibility::kAuthAnswer)) {
      throw SnapshotError("credibility rank out of range");
    }
    entry.credibility = static_cast<Credibility>(credibility);
    if (original_ttl > dns::kMaxTtlSeconds) {
      throw SnapshotError("original TTL outside the RFC 2181 range");
    }
    entry.original_ttl = dns::Ttl{original_ttl};
    entry.inserted = sim::SimTime{inserted};
    entry.expires = sim::SimTime{expires};
    const std::uint8_t has_link = in.u8();
    if (has_link > 1) {
      throw SnapshotError("link flag must be 0 or 1");
    }
    if (has_link == 1) {
      const std::size_t owner_len = in.u16();
      entry.linked_ns_owner =
          checked_name(in.str(owner_len), "linked NS owner name");
      entry.linked_ns_inserted =
          sim::SimTime{checked_ticks(in.i64(), "linked NS insert time")};
    }
    const std::size_t blob_len = in.u32();
    const std::span<const std::uint8_t> blob = in.bytes(blob_len);
    dns::Message message;
    try {
      message = dns::decode(blob);
      entry.rrset = dns::RRset::from_records(message.answers);
    } catch (const std::exception& e) {
      throw SnapshotError(std::string("record blob rejected: ") + e.what());
    }
    // Canonicity: the blob must be byte-for-byte what snapshot() would emit
    // for this RRset (default header, answers only, compressed encoding).
    const std::vector<std::uint8_t> canonical = encode_rrset_blob(entry.rrset);
    if (blob.size() != canonical.size() ||
        !std::equal(blob.begin(), blob.end(), canonical.begin())) {
      throw SnapshotError("record blob is not in canonical encoding");
    }
    if (fresh.clamp_ttl(entry.original_ttl) != entry.rrset.ttl()) {
      throw SnapshotError("cached TTL disagrees with the clamped original");
    }
    if (expires - inserted !=
        static_cast<std::int64_t>(entry.rrset.ttl().value()) *
            sim::kSecond.count()) {
      throw SnapshotError("expiry arithmetic broken in snapshot entry");
    }
    // By value: `entry` is moved into the table before the heap push below.
    const dns::Name name = entry.rrset.name();
    const dns::RRType type = entry.rrset.type();
    const std::uint64_t hash = key_hash(name, type);
    if (fresh.entries_.find(hash, name, type) != nullptr) {
      throw SnapshotError("duplicate positive entry for " + name.to_string());
    }
    const sim::Time entry_expires = entry.expires;
    const std::uint64_t stamp = entry.stamp;
    fresh.entries_.put(hash, name, type, std::move(entry));
    fresh.expiry_.push(ExpiryRec{entry_expires, name, type, stamp});
  }

  previous_touch = 0;
  first = true;
  for (std::uint64_t k = 0; k < negative_count; ++k) {
    NegativeEntry entry;
    entry.last_touch = in.u64();
    entry.stamp = in.u64();
    entry.freq = in.u8();
    entry.rcode = static_cast<dns::Rcode>(in.u8());
    entry.expires = sim::SimTime{checked_ticks(in.i64(), "negative expiry")};
    if (!first && entry.last_touch <= previous_touch) {
      throw SnapshotError("negative entries out of touch order");
    }
    previous_touch = entry.last_touch;
    first = false;
    if (entry.last_touch > fresh.tick_ || entry.stamp > entry.last_touch) {
      throw SnapshotError("entry touch/stamp ahead of the snapshot clock");
    }
    if (entry.freq == 0) {
      throw SnapshotError("stored entry with zero frequency");
    }
    const std::size_t name_len = in.u16();
    const dns::Name name = checked_name(in.str(name_len), "negative name");
    const dns::RRType type = static_cast<dns::RRType>(in.u16());
    const std::uint64_t hash = key_hash(name, type);
    if (fresh.negatives_.find(hash, name, type) != nullptr) {
      throw SnapshotError("duplicate negative entry for " + name.to_string());
    }
    const sim::Time entry_expires = entry.expires;
    const std::uint64_t stamp = entry.stamp;
    fresh.negatives_.put(hash, name, type, entry);
    fresh.negative_expiry_.push(ExpiryRec{entry_expires, name, type, stamp});
  }

  if (!in.exhausted()) {
    throw SnapshotError("trailing bytes after the last snapshot entry");
  }

  // Runtime stats describe behavior, not state: reset, then seed the
  // high-water mark with the restored population.
  fresh.stats_ = Stats{};
  fresh.stats_.high_water =
      static_cast<std::uint64_t>(fresh.entries_.size() +
                                 fresh.negatives_.size());

  // Structural seal: the rebuilt tables, chains and heaps must pass the
  // full deep audit before they replace the live state.
  try {
    fresh.validate();
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("restored state failed validation: ") +
                        e.what());
  }
  *this = std::move(fresh);
}

}  // namespace dnsttl::cache
