#include "core/hit_rate_model.h"

#include <cmath>

namespace dnsttl::core {

double poisson_hit_rate(double arrivals_per_second, dns::Ttl ttl) {
  if (arrivals_per_second <= 0.0 || ttl == dns::Ttl{}) {
    return 0.0;
  }
  double lambda_t = arrivals_per_second * static_cast<double>(ttl.value());
  return lambda_t / (1.0 + lambda_t);
}

double periodic_hit_rate(double period_s, dns::Ttl ttl) {
  if (period_s <= 0.0 || ttl == dns::Ttl{} ||
      period_s > static_cast<double>(ttl.value())) {
    return 0.0;
  }
  double per_window =
      std::floor(static_cast<double>(ttl.value()) / period_s) + 1.0;
  return (per_window - 1.0) / per_window;
}

double authoritative_rate(double arrivals_per_second, dns::Ttl ttl) {
  if (arrivals_per_second <= 0.0) {
    return 0.0;
  }
  return arrivals_per_second /
         (1.0 + arrivals_per_second * static_cast<double>(ttl.value()));
}

dns::Ttl ttl_for_hit_rate(double arrivals_per_second,
                          double target_hit_rate) {
  if (arrivals_per_second <= 0.0 || target_hit_rate >= 1.0) {
    return dns::kMaxTtl;
  }
  if (target_hit_rate <= 0.0) {
    return dns::Ttl{};
  }
  double ttl = target_hit_rate /
               (arrivals_per_second * (1.0 - target_hit_rate));
  if (ttl >= static_cast<double>(dns::kMaxTtlSeconds)) {
    return dns::kMaxTtl;
  }
  return dns::Ttl::of_seconds(static_cast<std::int64_t>(std::ceil(ttl)));
}

}  // namespace dnsttl::core
