#include "core/outage_experiment.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "dns/rr.h"
#include "par/pool.h"
#include "resolver/config.h"
#include "resolver/recursive_resolver.h"

namespace dnsttl::core {

namespace {

/// The child nameserver ident World::add_tld registers ("<ns>.<tld>.").
constexpr const char* kChildServer = "ns.example.";

/// Infrastructure (delegation NS + glue) TTL: long enough that the
/// delegation never expires inside the horizon, so the sweep isolates the
/// *record* TTL.
constexpr dns::Ttl kInfraTtl{7 * 24 * 3600};

long long whole_seconds(sim::Duration d) {
  return static_cast<long long>(d.count() / sim::kSecond.count());
}

}  // namespace

OutagePointResult run_outage_point(const OutageConfig& config, dns::Ttl ttl,
                                   bool serve_stale) {
  World::Options options;
  options.seed = config.seed;
  options.loss_rate = config.loss_rate;
  World world(options);

  const net::Location site{};
  auto zone = world.add_tld("example", "ns", kInfraTtl, kInfraTtl, kInfraTtl,
                            site);
  const auto qname = dns::Name::from_string("www.example");
  zone->add(dns::make_a(qname, ttl, dns::Ipv4(192, 0, 2, 10)));

  resolver::ResolverConfig rconfig = resolver::child_centric_config();
  rconfig.serve_stale = serve_stale;
  resolver::RecursiveResolver resolver("res", rconfig, world.network(),
                                       world.hints());
  resolver.set_node_ref(
      net::NodeRef{world.network().attach(resolver, site), site});

  fault::FaultSchedule schedule;
  fault::FaultEvent window;
  window.start = sim::at(config.outage_start);
  window.end = sim::at(config.outage_start + config.outage_duration);
  window.kind = config.window_kind;
  window.target = world.address_of(kChildServer);
  window.rate = config.window_rate;
  window.factor = config.window_factor;
  window.extra = config.window_extra;
  schedule.add(window);
  world.network().set_fault_schedule(&schedule);

  OutagePointResult result;
  result.ttl = ttl;
  result.serve_stale = serve_stale;

  const dns::Question question{qname, dns::RRType::kA, dns::RClass::kIN};
  for (sim::Duration t{}; t < config.horizon; t += config.query_interval) {
    const auto outcome = resolver.resolve(question, sim::at(t));
    const bool ok = outcome.response.flags.rcode == dns::Rcode::kNoError &&
                    !outcome.response.answers.empty();
    ++result.queries;
    if (ok) {
      ++result.answered;
    } else {
      ++result.failed;
    }
    if (outcome.served_stale) {
      ++result.stale_answers;
    }
    if (config.outage_start <= t &&
        t < config.outage_start + config.outage_duration) {
      ++result.window_queries;
      if (!ok) {
        ++result.window_failed;
      }
      if (outcome.served_stale) {
        ++result.window_stale;
      }
    }
  }

  result.auth_queries = world.server(kChildServer).queries_answered();
  result.resurrections = resolver.cache().stats().resurrections;
  result.backoffs = resolver.stats().backoffs;
  const net::Network::FaultStats& faults = world.network().fault_stats();
  result.outage_timeouts = faults.outage_timeouts;
  result.injected_faults = faults.outage_timeouts + faults.injected_losses +
                           faults.injected_rcodes +
                           faults.injected_truncations +
                           faults.lame_responses + faults.latency_spikes;
  return result;
}

OutageResult run_outage_experiment(const OutageConfig& config,
                                   std::size_t jobs) {
  struct Point {
    dns::Ttl ttl;
    bool serve_stale;
  };
  std::vector<Point> grid;
  for (bool stale : config.serve_stale_variants) {
    for (dns::Ttl ttl : config.ttls) {
      grid.push_back(Point{ttl, stale});
    }
  }

  OutageResult result;
  result.config = config;
  result.points = par::map_shards(grid.size(), jobs, [&](std::size_t i) {
    return run_outage_point(config, grid[i].ttl, grid[i].serve_stale);
  });
  return result;
}

std::string OutageResult::render() const {
  std::string out;
  char line[256];
  const auto kind = fault::to_string(config.window_kind);
  std::snprintf(line, sizeof line,
                "fault window: %.*s %llds..%llds (horizon %llds, query every "
                "%llds)\n",
                static_cast<int>(kind.size()), kind.data(),
                whole_seconds(config.outage_start),
                whole_seconds(config.outage_start + config.outage_duration),
                whole_seconds(config.horizon),
                whole_seconds(config.query_interval));
  out += line;
  std::snprintf(line, sizeof line,
                "%8s %6s %8s %8s %6s %6s %8s %8s %7s %7s %8s %7s\n", "ttl",
                "stale", "queries", "ok", "fail", "sstale", "win_fail",
                "win_stale", "auth_q", "resurr", "backoff", "faults");
  out += line;
  for (const OutagePointResult& p : points) {
    std::snprintf(
        line, sizeof line,
        "%8u %6s %8llu %8llu %6llu %6llu %8llu %9llu %7llu %7llu %8llu "
        "%7llu\n",
        p.ttl.value(), p.serve_stale ? "on" : "off",
        static_cast<unsigned long long>(p.queries),
        static_cast<unsigned long long>(p.answered),
        static_cast<unsigned long long>(p.failed),
        static_cast<unsigned long long>(p.stale_answers),
        static_cast<unsigned long long>(p.window_failed),
        static_cast<unsigned long long>(p.window_stale),
        static_cast<unsigned long long>(p.auth_queries),
        static_cast<unsigned long long>(p.resurrections),
        static_cast<unsigned long long>(p.backoffs),
        static_cast<unsigned long long>(p.injected_faults));
    out += line;
  }
  return out;
}

}  // namespace dnsttl::core
