#ifndef DNSTTL_CORE_EFFECTIVE_TTL_H
#define DNSTTL_CORE_EFFECTIVE_TTL_H

#include <string>

#include "dns/types.h"
#include "resolver/config.h"

namespace dnsttl::core {

/// How a zone's delegation is laid out — the knobs an operator actually
/// controls and the paper's §4 distinguishes.
struct DelegationLayout {
  dns::Ttl parent_ns_ttl = dns::kTtl2Days;   ///< NS TTL in the parent zone
  dns::Ttl child_ns_ttl = dns::kTtl1Hour;    ///< NS TTL at the child apex
  dns::Ttl parent_glue_ttl = dns::kTtl2Days; ///< glue A TTL in the parent
  dns::Ttl child_a_ttl = dns::kTtl1Hour;     ///< NS address TTL in the child
  bool in_bailiwick = true;  ///< nameserver names under the zone itself
};

/// What effectively controls caching for one (layout, resolver policy)
/// combination: the paper's central question, answered analytically.
struct EffectiveTtl {
  dns::Ttl ns_ttl{};       ///< effective NS cache lifetime (seconds)
  dns::Ttl address_ttl{};  ///< effective NS-address cache lifetime
  bool parent_controls_ns = false;
  bool parent_controls_address = false;
  /// Address lifetime shortened by NS expiry (the §4.2 linkage)?
  bool address_linked_to_ns = false;
  std::string explanation;  ///< human-readable reasoning chain
};

/// Computes which TTL wins for a resolver with @p config resolving through
/// @p layout.  Mirrors (and is validated against) the simulator's observed
/// behavior; used by the advisor and the Table 1 bench.
EffectiveTtl effective_ttl(const DelegationLayout& layout,
                           const resolver::ResolverConfig& config);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_EFFECTIVE_TTL_H
