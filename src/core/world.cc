#include "core/world.h"

#include <stdexcept>

namespace dnsttl::core {

World::World(Options options)
    : rng_(options.seed),
      network_(rng_.fork(0xfeed),
               net::LatencyModel{options.latency},
               net::Network::Params{options.loss_rate, 3 * sim::kSecond}) {
  root_zone_ = std::make_shared<dns::Zone>(dns::Name{});
  root_zone_->add(dns::make_soa(
      dns::Name{}, dns::Ttl{86400}, dns::Name::from_string("a.root-servers.net"), 1));

  struct RootSpec {
    const char* name;
    net::Region region;
  };
  const RootSpec roots[] = {
      {"a.root-servers.net", net::Region::kNA},
      {"k.root-servers.net", net::Region::kEU},
      {"m.root-servers.net", net::Region::kAS},
  };
  for (const auto& spec : roots) {
    auto name = dns::Name::from_string(spec.name);
    auto& server = add_server(spec.name, net::Location{spec.region, 1.0});
    server.add_zone(root_zone_);
    net::Address address = address_of(spec.name);
    root_zone_->add(dns::make_ns(dns::Name{}, dns::Ttl{518400}, name));
    root_zone_->add(dns::make_a(name, dns::Ttl{518400}, address));
    hints_.servers.push_back({name, address});
  }
}

auth::AuthServer& World::add_server(const std::string& ident,
                                    net::Location location,
                                    std::optional<net::Address> fixed) {
  if (servers_.contains(ident)) {
    throw std::invalid_argument("server ident already used: " + ident);
  }
  auto server = std::make_unique<auth::AuthServer>(ident);
  net::Address address = network_.attach(*server, location, fixed);
  auto& ref = *server;
  servers_.emplace(ident, std::move(server));
  addresses_.emplace(ident, address);
  return ref;
}

auth::AuthServer& World::server(const std::string& ident) {
  auto it = servers_.find(ident);
  if (it == servers_.end()) {
    throw std::out_of_range("unknown server: " + ident);
  }
  return *it->second;
}

net::Address World::address_of(const std::string& ident) const {
  auto it = addresses_.find(ident);
  if (it == addresses_.end()) {
    throw std::out_of_range("unknown server: " + ident);
  }
  return it->second;
}

net::Address World::add_anycast_service(
    const std::string& prefix, std::shared_ptr<dns::Zone> zone,
    const std::vector<net::Location>& sites, bool logging) {
  if (sites.empty()) {
    throw std::invalid_argument("anycast service needs at least one site");
  }
  std::vector<std::pair<net::DnsNode*, net::Location>> attachments;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::string ident = prefix + "-" + std::to_string(i);
    if (servers_.contains(ident)) {
      throw std::invalid_argument("server ident already used: " + ident);
    }
    auto server = std::make_unique<auth::AuthServer>(ident);
    server->add_zone(zone);
    server->set_logging(logging);
    attachments.emplace_back(server.get(), sites[i]);
    servers_.emplace(ident, std::move(server));
  }
  net::Address address = network_.attach_anycast(attachments);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    addresses_.emplace(prefix + "-" + std::to_string(i), address);
  }
  return address;
}

std::shared_ptr<dns::Zone> World::create_zone(const std::string& origin,
                                              dns::Ttl soa_ttl) {
  auto name = dns::Name::from_string(origin);
  auto zone = std::make_shared<dns::Zone>(name);
  zone->add(dns::make_soa(name, soa_ttl, name.prepend("ns1"), 1));
  return zone;
}

void World::delegate(
    dns::Zone& parent, const dns::Name& child,
    const std::vector<std::pair<dns::Name, net::Address>>& servers,
    dns::Ttl ns_ttl, dns::Ttl glue_ttl) {
  for (const auto& [ns_name, address] : servers) {
    parent.add(dns::make_ns(child, ns_ttl, ns_name));
    if (ns_name.in_bailiwick_of(child)) {
      parent.add(dns::make_a(ns_name, glue_ttl, address));
    }
  }
}

std::shared_ptr<dns::Zone> World::add_tld(const std::string& tld,
                                          const std::string& ns_label,
                                          dns::Ttl parent_ttl,
                                          dns::Ttl child_ns_ttl,
                                          dns::Ttl child_a_ttl,
                                          net::Location location) {
  auto origin = dns::Name::from_string(tld);
  auto ns_name = dns::Name::from_string(ns_label + "." + tld);

  auto zone = create_zone(tld, child_ns_ttl);
  auto& server = add_server(ns_name.to_string(), location);
  server.add_zone(zone);
  net::Address address = address_of(ns_name.to_string());

  zone->add(dns::make_ns(origin, child_ns_ttl, ns_name));
  zone->add(dns::make_a(ns_name, child_a_ttl, address));

  delegate(*root_zone_, origin, {{ns_name, address}}, parent_ttl, parent_ttl);
  return zone;
}

}  // namespace dnsttl::core
