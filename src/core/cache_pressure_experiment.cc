#include "core/cache_pressure_experiment.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "par/pool.h"
#include "sim/rng.h"

namespace dnsttl::core {

namespace {

/// RNG stream id for the demand generator; every grid point forks the same
/// stream from the same seed, so all points see one identical workload and
/// differ only in cache configuration.
constexpr std::uint64_t kDemandStream = 0x6361'6368'6500'0001ULL;

/// One synthetic client query.
struct Demand {
  std::size_t idx = 0;       ///< catalog index of the qname
  bool negative = false;     ///< AAAA probe of a name with no AAAA data
  sim::Time at{};
};

/// Deterministic Pareto-popular demand generator with exponential
/// inter-arrival gaps.  The catalog index distribution is heavy-headed:
/// index 0 is the hottest name, the tail is cold — the shape that makes
/// LRU/LFU behave differently.
class DemandStream {
 public:
  DemandStream(std::uint64_t seed, std::size_t names, double alpha,
               double negative_share, sim::Duration mean_gap)
      : rng_(sim::Rng(seed).fork(kDemandStream)),
        names_(names),
        alpha_(alpha),
        negative_share_(negative_share),
        mean_gap_us_(static_cast<double>(mean_gap.count())) {}

  Demand next() {
    const auto gap = static_cast<std::int64_t>(rng_.exponential(mean_gap_us_));
    clock_ = clock_ + sim::Duration{std::max<std::int64_t>(1, gap)};
    const double rank = rng_.pareto(1.0, alpha_);
    const double capped = std::min(rank, static_cast<double>(names_));
    Demand d;
    d.idx = std::min(names_ - 1, static_cast<std::size_t>(capped - 1.0));
    d.negative = rng_.chance(negative_share_);
    d.at = clock_;
    return d;
  }

 private:
  sim::Rng rng_;
  std::size_t names_;
  double alpha_;
  double negative_share_;
  double mean_gap_us_;
  sim::Time clock_{};
};

std::vector<dns::Name> build_catalog(std::size_t names) {
  std::vector<dns::Name> catalog;
  catalog.reserve(names);
  for (std::size_t i = 0; i < names; ++i) {
    catalog.push_back(
        dns::Name::from_string("n" + std::to_string(i) + ".example"));
  }
  return catalog;
}

dns::RRset make_answer(const dns::Name& name, dns::Ttl ttl, std::size_t idx) {
  dns::RRset set(name, dns::RClass::kIN, ttl);
  set.add(dns::ARdata{dns::Ipv4(10, static_cast<std::uint8_t>(idx >> 16),
                                static_cast<std::uint8_t>(idx >> 8),
                                static_cast<std::uint8_t>(idx))});
  return set;
}

/// Drives @p cache with @p count queries from @p demand; counts hits and
/// misses (a miss inserts fresh data, modeling one authoritative fetch).
struct DriveTally {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t negative_misses = 0;
};

DriveTally drive(cache::Cache& cache, DemandStream& demand,
                 const std::vector<dns::Name>& catalog, dns::Ttl ttl,
                 std::uint64_t count, std::uint64_t purge_every) {
  DriveTally tally;
  for (std::uint64_t q = 0; q < count; ++q) {
    const Demand d = demand.next();
    if (purge_every != 0 && (q + 1) % purge_every == 0) {
      cache.purge_expired(d.at);
    }
    const dns::Name& name = catalog[d.idx];
    if (d.negative) {
      if (cache.lookup_negative(name, dns::RRType::kAAAA, d.at)) {
        ++tally.negative_hits;
      } else {
        ++tally.negative_misses;
        cache.insert_negative(name, dns::RRType::kAAAA,
                              dns::Rcode::kNXDomain, ttl, d.at);
      }
    } else {
      if (cache.lookup(name, dns::RRType::kA, d.at)) {
        ++tally.hits;
      } else {
        ++tally.misses;
        cache.insert(make_answer(name, ttl, d.idx),
                     cache::Credibility::kAuthAnswer, d.at);
      }
    }
  }
  return tally;
}

cache::Cache::Config make_cache_config(std::size_t max_entries,
                                       cache::EvictionPolicy policy) {
  cache::Cache::Config config;
  config.max_ttl = dns::kTtl1Week;  // no clamp: the sweep sets record TTLs
  config.max_entries = max_entries;
  config.policy = policy;
  return config;
}

}  // namespace

CachePressurePoint run_cache_pressure_point(const CachePressureConfig& config,
                                            dns::Ttl ttl,
                                            std::size_t max_entries,
                                            cache::EvictionPolicy policy) {
  cache::Cache cache(make_cache_config(max_entries, policy));
  const std::vector<dns::Name> catalog = build_catalog(config.names);
  DemandStream demand(config.seed, config.names, config.alpha,
                      config.negative_share, config.mean_gap);

  CachePressurePoint point;
  point.ttl = ttl;
  point.max_entries = max_entries;
  point.policy = policy;
  point.queries = config.queries;

  const DriveTally tally = drive(cache, demand, catalog, ttl, config.queries,
                                 config.purge_every);
  point.hits = tally.hits;
  point.misses = tally.misses;
  point.negative_hits = tally.negative_hits;
  point.negative_misses = tally.negative_misses;

  const cache::Cache::Stats& stats = cache.stats();
  point.evictions = stats.capacity_evictions;
  point.evicted_positive = stats.evicted_positive;
  point.evicted_negative = stats.evicted_negative;
  point.expired = stats.expired;
  point.high_water = stats.high_water;
  point.resident =
      static_cast<std::uint64_t>(cache.size() + cache.negative_size());
  return point;
}

CacheRestartPoint run_cache_restart_point(const CachePressureConfig& config,
                                          cache::EvictionPolicy policy) {
  // Longest TTL, smallest capacity: the restart question is only
  // interesting when eviction was active while the cache warmed.
  const dns::Ttl ttl = config.ttls.back();
  const std::size_t max_entries = config.capacities.front();
  const std::vector<dns::Name> catalog = build_catalog(config.names);
  const cache::Cache::Config cache_config =
      make_cache_config(max_entries, policy);

  // Warm a cache, then freeze it: the restart image.
  cache::Cache warmed(cache_config);
  DemandStream demand(config.seed, config.names, config.alpha,
                      config.negative_share, config.mean_gap);
  drive(warmed, demand, catalog, ttl, config.warm_queries,
        config.purge_every);
  const std::vector<std::uint8_t> image = warmed.snapshot();

  // Pre-generate the measurement stream (continuing the warmup clock) so
  // warm and cold replay byte-identical demand.
  std::vector<Demand> measured;
  measured.reserve(config.warm_queries);
  for (std::uint64_t q = 0; q < config.warm_queries; ++q) {
    measured.push_back(demand.next());
  }

  const auto replay = [&](cache::Cache& cache) {
    DriveTally tally;
    for (const Demand& d : measured) {
      const dns::Name& name = catalog[d.idx];
      if (d.negative) {
        if (cache.lookup_negative(name, dns::RRType::kAAAA, d.at)) {
          ++tally.negative_hits;
        } else {
          ++tally.negative_misses;
          cache.insert_negative(name, dns::RRType::kAAAA,
                                dns::Rcode::kNXDomain, ttl, d.at);
        }
      } else {
        if (cache.lookup(name, dns::RRType::kA, d.at)) {
          ++tally.hits;
        } else {
          ++tally.misses;
          cache.insert(make_answer(name, ttl, d.idx),
                       cache::Credibility::kAuthAnswer, d.at);
        }
      }
    }
    return tally;
  };

  CacheRestartPoint point;
  point.policy = policy;
  point.snapshot_bytes = static_cast<std::uint64_t>(image.size());

  cache::Cache warm;
  warm.restore(image);
  point.restored =
      static_cast<std::uint64_t>(warm.size() + warm.negative_size());
  const DriveTally warm_tally = replay(warm);
  point.warm_hits = warm_tally.hits + warm_tally.negative_hits;
  point.warm_auth = warm_tally.misses + warm_tally.negative_misses;

  cache::Cache cold(cache_config);
  const DriveTally cold_tally = replay(cold);
  point.cold_hits = cold_tally.hits + cold_tally.negative_hits;
  point.cold_auth = cold_tally.misses + cold_tally.negative_misses;
  return point;
}

CachePressureResult run_cache_pressure_experiment(
    const CachePressureConfig& config, std::size_t jobs) {
  struct GridPoint {
    dns::Ttl ttl;
    std::size_t max_entries;
    cache::EvictionPolicy policy;
  };
  std::vector<GridPoint> grid;
  for (cache::EvictionPolicy policy : config.policies) {
    for (std::size_t max_entries : config.capacities) {
      for (dns::Ttl ttl : config.ttls) {
        grid.push_back(GridPoint{ttl, max_entries, policy});
      }
    }
  }

  CachePressureResult result;
  result.config = config;
  result.points = par::map_shards(grid.size(), jobs, [&](std::size_t i) {
    return run_cache_pressure_point(config, grid[i].ttl, grid[i].max_entries,
                                    grid[i].policy);
  });
  result.restarts =
      par::map_shards(config.policies.size(), jobs, [&](std::size_t i) {
        return run_cache_restart_point(config, config.policies[i]);
      });
  return result;
}

std::string CachePressureResult::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "cache pressure: catalog=%llu queries=%llu purge_every=%llu "
                "seed=%llu\n",
                static_cast<unsigned long long>(config.names),
                static_cast<unsigned long long>(config.queries),
                static_cast<unsigned long long>(config.purge_every),
                static_cast<unsigned long long>(config.seed));
  out += line;
  std::snprintf(line, sizeof line,
                "%6s %6s %10s %8s %8s %8s %8s %8s %8s %7s %7s %8s %8s\n",
                "ttl", "cap", "policy", "queries", "hits", "miss", "neg_hit",
                "neg_mis", "evict", "ev_pos", "ev_neg", "hiwater", "resid");
  out += line;
  for (const CachePressurePoint& p : points) {
    const auto policy = cache::to_string(p.policy);
    std::snprintf(line, sizeof line,
                  "%6u %6llu %10.*s %8llu %8llu %8llu %8llu %8llu %8llu "
                  "%7llu %7llu %8llu %8llu\n",
                  p.ttl.value(),
                  static_cast<unsigned long long>(p.max_entries),
                  static_cast<int>(policy.size()), policy.data(),
                  static_cast<unsigned long long>(p.queries),
                  static_cast<unsigned long long>(p.hits),
                  static_cast<unsigned long long>(p.misses),
                  static_cast<unsigned long long>(p.negative_hits),
                  static_cast<unsigned long long>(p.negative_misses),
                  static_cast<unsigned long long>(p.evictions),
                  static_cast<unsigned long long>(p.evicted_positive),
                  static_cast<unsigned long long>(p.evicted_negative),
                  static_cast<unsigned long long>(p.high_water),
                  static_cast<unsigned long long>(p.resident));
    out += line;
  }
  if (!restarts.empty()) {
    const dns::Ttl ttl = config.ttls.back();
    const std::size_t cap = config.capacities.front();
    std::snprintf(line, sizeof line,
                  "warm vs cold restart: ttl=%u cap=%llu warmup=%llu "
                  "measured=%llu\n",
                  ttl.value(), static_cast<unsigned long long>(cap),
                  static_cast<unsigned long long>(config.warm_queries),
                  static_cast<unsigned long long>(config.warm_queries));
    out += line;
    std::snprintf(line, sizeof line, "%10s %10s %9s %9s %9s %9s %10s\n",
                  "policy", "snap_byte", "restored", "warm_hit", "warm_auth",
                  "cold_hit", "cold_auth");
    out += line;
    for (const CacheRestartPoint& p : restarts) {
      const auto policy = cache::to_string(p.policy);
      std::snprintf(line, sizeof line,
                    "%10.*s %10llu %9llu %9llu %9llu %9llu %10llu\n",
                    static_cast<int>(policy.size()), policy.data(),
                    static_cast<unsigned long long>(p.snapshot_bytes),
                    static_cast<unsigned long long>(p.restored),
                    static_cast<unsigned long long>(p.warm_hits),
                    static_cast<unsigned long long>(p.warm_auth),
                    static_cast<unsigned long long>(p.cold_hits),
                    static_cast<unsigned long long>(p.cold_auth));
      out += line;
    }
  }
  return out;
}

}  // namespace dnsttl::core
