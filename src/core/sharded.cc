#include "core/sharded.h"

#include <utility>

#include "par/pool.h"

namespace dnsttl::core {

EnvFactory make_env_factory(World::Options options, atlas::PlatformSpec spec) {
  return [options, spec] {
    ShardEnv env;
    env.world = std::make_unique<World>(options);
    env.platform = std::make_unique<atlas::Platform>(atlas::Platform::build(
        env.world->network(), env.world->hints(), env.world->root_zone(), spec,
        env.world->rng()));
    return env;
  };
}

std::vector<atlas::MeasurementRun> run_sharded_script(
    const EnvFactory& factory, std::size_t shard_count, std::size_t jobs,
    const ShardScript& script) {
  auto per_shard =
      par::map_shards(shard_count, jobs, [&](std::size_t shard) {
        ShardEnv env = factory();
        return script(env, shard, shard_count);
      });
  if (per_shard.empty()) {
    return {};
  }

  const std::size_t phases = per_shard.front().size();
  std::vector<atlas::MeasurementRun> merged;
  merged.reserve(phases);
  for (std::size_t phase = 0; phase < phases; ++phase) {
    std::vector<atlas::MeasurementRun> shard_runs;
    shard_runs.reserve(per_shard.size());
    for (auto& runs : per_shard) {
      shard_runs.push_back(std::move(runs[phase]));
    }
    auto spec = shard_runs.front().spec();
    merged.push_back(
        atlas::MeasurementRun::merge(std::move(spec), std::move(shard_runs)));
  }
  return merged;
}

BailiwickResult run_bailiwick_sharded(const EnvFactory& factory,
                                      const BailiwickConfig& config,
                                      std::size_t shard_count,
                                      std::size_t jobs) {
  auto shards = par::map_shards(shard_count, jobs, [&](std::size_t shard) {
    ShardEnv env = factory();
    BailiwickConfig shard_config = config;
    shard_config.shard_count = shard_count;
    shard_config.shard_index = shard;
    return run_bailiwick(*env.world, *env.platform, shard_config);
  });

  if (shards.size() == 1) {
    return std::move(shards.front());
  }

  auto spec = shards.front().run.spec();
  std::vector<atlas::MeasurementRun> runs;
  runs.reserve(shards.size());
  for (auto& shard : shards) {
    runs.push_back(std::move(shard.run));
  }
  BailiwickResult merged{
      atlas::MeasurementRun::merge(std::move(spec), std::move(runs)),
      stats::BinnedSeries{10 * sim::kMinute},
      {}};
  for (auto& shard : shards) {
    merged.series.merge(shard.series);
    for (auto& [key, vp] : shard.vps) {
      merged.vps.emplace(key, std::move(vp));
    }
  }
  return merged;
}

std::vector<ControlledTtlResult> run_controlled_ttl_set(
    const EnvFactory& factory, const std::vector<ControlledTtlConfig>& configs,
    std::size_t jobs) {
  return par::map_shards(configs.size(), jobs, [&](std::size_t index) {
    ShardEnv env = factory();
    return run_controlled_ttl(*env.world, *env.platform, configs[index]);
  });
}

}  // namespace dnsttl::core
