#ifndef DNSTTL_CORE_BAILIWICK_EXPERIMENT_H
#define DNSTTL_CORE_BAILIWICK_EXPERIMENT_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "atlas/measurement.h"
#include "atlas/platform.h"
#include "core/world.h"
#include "stats/timeseries.h"

namespace dnsttl::core {

/// Configuration of the §4 renumbering experiments on sub.cachetest.net.
struct BailiwickConfig {
  bool in_bailiwick = true;  ///< ns inside the served zone vs out of it
  dns::Ttl ns_ttl = dns::kTtl1Hour;
  dns::Ttl a_ttl = dns::kTtl2Hours;
  dns::Ttl answer_ttl = dns::Ttl{60};  ///< TTL of the probed AAAA records
  sim::Duration renumber_at = 9 * sim::kMinute;
  sim::Duration frequency = 600 * sim::kSecond;
  sim::Duration duration = 4 * sim::kHour;

  /// VP shard to run (see atlas::MeasurementSpec sharding); the defaults
  /// keep the historical single-shard behavior.
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
};

/// Per-VP behavior over the run.  A VP is keyed by (probe id, resolver
/// slot) so the same key identifies the same VP across the in- and
/// out-of-bailiwick experiments (§4.5's matched-VP analysis).
struct VpBehavior {
  int probe_id = 0;
  int slot = 0;
  net::Address resolver;
  std::size_t responses = 0;
  std::size_t old_responses = 0;
  std::size_t new_responses = 0;
  bool answered_first_round = false;
  std::optional<double> first_new_minute;

  double new_ratio() const {
    return responses == 0
               ? 0.0
               : static_cast<double>(new_responses) /
                     static_cast<double>(responses);
  }
  /// The paper's sticky definition (§4.4): present from the first round and
  /// never leaves the original server.
  bool sticky() const {
    return answered_first_round && responses > 1 && new_responses == 0;
  }
};

struct BailiwickResult {
  atlas::MeasurementRun run;
  /// Responses per 10-minute bin from the original vs the renumbered
  /// server (Figures 6 and 7).
  stats::BinnedSeries series{10 * sim::kMinute};
  std::map<std::pair<int, int>, VpBehavior> vps;

  std::size_t sticky_vp_count() const;
  /// Resolver addresses used by sticky VPs (Table 4's resolver row).
  std::size_t sticky_resolver_count() const;
  /// Fraction of first-round VPs that had switched to the new server by
  /// @p minute (the "90% refresh at the NS expiry" headline).
  double switched_fraction_by(double minute) const;
};

/// Builds the cachetest.net testbed inside @p world, runs the renumbering
/// measurement on @p platform, and classifies every VP.
///
/// In-bailiwick: sub.cachetest.net served by ns3.sub.cachetest.net, with
/// NS/A TTLs equal in parent and child.  Out-of-bailiwick: served by
/// ns1.zurroundeddu.com (its own self-hosted zone under .com).  At
/// renumber_at, a second server with changed answers comes up at a new
/// address and every parent/child pointer moves to it; the old server keeps
/// running with the old data, so sticky/parent-centric resolvers keep
/// receiving old answers — exactly the paper's setup.
BailiwickResult run_bailiwick(World& world, atlas::Platform& platform,
                              const BailiwickConfig& config);

/// Old/new answer markers (AAAA rdata) used for classification.
extern const char* const kOldAnswer;
extern const char* const kNewAnswer;

/// §4.4's sticky-resolver table and §4.5's matched-VP figure: behavior of
/// out-of-bailiwick-sticky VPs in the in-bailiwick run.
std::vector<double> matched_vp_new_ratios(const BailiwickResult& in_bailiwick,
                                          const BailiwickResult& out_bailiwick);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_BAILIWICK_EXPERIMENT_H
