#ifndef DNSTTL_CORE_LATENCY_EXPERIMENT_H
#define DNSTTL_CORE_LATENCY_EXPERIMENT_H

#include <cstdint>
#include <string>

#include "atlas/measurement.h"
#include "atlas/platform.h"
#include "core/world.h"

namespace dnsttl::core {

/// The §6.2 controlled experiment: a test domain
/// (mapache-de-madrid.co) served from EC2 Frankfurt either unicast or via a
/// 45-site anycast cloud, probed by every VP with unique or shared query
/// names under short or long TTLs.
struct ControlledTtlConfig {
  std::string name;            ///< e.g. "TTL60-u"
  dns::Ttl answer_ttl = dns::Ttl{60};    ///< TTL of the probed AAAA records
  bool unique_qnames = true;   ///< PROBEID names vs one shared name
  std::string shared_label = "1";  ///< label for the shared-name variants
  bool anycast = false;        ///< Route53-style 45-site anycast
  std::size_t anycast_sites = 45;
  sim::Duration frequency = 600 * sim::kSecond;
  sim::Duration duration = 1 * sim::kHour;
};

struct ControlledTtlResult {
  atlas::MeasurementRun run;
  std::uint64_t auth_queries = 0;     ///< queries arriving at the service
  std::size_t auth_unique_ips = 0;    ///< distinct resolver sources seen
  double median_rtt_ms = 0.0;
};

/// Stands up the test domain inside @p world (idempotent per World) and
/// runs one configuration.  Query/traffic counters are read from the
/// authoritative query logs, mirroring Table 10's two halves.
ControlledTtlResult run_controlled_ttl(World& world, atlas::Platform& platform,
                                       const ControlledTtlConfig& config);

/// The §5.3 natural experiment: the .uy zone must already exist in the
/// world (World::add_tld), probed with NS queries; returns the RTT
/// distribution (Figure 10).  Change the child NS TTL between runs to
/// reproduce the before/after comparison.  shard_count/shard_index select a
/// VP shard (atlas::MeasurementSpec sharding); the defaults keep the
/// historical single-shard behavior.
atlas::MeasurementRun run_uy_rtt(World& world, atlas::Platform& platform,
                                 sim::Time start,
                                 sim::Duration duration = 2 * sim::kHour,
                                 std::size_t shard_count = 1,
                                 std::size_t shard_index = 0);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_LATENCY_EXPERIMENT_H
