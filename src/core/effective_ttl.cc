#include "core/effective_ttl.h"

#include <algorithm>

namespace dnsttl::core {

EffectiveTtl effective_ttl(const DelegationLayout& layout,
                           const resolver::ResolverConfig& config) {
  EffectiveTtl result;
  auto clamp = [&config](dns::Ttl ttl) {
    return std::clamp(ttl, config.min_ttl, config.max_ttl);
  };

  if (config.sticky) {
    // Sticky resolvers ignore TTLs outright once a server answered.
    result.ns_ttl = dns::kMaxTtl;
    result.address_ttl = dns::kMaxTtl;
    result.explanation =
        "sticky resolver: first responsive server is pinned; configured "
        "TTLs have no effect";
    return result;
  }

  const bool parent = config.centricity ==
                      resolver::Centricity::kParentCentric;
  if (parent) {
    // Parent-centric: referral NS + glue rule until they expire.  With a
    // local root mirror the parent copy never even decays (always fresh).
    result.parent_controls_ns = true;
    result.ns_ttl = clamp(layout.parent_ns_ttl);
    if (layout.in_bailiwick) {
      result.parent_controls_address = true;
      result.address_ttl = clamp(layout.parent_glue_ttl);
    } else {
      // No glue exists; even a parent-centric resolver must take the
      // address from whoever is authoritative for the NS name.
      result.address_ttl = clamp(layout.child_a_ttl);
    }
    result.explanation =
        "parent-centric: the delegation copy (NS " +
        std::to_string(result.ns_ttl.value()) + " s" +
        (result.parent_controls_address
             ? ", glue " + std::to_string(result.address_ttl.value()) + " s"
             : "") +
        ") rules; child changes invisible until parent data expires";
    if (config.local_root) {
      result.explanation +=
          "; local root mirror keeps the parent copy permanently fresh";
    }
    return result;
  }

  // Child-centric: the authoritative (child) copies win.
  result.ns_ttl = clamp(layout.child_ns_ttl);
  result.address_ttl = clamp(layout.child_a_ttl);
  if (layout.in_bailiwick && config.link_glue_to_ns) {
    // §4.2: in-bailiwick address lifetime is tied to the NS RRset.
    if (result.ns_ttl < result.address_ttl) {
      result.address_ttl = result.ns_ttl;
      result.address_linked_to_ns = true;
    }
    result.explanation =
        "child-centric, in-bailiwick: child TTLs rule and the address "
        "expires with the NS RRset (effective address TTL " +
        std::to_string(result.address_ttl.value()) + " s)";
  } else {
    result.explanation =
        layout.in_bailiwick
            ? "child-centric, unlinked cache: child TTLs rule, address "
              "trusted to its own TTL"
            : "child-centric, out-of-bailiwick: NS and address cached "
              "independently at their own child TTLs";
  }
  return result;
}

}  // namespace dnsttl::core
