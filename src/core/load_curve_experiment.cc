#include "core/load_curve_experiment.h"

#include <cmath>
#include <cstdio>

#include "check/audit.h"
#include "core/hit_rate_model.h"
#include "par/pool.h"
#include "sim/rng.h"
#include "sim/timer_wheel.h"

namespace dnsttl::core {
namespace {

constexpr std::uint64_t kNlStream = 0x10adc0;
constexpr std::uint64_t kStubStream = 0x10adc1;

/// Per-shard accumulator for one phase: measured authoritative queries per
/// TTL point, the TTL-independent client-query count, and the model
/// prediction per TTL (per-cache closed form, summed in cache order so the
/// double total is independent of job count).
struct ShardTally {
  std::vector<std::uint64_t> auth;       ///< per config.ttls index
  std::vector<double> predicted;         ///< per config.ttls index
  std::uint64_t client_queries = 0;

  explicit ShardTally(std::size_t ttl_count)
      : auth(ttl_count, 0), predicted(ttl_count, 0.0) {}
};

/// Draws one actor's demand rate in queries/day: Pareto across the
/// population, capped (the §5 calibration shape).  Must be the actor's
/// FIRST draw so the rate is a pure function of its forked stream.
double draw_per_day(sim::Rng& rng, double xm, double alpha, double cap) {
  const double per_day = rng.pareto(xm, alpha);
  return per_day < cap ? per_day : cap;
}

/// Phase 1: independent per-resolver caches.  Each resolver's arrival
/// stream is strictly increasing, so the TTL sweep is a scalar walk — no
/// global event order is needed when caches do not interact.
ShardTally run_nl_shard(const LoadCurveConfig& config, std::size_t shard,
                        std::size_t shards, const sim::Rng& nl_rng) {
  ShardTally tally(config.ttls.size());
  const double horizon_s = sim::to_seconds(config.nl_duration);
  std::vector<sim::Time> expiry(config.ttls.size());
  for (std::size_t r = shard; r < config.nl_resolver_count; r += shards) {
    sim::Rng actor = nl_rng.fork(r);
    const double per_day =
        draw_per_day(actor, config.nl_demand_xm_per_day,
                     config.nl_demand_alpha, config.nl_demand_cap_per_day);
    const double mean_gap_s = 86400.0 / per_day;
    const double lambda = per_day / 86400.0;
    for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
      expiry[ti] = sim::Time{};
      tally.predicted[ti] +=
          authoritative_rate(lambda, config.ttls[ti]) * horizon_s;
    }
    sim::Time at{};
    for (;;) {
      at = at + sim::approx_seconds(actor.exponential(mean_gap_s));
      if (at >= sim::at(config.nl_duration)) {
        break;
      }
      ++tally.client_queries;
      for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
        if (at >= expiry[ti]) {
          ++tally.auth[ti];
          expiry[ti] = at + sim::seconds(config.ttls[ti].value());
        }
      }
    }
  }
  return tally;
}

/// Phase 2: stubs share resolver caches, so arrivals at one cache must be
/// replayed in global time order.  The shard owns every resolver with
/// r % shards == shard plus all of their stubs (stub -> resolver is
/// s % resolver_count, so cache sharing never crosses a shard), and drives
/// them as a structure-of-arrays pool through one cohort timer wheel: one
/// pending arrival per stub, payload = pool index.
ShardTally run_stub_shard(const LoadCurveConfig& config, std::size_t shard,
                          std::size_t shards, const sim::Rng& stub_rng) {
  ShardTally tally(config.ttls.size());
  const double horizon_s = sim::to_seconds(config.stub_duration);
  const sim::Time end = sim::at(config.stub_duration);
  const std::size_t resolver_count = config.stub_resolver_count;

  // SoA stub pool, filled resolver-major (so per-cache demand sums and the
  // wheel's initial seq order are fixed by the workload, not the machine).
  std::vector<sim::Rng> rngs;
  std::vector<double> mean_gap_s;
  std::vector<std::uint32_t> cache_index;  ///< shard-local resolver slot
  std::vector<double> cache_lambda;
  sim::TimerWheel wheel;
  std::uint64_t next_seq = 0;

  for (std::size_t r = shard; r < resolver_count; r += shards) {
    const auto local = static_cast<std::uint32_t>(cache_lambda.size());
    cache_lambda.push_back(0.0);
    for (std::size_t s = r; s < config.stub_count; s += resolver_count) {
      sim::Rng actor = stub_rng.fork(s);
      const double per_day = draw_per_day(
          actor, config.stub_demand_xm_per_day, config.stub_demand_alpha,
          config.stub_demand_cap_per_day);
      cache_lambda[local] += per_day / 86400.0;
      const double gap = actor.exponential(86400.0 / per_day);
      const sim::Time first = sim::Time{} + sim::approx_seconds(gap);
      if (first < end) {
        wheel.schedule(first, next_seq++,
                       static_cast<std::uint64_t>(rngs.size()));
      }
      rngs.push_back(actor);
      mean_gap_s.push_back(86400.0 / per_day);
      cache_index.push_back(local);
    }
  }
  for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
    for (double lambda : cache_lambda) {
      tally.predicted[ti] +=
          authoritative_rate(lambda, config.ttls[ti]) * horizon_s;
    }
  }

  // Replay: per-cache expiry per TTL point, one wheel pop per arrival.
  std::vector<sim::Time> expiry(config.ttls.size() * cache_lambda.size(),
                                sim::Time{});
  std::uint64_t pops_since_audit = 0;
  while (!wheel.empty()) {
    const sim::TimerWheel::Entry entry = wheel.pop_head();
    const auto stub = static_cast<std::size_t>(entry.payload);
    DNSTTL_AUDIT_CHECK("core::LoadCurveExperiment", stub < rngs.size(),
                       "fired entry references an orphaned stub index");
    ++tally.client_queries;
    const std::size_t base =
        static_cast<std::size_t>(cache_index[stub]) * config.ttls.size();
    for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
      if (entry.at >= expiry[base + ti]) {
        ++tally.auth[ti];
        expiry[base + ti] =
            entry.at + sim::seconds(config.ttls[ti].value());
      }
    }
    const sim::Time next =
        entry.at + sim::approx_seconds(rngs[stub].exponential(
                       mean_gap_s[stub]));
    if (next < end) {
      wheel.schedule(next, next_seq++, entry.payload);
    }
    if constexpr (check::kAuditEnabled) {
      if (++pops_since_audit >= 4096) {
        pops_since_audit = 0;
        wheel.validate();
      }
    }
  }
  return tally;
}

/// Folds per-shard tallies strictly in shard order.
void fold(const LoadCurveConfig& config, std::vector<ShardTally> tallies,
          std::uint64_t& client_queries,
          std::vector<std::uint64_t>& auth_out,
          std::vector<std::uint64_t>& predicted_out) {
  std::vector<double> predicted(config.ttls.size(), 0.0);
  for (const ShardTally& tally : tallies) {
    client_queries += tally.client_queries;
    for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
      auth_out[ti] += tally.auth[ti];
      predicted[ti] += tally.predicted[ti];
    }
  }
  for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
    predicted_out[ti] =
        static_cast<std::uint64_t>(std::llround(predicted[ti]));
  }
}

}  // namespace

void LoadCurveConfig::apply_scale(double scale) {
  auto scaled = [scale](std::size_t n, std::size_t floor_at) {
    const auto s = static_cast<std::size_t>(static_cast<double>(n) * scale);
    return s < floor_at ? floor_at : s;
  };
  nl_resolver_count = scaled(nl_resolver_count, 200);
  stub_count = scaled(stub_count, 1000);
  stub_resolver_count = scaled(stub_resolver_count, 20);
}

LoadCurveResult run_load_curve_experiment(const LoadCurveConfig& config,
                                          std::size_t jobs) {
  LoadCurveResult result;
  result.config = config;
  result.points.resize(config.ttls.size());
  for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
    result.points[ti].ttl = config.ttls[ti];
  }

  sim::Rng root(config.seed);
  const sim::Rng nl_rng = root.fork(kNlStream);
  const sim::Rng stub_rng = root.fork(kStubStream);

  {
    const std::size_t shards = par::shard_count_for(config.nl_resolver_count);
    auto tallies = par::map_shards(shards, jobs, [&](std::size_t shard) {
      return run_nl_shard(config, shard, shards, nl_rng);
    });
    std::vector<std::uint64_t> auth(config.ttls.size(), 0);
    std::vector<std::uint64_t> predicted(config.ttls.size(), 0);
    fold(config, std::move(tallies), result.nl_client_queries, auth,
         predicted);
    for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
      result.points[ti].nl_auth_queries = auth[ti];
      result.points[ti].nl_predicted_queries = predicted[ti];
    }
  }
  {
    const std::size_t shards =
        par::shard_count_for(config.stub_resolver_count);
    auto tallies = par::map_shards(shards, jobs, [&](std::size_t shard) {
      return run_stub_shard(config, shard, shards, stub_rng);
    });
    std::vector<std::uint64_t> auth(config.ttls.size(), 0);
    std::vector<std::uint64_t> predicted(config.ttls.size(), 0);
    fold(config, std::move(tallies), result.stub_client_queries, auth,
         predicted);
    for (std::size_t ti = 0; ti < config.ttls.size(); ++ti) {
      result.points[ti].stub_auth_queries = auth[ti];
      result.points[ti].stub_predicted_queries = predicted[ti];
    }
  }
  return result;
}

namespace {

long long whole_seconds(sim::Duration d) {
  return static_cast<long long>(d / sim::kSecond);
}

/// Signed per-mille model error from two integer counts (no float in the
/// rendered bytes).
long long err_permille(std::uint64_t measured, std::uint64_t predicted) {
  if (predicted == 0) {
    return 0;
  }
  const auto m = static_cast<long long>(measured);
  const auto p = static_cast<long long>(predicted);
  return (1000 * (m - p) + (m >= p ? p / 2 : -(p / 2))) / p;
}

}  // namespace

std::string LoadCurveResult::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                ".nl passive: %zu resolvers, %llds horizon, %llu client "
                "queries\n",
                config.nl_resolver_count, whole_seconds(config.nl_duration),
                static_cast<unsigned long long>(nl_client_queries));
  out += line;
  std::snprintf(line, sizeof line,
                "atlas stubs: %zu stubs via %zu caches, %llds horizon, "
                "%llu client queries\n",
                config.stub_count, config.stub_resolver_count,
                whole_seconds(config.stub_duration),
                static_cast<unsigned long long>(stub_client_queries));
  out += line;
  std::snprintf(line, sizeof line, "%8s %10s %10s %6s %10s %10s %6s\n",
                "ttl", "nl_auth", "nl_pred", "err%o", "stub_auth",
                "stub_pred", "err%o");
  out += line;
  for (const LoadCurvePointResult& p : points) {
    std::snprintf(line, sizeof line,
                  "%8u %10llu %10llu %+6lld %10llu %10llu %+6lld\n",
                  p.ttl.value(),
                  static_cast<unsigned long long>(p.nl_auth_queries),
                  static_cast<unsigned long long>(p.nl_predicted_queries),
                  err_permille(p.nl_auth_queries, p.nl_predicted_queries),
                  static_cast<unsigned long long>(p.stub_auth_queries),
                  static_cast<unsigned long long>(p.stub_predicted_queries),
                  err_permille(p.stub_auth_queries,
                               p.stub_predicted_queries));
    out += line;
  }
  return out;
}

}  // namespace dnsttl::core
