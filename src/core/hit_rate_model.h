#ifndef DNSTTL_CORE_HIT_RATE_MODEL_H
#define DNSTTL_CORE_HIT_RATE_MODEL_H

#include "dns/types.h"

namespace dnsttl::core {

/// Analytic TTL-cache models from the paper's related work (§7):
/// Jung et al. modeled DNS caches as renewal processes and showed that
/// TTLs beyond ~1000 s capture most of the attainable hit rate; Moura et
/// al. measured ~70% hit rates for TTLs of 1800-86400 s.  These functions
/// give the closed forms the simulator is validated against
/// (bench_ablation_hitrate).

/// Steady-state hit rate of a single cache fed by Poisson(λ) lookups for
/// one record with TTL T: each miss starts a TTL window; the expected
/// number of queries per window is 1 + λT, of which one is a miss:
///   hit_rate = λT / (1 + λT).
double poisson_hit_rate(double arrivals_per_second, dns::Ttl ttl);

/// Hit rate for a strictly periodic client (one query every `period_s`):
/// one miss per ⌊T/p⌋+1 queries while p <= T, zero hits otherwise.
double periodic_hit_rate(double period_s, dns::Ttl ttl);

/// Authoritative query rate (per second) implied by Poisson(λ) client
/// demand through one cache: miss rate = λ / (1 + λT).
double authoritative_rate(double arrivals_per_second, dns::Ttl ttl);

/// The TTL needed to reach a target hit rate under Poisson(λ):
///   T = h / (λ (1 - h)).  Returns kMaxTtl when unreachable.
dns::Ttl ttl_for_hit_rate(double arrivals_per_second, double target_hit_rate);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_HIT_RATE_MODEL_H
