#ifndef DNSTTL_CORE_OUTAGE_EXPERIMENT_H
#define DNSTTL_CORE_OUTAGE_EXPERIMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.h"
#include "fault/schedule.h"

namespace dnsttl::core {

/// The resilience experiment the paper's §7 discussion (and the Dyn-outage
/// motivation in §1) asks for: how does record TTL trade user-visible
/// failure against authoritative query load when the authoritative side
/// goes dark for a while?  A grid of (TTL, serve-stale) points, each run in
/// its own private World with one scripted fault window over the zone's
/// only nameserver, probed by a single resolver on a fixed query cadence.
struct OutageConfig {
  /// Record TTLs to sweep — the paper's interesting span runs from
  /// CDN-style 60 s up past the Google-cap plateau.
  std::vector<dns::Ttl> ttls = {dns::Ttl{60}, dns::Ttl{300}, dns::Ttl{3600},
                                dns::Ttl{21600}};
  /// RFC 8767 variants to compare at every TTL.
  std::vector<bool> serve_stale_variants = {false, true};

  sim::Duration horizon = 2 * sim::kHour;        ///< total probing span
  sim::Duration outage_start = 30 * sim::kMinute;  ///< window offset
  sim::Duration outage_duration = 1 * sim::kHour;  ///< window length
  sim::Duration query_interval = 10 * sim::kSecond;

  /// What the window does to the child nameserver: kOutage for the classic
  /// dead-server story; kLoss/kLatency/kServfail/kLame etc. reuse the same
  /// harness for the other failure modes.
  fault::FaultKind window_kind = fault::FaultKind::kOutage;
  double window_rate = 1.0;    ///< kLoss windows
  double window_factor = 1.0;  ///< kLatency windows
  sim::Duration window_extra{};  ///< kLatency additive delay

  std::uint64_t seed = 1;
  double loss_rate = 0.0;  ///< background network loss outside the window
};

/// Outcome of one (TTL, serve-stale) grid point.
struct OutagePointResult {
  dns::Ttl ttl{};
  bool serve_stale = false;

  std::uint64_t queries = 0;   ///< client queries issued over the horizon
  std::uint64_t answered = 0;  ///< NOERROR with a non-empty answer section
  std::uint64_t failed = 0;    ///< everything else (SERVFAIL, empty)
  // lint:allow(raw-time-param) event counter, not a time quantity
  std::uint64_t stale_answers = 0;  ///< answers served past expiry

  std::uint64_t window_queries = 0;  ///< of which, inside the fault window:
  std::uint64_t window_failed = 0;
  // lint:allow(raw-time-param) event counter, not a time quantity
  std::uint64_t window_stale = 0;

  std::uint64_t auth_queries = 0;   ///< load on the child nameserver
  std::uint64_t resurrections = 0;  ///< RFC 8767 expired-entry refreshes
  std::uint64_t backoffs = 0;       ///< servers benched by the resolver
  // lint:allow(raw-time-param) event counter, not a time quantity
  std::uint64_t outage_timeouts = 0;  ///< exchanges killed by kOutage
  std::uint64_t injected_faults = 0;  ///< all fault-layer interventions
};

/// The full grid plus its canonical rendering.
struct OutageResult {
  OutageConfig config;
  std::vector<OutagePointResult> points;  ///< serve-stale major, TTL minor

  /// Fixed-format integer table — the byte-identical golden output that
  /// the chaos regression tier compares across --jobs values and build
  /// trees.  Deliberately free of floats and timing.
  std::string render() const;
};

/// Runs one grid point in a fresh private World (deterministic: the result
/// is a pure function of config + the point).
OutagePointResult run_outage_point(const OutageConfig& config, dns::Ttl ttl,
                                   bool serve_stale);

/// Runs the whole grid, up to @p jobs points concurrently.  Each point owns
/// its World, so the merged result is byte-identical at any job count.
OutageResult run_outage_experiment(const OutageConfig& config,
                                   std::size_t jobs);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_OUTAGE_EXPERIMENT_H
