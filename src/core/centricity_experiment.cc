#include "core/centricity_experiment.h"

#include "stats/table.h"

namespace dnsttl::core {

std::string CentricityResult::summary() const {
  return stats::fmt(
      "valid=%zu  <=child: %.1f%%  >child: %.1f%%  full-parent: %.1f%%  "
      "capped-21599: %.1f%%",
      run.valid_count(), 100.0 * at_most_child, 100.0 * above_child,
      100.0 * exact_full_parent, 100.0 * capped_21599);
}

CentricityResult run_centricity(World& world, atlas::Platform& platform,
                                const CentricitySetup& setup) {
  atlas::MeasurementSpec spec;
  spec.name = setup.name;
  spec.qname = setup.qname;
  spec.qtype = setup.qtype;
  spec.frequency = setup.frequency;
  spec.duration = setup.duration;
  spec.start = setup.start;
  spec.shard_count = setup.shard_count;
  spec.shard_index = setup.shard_index;

  return classify_centricity(
      atlas::MeasurementRun::execute(world.simulation(), world.network(),
                                     platform, spec, world.rng()),
      setup);
}

CentricityResult classify_centricity(atlas::MeasurementRun run,
                                     const CentricitySetup& setup) {
  CentricityResult result{std::move(run), 0.0, 0.0, 0.0, 0.0};

  auto cdf = result.run.ttl_cdf();
  if (!cdf.empty()) {
    result.at_most_child =
        cdf.fraction_at_most(static_cast<double>(setup.child_ttl.value()));
    result.above_child = 1.0 - result.at_most_child;
    result.exact_full_parent =
        cdf.fraction_equal(static_cast<double>(setup.parent_ttl.value()));
    result.capped_21599 = cdf.fraction_equal(21599.0);
  }
  return result;
}

}  // namespace dnsttl::core
