#ifndef DNSTTL_CORE_WORLD_H
#define DNSTTL_CORE_WORLD_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/auth_server.h"
#include "dns/zone.h"
#include "net/network.h"
#include "resolver/root_hints.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace dnsttl::core {

/// A self-contained simulated Internet: event loop, network, RNG, a root
/// zone served by three root servers, and helpers to stand up TLDs and
/// lower zones with independently chosen parent/child TTLs — the raw
/// material of every experiment in the paper.
class World {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double loss_rate = 0.002;
    net::LatencyModel::Params latency = {};
  };

  World() : World(Options{}) {}
  explicit World(Options options);

  sim::Simulation& simulation() noexcept { return simulation_; }
  net::Network& network() noexcept { return network_; }
  sim::Rng& rng() noexcept { return rng_; }

  const std::shared_ptr<dns::Zone>& root_zone() const noexcept {
    return root_zone_;
  }
  const resolver::RootHints& hints() const noexcept { return hints_; }

  /// Creates and attaches an authoritative server.  The server is owned by
  /// the World and addressable by its ident.
  auth::AuthServer& add_server(const std::string& ident, net::Location location,
                               std::optional<net::Address> fixed = std::nullopt);

  auth::AuthServer& server(const std::string& ident);
  net::Address address_of(const std::string& ident) const;
  bool has_server(const std::string& ident) const {
    return servers_.contains(ident);
  }

  /// Creates an anycast service of @p sites replicas (idents
  /// "<prefix>-<i>"), all serving @p zone, behind one shared address.
  /// Query logs of the replicas can be read via server("<prefix>-<i>").
  net::Address add_anycast_service(const std::string& prefix,
                                   std::shared_ptr<dns::Zone> zone,
                                   const std::vector<net::Location>& sites,
                                   bool logging = false);

  /// Creates an empty zone with a SOA record (TTL = @p soa_ttl).
  std::shared_ptr<dns::Zone> create_zone(const std::string& origin,
                                         dns::Ttl soa_ttl = dns::Ttl{3600});

  /// Adds a delegation for @p child into @p parent: NS records with
  /// @p ns_ttl, plus glue A records with @p glue_ttl for every nameserver
  /// name that is in bailiwick of the child (out-of-bailiwick names get no
  /// glue, per RFC rules).
  void delegate(dns::Zone& parent, const dns::Name& child,
                const std::vector<std::pair<dns::Name, net::Address>>& servers,
                dns::Ttl ns_ttl, dns::Ttl glue_ttl);

  /// Convenience: builds a complete TLD — child zone with apex NS
  /// (@p child_ns_ttl) and nameserver A records (@p child_a_ttl), one
  /// authoritative server in @p location serving it, and the root-side
  /// delegation with @p parent_ttl NS/glue.  Returns the child zone.
  std::shared_ptr<dns::Zone> add_tld(const std::string& tld,
                                     const std::string& ns_label,
                                     dns::Ttl parent_ttl,
                                     dns::Ttl child_ns_ttl,
                                     dns::Ttl child_a_ttl,
                                     net::Location location);

 private:
  sim::Simulation simulation_;
  sim::Rng rng_;
  net::Network network_;
  std::shared_ptr<dns::Zone> root_zone_;
  resolver::RootHints hints_;
  std::map<std::string, std::unique_ptr<auth::AuthServer>> servers_;
  std::map<std::string, net::Address> addresses_;
};

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_WORLD_H
