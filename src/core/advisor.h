#ifndef DNSTTL_CORE_ADVISOR_H
#define DNSTTL_CORE_ADVISOR_H

#include <string>
#include <vector>

#include "dns/types.h"

namespace dnsttl::core {

/// The operator situations the paper's §6 distinguishes.
struct OperatorProfile {
  enum class Kind {
    kGeneralZone,     ///< ordinary zone owner (web/mail hosting)
    kTldRegistry,     ///< TLD / registry operator with public registrations
    kCdnLoadBalancer, ///< DNS-based load balancing (CDN, traffic steering)
    kDdosMitigation,  ///< DNS-based DDoS scrubbing redirection on standby
  };

  Kind kind = Kind::kGeneralZone;
  bool controls_parent_ttl = false;  ///< can the operator set the parent copy?
  bool in_bailiwick_ns = true;
  bool planned_maintenance_possible = true;  ///< can lower TTLs before changes
  bool dns_service_metered = false;          ///< per-query billing (§6.1)
};

/// A concrete recommendation with its reasoning, one line per §6 factor.
struct Recommendation {
  dns::Ttl ns_ttl = dns::kTtl1Day;
  dns::Ttl address_ttl = dns::kTtl1Hour;
  bool set_parent_equal = true;  ///< mirror TTLs into the parent copy
  std::vector<std::string> reasons;

  std::string render() const;
};

/// Encodes the paper's §6.3 recommendations: long TTLs (hours to a day)
/// for general zones and registries; 5–15 minutes only where DNS-based
/// agility is genuinely required; A/AAAA <= NS for in-bailiwick servers;
/// parent and child copies kept equal where possible.
Recommendation recommend(const OperatorProfile& profile);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_ADVISOR_H
