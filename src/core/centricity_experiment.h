#ifndef DNSTTL_CORE_CENTRICITY_EXPERIMENT_H
#define DNSTTL_CORE_CENTRICITY_EXPERIMENT_H

#include <string>

#include "atlas/measurement.h"
#include "atlas/platform.h"
#include "core/world.h"

namespace dnsttl::core {

/// One §3-style centricity measurement: every VP asks @p qname/@p qtype on
/// a schedule and the observed answer TTLs reveal whether its resolver is
/// parent- or child-centric.
struct CentricitySetup {
  std::string name;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kNS;
  dns::Ttl parent_ttl = dns::kTtl2Days;
  dns::Ttl child_ttl = dns::kTtl5Min;
  sim::Duration frequency = 600 * sim::kSecond;
  sim::Duration duration = 2 * sim::kHour;
  sim::Time start{};

  /// VP shard to run (see atlas::MeasurementSpec sharding); the defaults
  /// keep the historical single-shard behavior.
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
};

/// Classification of the observed TTLs against the configured pair.
struct CentricityResult {
  atlas::MeasurementRun run;

  /// Fraction of valid answers with TTL <= child TTL (child-centric).
  double at_most_child = 0.0;
  /// Fraction strictly above the child TTL (parent-centric or capped).
  double above_child = 0.0;
  /// Fraction showing the parent TTL undecremented (§3.2's 2-3%:
  /// local-root / freshly-fetched parent-centric resolvers).
  double exact_full_parent = 0.0;
  /// Fraction at exactly the 21599 s public-resolver cap (Figure 2).
  double capped_21599 = 0.0;

  std::string summary() const;
};

/// Runs the measurement on an existing world + platform.  The zones must
/// already be configured (World::add_tld and friends).
CentricityResult run_centricity(World& world, atlas::Platform& platform,
                                const CentricitySetup& setup);

/// Classifies an already-collected run (pure function of the samples).
/// Sharded executions merge per-shard runs first and classify once.
CentricityResult classify_centricity(atlas::MeasurementRun run,
                                     const CentricitySetup& setup);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_CENTRICITY_EXPERIMENT_H
