#include "core/bailiwick_experiment.h"

#include <set>

namespace dnsttl::core {

const char* const kOldAnswer = "2001:db8::1";
const char* const kNewAnswer = "2001:db8::2";

namespace {

/// Fills a sub.cachetest.net zone copy: per-probe AAAA records with the
/// given marker answer.
void fill_sub_zone(dns::Zone& zone, const atlas::Platform& platform,
                   dns::Ttl answer_ttl, const char* marker) {
  const auto answer = dns::Ipv6::from_string(marker);
  for (const auto& probe : platform.probes()) {
    zone.add(dns::make_aaaa(
        zone.origin().prepend("p" + std::to_string(probe.id)), answer_ttl,
        answer));
  }
}

}  // namespace

std::size_t BailiwickResult::sticky_vp_count() const {
  std::size_t count = 0;
  for (const auto& [key, vp] : vps) {
    if (vp.sticky()) ++count;
  }
  return count;
}

std::size_t BailiwickResult::sticky_resolver_count() const {
  std::set<std::uint32_t> resolvers;
  for (const auto& [key, vp] : vps) {
    if (vp.sticky()) {
      resolvers.insert(vp.resolver.value());
    }
  }
  return resolvers.size();
}

double BailiwickResult::switched_fraction_by(double minute) const {
  std::size_t eligible = 0;
  std::size_t switched = 0;
  for (const auto& [key, vp] : vps) {
    if (!vp.answered_first_round) continue;
    ++eligible;
    if (vp.first_new_minute && *vp.first_new_minute <= minute) ++switched;
  }
  return eligible == 0 ? 0.0
                       : static_cast<double>(switched) /
                             static_cast<double>(eligible);
}

BailiwickResult run_bailiwick(World& world, atlas::Platform& platform,
                              const BailiwickConfig& config) {
  const auto sub_origin = dns::Name::from_string("sub.cachetest.net");
  const auto cachetest = dns::Name::from_string("cachetest.net");

  // .net and the cachetest.net zone on two EU servers (EC2 Frankfurt).
  auto net_zone = world.add_tld("net", "a.gtld-servers", dns::kTtl2Days,
                                dns::kTtl1Day, dns::kTtl1Day,
                                net::Location{net::Region::kNA, 1.0});
  auto ct_zone = world.create_zone("cachetest.net", dns::Ttl{3600});
  std::vector<std::pair<dns::Name, net::Address>> ct_servers;
  for (const char* label : {"ns1", "ns2"}) {
    auto ns_name = cachetest.prepend(label);
    auto& server = world.add_server(ns_name.to_string(),
                                    net::Location{net::Region::kEU, 1.0});
    server.add_zone(ct_zone);
    auto address = world.address_of(ns_name.to_string());
    ct_zone->add(dns::make_ns(cachetest, dns::Ttl{3600}, ns_name));
    ct_zone->add(dns::make_a(ns_name, dns::Ttl{3600}, address));
    ct_servers.emplace_back(ns_name, address);
  }
  world.delegate(*net_zone, cachetest, ct_servers, dns::kTtl2Days,
                 dns::kTtl2Days);

  // Old and new copies of the probed zone.
  auto sub_old = world.create_zone("sub.cachetest.net", config.ns_ttl);
  auto sub_new = world.create_zone("sub.cachetest.net", config.ns_ttl);
  fill_sub_zone(*sub_old, platform, config.answer_ttl, kOldAnswer);
  fill_sub_zone(*sub_new, platform, config.answer_ttl, kNewAnswer);

  auto& old_server = world.add_server("sub-original",
                                      net::Location{net::Region::kEU, 1.0});
  auto& new_server = world.add_server("sub-renumbered",
                                      net::Location{net::Region::kEU, 1.0});
  old_server.set_logging(true);
  new_server.set_logging(true);
  net::Address old_addr = world.address_of("sub-original");
  net::Address new_addr = world.address_of("sub-renumbered");
  old_server.add_zone(sub_old);
  new_server.add_zone(sub_new);

  if (config.in_bailiwick) {
    const auto ns_name = sub_origin.prepend("ns3");
    for (auto& [zone, addr] :
         {std::pair{sub_old, old_addr}, std::pair{sub_new, new_addr}}) {
      zone->add(dns::make_ns(sub_origin, config.ns_ttl, ns_name));
      zone->add(dns::make_a(ns_name, config.a_ttl, addr));
    }
    // Parent-side copies (equal TTLs, per §4.2's setup).
    world.delegate(*ct_zone, sub_origin, {{ns_name, old_addr}},
                   config.ns_ttl, config.a_ttl);
    // Renumber: the parent glue moves to the new server.
    world.simulation().schedule_at(sim::at(config.renumber_at), [ct_zone, ns_name,
                                                        new_addr] {
      ct_zone->renumber_a(ns_name, new_addr);
    });
  } else {
    // Out-of-bailiwick: ns1.zurroundeddu.com, self-hosted under .com.
    auto com_zone = world.add_tld("com", "a.nic", dns::kTtl2Days,
                                  dns::kTtl1Day, dns::kTtl1Day,
                                  net::Location{net::Region::kNA, 1.0});
    const auto zu_origin = dns::Name::from_string("zurroundeddu.com");
    const auto ns_name = zu_origin.prepend("ns1");

    auto zu_old = world.create_zone("zurroundeddu.com", dns::kTtl2Days);
    auto zu_new = world.create_zone("zurroundeddu.com", dns::kTtl2Days);
    for (auto& [zone, addr] :
         {std::pair{zu_old, old_addr}, std::pair{zu_new, new_addr}}) {
      zone->add(dns::make_ns(zu_origin, dns::kTtl2Days, ns_name));
      zone->add(dns::make_a(ns_name, config.a_ttl, addr));
    }
    old_server.add_zone(zu_old);
    new_server.add_zone(zu_new);
    world.delegate(*com_zone, zu_origin, {{ns_name, old_addr}},
                   dns::kTtl2Days, dns::kTtl2Days);

    // The probed zone's NS points out of zone; no glue anywhere in .net.
    for (auto& zone : {sub_old, sub_new}) {
      zone->add(dns::make_ns(sub_origin, config.ns_ttl, ns_name));
    }
    world.delegate(*ct_zone, sub_origin, {{ns_name, net::Address{}}},
                   config.ns_ttl, config.a_ttl);

    // Renumber: .com supports dynamic updates (visible in seconds), so the
    // glue and the child copy both move at t = renumber_at.
    world.simulation().schedule_at(sim::at(config.renumber_at), [com_zone, ns_name,
                                                        new_addr] {
      com_zone->renumber_a(ns_name, new_addr);
    });
  }

  // The measurement itself: AAAA PROBEID.sub.cachetest.net.
  atlas::MeasurementSpec spec;
  spec.name = config.in_bailiwick ? "in-bailiwick" : "out-of-bailiwick";
  spec.qname = sub_origin;
  spec.per_probe_qname = true;
  spec.qtype = dns::RRType::kAAAA;
  spec.frequency = config.frequency;
  spec.duration = config.duration;
  spec.shard_count = config.shard_count;
  spec.shard_index = config.shard_index;

  BailiwickResult result{
      atlas::MeasurementRun::execute(world.simulation(), world.network(),
                                     platform, spec, world.rng()),
      stats::BinnedSeries{10 * sim::kMinute},
      {}};

  // Map resolver address -> slot per probe for VP keying.
  std::map<std::pair<int, std::uint32_t>, int> slot_of;
  for (const auto& probe : platform.probes()) {
    for (std::size_t s = 0; s < probe.resolvers.size(); ++s) {
      slot_of[{probe.id, probe.resolvers[s].value()}] =
          static_cast<int>(s);
    }
  }

  for (const auto& sample : result.run.samples()) {
    if (sample.timeout || !sample.has_answer) continue;
    const bool is_old = sample.rdata == kOldAnswer;
    const bool is_new = sample.rdata == kNewAnswer;
    if (!is_old && !is_new) continue;
    result.series.record(is_old ? "original" : "new", sample.sent);

    auto key = std::make_pair(
        sample.probe_id, slot_of[{sample.probe_id, sample.resolver.value()}]);
    auto& vp = result.vps[key];
    vp.probe_id = sample.probe_id;
    vp.slot = key.second;
    vp.resolver = sample.resolver;
    ++vp.responses;
    if (is_old) ++vp.old_responses;
    if (is_new) {
      ++vp.new_responses;
      double minute = sim::to_seconds(sample.sent.since_epoch()) / 60.0;
      if (!vp.first_new_minute || minute < *vp.first_new_minute) {
        vp.first_new_minute = minute;
      }
    }
    if (sample.sent.since_epoch() < config.frequency) {
      vp.answered_first_round = true;
    }
  }
  return result;
}

std::vector<double> matched_vp_new_ratios(
    const BailiwickResult& in_bailiwick, const BailiwickResult& out_bailiwick) {
  std::vector<double> ratios;
  for (const auto& [key, vp] : out_bailiwick.vps) {
    if (!vp.sticky()) continue;
    auto it = in_bailiwick.vps.find(key);
    if (it != in_bailiwick.vps.end() && it->second.responses > 0) {
      ratios.push_back(it->second.new_ratio());
    }
  }
  return ratios;
}

}  // namespace dnsttl::core
