#include "core/latency_experiment.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace dnsttl::core {

namespace {

/// Ensures the .co TLD exists (one server, standard registry TTLs).
void ensure_co(World& world) {
  if (!world.has_server("a.nic.co.")) {
    world.add_tld("co", "a.nic", dns::kTtl2Days, dns::kTtl1Day,
                  dns::kTtl1Day, net::Location{net::Region::kSA, 1.0});
  }
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0)
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '-';
  }
  return out;
}

}  // namespace

ControlledTtlResult run_controlled_ttl(World& world,
                                       atlas::Platform& platform,
                                       const ControlledTtlConfig& config) {
  ensure_co(world);
  auto co_zone_server = &world.server("a.nic.co.");
  auto co_zone = co_zone_server->zones().back();

  // One dedicated test domain per configuration keeps runs independent,
  // like the paper's distinct query names per experiment column.
  const std::string domain = "mapache-" + sanitize(config.name) + ".co";
  const auto origin = dns::Name::from_string(domain);
  const auto ns_name = origin.prepend("ns1");

  auto zone = world.create_zone(domain, dns::Ttl{3600});
  zone->add(dns::make_ns(origin, dns::Ttl{3600}, ns_name));

  const auto answer = dns::Ipv6::from_string("2001:db8:77::1");
  dns::Name qname;
  if (config.unique_qnames) {
    qname = origin;  // per-probe prefix added by the measurement
    for (const auto& probe : platform.probes()) {
      zone->add(dns::make_aaaa(
          origin.prepend("p" + std::to_string(probe.id)), config.answer_ttl,
          answer));
    }
  } else {
    qname = origin.prepend(config.shared_label);
    zone->add(dns::make_aaaa(qname, config.answer_ttl, answer));
  }

  // Stand up the service: EC2-Frankfurt unicast, or a Route53-style
  // anycast cloud spread over every region.
  net::Address service;
  std::vector<std::string> log_idents;
  const std::string prefix = "auth-" + sanitize(config.name);
  if (config.anycast) {
    std::vector<net::Location> sites;
    for (std::size_t i = 0; i < config.anycast_sites; ++i) {
      sites.push_back(net::Location{
          net::kAllRegions[i % net::kAllRegions.size()], 1.0});
    }
    service = world.add_anycast_service(prefix, zone, sites, true);
    for (std::size_t i = 0; i < config.anycast_sites; ++i) {
      log_idents.push_back(prefix + "-" + std::to_string(i));
    }
  } else {
    auto& server =
        world.add_server(prefix, net::Location{net::Region::kEU, 1.0});
    server.add_zone(zone);
    server.set_logging(true);
    service = world.address_of(prefix);
    log_idents.push_back(prefix);
  }
  zone->add(dns::make_a(ns_name, dns::Ttl{3600}, service));
  world.delegate(*co_zone, origin, {{ns_name, service}}, dns::kTtl1Day,
                 dns::kTtl1Day);

  atlas::MeasurementSpec spec;
  spec.name = config.name;
  spec.qname = qname;
  spec.per_probe_qname = config.unique_qnames;
  spec.qtype = dns::RRType::kAAAA;
  spec.frequency = config.frequency;
  spec.duration = config.duration;
  spec.start = world.simulation().now();

  ControlledTtlResult result;
  result.run = atlas::MeasurementRun::execute(
      world.simulation(), world.network(), platform, spec, world.rng());

  std::set<std::uint32_t> sources;
  for (const auto& ident : log_idents) {
    const auto& log = world.server(ident).log();
    result.auth_queries += log.size();
    for (const auto& entry : log.entries()) {
      sources.insert(entry.client.value());
    }
  }
  result.auth_unique_ips = sources.size();
  auto rtt = result.run.rtt_cdf_ms();
  result.median_rtt_ms = rtt.empty() ? 0.0 : rtt.median();
  return result;
}

atlas::MeasurementRun run_uy_rtt(World& world, atlas::Platform& platform,
                                 sim::Time start, sim::Duration duration,
                                 std::size_t shard_count,
                                 std::size_t shard_index) {
  atlas::MeasurementSpec spec;
  spec.name = "uy-NS-rtt";
  spec.qname = dns::Name::from_string("uy");
  spec.qtype = dns::RRType::kNS;
  spec.frequency = 600 * sim::kSecond;
  spec.duration = duration;
  spec.start = start;
  spec.shard_count = shard_count;
  spec.shard_index = shard_index;
  return atlas::MeasurementRun::execute(world.simulation(), world.network(),
                                        platform, spec, world.rng());
}

}  // namespace dnsttl::core
