#ifndef DNSTTL_CORE_CACHE_PRESSURE_EXPERIMENT_H
#define DNSTTL_CORE_CACHE_PRESSURE_EXPERIMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "dns/types.h"
#include "sim/time.h"

namespace dnsttl::core {

/// The capacity question the paper's TTL→hit-rate story leaves open: the
/// §5 recommendation assumes caches hold the working set, but production
/// resolvers run bounded caches where eviction competes with TTL expiry
/// (*Modeling and Predicting DNS Server Load*, PAPERS.md, derives
/// authoritative load from exactly this race).  A grid of
/// (TTL, max_entries, policy) points, each driving a private bounded cache
/// with an identical Pareto-popular demand stream, measures where the
/// TTL→hit-rate curve breaks down: once eviction dominates expiry, raising
/// TTLs stops buying hit rate and the authoritative load floor is set by
/// capacity, not TTL.
struct CachePressureConfig {
  /// Record TTLs to sweep — CDN-style 30 s up to a BIND-ish hour.
  std::vector<dns::Ttl> ttls = {dns::Ttl{30}, dns::Ttl{300}, dns::Ttl{3600}};
  /// Cache capacities (combined positive+negative entries).
  std::vector<std::size_t> capacities = {256, 1024, 4096};
  /// Eviction policies to compare at every (TTL, capacity).
  std::vector<cache::EvictionPolicy> policies = {
      cache::EvictionPolicy::kLru, cache::EvictionPolicy::kLfu,
      cache::EvictionPolicy::kTtlAware};

  std::size_t names = 8192;        ///< distinct qnames in the demand catalog
  std::uint64_t queries = 200000;  ///< demand stream length per grid point
  double alpha = 1.1;              ///< Pareto popularity shape
  double negative_share = 0.1;     ///< fraction of AAAA/NXDOMAIN probes
  sim::Duration mean_gap = 50 * sim::kMillisecond;  ///< mean query spacing
  std::uint64_t purge_every = 4096;  ///< queries between purge_expired sweeps

  /// Warm-vs-cold restart scenario: warmup stream length before the
  /// snapshot, and measurement stream length replayed into both the
  /// restored (warm) and fresh (cold) cache.
  std::uint64_t warm_queries = 50000;

  std::uint64_t seed = 1;
};

/// Outcome of one (TTL, capacity, policy) grid point.
struct CachePressurePoint {
  dns::Ttl ttl{};
  std::size_t max_entries = 0;
  cache::EvictionPolicy policy = cache::EvictionPolicy::kLru;

  std::uint64_t queries = 0;
  std::uint64_t hits = 0;            ///< positive A hits
  std::uint64_t misses = 0;          ///< each one costs an authoritative query
  std::uint64_t negative_hits = 0;   ///< RFC 2308 negative hits
  std::uint64_t negative_misses = 0;
  std::uint64_t evictions = 0;       ///< capacity victims, either table
  std::uint64_t evicted_positive = 0;
  std::uint64_t evicted_negative = 0;
  std::uint64_t expired = 0;         ///< misses caused by TTL expiry
  std::uint64_t high_water = 0;      ///< peak resident population
  std::uint64_t resident = 0;        ///< final population
};

/// Warm-vs-cold restart outcome for one eviction policy: a warmed cache is
/// snapshotted, restored into a new instance, and raced against a cold
/// (empty) cache over an identical measurement stream.
struct CacheRestartPoint {
  cache::EvictionPolicy policy = cache::EvictionPolicy::kLru;
  std::uint64_t snapshot_bytes = 0;  ///< serialized image size
  std::uint64_t restored = 0;        ///< entries alive after restore
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_auth = 0;  ///< misses = upstream fetches, warm start
  std::uint64_t cold_hits = 0;
  std::uint64_t cold_auth = 0;
};

/// The full grid plus its canonical rendering.
struct CachePressureResult {
  CachePressureConfig config;
  std::vector<CachePressurePoint> points;  ///< policy / capacity / TTL major
  std::vector<CacheRestartPoint> restarts;  ///< one per policy

  /// Fixed-format integer table — byte-identical across --jobs values and
  /// build trees; deliberately free of floats and timing.
  std::string render() const;
};

/// Runs one grid point (deterministic: a pure function of config + point).
CachePressurePoint run_cache_pressure_point(const CachePressureConfig& config,
                                            dns::Ttl ttl,
                                            std::size_t max_entries,
                                            cache::EvictionPolicy policy);

/// Runs the warm-vs-cold restart scenario for one policy at the middle
/// (TTL, capacity) of the configured sweep.
CacheRestartPoint run_cache_restart_point(const CachePressureConfig& config,
                                          cache::EvictionPolicy policy);

/// Runs the whole grid plus the restart scenario, up to @p jobs points
/// concurrently.  Each point owns its cache and regenerates its own demand
/// stream, so the merged result is byte-identical at any job count.
CachePressureResult run_cache_pressure_experiment(
    const CachePressureConfig& config, std::size_t jobs);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_CACHE_PRESSURE_EXPERIMENT_H
