#ifndef DNSTTL_CORE_SHARDED_H
#define DNSTTL_CORE_SHARDED_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "atlas/measurement.h"
#include "atlas/platform.h"
#include "core/bailiwick_experiment.h"
#include "core/latency_experiment.h"
#include "core/world.h"

namespace dnsttl::core {

/// One shard's private replica of the simulated Internet.  Deterministic
/// parallelism here works by replication, not by locking: every shard
/// builds an identical world (same seed → same platform, same RNG draws)
/// and measures only its slice of the probes, so threads share nothing and
/// the merged output is a pure function of the workload.
struct ShardEnv {
  std::unique_ptr<World> world;
  std::unique_ptr<atlas::Platform> platform;
};

/// Builds one shard's environment.  Must be deterministic: every call has
/// to produce an identical env, or shards diverge and the merged output
/// stops being independent of the shard/job split.
using EnvFactory = std::function<ShardEnv()>;

/// The canonical factory — a World(options) plus Platform::build(spec) fed
/// from the world's RNG, the setup every experiment driver starts from.
EnvFactory make_env_factory(World::Options options, atlas::PlatformSpec spec);

/// Per-shard experiment body: given a private env and this shard's
/// (index, count), stand up zones, run the phases, and return one
/// MeasurementRun per phase.  Every shard must return the same number of
/// phases, and must thread shard_index/shard_count into each
/// MeasurementSpec it executes — that is what restricts it to its probe
/// slice.
using ShardScript = std::function<std::vector<atlas::MeasurementRun>(
    ShardEnv& env, std::size_t shard_index, std::size_t shard_count)>;

/// Runs @p script on @p shard_count identical envs using up to @p jobs
/// threads, then merges the shard runs phase-by-phase strictly in
/// shard-index order.  The result depends only on (factory, script,
/// shard_count); jobs just bounds how many shards are in flight at once.
std::vector<atlas::MeasurementRun> run_sharded_script(
    const EnvFactory& factory, std::size_t shard_count, std::size_t jobs,
    const ShardScript& script);

/// Sharded run_bailiwick: each shard builds the full cachetest.net testbed
/// in its own world and measures its probe slice; series bins are summed
/// and VP maps unioned (keys are probe-disjoint across shards) in shard
/// order.
BailiwickResult run_bailiwick_sharded(const EnvFactory& factory,
                                      const BailiwickConfig& config,
                                      std::size_t shard_count,
                                      std::size_t jobs);

/// Config-level parallelism for the §6.2 controlled experiments: each
/// configuration gets its own fresh world+platform and they run
/// concurrently; results come back in config order.
std::vector<ControlledTtlResult> run_controlled_ttl_set(
    const EnvFactory& factory, const std::vector<ControlledTtlConfig>& configs,
    std::size_t jobs);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_SHARDED_H
