#include "core/advisor.h"

namespace dnsttl::core {

std::string Recommendation::render() const {
  std::string out;
  out += "  NS TTL:      " + std::to_string(ns_ttl.value()) + " s (" +
         std::to_string(ns_ttl.value() / 3600) + " h)\n";
  out += "  A/AAAA TTL:  " + std::to_string(address_ttl.value()) + " s\n";
  out += std::string("  parent copy: ") +
         (set_parent_equal ? "set identical TTLs in parent and child"
                           : "parent copy not under operator control; expect "
                             "a resolver minority to use the parent's TTL") +
         "\n";
  for (const auto& reason : reasons) {
    out += "  - " + reason + "\n";
  }
  return out;
}

Recommendation recommend(const OperatorProfile& profile) {
  Recommendation rec;
  using Kind = OperatorProfile::Kind;

  switch (profile.kind) {
    case Kind::kGeneralZone:
      rec.ns_ttl = dns::kTtl1Day;
      rec.address_ttl = dns::kTtl4Hours;
      rec.reasons.push_back(
          "general zones: longer caching means faster responses (median "
          "cache hit ~8 ms vs ~180 ms misses, §5.3) and DDoS resilience");
      if (profile.planned_maintenance_possible) {
        rec.reasons.push_back(
            "planned changes: lower the TTL just before maintenance and "
            "raise it afterwards (§6.1)");
      } else {
        rec.ns_ttl = dns::kTtl4Hours;
        rec.address_ttl = dns::kTtl1Hour;
        rec.reasons.push_back(
            "unscheduled changes likely: a few hours balances agility "
            "against caching");
      }
      break;

    case Kind::kTldRegistry:
      rec.ns_ttl = dns::kTtl1Day;
      rec.address_ttl = dns::kTtl1Day;
      rec.reasons.push_back(
          "registries: at least one hour, preferably more, for NS records "
          "of both parent and child (§6.3; .uy moved 300 s -> 86400 s and "
          "median latency fell from 28.7 ms to 8 ms)");
      rec.reasons.push_back(
          "a parent-centric resolver minority (10-48%, §3) uses the "
          "delegation copy: keep both copies equal");
      break;

    case Kind::kCdnLoadBalancer:
      rec.ns_ttl = dns::kTtl1Day;
      rec.address_ttl = dns::kTtl15Min;
      rec.reasons.push_back(
          "DNS-based load balancing needs short *address* TTLs (5-15 min); "
          "15 min provides sufficient agility for most operators (§6.3)");
      rec.reasons.push_back(
          "NS records rarely change even for CDNs: keep them long");
      break;

    case Kind::kDdosMitigation:
      rec.ns_ttl = dns::kTtl1Day;
      rec.address_ttl = dns::kTtl5Min;
      rec.reasons.push_back(
          "DNS-based DDoS scrubbing requires permanently low address TTLs "
          "(attacks arrive unannounced, §6.1)");
      break;
  }

  if (profile.in_bailiwick_ns &&
      rec.address_ttl > rec.ns_ttl) {
    rec.address_ttl = rec.ns_ttl;
    rec.reasons.push_back(
        "in-bailiwick servers: A/AAAA TTL <= NS TTL, because most "
        "resolvers tie the address's life to the NS record anyway (§4.2)");
  }

  rec.set_parent_equal = profile.controls_parent_ttl;
  if (!profile.controls_parent_ttl) {
    rec.reasons.push_back(
        "without control of the parent's TTL (EPP cannot set it), "
        "resolvers will see a mix of parent and child TTLs (§3)");
  }
  if (profile.dns_service_metered) {
    rec.reasons.push_back(
        "metered DNS service: longer caching cut authoritative query "
        "volume by ~77% in the §6.2 controlled experiment");
  }
  return rec;
}

}  // namespace dnsttl::core
