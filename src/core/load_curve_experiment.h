#ifndef DNSTTL_CORE_LOAD_CURVE_EXPERIMENT_H
#define DNSTTL_CORE_LOAD_CURVE_EXPERIMENT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dns/types.h"
#include "sim/time.h"

namespace dnsttl::core {

/// The paper's §6 load argument run as one experiment: how many queries
/// reach the authoritative side as a function of record TTL, for the two
/// populations the paper measures — the .nl resolver population seen in
/// passive ENTRADA data (§5), and a RIPE-Atlas-style stub population that
/// shares recursive caches.  Every TTL point is evaluated against the SAME
/// realized arrival process (demand does not depend on TTL; only cache
/// expiry does), so the curve is the cache-filter effect alone, directly
/// comparable to the closed-form prediction of core::authoritative_rate.
///
/// This is the full-scale workload-engine exercise: the stub phase drives
/// a million-entry structure-of-arrays pool through the sim::TimerWheel
/// (one pending arrival per stub, cohort iteration per wheel slot), and
/// both phases shard over par:: with per-actor `fork(id)` RNG streams, so
/// the rendered table is byte-identical at any --jobs value.
struct LoadCurveConfig {
  /// TTLs to sweep: CDN-style 60 s up to a full day, spanning the paper's
  /// recommendation window (§7).
  std::vector<dns::Ttl> ttls = {dns::Ttl{60},    dns::Ttl{300},
                                dns::Ttl{900},   dns::Ttl{3600},
                                dns::Ttl{21600}, dns::Ttl{86400}};

  /// Phase 1 — .nl passive demand: independent recursive resolvers, each
  /// with its own cache and a Poisson query stream whose rate is Pareto
  /// distributed across resolvers (the §5 calibration: ~205k resolvers,
  /// ~6.5M queries over two days at scale 1.0).
  std::size_t nl_resolver_count = 205000;
  sim::Duration nl_duration = 48 * sim::kHour;
  double nl_demand_xm_per_day = 3.8;
  double nl_demand_alpha = 1.2;
  double nl_demand_cap_per_day = 400.0;

  /// Phase 2 — Atlas stub population: stubs share recursive caches
  /// (stub -> resolver is id % resolver count), so per-cache demand is the
  /// superposition of its stubs' Poisson streams.  Scale 1.0 is one
  /// million stubs behind 10k resolver caches.
  std::size_t stub_count = 1000000;
  std::size_t stub_resolver_count = 10000;
  sim::Duration stub_duration = 6 * sim::kHour;
  double stub_demand_xm_per_day = 4.0;
  double stub_demand_alpha = 1.5;
  double stub_demand_cap_per_day = 96.0;

  std::uint64_t seed = 1;

  /// Multiplies both population sizes (floored at small minimums so
  /// --quick runs stay meaningful).
  void apply_scale(double scale);
};

/// One TTL point: measured authoritative load for both phases next to the
/// renewal-model prediction (sum over caches of λ/(1+λT) × horizon).
struct LoadCurvePointResult {
  dns::Ttl ttl{};
  std::uint64_t nl_auth_queries = 0;
  std::uint64_t nl_predicted_queries = 0;
  std::uint64_t stub_auth_queries = 0;
  std::uint64_t stub_predicted_queries = 0;
};

/// The full curve plus its canonical rendering.
struct LoadCurveResult {
  LoadCurveConfig config;
  std::uint64_t nl_client_queries = 0;    ///< TTL-independent demand
  std::uint64_t stub_client_queries = 0;  ///< TTL-independent demand
  std::vector<LoadCurvePointResult> points;  ///< config.ttls order

  /// Fixed-format integer table — the byte-identical golden output the
  /// load-curve-smoke ctest compares across --jobs values.
  std::string render() const;
};

/// Runs both phases, up to @p jobs shards concurrently.  Shard layout is a
/// pure function of the workload (par::shard_count_for) and every actor
/// draws from its own forked RNG stream, so the result is byte-identical
/// at any job count.
LoadCurveResult run_load_curve_experiment(const LoadCurveConfig& config,
                                          std::size_t jobs);

}  // namespace dnsttl::core

#endif  // DNSTTL_CORE_LOAD_CURVE_EXPERIMENT_H
