#include "dns/name.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

namespace dnsttl::dns {

namespace {

constexpr std::size_t kMaxLabelLen = 63;
constexpr std::size_t kMaxWireLen = 255;

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

void validate_label(std::string_view label) {
  if (label.empty()) {
    throw std::invalid_argument("DNS label must not be empty");
  }
  if (label.size() > kMaxLabelLen) {
    throw std::invalid_argument("DNS label exceeds 63 octets: " +
                                std::string(label));
  }
  if (label.find('.') != std::string_view::npos) {
    throw std::invalid_argument("DNS label must not contain '.'");
  }
}

}  // namespace

Name::Name(std::vector<std::string> labels) : labels_(std::move(labels)) {
  for (auto& label : labels_) {
    validate_label(label);
    label = lower(label);
  }
  if (wire_length() > kMaxWireLen) {
    throw std::invalid_argument("DNS name exceeds 255 octets");
  }
}

Name Name::from_string(std::string_view text) {
  if (text.empty()) {
    throw std::invalid_argument("empty string is not a DNS name; use \".\"");
  }
  if (text == ".") {
    return Name{};
  }
  if (text.back() == '.') {
    text.remove_suffix(1);
  }
  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    if (dot == std::string_view::npos) {
      labels.emplace_back(text.substr(start));
      break;
    }
    labels.emplace_back(text.substr(start, dot - start));
    start = dot + 1;
  }
  return Name{std::move(labels)};
}

std::string Name::to_string() const {
  if (labels_.empty()) {
    return ".";
  }
  std::string out;
  for (const auto& label : labels_) {
    out += label;
    out += '.';
  }
  return out;
}

Name Name::parent() const {
  if (labels_.empty()) {
    return Name{};
  }
  Name p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

Name Name::prepend(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return Name{std::move(labels)};
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) {
    return false;
  }
  return std::equal(ancestor.labels_.rbegin(), ancestor.labels_.rend(),
                    labels_.rbegin());
}

bool Name::is_strict_subdomain_of(const Name& ancestor) const noexcept {
  return labels_.size() > ancestor.labels_.size() && is_subdomain_of(ancestor);
}

std::size_t Name::common_suffix_labels(const Name& other) const noexcept {
  std::size_t n = std::min(labels_.size(), other.labels_.size());
  std::size_t shared = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels_[labels_.size() - 1 - i] !=
        other.labels_[other.labels_.size() - 1 - i]) {
      break;
    }
    ++shared;
  }
  return shared;
}

std::size_t Name::wire_length() const noexcept {
  std::size_t len = 1;  // terminating root label
  for (const auto& label : labels_) {
    len += 1 + label.size();
  }
  return len;
}

std::strong_ordering Name::operator<=>(const Name& other) const noexcept {
  std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = labels_[labels_.size() - 1 - i];
    const auto& b = other.labels_[other.labels_.size() - 1 - i];
    if (auto cmp = a.compare(b); cmp != 0) {
      return cmp < 0 ? std::strong_ordering::less
                     : std::strong_ordering::greater;
    }
  }
  return labels_.size() <=> other.labels_.size();
}

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.to_string();
}

}  // namespace dnsttl::dns
