#include "dns/name.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <ostream>
#include <stdexcept>

#include "check/audit.h"

namespace dnsttl::dns {

namespace {

constexpr std::size_t kMaxLabelLen = 63;
constexpr std::size_t kMaxWireLen = 255;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Wire budget caps a name at 127 single-octet labels, so label start
/// offsets into the flat buffer always fit this fixed array.
using LabelOffsets = std::array<std::uint8_t, 128>;

/// Fills @p offsets with the byte offset of each label's length octet and
/// returns the label count.
std::size_t collect_offsets(std::string_view data, LabelOffsets& offsets) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    offsets[count++] = static_cast<std::uint8_t>(pos);
    pos += 1 + static_cast<unsigned char>(data[pos]);
  }
  return count;
}

std::string_view label_at(std::string_view data, std::size_t offset) {
  return data.substr(offset + 1, static_cast<unsigned char>(data[offset]));
}

}  // namespace

void Name::append_label(std::string_view label) {
  if (label.empty()) {
    throw std::invalid_argument("DNS label must not be empty");
  }
  if (label.size() > kMaxLabelLen) {
    throw std::invalid_argument("DNS label exceeds 63 octets: " +
                                std::string(label));
  }
  if (label.find('.') != std::string_view::npos) {
    throw std::invalid_argument("DNS label must not contain '.'");
  }
  data_.push_back(static_cast<char>(label.size()));
  for (char c : label) {
    char lowered =
        static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    data_.push_back(lowered);
    hash_ ^= static_cast<unsigned char>(lowered);
    hash_ *= kFnvPrime;
  }
  hash_ ^= 0xffULL;
  hash_ *= kFnvPrime;
  ++label_count_;
}

void Name::check_total_length() const {
  if (wire_length() > kMaxWireLen) {
    throw std::invalid_argument("DNS name exceeds 255 octets");
  }
}

Name::Name(const std::vector<std::string>& labels) {
  std::size_t total = 0;
  for (const auto& label : labels) {
    total += 1 + label.size();
  }
  data_.reserve(total);
  for (const auto& label : labels) {
    append_label(label);
  }
  check_total_length();
  if constexpr (check::kAuditEnabled) {
    validate();
  }
}

Name Name::from_string(std::string_view text) {
  if (text.empty()) {
    throw std::invalid_argument("empty string is not a DNS name; use \".\"");
  }
  if (text == ".") {
    return Name{};
  }
  if (text.back() == '.') {
    text.remove_suffix(1);
  }
  Name name;
  name.data_.reserve(text.size() + 1);
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    if (dot == std::string_view::npos) {
      name.append_label(text.substr(start));
      break;
    }
    name.append_label(text.substr(start, dot - start));
    start = dot + 1;
  }
  name.check_total_length();
  if constexpr (check::kAuditEnabled) {
    name.validate();
  }
  return name;
}

Name Name::from_tail(std::string_view tail, std::size_t count) {
  Name name;
  name.data_.assign(tail);
  name.label_count_ = static_cast<std::uint8_t>(count);
  std::uint64_t h = kHashBasis;
  std::size_t pos = 0;
  while (pos < tail.size()) {
    std::size_t len = static_cast<unsigned char>(tail[pos]);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(tail[pos + 1 + i]);
      h *= kFnvPrime;
    }
    h ^= 0xffULL;
    h *= kFnvPrime;
    pos += 1 + len;
  }
  name.hash_ = h;
  if constexpr (check::kAuditEnabled) {
    name.validate();
  }
  return name;
}

void Name::validate() const {
  constexpr const char* kWhat = "dns::Name";
  DNSTTL_AUDIT_CHECK(kWhat, wire_length() <= kMaxWireLen,
                     "wire length " + std::to_string(wire_length()) +
                         " exceeds 255 octets");
  std::uint64_t h = kHashBasis;
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < data_.size()) {
    const std::size_t len = static_cast<unsigned char>(data_[pos]);
    DNSTTL_AUDIT_CHECK(kWhat, len >= 1 && len <= kMaxLabelLen,
                       "label length octet " + std::to_string(len) +
                           " out of range at offset " + std::to_string(pos));
    DNSTTL_AUDIT_CHECK(kWhat, pos + 1 + len <= data_.size(),
                       "label overruns the flat buffer at offset " +
                           std::to_string(pos));
    for (std::size_t i = 0; i < len; ++i) {
      const unsigned char c = static_cast<unsigned char>(data_[pos + 1 + i]);
      DNSTTL_AUDIT_CHECK(kWhat, c != '.',
                         "'.' inside a label at offset " +
                             std::to_string(pos + 1 + i));
      DNSTTL_AUDIT_CHECK(kWhat, !(c >= 'A' && c <= 'Z'),
                         "label byte not lowercased at offset " +
                             std::to_string(pos + 1 + i));
      h ^= c;
      h *= kFnvPrime;
    }
    h ^= 0xffULL;
    h *= kFnvPrime;
    pos += 1 + len;
    ++count;
  }
  DNSTTL_AUDIT_CHECK(kWhat, count == label_count_,
                     "label_count " + std::to_string(label_count_) +
                         " disagrees with buffer walk (" +
                         std::to_string(count) + ")");
  DNSTTL_AUDIT_CHECK(kWhat, h == hash_,
                     "incremental FNV hash disagrees with recomputation for " +
                         to_string());
  check::count_audit();
}

std::string Name::to_string() const {
  if (data_.empty()) {
    return ".";
  }
  std::string out;
  out.reserve(data_.size());
  std::size_t pos = 0;
  while (pos < data_.size()) {
    std::string_view label = label_at(data_, pos);
    out.append(label);
    out.push_back('.');
    pos += 1 + label.size();
  }
  return out;
}

std::vector<std::string> Name::labels() const {
  std::vector<std::string> out;
  out.reserve(label_count_);
  std::size_t pos = 0;
  while (pos < data_.size()) {
    std::string_view label = label_at(data_, pos);
    out.emplace_back(label);
    pos += 1 + label.size();
  }
  return out;
}

std::string_view Name::label(std::size_t i) const {
  if (i >= label_count_) {
    throw std::out_of_range("Name::label index out of range");
  }
  std::size_t pos = 0;
  for (std::size_t k = 0; k < i; ++k) {
    pos += 1 + static_cast<unsigned char>(data_[pos]);
  }
  return label_at(data_, pos);
}

Name Name::parent() const {
  if (data_.empty()) {
    return Name{};
  }
  return suffix(label_count_ - 1u);
}

Name Name::suffix(std::size_t count) const {
  if (count >= label_count_) {
    return *this;
  }
  std::size_t pos = 0;
  for (std::size_t skip = label_count_ - count; skip > 0; --skip) {
    pos += 1 + static_cast<unsigned char>(data_[pos]);
  }
  return from_tail(std::string_view(data_).substr(pos), count);
}

Name Name::prepend(std::string_view label) const {
  Name name;
  name.data_.reserve(1 + label.size() + data_.size());
  name.append_label(label);
  // Splice the existing flat buffer behind the new label and fold the
  // remaining labels into the running hash.
  std::size_t pos = 0;
  while (pos < data_.size()) {
    std::string_view tail_label = label_at(data_, pos);
    name.data_.push_back(static_cast<char>(tail_label.size()));
    name.data_.append(tail_label);
    for (char c : tail_label) {
      name.hash_ ^= static_cast<unsigned char>(c);
      name.hash_ *= kFnvPrime;
    }
    name.hash_ ^= 0xffULL;
    name.hash_ *= kFnvPrime;
    ++name.label_count_;
    pos += 1 + tail_label.size();
  }
  name.check_total_length();
  if constexpr (check::kAuditEnabled) {
    name.validate();
  }
  return name;
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.label_count_ > label_count_) {
    return false;
  }
  // The trailing labels of the flat buffer are exactly the ancestor's whole
  // buffer when the relation holds; walking the length prefixes keeps the
  // comparison aligned on label boundaries.
  std::size_t pos = 0;
  for (std::size_t skip = label_count_ - ancestor.label_count_; skip > 0;
       --skip) {
    pos += 1 + static_cast<unsigned char>(data_[pos]);
  }
  return std::string_view(data_).substr(pos) == ancestor.data_;
}

bool Name::is_strict_subdomain_of(const Name& ancestor) const noexcept {
  return label_count_ > ancestor.label_count_ && is_subdomain_of(ancestor);
}

std::size_t Name::common_suffix_labels(const Name& other) const noexcept {
  LabelOffsets mine;
  LabelOffsets theirs;
  std::size_t my_count = collect_offsets(data_, mine);
  std::size_t their_count = collect_offsets(other.data_, theirs);
  std::size_t n = std::min(my_count, their_count);
  std::size_t shared = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (label_at(data_, mine[my_count - 1 - i]) !=
        label_at(other.data_, theirs[their_count - 1 - i])) {
      break;
    }
    ++shared;
  }
  return shared;
}

std::strong_ordering Name::operator<=>(const Name& other) const noexcept {
  LabelOffsets mine;
  LabelOffsets theirs;
  std::size_t my_count = collect_offsets(data_, mine);
  std::size_t their_count = collect_offsets(other.data_, theirs);
  std::size_t n = std::min(my_count, their_count);
  for (std::size_t i = 0; i < n; ++i) {
    std::string_view a = label_at(data_, mine[my_count - 1 - i]);
    std::string_view b = label_at(other.data_, theirs[their_count - 1 - i]);
    if (auto cmp = a.compare(b); cmp != 0) {
      return cmp < 0 ? std::strong_ordering::less
                     : std::strong_ordering::greater;
    }
  }
  return my_count <=> their_count;
}

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.to_string();
}

}  // namespace dnsttl::dns
