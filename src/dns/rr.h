#ifndef DNSTTL_DNS_RR_H
#define DNSTTL_DNS_RR_H

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/types.h"

namespace dnsttl::dns {

/// One resource record: owner name, class, TTL and typed RDATA.
/// The record type is implied by the RDATA alternative (see rdata_type()).
struct ResourceRecord {
  Name name;
  RClass rclass = RClass::kIN;
  Ttl ttl{3600};
  Rdata rdata;

  RRType type() const { return rdata_type(rdata); }

  /// Zone-file style presentation: "owner TTL class type rdata".
  std::string to_string() const;

  bool operator==(const ResourceRecord&) const = default;
};

/// An RRset: all records sharing (owner, class, type).  RFC 2181 §5.2
/// requires one TTL for the whole set; the constructor and add() enforce it
/// by clamping every member to the set TTL.
class RRset {
 public:
  RRset() = default;
  RRset(Name name, RClass rclass, Ttl ttl) noexcept
      : name_(std::move(name)), rclass_(rclass), ttl_(ttl) {}

  /// Builds an RRset from records; all must share owner/class/type.
  /// The set TTL is the minimum member TTL (RFC 2181 §5.2 resolution rule).
  /// Throws std::invalid_argument if the records disagree on the key.
  static RRset from_records(const std::vector<ResourceRecord>& records);

  /// Adds one RDATA; exact duplicates are suppressed (RFC 2181 §5: an
  /// RRset never contains two identical records).
  void add(Rdata rdata) {
    for (const auto& existing : rdatas_) {
      if (existing == rdata) {
        return;
      }
    }
    rdatas_.push_back(std::move(rdata));
  }

  const Name& name() const noexcept { return name_; }
  RClass rclass() const noexcept { return rclass_; }
  Ttl ttl() const noexcept { return ttl_; }
  void set_ttl(Ttl ttl) noexcept { ttl_ = ttl; }

  /// Type of the member RDATA; requires a non-empty set.
  RRType type() const { return rdata_type(rdatas_.at(0)); }

  bool empty() const noexcept { return rdatas_.empty(); }
  std::size_t size() const noexcept { return rdatas_.size(); }
  const std::vector<Rdata>& rdatas() const noexcept { return rdatas_; }

  /// Expands back into individual records, all carrying the set TTL.
  std::vector<ResourceRecord> to_records() const;

  bool operator==(const RRset&) const = default;

 private:
  Name name_;
  RClass rclass_ = RClass::kIN;
  Ttl ttl_{3600};
  std::vector<Rdata> rdatas_;
};

/// Convenience constructors for the record shapes used throughout the
/// experiments.
ResourceRecord make_a(const Name& name, Ttl ttl, Ipv4 address);
ResourceRecord make_aaaa(const Name& name, Ttl ttl, Ipv6 address);
ResourceRecord make_ns(const Name& name, Ttl ttl, Name nsdname);
ResourceRecord make_cname(const Name& name, Ttl ttl, Name target);
ResourceRecord make_mx(const Name& name, Ttl ttl, std::uint16_t preference,
                       Name exchange);
ResourceRecord make_txt(const Name& name, Ttl ttl, std::string text);
ResourceRecord make_soa(const Name& zone, Ttl ttl, Name mname,
                        std::uint32_t serial,
                        WireTtl minimum = WireTtl{3600});
ResourceRecord make_dnskey(const Name& zone, Ttl ttl, std::string key);

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_RR_H
