#ifndef DNSTTL_DNS_ZONE_H
#define DNSTTL_DNS_ZONE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"

namespace dnsttl::dns {

/// Result of an authoritative lookup into one zone: the classified response
/// content before it is stitched into a Message by the server.
struct LookupResult {
  enum class Kind {
    kAnswer,      ///< authoritative data found (AA=1)
    kDelegation,  ///< referral to a child zone (AA=0, NS in authority + glue)
    kNxDomain,    ///< name does not exist (AA=1, SOA in authority)
    kNoData,      ///< name exists but not this type (AA=1, SOA in authority)
    kNotInZone,   ///< qname not under this zone's origin (REFUSED)
  };

  Kind kind = Kind::kNotInZone;
  bool authoritative = false;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
};

/// One DNS zone: an origin plus the RRsets at and below it, including
/// delegation NS sets and glue for child zones.
///
/// The zone is the unit the paper's operators configure: TTLs of a child
/// zone's records live here, and TTLs of the *delegation copy* (NS + glue)
/// live in the parent's Zone object — possibly different, which is exactly
/// the ambiguity §3 of the paper studies.
class Zone {
 public:
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  const Name& origin() const noexcept { return origin_; }

  /// Adds one record.  Records of the same (name, type) merge into one
  /// RRset; the RRset TTL becomes the last-added record's TTL (operators
  /// configure one TTL per set, RFC 2181 §5.2).
  void add(const ResourceRecord& rr);

  /// Replaces the whole (name, type) RRset with @p rrset.
  void replace(const RRset& rrset);

  /// Removes the (name, type) RRset; returns true if it existed.
  bool remove(const Name& name, RRType type);

  /// Changes the TTL of an existing RRset; returns false if absent.
  bool set_ttl(const Name& name, RRType type, Ttl ttl);

  /// Renumbers all A records at @p name to @p address (the §4 experiments'
  /// "renumber the authoritative server" step); returns false if absent.
  bool renumber_a(const Name& name, Ipv4 address);
  bool renumber_aaaa(const Name& name, Ipv6 address);

  /// Fetches the (name, type) RRset stored in this zone, or nullopt.
  std::optional<RRset> find(const Name& name, RRType type) const;

  /// True if any RRset exists at @p name.
  bool has_node(const Name& name) const;

  /// True if @p name is at or below a zone cut (delegation) in this zone,
  /// i.e. this zone is not authoritative for it.
  bool is_delegated(const Name& name) const;

  /// Performs the RFC 1034 §4.3.2 lookup algorithm for (qname, qtype).
  /// In-zone CNAME chains are chased up to a bounded depth (loops and
  /// over-long chains stop, leaving the partial chain in the answer).
  LookupResult lookup(const Name& qname, RRType qtype) const {
    return lookup_internal(qname, qtype, 0);
  }

  /// All RRsets, in canonical name order (used by RFC 7706 zone transfer
  /// and by the crawler).
  std::vector<RRset> all_rrsets() const;

  /// Number of RRsets stored.
  std::size_t rrset_count() const noexcept;

  /// The zone's SOA record, if configured.
  std::optional<ResourceRecord> soa() const;

  /// Increments the SOA serial (operators do this on every zone edit so
  /// secondaries notice at their next refresh); returns false without SOA.
  bool bump_serial();

  /// Removes every RRset (used by secondaries on zone expiry/transfer).
  void clear() { nodes_.clear(); }

 private:
  LookupResult lookup_internal(const Name& qname, RRType qtype,
                               int cname_depth) const;

  /// Deepest delegation cut on the path from origin to @p name (exclusive of
  /// the origin itself), or nullopt if the name is inside this zone's
  /// authoritative data.
  std::optional<Name> find_zone_cut(const Name& name) const;

  /// Appends A/AAAA glue from this zone for each NS target under origin.
  void attach_glue(const std::vector<ResourceRecord>& ns_records,
                   std::vector<ResourceRecord>& additionals) const;

  void append_soa_to(std::vector<ResourceRecord>& authorities) const;

  Name origin_;
  std::map<Name, std::map<RRType, RRset>> nodes_;
};

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_ZONE_H
