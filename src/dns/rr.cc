#include "dns/rr.h"

#include <algorithm>
#include <stdexcept>

namespace dnsttl::dns {

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl.value()) + " " +
         std::string(dns::to_string(rclass)) + " " +
         std::string(dns::to_string(type())) + " " + rdata_to_string(rdata);
}

RRset RRset::from_records(const std::vector<ResourceRecord>& records) {
  if (records.empty()) {
    throw std::invalid_argument("cannot build RRset from zero records");
  }
  const auto& first = records.front();
  RRset set(first.name, first.rclass, first.ttl);
  for (const auto& rr : records) {
    if (rr.name != first.name || rr.rclass != first.rclass ||
        rr.type() != first.type()) {
      throw std::invalid_argument(
          "records disagree on (owner, class, type): " + rr.to_string());
    }
    set.set_ttl(std::min(set.ttl(), rr.ttl));
    set.add(rr.rdata);
  }
  return set;
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> records;
  records.reserve(rdatas_.size());
  for (const auto& rdata : rdatas_) {
    records.push_back(ResourceRecord{name_, rclass_, ttl_, rdata});
  }
  return records;
}

ResourceRecord make_a(const Name& name, Ttl ttl, Ipv4 address) {
  return {name, RClass::kIN, ttl, ARdata{address}};
}

ResourceRecord make_aaaa(const Name& name, Ttl ttl, Ipv6 address) {
  return {name, RClass::kIN, ttl, AaaaRdata{address}};
}

ResourceRecord make_ns(const Name& name, Ttl ttl, Name nsdname) {
  return {name, RClass::kIN, ttl, NsRdata{std::move(nsdname)}};
}

ResourceRecord make_cname(const Name& name, Ttl ttl, Name target) {
  return {name, RClass::kIN, ttl, CnameRdata{std::move(target)}};
}

ResourceRecord make_mx(const Name& name, Ttl ttl, std::uint16_t preference,
                       Name exchange) {
  return {name, RClass::kIN, ttl, MxRdata{preference, std::move(exchange)}};
}

ResourceRecord make_txt(const Name& name, Ttl ttl, std::string text) {
  return {name, RClass::kIN, ttl, TxtRdata{std::move(text)}};
}

ResourceRecord make_soa(const Name& zone, Ttl ttl, Name mname,
                        std::uint32_t serial, WireTtl minimum) {
  SoaRdata soa;
  soa.mname = std::move(mname);
  soa.rname = zone.prepend("hostmaster");
  soa.serial = serial;
  soa.minimum = minimum;
  return {zone, RClass::kIN, ttl, std::move(soa)};
}

ResourceRecord make_dnskey(const Name& zone, Ttl ttl, std::string key) {
  DnskeyRdata dnskey;
  dnskey.public_key = std::move(key);
  return {zone, RClass::kIN, ttl, std::move(dnskey)};
}

}  // namespace dnsttl::dns
