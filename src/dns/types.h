#ifndef DNSTTL_DNS_TYPES_H
#define DNSTTL_DNS_TYPES_H

#include <cstdint>
#include <string>
#include <string_view>

namespace dnsttl::dns {

/// Resource record types (RFC 1035 §3.2.2 and successors).
/// Values are the IANA-assigned wire values.
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kSRV = 33,
  kOPT = 41,
  kRRSIG = 46,
  kDNSKEY = 48,
  kANY = 255,
};

/// Record classes (RFC 1035 §3.2.4); only IN is used in practice.
enum class RClass : std::uint16_t {
  kIN = 1,
  kCH = 3,
};

/// Response codes (RFC 1035 §4.1.1).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// Query opcodes (RFC 1035 §4.1.1).
enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,
  kUpdate = 5,
};

/// Message sections (RFC 1035 §4.1).
enum class Section : std::uint8_t {
  kQuestion = 0,
  kAnswer = 1,
  kAuthority = 2,
  kAdditional = 3,
};

std::string_view to_string(RRType type);
std::string_view to_string(RClass rclass);
std::string_view to_string(Rcode rcode);
std::string_view to_string(Section section);

/// Parses a type mnemonic ("A", "NS", ...); throws std::invalid_argument on
/// unknown mnemonics.
RRType rrtype_from_string(std::string_view text);

/// TTL type alias: seconds, 32-bit per RFC 2181 §8 (top bit must be zero).
using Ttl = std::uint32_t;

/// Maximum sensible TTL: RFC 2181 §8 caps TTLs at 2^31 - 1.
inline constexpr Ttl kMaxTtl = 0x7fffffff;

/// Common TTL constants used throughout the paper.
inline constexpr Ttl kTtl1Min = 60;
inline constexpr Ttl kTtl5Min = 300;
inline constexpr Ttl kTtl10Min = 600;
inline constexpr Ttl kTtl15Min = 900;
inline constexpr Ttl kTtl1Hour = 3600;
inline constexpr Ttl kTtl2Hours = 7200;
inline constexpr Ttl kTtl4Hours = 14400;
inline constexpr Ttl kTtl6Hours = 21600;
inline constexpr Ttl kTtl12Hours = 43200;
inline constexpr Ttl kTtl1Day = 86400;
inline constexpr Ttl kTtl2Days = 172800;
inline constexpr Ttl kTtl4Days = 345600;
inline constexpr Ttl kTtl1Week = 604800;

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_TYPES_H
