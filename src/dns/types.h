#ifndef DNSTTL_DNS_TYPES_H
#define DNSTTL_DNS_TYPES_H

#include <cstdint>
#include <string>
#include <string_view>

namespace dnsttl::dns {

/// Resource record types (RFC 1035 §3.2.2 and successors).
/// Values are the IANA-assigned wire values.
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kSRV = 33,
  kOPT = 41,
  kRRSIG = 46,
  kDNSKEY = 48,
  kANY = 255,
};

/// Record classes (RFC 1035 §3.2.4); only IN is used in practice.
enum class RClass : std::uint16_t {
  kIN = 1,
  kCH = 3,
};

/// Response codes (RFC 1035 §4.1.1).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// Query opcodes (RFC 1035 §4.1.1).
enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,
  kUpdate = 5,
};

/// Message sections (RFC 1035 §4.1).
enum class Section : std::uint8_t {
  kQuestion = 0,
  kAnswer = 1,
  kAuthority = 2,
  kAdditional = 3,
};

std::string_view to_string(RRType type);
std::string_view to_string(RClass rclass);
std::string_view to_string(Rcode rcode);
std::string_view to_string(Section section);

/// Parses a type mnemonic ("A", "NS", ...); throws std::invalid_argument on
/// unknown mnemonics.
RRType rrtype_from_string(std::string_view text);

/// Maximum sensible TTL in seconds: RFC 2181 §8 caps TTLs at 2^31 - 1.
inline constexpr std::uint32_t kMaxTtlSeconds = 0x7fffffff;

/// Cache time-to-live: whole seconds, 31-bit per RFC 2181 §8.
///
/// A strong type rather than the historical `uint32_t` alias so that a TTL
/// cannot be mistaken for a simulator tick count (microseconds!), silently
/// narrowed into a smaller field, or escape the RFC range.  Construction
/// clamps into [0, 2^31 − 1]; wire-received values additionally follow the
/// RFC 2181 §8 rule that a TTL with the most significant bit set "should be
/// treated as if the entire value received was zero" (`from_wire`).
/// `value()` exposes the seconds count for rendering and for explicit
/// conversions (e.g. `sim::seconds(ttl.value())`).
class Ttl {
 public:
  constexpr Ttl() noexcept = default;

  /// Clamps @p seconds into [0, kMaxTtlSeconds] (RFC 2181 §8 upper bound).
  constexpr explicit Ttl(std::uint32_t seconds) noexcept
      : seconds_(seconds > kMaxTtlSeconds ? kMaxTtlSeconds : seconds) {}

  /// Decodes a TTL received off the wire.  RFC 2181 §8: values with the top
  /// bit set are not a huge TTL but garbage, and must be treated as zero —
  /// never wrapped or sign-flipped into the cache.
  [[nodiscard]] static constexpr Ttl from_wire(std::uint32_t raw) noexcept {
    return Ttl((raw & 0x80000000u) != 0 ? 0u : raw);
  }

  /// Builds a TTL from a (possibly out-of-range) signed second count, as
  /// produced by duration arithmetic; clamps into [0, kMaxTtlSeconds].
  [[nodiscard]] static constexpr Ttl of_seconds(std::int64_t seconds) noexcept {
    if (seconds <= 0) {
      return Ttl();
    }
    if (seconds >= static_cast<std::int64_t>(kMaxTtlSeconds)) {
      return Ttl(kMaxTtlSeconds);
    }
    return Ttl(static_cast<std::uint32_t>(seconds));
  }

  /// Seconds count (always <= kMaxTtlSeconds).
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return seconds_;
  }

  friend constexpr auto operator<=>(Ttl, Ttl) noexcept = default;

 private:
  std::uint32_t seconds_ = 0;
};

inline constexpr Ttl kMaxTtl{kMaxTtlSeconds};

/// An *unclamped* 32-bit TTL field as it appears on the wire or in zone
/// data — the sibling of `Ttl` for the places the protocol stores a raw
/// 32-bit count that must round-trip bit-exactly: RRSIG "original TTL" and
/// the SOA refresh/retry/expire/minimum timers.  Unlike `Ttl` it performs
/// no RFC 2181 §8 clamping (an RRSIG over a record with the top bit set
/// must re-serialize byte-identically or the signature breaks), so it is
/// deliberately NOT convertible to durations or cache TTLs — call
/// `clamped()` at the point a value leaves wire/crypto handling and enters
/// cache or scheduling logic.
class WireTtl {
 public:
  constexpr WireTtl() noexcept = default;
  constexpr explicit WireTtl(std::uint32_t raw) noexcept : raw_(raw) {}

  /// The bit-exact 32-bit field, for serialization and signing.
  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }

  /// Interprets the field as a cache/scheduling TTL (RFC 2181 §8 rules).
  [[nodiscard]] constexpr Ttl clamped() const noexcept {
    return Ttl::from_wire(raw_);
  }

  friend constexpr auto operator<=>(WireTtl, WireTtl) noexcept = default;

 private:
  std::uint32_t raw_ = 0;
};

/// Common TTL constants used throughout the paper.
inline constexpr Ttl kTtl1Min{60};
inline constexpr Ttl kTtl5Min{300};
inline constexpr Ttl kTtl10Min{600};
inline constexpr Ttl kTtl15Min{900};
inline constexpr Ttl kTtl1Hour{3600};
inline constexpr Ttl kTtl2Hours{7200};
inline constexpr Ttl kTtl4Hours{14400};
inline constexpr Ttl kTtl6Hours{21600};
inline constexpr Ttl kTtl12Hours{43200};
inline constexpr Ttl kTtl1Day{86400};
inline constexpr Ttl kTtl2Days{172800};
inline constexpr Ttl kTtl4Days{345600};
inline constexpr Ttl kTtl1Week{604800};

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_TYPES_H
