#include "dns/zone.h"

#include <stdexcept>

namespace dnsttl::dns {

void Zone::add(const ResourceRecord& rr) {
  if (!rr.name.is_subdomain_of(origin_)) {
    throw std::invalid_argument("record " + rr.name.to_string() +
                                " not under zone origin " +
                                origin_.to_string());
  }
  auto& by_type = nodes_[rr.name];
  auto [it, inserted] =
      by_type.try_emplace(rr.type(), rr.name, rr.rclass, rr.ttl);
  it->second.set_ttl(rr.ttl);
  it->second.add(rr.rdata);
}

void Zone::replace(const RRset& rrset) {
  if (rrset.empty()) {
    throw std::invalid_argument("cannot store an empty RRset");
  }
  if (!rrset.name().is_subdomain_of(origin_)) {
    throw std::invalid_argument("RRset not under zone origin");
  }
  nodes_[rrset.name()][rrset.type()] = rrset;
}

bool Zone::remove(const Name& name, RRType type) {
  auto node = nodes_.find(name);
  if (node == nodes_.end()) {
    return false;
  }
  bool erased = node->second.erase(type) > 0;
  if (node->second.empty()) {
    nodes_.erase(node);
  }
  return erased;
}

bool Zone::set_ttl(const Name& name, RRType type, Ttl ttl) {
  auto node = nodes_.find(name);
  if (node == nodes_.end()) {
    return false;
  }
  auto it = node->second.find(type);
  if (it == node->second.end()) {
    return false;
  }
  it->second.set_ttl(ttl);
  return true;
}

bool Zone::renumber_a(const Name& name, Ipv4 address) {
  auto existing = find(name, RRType::kA);
  if (!existing) {
    return false;
  }
  RRset fresh(name, existing->rclass(), existing->ttl());
  fresh.add(ARdata{address});
  replace(fresh);
  return true;
}

bool Zone::renumber_aaaa(const Name& name, Ipv6 address) {
  auto existing = find(name, RRType::kAAAA);
  if (!existing) {
    return false;
  }
  RRset fresh(name, existing->rclass(), existing->ttl());
  fresh.add(AaaaRdata{address});
  replace(fresh);
  return true;
}

std::optional<RRset> Zone::find(const Name& name, RRType type) const {
  auto node = nodes_.find(name);
  if (node == nodes_.end()) {
    return std::nullopt;
  }
  auto it = node->second.find(type);
  if (it == node->second.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Zone::has_node(const Name& name) const { return nodes_.contains(name); }

std::optional<Name> Zone::find_zone_cut(const Name& name) const {
  // Walk from just below the origin down to the name itself, looking for a
  // node with an NS RRset (a delegation).  The apex NS set is not a cut.
  std::size_t origin_depth = origin_.label_count();
  std::size_t name_depth = name.label_count();
  for (std::size_t depth = origin_depth + 1; depth <= name_depth; ++depth) {
    // Ancestor of `name` with `depth` labels.
    Name ancestor = name.suffix(depth);
    auto node = nodes_.find(ancestor);
    if (node != nodes_.end() && node->second.contains(RRType::kNS)) {
      return ancestor;
    }
  }
  return std::nullopt;
}

bool Zone::is_delegated(const Name& name) const {
  return name.is_subdomain_of(origin_) && find_zone_cut(name).has_value();
}

void Zone::attach_glue(const std::vector<ResourceRecord>& ns_records,
                       std::vector<ResourceRecord>& additionals) const {
  for (const auto& rr : ns_records) {
    if (rr.type() != RRType::kNS) {
      continue;  // signed answers interleave RRSIGs with the NS records
    }
    const auto& target = std::get<NsRdata>(rr.rdata).nsdname;
    if (!target.is_subdomain_of(origin_)) {
      continue;  // out-of-bailiwick: no glue available in this zone
    }
    for (RRType type : {RRType::kA, RRType::kAAAA}) {
      if (auto glue = find(target, type)) {
        auto records = glue->to_records();
        additionals.insert(additionals.end(), records.begin(), records.end());
      }
    }
  }
}

void Zone::append_soa_to(std::vector<ResourceRecord>& authorities) const {
  if (auto soa_rr = soa()) {
    authorities.push_back(*soa_rr);
  }
}

LookupResult Zone::lookup_internal(const Name& qname, RRType qtype,
                                   int cname_depth) const {
  LookupResult result;
  if (!qname.is_subdomain_of(origin_)) {
    result.kind = LookupResult::Kind::kNotInZone;
    return result;
  }

  // Delegation check: a zone cut strictly above or at qname ends our
  // authority (RFC 1034 §4.3.2 step 3b).
  if (auto cut = find_zone_cut(qname)) {
    const auto ns_set = find(*cut, RRType::kNS);
    result.kind = LookupResult::Kind::kDelegation;
    result.authoritative = false;
    result.authorities = ns_set->to_records();
    attach_glue(result.authorities, result.additionals);
    return result;
  }

  auto node = nodes_.find(qname);
  if (node != nodes_.end()) {
    // CNAME takes over unless the query asked for CNAME/ANY (RFC 1034
    // §4.3.2 step 3a).
    if (qtype != RRType::kCNAME && qtype != RRType::kANY) {
      if (auto cname = node->second.find(RRType::kCNAME);
          cname != node->second.end()) {
        result.kind = LookupResult::Kind::kAnswer;
        result.authoritative = true;
        auto records = cname->second.to_records();
        result.answers.insert(result.answers.end(), records.begin(),
                              records.end());
        // Chase the chain inside this zone where possible; bounded depth
        // guards against CNAME loops (RFC 1034 warns of them).
        const auto& target = std::get<CnameRdata>(records.front().rdata).target;
        if (cname_depth < 8 && target.is_subdomain_of(origin_) &&
            target != qname) {
          auto chased = lookup_internal(target, qtype, cname_depth + 1);
          result.answers.insert(result.answers.end(), chased.answers.begin(),
                                chased.answers.end());
        }
        return result;
      }
    }

    if (qtype == RRType::kANY) {
      result.kind = LookupResult::Kind::kAnswer;
      result.authoritative = true;
      for (const auto& [type, rrset] : node->second) {
        auto records = rrset.to_records();
        result.answers.insert(result.answers.end(), records.begin(),
                              records.end());
      }
      return result;
    }

    if (auto it = node->second.find(qtype); it != node->second.end()) {
      result.kind = LookupResult::Kind::kAnswer;
      result.authoritative = true;
      result.answers = it->second.to_records();
      // Covering RRSIGs ride along with signed answers (DNSSEC-lite).
      if (qtype != RRType::kRRSIG) {
        if (auto sigs = node->second.find(RRType::kRRSIG);
            sigs != node->second.end()) {
          for (const auto& rdata : sigs->second.rdatas()) {
            if (std::get<RrsigRdata>(rdata).type_covered == qtype) {
              result.answers.push_back(ResourceRecord{
                  qname, sigs->second.rclass(), sigs->second.ttl(), rdata});
            }
          }
        }
      }
      // Helpful additionals, as real servers send them: addresses for NS/MX
      // targets inside the zone (the paper's Table 1 "Add." rows).
      if (qtype == RRType::kNS) {
        attach_glue(result.answers, result.additionals);
      } else if (qtype == RRType::kMX) {
        for (const auto& rr : result.answers) {
          if (rr.type() != RRType::kMX) {
            continue;
          }
          const auto& exchange = std::get<MxRdata>(rr.rdata).exchange;
          if (!exchange.is_subdomain_of(origin_)) {
            continue;
          }
          for (RRType type : {RRType::kA, RRType::kAAAA}) {
            if (auto addr = find(exchange, type)) {
              auto records = addr->to_records();
              result.additionals.insert(result.additionals.end(),
                                        records.begin(), records.end());
            }
          }
        }
      }
      return result;
    }

    // Node exists but not this type: NODATA.
    result.kind = LookupResult::Kind::kNoData;
    result.authoritative = true;
    append_soa_to(result.authorities);
    return result;
  }

  // Empty non-terminal check: a name exists implicitly if anything lives
  // below it (RFC 8020).  Canonical ordering places all subdomains of qname
  // in a contiguous range immediately after it, so one probe suffices.
  if (auto it = nodes_.upper_bound(qname);
      it != nodes_.end() && it->first.is_strict_subdomain_of(qname)) {
    result.kind = LookupResult::Kind::kNoData;
    result.authoritative = true;
    append_soa_to(result.authorities);
    return result;
  }

  result.kind = LookupResult::Kind::kNxDomain;
  result.authoritative = true;
  append_soa_to(result.authorities);
  return result;
}

std::vector<RRset> Zone::all_rrsets() const {
  std::vector<RRset> out;
  for (const auto& [name, by_type] : nodes_) {
    for (const auto& [type, rrset] : by_type) {
      out.push_back(rrset);
    }
  }
  return out;
}

std::size_t Zone::rrset_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [name, by_type] : nodes_) {
    count += by_type.size();
  }
  return count;
}

bool Zone::bump_serial() {
  auto node = nodes_.find(origin_);
  if (node == nodes_.end()) {
    return false;
  }
  auto it = node->second.find(RRType::kSOA);
  if (it == node->second.end() || it->second.empty()) {
    return false;
  }
  RRset updated(origin_, it->second.rclass(), it->second.ttl());
  for (auto rdata : it->second.rdatas()) {
    ++std::get<SoaRdata>(rdata).serial;
    updated.add(std::move(rdata));
  }
  it->second = std::move(updated);
  return true;
}

std::optional<ResourceRecord> Zone::soa() const {
  if (auto rrset = find(origin_, RRType::kSOA); rrset && !rrset->empty()) {
    return rrset->to_records().front();
  }
  return std::nullopt;
}

}  // namespace dnsttl::dns
