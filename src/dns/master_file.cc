#include "dns/master_file.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

namespace dnsttl::dns {

namespace {

/// One logical line, parentheses-joined, comments stripped, tokenized.
/// Tracks whether the raw line began with whitespace (owner repetition).
struct LogicalLine {
  std::size_t number = 0;
  bool leading_whitespace = false;
  std::vector<std::string> tokens;
};

/// Strips a ';' comment (quote-aware) from one raw line.
std::string strip_comment(std::string_view line) {
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') {
      quoted = !quoted;
    } else if (line[i] == ';' && !quoted) {
      return std::string(line.substr(0, i));
    }
  }
  return std::string(line);
}

std::vector<std::string> tokenize(std::size_t line_no, std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      std::size_t end = text.find('"', i + 1);
      if (end == std::string_view::npos) {
        throw MasterFileError(line_no, "unterminated quoted string");
      }
      tokens.emplace_back(text.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    std::size_t end = i;
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end])) == 0 &&
           text[end] != '"') {
      ++end;
    }
    tokens.emplace_back(text.substr(i, end - i));
    i = end;
  }
  return tokens;
}

/// Splits text into logical lines, joining across ( ... ).
std::vector<LogicalLine> logical_lines(std::string_view text) {
  std::vector<LogicalLine> lines;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  int paren_depth = 0;
  LogicalLine current;

  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view raw = eol == std::string_view::npos
                               ? text.substr(pos)
                               : text.substr(pos, eol - pos);
    ++line_no;
    std::string stripped = strip_comment(raw);

    if (paren_depth == 0) {
      current = LogicalLine{};
      current.number = line_no;
      current.leading_whitespace =
          !stripped.empty() &&
          std::isspace(static_cast<unsigned char>(stripped[0])) != 0;
    }
    for (auto& token : tokenize(line_no, stripped)) {
      // Parentheses may be glued to tokens; handle the standalone forms
      // plus leading '(' / trailing ')'.
      std::string body = token;
      while (!body.empty() && body.front() == '(') {
        ++paren_depth;
        body.erase(body.begin());
      }
      int trailing = 0;
      while (!body.empty() && body.back() == ')') {
        ++trailing;
        body.pop_back();
      }
      if (!body.empty()) {
        current.tokens.push_back(body);
      }
      paren_depth -= trailing;
      if (paren_depth < 0) {
        throw MasterFileError(line_no, "unbalanced ')'");
      }
    }
    if (paren_depth == 0 && !current.tokens.empty()) {
      lines.push_back(current);
      current.tokens.clear();
    }
    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 1;
  }
  if (paren_depth != 0) {
    throw MasterFileError(line_no, "unbalanced '('");
  }
  return lines;
}

bool is_number(const std::string& token) {
  return !token.empty() &&
         std::all_of(token.begin(), token.end(), [](unsigned char c) {
           return std::isdigit(c) != 0;
         });
}

std::uint32_t parse_u32(std::size_t line, const std::string& token) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw MasterFileError(line, "bad number: " + token);
  }
  return value;
}

Name parse_name(std::size_t line, const std::string& token,
                const Name& origin) {
  try {
    if (token == "@") {
      return origin;
    }
    if (!token.empty() && token.back() == '.') {
      return Name::from_string(token);
    }
    // Relative name: append the origin.
    Name relative = Name::from_string(token);
    std::vector<std::string> labels = relative.labels();
    std::vector<std::string> origin_labels = origin.labels();
    labels.insert(labels.end(), origin_labels.begin(), origin_labels.end());
    return Name(labels);
  } catch (const std::invalid_argument& error) {
    throw MasterFileError(line, error.what());
  }
}

}  // namespace

Zone parse_master_file(std::string_view text, const Name& default_origin) {
  Zone zone{default_origin};
  Name origin = default_origin;
  Ttl default_ttl{3600};
  std::optional<Name> previous_owner;

  for (const auto& line : logical_lines(text)) {
    std::size_t cursor = 0;
    const auto& tokens = line.tokens;

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        throw MasterFileError(line.number, "$ORIGIN needs one argument");
      }
      origin = parse_name(line.number, tokens[1], Name{});
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) {
        throw MasterFileError(line.number, "$TTL needs one argument");
      }
      default_ttl = Ttl(parse_u32(line.number, tokens[1]));
      continue;
    }
    if (tokens[0].starts_with("$")) {
      throw MasterFileError(line.number, "unsupported directive " + tokens[0]);
    }

    // Owner: explicit unless the raw line began with whitespace.
    Name owner;
    if (line.leading_whitespace) {
      if (!previous_owner) {
        throw MasterFileError(line.number,
                              "record with no previous owner to repeat");
      }
      owner = *previous_owner;
    } else {
      owner = parse_name(line.number, tokens[cursor++], origin);
    }
    previous_owner = owner;

    // Optional TTL and class, in either order.
    Ttl ttl = default_ttl;
    for (int i = 0; i < 2 && cursor < tokens.size(); ++i) {
      if (is_number(tokens[cursor])) {
        ttl = Ttl(parse_u32(line.number, tokens[cursor]));
        ++cursor;
      } else if (tokens[cursor] == "IN" || tokens[cursor] == "CH") {
        ++cursor;  // class accepted and ignored (always IN here)
      }
    }
    if (cursor >= tokens.size()) {
      throw MasterFileError(line.number, "missing record type");
    }

    std::string type = tokens[cursor++];
    auto need = [&](std::size_t count) {
      if (tokens.size() - cursor < count) {
        throw MasterFileError(line.number,
                              type + " record needs more fields");
      }
    };

    ResourceRecord rr;
    rr.name = owner;
    rr.ttl = ttl;
    if (type == "A") {
      need(1);
      try {
        rr.rdata = ARdata{Ipv4::from_string(tokens[cursor])};
      } catch (const std::invalid_argument& error) {
        throw MasterFileError(line.number, error.what());
      }
    } else if (type == "AAAA") {
      need(1);
      try {
        rr.rdata = AaaaRdata{Ipv6::from_string(tokens[cursor])};
      } catch (const std::invalid_argument& error) {
        throw MasterFileError(line.number, error.what());
      }
    } else if (type == "NS") {
      need(1);
      rr.rdata = NsRdata{parse_name(line.number, tokens[cursor], origin)};
    } else if (type == "CNAME") {
      need(1);
      rr.rdata = CnameRdata{parse_name(line.number, tokens[cursor], origin)};
    } else if (type == "MX") {
      need(2);
      MxRdata mx;
      mx.preference =
          static_cast<std::uint16_t>(parse_u32(line.number, tokens[cursor]));
      mx.exchange = parse_name(line.number, tokens[cursor + 1], origin);
      rr.rdata = std::move(mx);
    } else if (type == "PTR") {
      need(1);
      rr.rdata = PtrRdata{parse_name(line.number, tokens[cursor], origin)};
    } else if (type == "SRV") {
      need(4);
      SrvRdata srv;
      srv.priority =
          static_cast<std::uint16_t>(parse_u32(line.number, tokens[cursor]));
      srv.weight = static_cast<std::uint16_t>(
          parse_u32(line.number, tokens[cursor + 1]));
      srv.port = static_cast<std::uint16_t>(
          parse_u32(line.number, tokens[cursor + 2]));
      srv.target = parse_name(line.number, tokens[cursor + 3], origin);
      rr.rdata = std::move(srv);
    } else if (type == "TXT") {
      need(1);
      std::string joined;
      for (std::size_t i = cursor; i < tokens.size(); ++i) {
        joined += tokens[i];
        if (i + 1 < tokens.size()) joined += " ";
      }
      rr.rdata = TxtRdata{std::move(joined)};
    } else if (type == "SOA") {
      need(7);
      SoaRdata soa;
      soa.mname = parse_name(line.number, tokens[cursor], origin);
      soa.rname = parse_name(line.number, tokens[cursor + 1], origin);
      soa.serial = parse_u32(line.number, tokens[cursor + 2]);
      soa.refresh = WireTtl{parse_u32(line.number, tokens[cursor + 3])};
      soa.retry = WireTtl{parse_u32(line.number, tokens[cursor + 4])};
      soa.expire = WireTtl{parse_u32(line.number, tokens[cursor + 5])};
      soa.minimum = WireTtl{parse_u32(line.number, tokens[cursor + 6])};
      rr.rdata = std::move(soa);
    } else if (type == "DNSKEY") {
      need(4);
      DnskeyRdata key;
      key.flags =
          static_cast<std::uint16_t>(parse_u32(line.number, tokens[cursor]));
      key.protocol =
          static_cast<std::uint8_t>(parse_u32(line.number, tokens[cursor + 1]));
      key.algorithm =
          static_cast<std::uint8_t>(parse_u32(line.number, tokens[cursor + 2]));
      key.public_key = tokens[cursor + 3];
      rr.rdata = std::move(key);
    } else {
      throw MasterFileError(line.number, "unsupported record type " + type);
    }

    try {
      zone.add(rr);
    } catch (const std::invalid_argument& error) {
      throw MasterFileError(line.number, error.what());
    }
  }
  return zone;
}

std::string render_master_file(const Zone& zone) {
  std::string out = "$ORIGIN " + zone.origin().to_string() + "\n";
  for (const auto& rrset : zone.all_rrsets()) {
    for (const auto& rr : rrset.to_records()) {
      out += rr.to_string() + "\n";
    }
  }
  return out;
}

}  // namespace dnsttl::dns
