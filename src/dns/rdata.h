#ifndef DNSTTL_DNS_RDATA_H
#define DNSTTL_DNS_RDATA_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "dns/name.h"
#include "dns/types.h"

namespace dnsttl::dns {

/// IPv4 address, host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad text; throws std::invalid_argument on bad input.
  static Ipv4 from_string(std::string_view text);

  std::string to_string() const;
  constexpr std::uint32_t value() const noexcept { return value_; }

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address, network byte order octets.
class Ipv6 {
 public:
  Ipv6() { octets_.fill(0); }
  explicit Ipv6(std::array<std::uint8_t, 16> octets) : octets_(octets) {}

  /// Parses RFC 4291 text form, including "::" compression.  Throws
  /// std::invalid_argument on malformed input.  (No embedded-IPv4 form.)
  static Ipv6 from_string(std::string_view text);

  /// Canonical lower-case text with best "::" compression (RFC 5952).
  std::string to_string() const;

  const std::array<std::uint8_t, 16>& octets() const noexcept {
    return octets_;
  }

  auto operator<=>(const Ipv6&) const = default;

 private:
  std::array<std::uint8_t, 16> octets_;
};

/// Typed RDATA payloads.  Each mirrors the RFC 1035 / 3596 / 4034 layout.
struct ARdata {
  Ipv4 address;
  auto operator<=>(const ARdata&) const = default;
};

struct AaaaRdata {
  Ipv6 address;
  auto operator<=>(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  auto operator<=>(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  auto operator<=>(const CnameRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  WireTtl refresh{7200};
  WireTtl retry{3600};
  WireTtl expire{1209600};
  WireTtl minimum{3600};  // negative-caching TTL (RFC 2308)
  auto operator<=>(const SoaRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 10;
  Name exchange;
  auto operator<=>(const MxRdata&) const = default;
};

struct TxtRdata {
  std::string text;
  auto operator<=>(const TxtRdata&) const = default;
};

/// PTR (RFC 1035 §3.3.12): reverse-mapping target name.
struct PtrRdata {
  Name target;
  auto operator<=>(const PtrRdata&) const = default;
};

/// SRV (RFC 2782): service location — the "service location lookups" of
/// the paper's introduction.
struct SrvRdata {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  Name target;
  auto operator<=>(const SrvRdata&) const = default;
};

struct DnskeyRdata {
  std::uint16_t flags = 256;  // ZSK
  std::uint8_t protocol = 3;
  std::uint8_t algorithm = 8;  // RSASHA256
  std::string public_key;
  auto operator<=>(const DnskeyRdata&) const = default;
};

struct RrsigRdata {
  RRType type_covered = RRType::kA;
  std::uint8_t algorithm = 8;
  std::uint8_t labels = 0;
  // RFC 4034 §3.1.4: hashed into the signature bit-exactly, so it stays a
  // WireTtl (no RFC 2181 clamp) until a validator calls `.clamped()`.
  WireTtl original_ttl{};
  std::uint32_t expiration = 0;
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  std::string signature;
  auto operator<=>(const RrsigRdata&) const = default;
};

/// OPT pseudo-record payload (RFC 6891); carries only the UDP size here.
struct OptRdata {
  std::uint16_t udp_payload_size = 1232;
  auto operator<=>(const OptRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, SoaRdata,
                           MxRdata, TxtRdata, PtrRdata, SrvRdata,
                           DnskeyRdata, RrsigRdata, OptRdata>;

/// The RRType corresponding to the active alternative of @p rdata.
RRType rdata_type(const Rdata& rdata);

/// Presentation format of the RDATA fields (without owner/TTL/class/type).
std::string rdata_to_string(const Rdata& rdata);

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_RDATA_H
