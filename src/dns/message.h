#ifndef DNSTTL_DNS_MESSAGE_H
#define DNSTTL_DNS_MESSAGE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"

namespace dnsttl::dns {

/// A question entry (RFC 1035 §4.1.2).
struct Question {
  Name qname;
  RRType qtype = RRType::kA;
  RClass qclass = RClass::kIN;

  std::string to_string() const;
  bool operator==(const Question&) const = default;
};

/// Header flags (RFC 1035 §4.1.1).
struct HeaderFlags {
  bool qr = false;  ///< response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = true;   ///< recursion desired
  bool ra = false;  ///< recursion available
  Rcode rcode = Rcode::kNoError;

  bool operator==(const HeaderFlags&) const = default;
};

/// A complete DNS message with the four RFC 1035 sections.
///
/// This is the single unit exchanged between stubs, recursive resolvers and
/// authoritative servers throughout the simulator; the same struct round-trips
/// through the RFC 1035 wire codec (wire.h).
struct Message {
  std::uint16_t id = 0;
  HeaderFlags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Builds a standard recursive query for (qname, qtype).
  static Message make_query(std::uint16_t id, Name qname, RRType qtype,
                            bool recursion_desired = true);

  /// Adds an EDNS0 OPT pseudo-record advertising @p udp_payload_size
  /// (RFC 6891).  Without one, a server must assume the 512-byte RFC 1035
  /// limit.
  void add_edns(std::uint16_t udp_payload_size = 1232);

  /// The advertised EDNS0 UDP payload size, or nullopt if no OPT present.
  std::optional<std::uint16_t> edns_udp_size() const;

  /// Starts a response to @p query: copies id and question, sets QR.
  static Message make_response(const Message& query);

  const Question& question() const { return questions.at(0); }

  /// Records of the given section (questions excluded).
  const std::vector<ResourceRecord>& section(Section s) const;
  std::vector<ResourceRecord>& section(Section s);

  /// All answer-section records of (name, type), as an RRset;
  /// nullopt if none match.
  std::optional<RRset> answer_rrset(const Name& name, RRType type) const;

  /// First answer record of @p type regardless of owner (used to follow
  /// CNAME chains in responses); nullptr if absent.
  const ResourceRecord* first_answer(RRType type) const;

  /// True when the answer section is empty and rcode is NOERROR/NXDOMAIN —
  /// i.e. a referral or negative answer.
  bool is_referral() const;

  /// Multi-line dig-style rendering, for logs and examples.
  std::string to_string() const;

  bool operator==(const Message&) const = default;
};

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_MESSAGE_H
