#include "dns/types.h"

#include <stdexcept>

namespace dnsttl::dns {

std::string_view to_string(RRType type) {
  switch (type) {
    case RRType::kA:
      return "A";
    case RRType::kNS:
      return "NS";
    case RRType::kCNAME:
      return "CNAME";
    case RRType::kSOA:
      return "SOA";
    case RRType::kPTR:
      return "PTR";
    case RRType::kMX:
      return "MX";
    case RRType::kTXT:
      return "TXT";
    case RRType::kAAAA:
      return "AAAA";
    case RRType::kSRV:
      return "SRV";
    case RRType::kOPT:
      return "OPT";
    case RRType::kRRSIG:
      return "RRSIG";
    case RRType::kDNSKEY:
      return "DNSKEY";
    case RRType::kANY:
      return "ANY";
  }
  return "TYPE?";
}

std::string_view to_string(RClass rclass) {
  switch (rclass) {
    case RClass::kIN:
      return "IN";
    case RClass::kCH:
      return "CH";
  }
  return "CLASS?";
}

std::string_view to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError:
      return "NOERROR";
    case Rcode::kFormErr:
      return "FORMERR";
    case Rcode::kServFail:
      return "SERVFAIL";
    case Rcode::kNXDomain:
      return "NXDOMAIN";
    case Rcode::kNotImp:
      return "NOTIMP";
    case Rcode::kRefused:
      return "REFUSED";
  }
  return "RCODE?";
}

std::string_view to_string(Section section) {
  switch (section) {
    case Section::kQuestion:
      return "question";
    case Section::kAnswer:
      return "answer";
    case Section::kAuthority:
      return "authority";
    case Section::kAdditional:
      return "additional";
  }
  return "section?";
}

RRType rrtype_from_string(std::string_view text) {
  if (text == "A") return RRType::kA;
  if (text == "NS") return RRType::kNS;
  if (text == "CNAME") return RRType::kCNAME;
  if (text == "SOA") return RRType::kSOA;
  if (text == "PTR") return RRType::kPTR;
  if (text == "MX") return RRType::kMX;
  if (text == "SRV") return RRType::kSRV;
  if (text == "TXT") return RRType::kTXT;
  if (text == "AAAA") return RRType::kAAAA;
  if (text == "OPT") return RRType::kOPT;
  if (text == "RRSIG") return RRType::kRRSIG;
  if (text == "DNSKEY") return RRType::kDNSKEY;
  if (text == "ANY") return RRType::kANY;
  throw std::invalid_argument("unknown RR type mnemonic: " + std::string(text));
}

}  // namespace dnsttl::dns
