#ifndef DNSTTL_DNS_WIRE_H
#define DNSTTL_DNS_WIRE_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/name.h"

namespace dnsttl::dns {

/// Thrown on malformed wire data (truncation, bad pointers, bad lengths).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes DNS data into RFC 1035 wire format with name compression
/// (§4.1.4).  Compression targets are remembered for every name written
/// whose offset fits in the 14-bit pointer space.
class WireWriter {
 public:
  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void bytes(std::span<const std::uint8_t> data);

  /// Writes @p name using compression pointers where a suffix was already
  /// emitted.
  void name(const Name& name);

  /// Writes @p name without compression and without registering it
  /// (required inside RDATA of types not in the RFC 3597 compression list;
  /// we compress only NS/CNAME/SOA/MX targets, like BIND).
  void name_uncompressed(const Name& name);

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() && { return std::move(buffer_); }

  /// Patches a previously written u16 at @p offset (for RDLENGTH back-fill).
  void patch_u16(std::size_t offset, std::uint16_t value);

 private:
  std::vector<std::uint8_t> buffer_;
  // Maps a name suffix (presentation form) to its first wire offset.
  std::unordered_map<std::string, std::uint16_t> offsets_;
};

/// Reads RFC 1035 wire format; bounds-checked, loop-safe pointer chasing.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::vector<std::uint8_t> bytes(std::size_t count);

  /// Decodes a (possibly compressed) domain name at the cursor.
  Name name();

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool at_end() const noexcept { return offset_ == data_.size(); }
  void seek(std::size_t offset);

 private:
  void require(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Encodes a full message into wire format.
std::vector<std::uint8_t> encode(const Message& message);

/// Decodes a full message; throws WireError on malformed input.
Message decode(std::span<const std::uint8_t> wire);

/// Wire size of the encoded message (convenience; encodes internally).
std::size_t encoded_size(const Message& message);

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_WIRE_H
