#ifndef DNSTTL_DNS_NAME_H
#define DNSTTL_DNS_NAME_H

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dnsttl::dns {

/// A fully-qualified DNS domain name.
///
/// Labels are stored in presentation order (leftmost / most specific first),
/// canonicalized to lower case (DNS names are case-insensitive, RFC 1035
/// §2.3.3).  The root name has zero labels.
///
/// Invariants (RFC 1035 §3.1): every label is 1..63 octets; the wire-format
/// length of the whole name (labels + length octets + terminating zero) is
/// at most 255 octets.  Construction enforces both.
class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Builds a name from explicit labels, most specific first.
  /// Throws std::invalid_argument on label/name length violations.
  explicit Name(std::vector<std::string> labels);

  /// Parses presentation format ("www.example.org", trailing dot optional,
  /// "." is the root).  Throws std::invalid_argument on malformed input.
  static Name from_string(std::string_view text);

  /// Presentation format with trailing dot ("www.example.org.", root = ".").
  std::string to_string() const;

  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }
  const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// The label at @p i, 0 = most specific.
  const std::string& label(std::size_t i) const { return labels_.at(i); }

  /// Name with the most specific label removed; parent of the root is root.
  Name parent() const;

  /// New name @p label + "." + *this.  Throws on invalid label.
  Name prepend(std::string_view label) const;

  /// True if *this is @p ancestor or is below it in the tree (RFC 8499:
  /// every domain is a subdomain of itself).
  bool is_subdomain_of(const Name& ancestor) const noexcept;

  /// True if *this is strictly below @p ancestor.
  bool is_strict_subdomain_of(const Name& ancestor) const noexcept;

  /// Bailiwick test (RFC 8499): a server name is in bailiwick of a zone if
  /// it is a subdomain of the zone origin.  Alias for is_subdomain_of.
  bool in_bailiwick_of(const Name& zone) const noexcept {
    return is_subdomain_of(zone);
  }

  /// Number of trailing labels shared with @p other (length of the longest
  /// common ancestor).
  std::size_t common_suffix_labels(const Name& other) const noexcept;

  /// Wire-format length in octets (length bytes + labels + root byte).
  std::size_t wire_length() const noexcept;

  /// Canonical DNS ordering (RFC 4034 §6.1): compare label-by-label from the
  /// rightmost (least specific) label.
  std::strong_ordering operator<=>(const Name& other) const noexcept;
  bool operator==(const Name& other) const noexcept = default;

 private:
  std::vector<std::string> labels_;
};

std::ostream& operator<<(std::ostream& os, const Name& name);

}  // namespace dnsttl::dns

template <>
struct std::hash<dnsttl::dns::Name> {
  std::size_t operator()(const dnsttl::dns::Name& n) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const auto& label : n.labels()) {
      for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
      h ^= 0xffULL;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

#endif  // DNSTTL_DNS_NAME_H
