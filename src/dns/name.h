#ifndef DNSTTL_DNS_NAME_H
#define DNSTTL_DNS_NAME_H

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dnsttl::dns {

/// A fully-qualified DNS domain name.
///
/// Labels are stored in presentation order (leftmost / most specific first),
/// canonicalized to lower case (DNS names are case-insensitive, RFC 1035
/// §2.3.3).  The root name has zero labels.
///
/// Storage is a single contiguous length-prefixed buffer — for each label a
/// length octet followed by the label bytes, i.e. the uncompressed wire form
/// minus the terminating root octet.  Short names therefore live entirely in
/// the std::string small-buffer and a Name costs at most one allocation,
/// where the previous vector<string> layout paid one per label.  A 64-bit
/// FNV-1a hash over the labels is computed once at construction and reused
/// by the cache index, forwarder sharding and std::hash.
///
/// Invariants (RFC 1035 §3.1): every label is 1..63 octets; the wire-format
/// length of the whole name (labels + length octets + terminating zero) is
/// at most 255 octets.  Construction enforces both.
class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Builds a name from explicit labels, most specific first.
  /// Throws std::invalid_argument on label/name length violations.
  explicit Name(const std::vector<std::string>& labels);

  /// Parses presentation format ("www.example.org", trailing dot optional,
  /// "." is the root).  Throws std::invalid_argument on malformed input.
  static Name from_string(std::string_view text);

  /// Presentation format with trailing dot ("www.example.org.", root = ".").
  std::string to_string() const;

  bool is_root() const noexcept { return data_.empty(); }
  std::size_t label_count() const noexcept { return label_count_; }

  /// The labels, most specific first, materialized into owned strings.
  /// Cold-path convenience; hot paths should use label()/suffix().
  std::vector<std::string> labels() const;

  /// The label at @p i, 0 = most specific.  The view borrows from this
  /// Name's buffer.  Throws std::out_of_range on a bad index.
  std::string_view label(std::size_t i) const;

  /// Name with the most specific label removed; parent of the root is root.
  Name parent() const;

  /// The trailing @p count labels as a Name (count >= label_count() returns
  /// a copy of *this).  Single tail-copy of the flat buffer: O(size), no
  /// per-label allocation.
  Name suffix(std::size_t count) const;

  /// New name @p label + "." + *this.  Throws on invalid label.
  Name prepend(std::string_view label) const;

  /// True if *this is @p ancestor or is below it in the tree (RFC 8499:
  /// every domain is a subdomain of itself).
  bool is_subdomain_of(const Name& ancestor) const noexcept;

  /// True if *this is strictly below @p ancestor.
  bool is_strict_subdomain_of(const Name& ancestor) const noexcept;

  /// Bailiwick test (RFC 8499): a server name is in bailiwick of a zone if
  /// it is a subdomain of the zone origin.  Alias for is_subdomain_of.
  bool in_bailiwick_of(const Name& zone) const noexcept {
    return is_subdomain_of(zone);
  }

  /// Number of trailing labels shared with @p other (length of the longest
  /// common ancestor).
  std::size_t common_suffix_labels(const Name& other) const noexcept;

  /// Wire-format length in octets (length bytes + labels + root byte).
  std::size_t wire_length() const noexcept { return data_.size() + 1; }

  /// The cached 64-bit hash (FNV-1a over labels with a separator, matching
  /// what std::hash<Name> always produced for this library).
  std::uint64_t hash() const noexcept { return hash_; }

  /// Deep structural audit: every length prefix in 1..63 and consistent
  /// with the buffer size, all bytes lowercased, no '.' inside a label,
  /// label_count/wire-length agreement, and the incrementally maintained
  /// FNV-1a hash equal to a from-scratch recomputation.  Throws
  /// check::AuditError on violation.  Compiled in every build; invoked
  /// automatically after construction only when built with DNSTTL_AUDIT=ON.
  void validate() const;

  /// Canonical DNS ordering (RFC 4034 §6.1): compare label-by-label from the
  /// rightmost (least specific) label.
  std::strong_ordering operator<=>(const Name& other) const noexcept;
  bool operator==(const Name& other) const noexcept {
    return hash_ == other.hash_ && data_ == other.data_;
  }

 private:
  friend class NameBuilder;

  /// Validates, lowercases and appends one label, updating the hash.
  void append_label(std::string_view label);
  /// Enforces the 255-octet wire limit after all labels are appended.
  void check_total_length() const;
  /// Builds a Name from a trailing slice of an existing flat buffer.
  static Name from_tail(std::string_view tail, std::size_t count);

  static constexpr std::uint64_t kHashBasis = 0xcbf29ce484222325ULL;

  std::string data_;  ///< length-prefixed lowercased labels, no root octet
  std::uint64_t hash_ = kHashBasis;
  std::uint8_t label_count_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Name& name);

}  // namespace dnsttl::dns

template <>
struct std::hash<dnsttl::dns::Name> {
  std::size_t operator()(const dnsttl::dns::Name& n) const noexcept {
    return static_cast<std::size_t>(n.hash());
  }
};

#endif  // DNSTTL_DNS_NAME_H
