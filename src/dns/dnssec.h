#ifndef DNSTTL_DNS_DNSSEC_H
#define DNSTTL_DNS_DNSSEC_H

#include <string>

#include "dns/rr.h"
#include "dns/zone.h"

namespace dnsttl::dns {

/// DNSSEC-lite: the structural half of RFC 4033-4035, without real
/// cryptography.
///
/// The paper leans on DNSSEC for one argument (§2, §6.3): *validators must
/// fetch records from the child zone*, because only the child's RRSIGs
/// cover the authoritative TTL values — which pushes the ecosystem toward
/// child-centric resolution.  To exercise that code path the library
/// implements signing and verification with a deterministic digest in
/// place of RSA: signatures are unforgeable within the simulation (any
/// mutation of the RRset or key changes the digest) but obviously not
/// cryptographically secure.
///
/// Simplifications (documented in DESIGN.md): no chain-of-trust walk to a
/// root anchor (a zone's own DNSKEY is the trust point), no NSEC denial of
/// existence, no key rollover machinery.

/// RFC 4034 Appendix B-style key tag (deterministic digest of the key).
std::uint16_t key_tag(const DnskeyRdata& key);

/// Deterministic "signature" over the canonical form of @p rrset with
/// @p key.  Stands in for the RSA signature bytes.
std::string compute_signature(const RRset& rrset, const DnskeyRdata& key);

/// Builds the RRSIG record covering @p rrset, signed by @p signer's key.
/// The RRSIG carries the RRset's TTL (RFC 4034 §3: TTL must equal the TTL
/// of the covered RRset).
ResourceRecord make_rrsig(const RRset& rrset, const Name& signer,
                          const DnskeyRdata& key);

/// Verifies @p sig over @p rrset with @p key: recomputes the digest and
/// checks signer consistency.
bool verify_rrsig(const RRset& rrset, const RrsigRdata& sig,
                  const DnskeyRdata& key);

/// Signs a zone in place: installs the DNSKEY at the apex and an RRSIG for
/// every authoritative RRset.  Delegation NS sets and glue below zone cuts
/// are not signed (RFC 4035 §2.2), which is exactly why the parent's copy
/// can never carry validated TTLs.
void sign_zone(Zone& zone, const DnskeyRdata& key);

/// Convenience: a deterministic zone-signing key derived from the origin.
DnskeyRdata make_zone_key(const Name& origin);

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_DNSSEC_H
