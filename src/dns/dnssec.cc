#include "dns/dnssec.h"

#include <cstdio>

namespace dnsttl::dns {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::string_view data) {
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_u32(std::uint64_t hash, std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", value);
  return fnv1a(hash, buf);
}

/// Digest of the canonical RRset content: owner, type, TTL and every
/// rdata's presentation form (sorted by the map-backed zone storage is
/// already deterministic; we hash in stored order).
std::uint64_t rrset_digest(const RRset& rrset, const DnskeyRdata& key) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = fnv1a(hash, rrset.name().to_string());
  hash = fnv1a(hash, to_string(rrset.type()));
  hash = fnv1a_u32(hash, rrset.ttl().value());
  for (const auto& rdata : rrset.rdatas()) {
    hash = fnv1a(hash, rdata_to_string(rdata));
  }
  hash = fnv1a(hash, key.public_key);
  hash = fnv1a_u32(hash, key.flags);
  return hash;
}

}  // namespace

std::uint16_t key_tag(const DnskeyRdata& key) {
  std::uint64_t hash = fnv1a(0xcbf29ce484222325ULL, key.public_key);
  hash = fnv1a_u32(hash, key.flags);
  return static_cast<std::uint16_t>(hash & 0xffff);
}

std::string compute_signature(const RRset& rrset, const DnskeyRdata& key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "sig-%016llx",
                static_cast<unsigned long long>(rrset_digest(rrset, key)));
  return buf;
}

ResourceRecord make_rrsig(const RRset& rrset, const Name& signer,
                          const DnskeyRdata& key) {
  RrsigRdata sig;
  sig.type_covered = rrset.type();
  sig.algorithm = key.algorithm;
  sig.labels = static_cast<std::uint8_t>(rrset.name().label_count());
  sig.original_ttl = WireTtl{rrset.ttl().value()};
  sig.inception = 0;
  sig.expiration = 0x7fffffff;  // never expires within an experiment
  sig.key_tag = key_tag(key);
  sig.signer = signer;
  sig.signature = compute_signature(rrset, key);
  return ResourceRecord{rrset.name(), rrset.rclass(), rrset.ttl(),
                        std::move(sig)};
}

bool verify_rrsig(const RRset& rrset, const RrsigRdata& sig,
                  const DnskeyRdata& key) {
  if (sig.type_covered != rrset.type()) {
    return false;
  }
  if (sig.key_tag != key_tag(key)) {
    return false;
  }
  // The signature covers the *original* TTL; a validator reconstructs it
  // (RFC 4035 §5.3.3) so cache countdown does not break validation.
  RRset original = rrset;
  original.set_ttl(sig.original_ttl.clamped());
  return compute_signature(original, key) == sig.signature;
}

void sign_zone(Zone& zone, const DnskeyRdata& key) {
  // Install (or replace) the apex DNSKEY first so it is covered below.
  RRset key_set(zone.origin(), RClass::kIN, Ttl{3600});
  if (auto existing = zone.find(zone.origin(), RRType::kDNSKEY)) {
    key_set = *existing;
  }
  key_set.add(Rdata{key});
  zone.replace(key_set);

  for (const auto& rrset : zone.all_rrsets()) {
    if (rrset.type() == RRType::kRRSIG) {
      continue;
    }
    // Delegation NS sets and anything below a zone cut (glue) are not
    // authoritative here and carry no signature (RFC 4035 §2.2).
    if (zone.is_delegated(rrset.name())) {
      continue;
    }
    zone.add(make_rrsig(rrset, zone.origin(), key));
  }
}

DnskeyRdata make_zone_key(const Name& origin) {
  DnskeyRdata key;
  key.flags = 257;  // KSK-style flags; one key signs everything here
  key.public_key = "zsk-" + origin.to_string();
  return key;
}

}  // namespace dnsttl::dns
