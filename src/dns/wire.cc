#include "dns/wire.h"

#include <cstring>

namespace dnsttl::dns {

namespace {

constexpr std::uint16_t kPointerMask = 0xc000;
constexpr std::size_t kMaxPointerTarget = 0x3fff;

}  // namespace

// ---------------------------------------------------------------- WireWriter

void WireWriter::u8(std::uint8_t value) { buffer_.push_back(value); }

void WireWriter::u16(std::uint16_t value) {
  buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void WireWriter::u32(std::uint32_t value) {
  u16(static_cast<std::uint16_t>(value >> 16));
  u16(static_cast<std::uint16_t>(value & 0xffff));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t value) {
  buffer_.at(offset) = static_cast<std::uint8_t>(value >> 8);
  buffer_.at(offset + 1) = static_cast<std::uint8_t>(value & 0xff);
}

void WireWriter::name(const Name& n) {
  // Emit labels until a known suffix allows a compression pointer.  Each
  // suffix in presentation form is a trailing substring of the full
  // presentation string, so one to_string() serves every map key.
  std::string full = n.to_string();
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    std::string key = full.substr(pos);
    if (auto it = offsets_.find(key); it != offsets_.end()) {
      u16(static_cast<std::uint16_t>(kPointerMask | it->second));
      return;
    }
    if (buffer_.size() <= kMaxPointerTarget) {
      offsets_.emplace(std::move(key),
                       static_cast<std::uint16_t>(buffer_.size()));
    }
    std::string_view label = n.label(i);
    u8(static_cast<std::uint8_t>(label.size()));
    bytes(std::span(reinterpret_cast<const std::uint8_t*>(label.data()),
                    label.size()));
    pos += label.size() + 1;
  }
  u8(0);  // root label
}

void WireWriter::name_uncompressed(const Name& n) {
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    std::string_view label = n.label(i);
    u8(static_cast<std::uint8_t>(label.size()));
    bytes(std::span(reinterpret_cast<const std::uint8_t*>(label.data()),
                    label.size()));
  }
  u8(0);
}

// ---------------------------------------------------------------- WireReader

void WireReader::require(std::size_t count) const {
  // Subtraction form: `offset_ + count` could wrap for hostile counts.
  if (count > data_.size() - offset_) {
    throw WireError("truncated DNS message");
  }
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[offset_] << 8) |
                    data_[offset_ + 1];
  offset_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  std::uint32_t hi = u16();
  std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::vector<std::uint8_t> WireReader::bytes(std::size_t count) {
  require(count);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(offset_),
                                data_.begin() +
                                    static_cast<long>(offset_ + count));
  offset_ += count;
  return out;
}

void WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw WireError("seek past end of message");
  }
  offset_ = offset;
}

Name WireReader::name() {
  std::vector<std::string> labels;
  std::size_t cursor = offset_;
  bool jumped = false;
  std::size_t jumps = 0;
  std::size_t total = 0;  // accumulated label + length octets

  while (true) {
    if (cursor >= data_.size()) {
      throw WireError("name runs past end of message");
    }
    std::uint8_t len = data_[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= data_.size()) {
        throw WireError("truncated compression pointer");
      }
      std::size_t target = (static_cast<std::size_t>(len & 0x3f) << 8) |
                           data_[cursor + 1];
      if (!jumped) {
        offset_ = cursor + 2;
        jumped = true;
      }
      if (++jumps > 128 || target >= cursor) {
        throw WireError("compression pointer loop");
      }
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) {
      throw WireError("reserved label type");
    }
    if (len == 0) {
      if (!jumped) {
        offset_ = cursor + 1;
      }
      break;
    }
    if (cursor + 1 + len > data_.size()) {
      throw WireError("label runs past end of message");
    }
    // RFC 1035 §3.1: 255 octets including the terminating root octet.
    // Compression pointers can stitch together labels whose sum exceeds
    // what any contiguous encoding could hold; enforce the limit here so
    // malformed input surfaces as WireError, not as a Name constructor
    // failure deep in the call chain.
    total += 1 + static_cast<std::size_t>(len);
    if (total + 1 > 255) {
      throw WireError("name exceeds 255 octets");
    }
    labels.emplace_back(
        reinterpret_cast<const char*>(data_.data() + cursor + 1), len);
    cursor += 1 + len;
  }
  try {
    return Name{std::move(labels)};
  } catch (const std::invalid_argument& error) {
    // Wire labels are arbitrary bytes; the ones Name cannot represent
    // (e.g. a '.' inside a label) are malformed input to this codec, not a
    // library bug: report them on decode()'s documented error channel.
    throw WireError(std::string("unrepresentable name in message: ") +
                    error.what());
  }
}

// ------------------------------------------------------------ RDATA codecs

namespace {

void encode_rdata(WireWriter& w, const Rdata& rdata) {
  std::size_t len_at = w.size();
  w.u16(0);  // RDLENGTH back-filled below
  std::size_t start = w.size();

  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(v.address.value());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          w.bytes(std::span(v.address.octets().data(), 16));
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          w.name(v.nsdname);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(v.mname);
          w.name(v.rname);
          w.u32(v.serial);
          w.u32(v.refresh.raw());
          w.u32(v.retry.raw());
          w.u32(v.expire.raw());
          w.u32(v.minimum.raw());
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(v.preference);
          w.name(v.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          // character-strings of <=255 bytes each
          std::string_view rest = v.text;
          do {
            std::string_view chunk = rest.substr(0, 255);
            rest.remove_prefix(chunk.size());
            w.u8(static_cast<std::uint8_t>(chunk.size()));
            w.bytes(std::span(
                reinterpret_cast<const std::uint8_t*>(chunk.data()),
                chunk.size()));
          } while (!rest.empty());
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          w.u16(v.priority);
          w.u16(v.weight);
          w.u16(v.port);
          w.name_uncompressed(v.target);  // RFC 2782: no compression
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          w.u16(v.flags);
          w.u8(v.protocol);
          w.u8(v.algorithm);
          w.bytes(std::span(
              reinterpret_cast<const std::uint8_t*>(v.public_key.data()),
              v.public_key.size()));
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          w.u16(static_cast<std::uint16_t>(v.type_covered));
          w.u8(v.algorithm);
          w.u8(v.labels);
          w.u32(v.original_ttl.raw());
          w.u32(v.expiration);
          w.u32(v.inception);
          w.u16(v.key_tag);
          w.name_uncompressed(v.signer);  // RFC 4034 §3.1.7: no compression
          w.bytes(std::span(
              reinterpret_cast<const std::uint8_t*>(v.signature.data()),
              v.signature.size()));
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          // OPT carries its payload size in the CLASS field; RDATA empty.
        }
      },
      rdata);

  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

// Bytes left before @p end; throws if earlier fields already overran the
// RDATA window (e.g. an RRSIG whose RDLENGTH is shorter than the fixed
// header), which would otherwise underflow to a near-SIZE_MAX count.
std::size_t remaining_rdata(const WireReader& r, std::size_t end) {
  if (r.offset() > end) {
    throw WireError("RDATA fields overrun RDLENGTH");
  }
  return end - r.offset();
}

Rdata decode_rdata(WireReader& r, RRType type, std::size_t rdlength) {
  std::size_t end = r.offset() + rdlength;
  Rdata out;
  switch (type) {
    case RRType::kA: {
      out = ARdata{Ipv4{r.u32()}};
      break;
    }
    case RRType::kAAAA: {
      auto raw = r.bytes(16);
      std::array<std::uint8_t, 16> octets{};
      std::memcpy(octets.data(), raw.data(), 16);
      out = AaaaRdata{Ipv6{octets}};
      break;
    }
    case RRType::kNS:
      out = NsRdata{r.name()};
      break;
    case RRType::kCNAME:
      out = CnameRdata{r.name()};
      break;
    case RRType::kSOA: {
      SoaRdata soa;
      soa.mname = r.name();
      soa.rname = r.name();
      soa.serial = r.u32();
      soa.refresh = WireTtl{r.u32()};
      soa.retry = WireTtl{r.u32()};
      soa.expire = WireTtl{r.u32()};
      soa.minimum = WireTtl{r.u32()};
      out = std::move(soa);
      break;
    }
    case RRType::kMX: {
      MxRdata mx;
      mx.preference = r.u16();
      mx.exchange = r.name();
      out = std::move(mx);
      break;
    }
    case RRType::kTXT: {
      TxtRdata txt;
      while (r.offset() < end) {
        std::uint8_t len = r.u8();
        auto chunk = r.bytes(len);
        txt.text.append(reinterpret_cast<const char*>(chunk.data()),
                        chunk.size());
      }
      out = std::move(txt);
      break;
    }
    case RRType::kPTR:
      out = PtrRdata{r.name()};
      break;
    case RRType::kSRV: {
      SrvRdata srv;
      srv.priority = r.u16();
      srv.weight = r.u16();
      srv.port = r.u16();
      srv.target = r.name();
      out = std::move(srv);
      break;
    }
    case RRType::kDNSKEY: {
      DnskeyRdata key;
      key.flags = r.u16();
      key.protocol = r.u8();
      key.algorithm = r.u8();
      auto raw = r.bytes(remaining_rdata(r, end));
      key.public_key.assign(reinterpret_cast<const char*>(raw.data()),
                            raw.size());
      out = std::move(key);
      break;
    }
    case RRType::kRRSIG: {
      RrsigRdata sig;
      sig.type_covered = static_cast<RRType>(r.u16());
      sig.algorithm = r.u8();
      sig.labels = r.u8();
      sig.original_ttl = WireTtl{r.u32()};
      sig.expiration = r.u32();
      sig.inception = r.u32();
      sig.key_tag = r.u16();
      sig.signer = r.name();
      auto raw = r.bytes(remaining_rdata(r, end));
      sig.signature.assign(reinterpret_cast<const char*>(raw.data()),
                           raw.size());
      out = std::move(sig);
      break;
    }
    case RRType::kOPT: {
      r.bytes(rdlength);  // ignore EDNS options
      out = OptRdata{};
      break;
    }
    default:
      throw WireError("cannot decode RDATA of type " +
                      std::string(to_string(type)));
  }
  if (r.offset() != end) {
    throw WireError("RDLENGTH mismatch decoding " +
                    std::string(to_string(type)));
  }
  return out;
}

void encode_rr(WireWriter& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type()));
  w.u16(static_cast<std::uint16_t>(rr.rclass));
  w.u32(rr.ttl.value());
  encode_rdata(w, rr.rdata);
}

ResourceRecord decode_rr(WireReader& r) {
  ResourceRecord rr;
  rr.name = r.name();
  auto type = static_cast<RRType>(r.u16());
  rr.rclass = static_cast<RClass>(r.u16());
  rr.ttl = Ttl::from_wire(r.u32());
  std::uint16_t rdlength = r.u16();
  rr.rdata = decode_rdata(r, type, rdlength);
  return rr;
}

}  // namespace

// ------------------------------------------------------------ full message

std::vector<std::uint8_t> encode(const Message& m) {
  WireWriter w;
  w.u16(m.id);

  std::uint16_t flags = 0;
  if (m.flags.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(m.flags.opcode) & 0xf) << 11);
  if (m.flags.aa) flags |= 0x0400;
  if (m.flags.tc) flags |= 0x0200;
  if (m.flags.rd) flags |= 0x0100;
  if (m.flags.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(m.flags.rcode) & 0xf;
  w.u16(flags);

  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authorities.size()));
  w.u16(static_cast<std::uint16_t>(m.additionals.size()));

  for (const auto& q : m.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : m.answers) encode_rr(w, rr);
  for (const auto& rr : m.authorities) encode_rr(w, rr);
  for (const auto& rr : m.additionals) encode_rr(w, rr);
  return std::move(w).take();
}

Message decode(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  Message m;
  m.id = r.u16();
  std::uint16_t flags = r.u16();
  m.flags.qr = (flags & 0x8000) != 0;
  m.flags.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  m.flags.aa = (flags & 0x0400) != 0;
  m.flags.tc = (flags & 0x0200) != 0;
  m.flags.rd = (flags & 0x0100) != 0;
  m.flags.ra = (flags & 0x0080) != 0;
  m.flags.rcode = static_cast<Rcode>(flags & 0xf);

  std::uint16_t qd = r.u16();
  std::uint16_t an = r.u16();
  std::uint16_t ns = r.u16();
  std::uint16_t ar = r.u16();

  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    q.qname = r.name();
    q.qtype = static_cast<RRType>(r.u16());
    q.qclass = static_cast<RClass>(r.u16());
    m.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < an; ++i) m.answers.push_back(decode_rr(r));
  for (std::uint16_t i = 0; i < ns; ++i) m.authorities.push_back(decode_rr(r));
  for (std::uint16_t i = 0; i < ar; ++i) m.additionals.push_back(decode_rr(r));
  return m;
}

std::size_t encoded_size(const Message& message) {
  return encode(message).size();
}

}  // namespace dnsttl::dns
