#include "dns/message.h"

#include <stdexcept>

namespace dnsttl::dns {

std::string Question::to_string() const {
  return qname.to_string() + " " + std::string(dns::to_string(qclass)) + " " +
         std::string(dns::to_string(qtype));
}

Message Message::make_query(std::uint16_t id, Name qname, RRType qtype,
                            bool recursion_desired) {
  Message m;
  m.id = id;
  m.flags.rd = recursion_desired;
  m.questions.push_back(Question{std::move(qname), qtype, RClass::kIN});
  return m;
}

void Message::add_edns(std::uint16_t udp_payload_size) {
  OptRdata opt;
  opt.udp_payload_size = udp_payload_size;
  // The OPT owner is the root and its "class" field carries the size; the
  // simulator keeps the size in the rdata and the TTL field zero.
  additionals.push_back(ResourceRecord{Name{}, RClass::kIN, Ttl{0}, opt});
}

std::optional<std::uint16_t> Message::edns_udp_size() const {
  for (const auto& rr : additionals) {
    if (rr.type() == RRType::kOPT) {
      return std::get<OptRdata>(rr.rdata).udp_payload_size;
    }
  }
  return std::nullopt;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.id = query.id;
  m.flags.qr = true;
  m.flags.opcode = query.flags.opcode;
  m.flags.rd = query.flags.rd;
  m.questions = query.questions;
  return m;
}

const std::vector<ResourceRecord>& Message::section(Section s) const {
  switch (s) {
    case Section::kAnswer:
      return answers;
    case Section::kAuthority:
      return authorities;
    case Section::kAdditional:
      return additionals;
    case Section::kQuestion:
      break;
  }
  throw std::invalid_argument("question section holds no records");
}

std::vector<ResourceRecord>& Message::section(Section s) {
  return const_cast<std::vector<ResourceRecord>&>(
      static_cast<const Message*>(this)->section(s));
}

std::optional<RRset> Message::answer_rrset(const Name& name,
                                           RRType type) const {
  std::vector<ResourceRecord> matching;
  for (const auto& rr : answers) {
    if (rr.name == name && rr.type() == type) {
      matching.push_back(rr);
    }
  }
  if (matching.empty()) {
    return std::nullopt;
  }
  return RRset::from_records(matching);
}

const ResourceRecord* Message::first_answer(RRType type) const {
  for (const auto& rr : answers) {
    if (rr.type() == type) {
      return &rr;
    }
  }
  return nullptr;
}

bool Message::is_referral() const {
  return answers.empty() && flags.rcode == Rcode::kNoError &&
         !authorities.empty() && !flags.aa;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; id " + std::to_string(id) + " " +
         std::string(dns::to_string(flags.rcode));
  if (flags.qr) out += " qr";
  if (flags.aa) out += " aa";
  if (flags.tc) out += " tc";
  if (flags.rd) out += " rd";
  if (flags.ra) out += " ra";
  out += "\n;; QUESTION\n";
  for (const auto& q : questions) {
    out += ";" + q.to_string() + "\n";
  }
  auto dump = [&out](const char* title,
                     const std::vector<ResourceRecord>& rrs) {
    if (rrs.empty()) {
      return;
    }
    out += std::string(";; ") + title + "\n";
    for (const auto& rr : rrs) {
      out += rr.to_string() + "\n";
    }
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authorities);
  dump("ADDITIONAL", additionals);
  return out;
}

}  // namespace dnsttl::dns
