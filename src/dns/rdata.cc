#include "dns/rdata.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace dnsttl::dns {

namespace {

std::uint32_t parse_decimal_octet(std::string_view part) {
  if (part.empty() || part.size() > 3) {
    throw std::invalid_argument("bad IPv4 octet");
  }
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(part.data(), part.data() + part.size(), value);
  if (ec != std::errc{} || ptr != part.data() + part.size() || value > 255) {
    throw std::invalid_argument("bad IPv4 octet: " + std::string(part));
  }
  return value;
}

std::uint16_t parse_hex_group(std::string_view part) {
  if (part.empty() || part.size() > 4) {
    throw std::invalid_argument("bad IPv6 group");
  }
  std::uint16_t value = 0;
  auto [ptr, ec] =
      std::from_chars(part.data(), part.data() + part.size(), value, 16);
  if (ec != std::errc{} || ptr != part.data() + part.size()) {
    throw std::invalid_argument("bad IPv6 group: " + std::string(part));
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Ipv4 Ipv4::from_string(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) {
    throw std::invalid_argument("bad IPv4 address: " + std::string(text));
  }
  std::uint32_t value = 0;
  for (auto part : parts) {
    value = (value << 8) | parse_decimal_octet(part);
  }
  return Ipv4{value};
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv6 Ipv6::from_string(std::string_view text) {
  std::size_t dcolon = text.find("::");
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;

  auto parse_groups = [](std::string_view part, std::vector<std::uint16_t>& out) {
    if (part.empty()) {
      return;
    }
    for (auto group : split(part, ':')) {
      out.push_back(parse_hex_group(group));
    }
  };

  if (dcolon == std::string_view::npos) {
    parse_groups(text, head);
    if (head.size() != 8) {
      throw std::invalid_argument("bad IPv6 address: " + std::string(text));
    }
  } else {
    if (text.find("::", dcolon + 1) != std::string_view::npos) {
      throw std::invalid_argument("multiple '::' in IPv6 address");
    }
    parse_groups(text.substr(0, dcolon), head);
    parse_groups(text.substr(dcolon + 2), tail);
    if (head.size() + tail.size() >= 8) {
      throw std::invalid_argument("bad IPv6 address: " + std::string(text));
    }
  }

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    groups[i] = head[i];
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }

  std::array<std::uint8_t, 16> octets{};
  for (std::size_t i = 0; i < 8; ++i) {
    octets[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    octets[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return Ipv6{octets};
}

std::string Ipv6::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((octets_[2 * i] << 8) |
                                           octets_[2 * i + 1]);
  }

  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) {
      ++j;
    }
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The group before the run suppressed its separator, so "::" is
      // always the right join here.
      out += "::";
      i += best_len;
      if (i == 8) {
        return out;
      }
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
    if (i < 8 && i != best_start) {
      out += ':';
    }
  }
  return out;
}

RRType rdata_type(const Rdata& rdata) {
  return std::visit(
      [](const auto& value) -> RRType {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) return RRType::kA;
        if constexpr (std::is_same_v<T, AaaaRdata>) return RRType::kAAAA;
        if constexpr (std::is_same_v<T, NsRdata>) return RRType::kNS;
        if constexpr (std::is_same_v<T, CnameRdata>) return RRType::kCNAME;
        if constexpr (std::is_same_v<T, SoaRdata>) return RRType::kSOA;
        if constexpr (std::is_same_v<T, MxRdata>) return RRType::kMX;
        if constexpr (std::is_same_v<T, TxtRdata>) return RRType::kTXT;
        if constexpr (std::is_same_v<T, PtrRdata>) return RRType::kPTR;
        if constexpr (std::is_same_v<T, SrvRdata>) return RRType::kSRV;
        if constexpr (std::is_same_v<T, DnskeyRdata>) return RRType::kDNSKEY;
        if constexpr (std::is_same_v<T, RrsigRdata>) return RRType::kRRSIG;
        if constexpr (std::is_same_v<T, OptRdata>) return RRType::kOPT;
      },
      rdata);
}

std::string rdata_to_string(const Rdata& rdata) {
  return std::visit(
      [](const auto& value) -> std::string {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return value.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          return value.address.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return value.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return value.target.to_string();
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          return value.mname.to_string() + " " + value.rname.to_string() + " " +
                 std::to_string(value.serial) + " " +
                 std::to_string(value.refresh.raw()) + " " +
                 std::to_string(value.retry.raw()) + " " +
                 std::to_string(value.expire.raw()) + " " +
                 std::to_string(value.minimum.raw());
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return std::to_string(value.preference) + " " +
                 value.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          return "\"" + value.text + "\"";
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return value.target.to_string();
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          return std::to_string(value.priority) + " " +
                 std::to_string(value.weight) + " " +
                 std::to_string(value.port) + " " + value.target.to_string();
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          return std::to_string(value.flags) + " " +
                 std::to_string(value.protocol) + " " +
                 std::to_string(value.algorithm) + " " + value.public_key;
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          return std::string(to_string(value.type_covered)) + " " +
                 std::to_string(value.algorithm) + " " +
                 std::to_string(value.labels) + " " +
                 std::to_string(value.original_ttl.raw()) + " " +
                 value.signer.to_string();
        } else {
          return "";
        }
      },
      rdata);
}

}  // namespace dnsttl::dns
