#ifndef DNSTTL_DNS_MASTER_FILE_H
#define DNSTTL_DNS_MASTER_FILE_H

#include <stdexcept>
#include <string>
#include <string_view>

#include "dns/zone.h"

namespace dnsttl::dns {

/// Thrown on malformed zone-file text, with a 1-based line number.
class MasterFileError : public std::runtime_error {
 public:
  MasterFileError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses RFC 1035 §5 master-file text into a Zone.
///
/// Supported: `$ORIGIN` and `$TTL` directives, `@` for the origin, relative
/// and absolute owner names, blank owner (repeat previous), `;` comments,
/// optional per-record TTL and class fields, and the record types the
/// library models (SOA, NS, A, AAAA, CNAME, MX, TXT, DNSKEY).
/// Multi-line parentheses are supported for SOA.
///
/// @p default_origin is used until a `$ORIGIN` directive appears; it also
/// becomes the zone's origin.
Zone parse_master_file(std::string_view text, const Name& default_origin);

/// Renders a zone back to master-file text (one record per line, absolute
/// names, explicit TTLs) — `parse_master_file(render_master_file(z), o)`
/// reproduces the zone.
std::string render_master_file(const Zone& zone);

}  // namespace dnsttl::dns

#endif  // DNSTTL_DNS_MASTER_FILE_H
