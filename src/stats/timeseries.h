#ifndef DNSTTL_STATS_TIMESERIES_H
#define DNSTTL_STATS_TIMESERIES_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dnsttl::stats {

/// Counts events into fixed-width virtual-time bins per named series —
/// the structure behind the paper's Figure 6/7 stacked time series
/// ("responses from original vs new server per 10-minute bin").
class BinnedSeries {
 public:
  explicit BinnedSeries(sim::Duration bin_width) : bin_width_(bin_width) {}

  void record(const std::string& series, sim::Time at, double value = 1.0);

  /// Adds every bin of @p other into this series (bin widths must match).
  /// Bin sums are order-independent, so merging per-shard series in any
  /// order yields the same totals; callers still merge in shard order for
  /// uniformity with the rest of the deterministic-reduce machinery.
  void merge(const BinnedSeries& other);

  /// Number of bins covering all recorded events.
  std::size_t bin_count() const;

  /// Sum of @p series in bin @p index.
  double at(const std::string& series, std::size_t index) const;

  std::vector<std::string> series_names() const;
  sim::Duration bin_width() const noexcept { return bin_width_; }

  /// Renders "minute  <series...>" rows (bin start in minutes).
  std::string render() const;

 private:
  sim::Duration bin_width_;
  std::map<std::string, std::map<std::size_t, double>> series_;
  std::size_t max_bin_ = 0;
};

}  // namespace dnsttl::stats

#endif  // DNSTTL_STATS_TIMESERIES_H
