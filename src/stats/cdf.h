#ifndef DNSTTL_STATS_CDF_H
#define DNSTTL_STATS_CDF_H

#include <cstddef>
#include <string>
#include <vector>

namespace dnsttl::stats {

/// An empirical distribution: collects samples, answers quantile/CDF
/// queries, and renders the fixed-point summaries the paper's figures use.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;

  /// Quantile with linear interpolation; @p q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Fraction of samples <= @p value (the CDF evaluated at @p value).
  double fraction_at_most(double value) const;
  /// Fraction of samples < @p value.
  double fraction_below(double value) const;
  /// Fraction of samples == @p value (within 1e-9).
  double fraction_equal(double value) const;

  /// (value, cumulative fraction) pairs at each distinct sample value —
  /// a gnuplot-ready CDF curve.
  std::vector<std::pair<double, double>> curve() const;

  /// Renders the CDF as rows "value fraction" for the given probe points.
  std::string render(const std::vector<double>& probe_points,
                     const std::string& label) const;

  /// ASCII sparkline of the distribution across @p buckets (for bench
  /// output readability).
  std::string sparkline(std::size_t buckets = 40) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Convenience: percentile summary line "p50=... p75=... p95=... p99=...".
std::string percentile_summary(const Cdf& cdf, const std::string& unit);

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Used to quantify how closely a simulated distribution tracks a reference
/// (e.g. the analytic hit-rate model, or a digitized paper CDF).
double ks_statistic(const Cdf& a, const Cdf& b);

}  // namespace dnsttl::stats

#endif  // DNSTTL_STATS_CDF_H
