#ifndef DNSTTL_STATS_TABLE_H
#define DNSTTL_STATS_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace dnsttl::stats {

/// Aligned-column text tables, used by every bench binary to print the
/// paper's tables in a diff-friendly fixed format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with columns padded to the widest cell.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper for table cells.
std::string fmt(const char* format, ...);

/// "paper=<x> measured=<y>" comparison line used by benches and recorded in
/// EXPERIMENTS.md.
std::string compare_line(const std::string& what, const std::string& paper,
                         const std::string& measured);

}  // namespace dnsttl::stats

#endif  // DNSTTL_STATS_TABLE_H
