#include "stats/table.h"

#include <algorithm>
#include <cstdarg>

namespace dnsttl::stats {

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) {
    widen(row);
  }

  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) {
        line += "  ";
      }
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < widths.size()) {
      rule += "  ";
    }
  }
  out += rule + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

std::string compare_line(const std::string& what, const std::string& paper,
                         const std::string& measured) {
  return "  [compare] " + what + ": paper=" + paper +
         " measured=" + measured + "\n";
}

}  // namespace dnsttl::stats
