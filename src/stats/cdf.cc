#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace dnsttl::stats {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::min() const {
  if (empty()) throw std::logic_error("Cdf::min on empty distribution");
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() const {
  if (empty()) throw std::logic_error("Cdf::max on empty distribution");
  ensure_sorted();
  return samples_.back();
}

double Cdf::mean() const {
  if (empty()) throw std::logic_error("Cdf::mean on empty distribution");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (empty()) throw std::logic_error("Cdf::quantile on empty distribution");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile must be in [0, 1]");
  }
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  double position = q * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(position);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = position - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_at_most(double value) const {
  if (empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), value);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_below(double value) const {
  if (empty()) return 0.0;
  ensure_sorted();
  auto it = std::lower_bound(samples_.begin(), samples_.end(), value);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_equal(double value) const {
  return fraction_at_most(value + 1e-9) - fraction_below(value - 1e-9);
}

std::vector<std::pair<double, double>> Cdf::curve() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> points;
  const double n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    bool last_of_value =
        (i + 1 == samples_.size()) || samples_[i + 1] != samples_[i];
    if (last_of_value) {
      points.emplace_back(samples_[i], static_cast<double>(i + 1) / n);
    }
  }
  return points;
}

std::string Cdf::render(const std::vector<double>& probe_points,
                        const std::string& label) const {
  std::string out = "# CDF " + label + " (n=" + std::to_string(count()) + ")\n";
  char buf[96];
  for (double p : probe_points) {
    std::snprintf(buf, sizeof(buf), "%12.1f %8.4f\n", p, fraction_at_most(p));
    out += buf;
  }
  return out;
}

std::string Cdf::sparkline(std::size_t buckets) const {
  if (empty() || buckets == 0) return "";
  ensure_sorted();
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = samples_.front();
  double hi = samples_.back();
  if (hi <= lo) hi = lo + 1.0;
  std::vector<std::size_t> counts(buckets, 0);
  for (double s : samples_) {
    auto b = static_cast<std::size_t>((s - lo) / (hi - lo) *
                                      static_cast<double>(buckets));
    counts[std::min(b, buckets - 1)]++;
  }
  std::size_t peak = *std::max_element(counts.begin(), counts.end());
  std::string out;
  for (std::size_t c : counts) {
    std::size_t level =
        peak == 0 ? 0 : (c * 7 + peak - 1) / peak;  // ceil to 0..7
    out += kLevels[std::min<std::size_t>(level, 7)];
  }
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::string percentile_summary(const Cdf& cdf, const std::string& unit) {
  if (cdf.empty()) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.2f%s p75=%.2f%s p95=%.2f%s p99=%.2f%s (n=%zu)",
                cdf.quantile(0.50), unit.c_str(), cdf.quantile(0.75),
                unit.c_str(), cdf.quantile(0.95), unit.c_str(),
                cdf.quantile(0.99), unit.c_str(), cdf.count());
  return buf;
}

double ks_statistic(const Cdf& a, const Cdf& b) {
  if (a.empty() || b.empty()) {
    throw std::logic_error("ks_statistic needs two non-empty distributions");
  }
  const auto& sa = a.sorted_samples();
  const auto& sb = b.sorted_samples();
  double na = static_cast<double>(sa.size());
  double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double best = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    best = std::max(best, std::abs(static_cast<double>(ia) / na -
                                   static_cast<double>(ib) / nb));
  }
  return best;
}

}  // namespace dnsttl::stats
