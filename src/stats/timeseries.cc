#include "stats/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace dnsttl::stats {

void BinnedSeries::record(const std::string& series, sim::Time at,
                          double value) {
  auto bin = static_cast<std::size_t>(at.since_epoch() / bin_width_);
  series_[series][bin] += value;
  max_bin_ = std::max(max_bin_, bin);
}

void BinnedSeries::merge(const BinnedSeries& other) {
  for (const auto& [name, bins] : other.series_) {
    auto& mine = series_[name];
    for (const auto& [bin, value] : bins) {
      mine[bin] += value;
      max_bin_ = std::max(max_bin_, bin);
    }
  }
}

std::size_t BinnedSeries::bin_count() const {
  return series_.empty() ? 0 : max_bin_ + 1;
}

double BinnedSeries::at(const std::string& series, std::size_t index) const {
  auto it = series_.find(series);
  if (it == series_.end()) {
    return 0.0;
  }
  auto bin = it->second.find(index);
  return bin == it->second.end() ? 0.0 : bin->second;
}

std::vector<std::string> BinnedSeries::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, bins] : series_) {
    names.push_back(name);
  }
  return names;
}

std::string BinnedSeries::render() const {
  auto names = series_names();
  std::string out = "minute";
  for (const auto& name : names) {
    out += "\t" + name;
  }
  out += "\n";
  char buf[64];
  for (std::size_t bin = 0; bin < bin_count(); ++bin) {
    double minute =
        sim::to_seconds(bin_width_ * static_cast<std::int64_t>(bin)) / 60.0;
    std::snprintf(buf, sizeof(buf), "%6.0f", minute);
    out += buf;
    for (const auto& name : names) {
      std::snprintf(buf, sizeof(buf), "\t%8.0f", at(name, bin));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace dnsttl::stats
