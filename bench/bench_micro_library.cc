// Library micro-benchmarks: wire codec, cache operations, zone lookups,
// and full recursive resolutions — the raw throughput behind the
// experiment harness.
//
// Two suites share this binary:
//  - a hand-timed "quick suite" (bench_quick_suite.h) covering the event
//    loop, cache and Name hot paths; it runs in a bounded time and can
//    emit a machine-readable report via --json <path>;
//  - the google-benchmark suite below, skipped under --quick (pass
//    --benchmark_filter=... etc. through to it as usual).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bench_quick_suite.h"

#include "auth/auth_server.h"
#include "auth/entrada.h"
#include "crawl/population_generator.h"
#include "dns/dnssec.h"
#include "dns/master_file.h"
#include "cache/cache.h"
#include "core/world.h"
#include "dns/wire.h"
#include "resolver/recursive_resolver.h"

using namespace dnsttl;

namespace {

dns::Message sample_response() {
  auto query = dns::Message::make_query(
      42, dns::Name::from_string("a.nic.cl"), dns::RRType::kNS);
  auto response = dns::Message::make_response(query);
  response.flags.aa = true;
  auto zone = dns::Name::from_string("cl");
  for (char c : {'a', 'b', 'c', 'd'}) {
    auto ns = dns::Name::from_string(std::string(1, c) + ".nic.cl");
    response.answers.push_back(dns::make_ns(zone, dns::Ttl{3600}, ns));
    response.additionals.push_back(
        dns::make_a(ns, dns::Ttl{43200}, dns::Ipv4(190, 124, 27, 10)));
  }
  return response;
}

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dns::Name::from_string("very.long.sub.domain.example.org"));
  }
}
BENCHMARK(BM_NameParse);

void BM_NameBailiwickCheck(benchmark::State& state) {
  auto host = dns::Name::from_string("ns1.sub.cachetest.net");
  auto zone = dns::Name::from_string("cachetest.net");
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.in_bailiwick_of(zone));
  }
}
BENCHMARK(BM_NameBailiwickCheck);

void BM_WireEncode(benchmark::State& state) {
  auto message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(message));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  auto wire = dns::encode(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_WireDecode);

void BM_WireRoundTrip(benchmark::State& state) {
  auto message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(dns::encode(message)));
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_CacheInsert(benchmark::State& state) {
  cache::Cache cache;
  dns::RRset rrset(dns::Name::from_string("x.example.org"),
                   dns::RClass::kIN, dns::Ttl{3600});
  rrset.add(dns::ARdata{dns::Ipv4(1, 2, 3, 4)});
  sim::Time t{};
  for (auto _ : state) {
    cache.insert(rrset, cache::Credibility::kAuthAnswer, t);
    t += sim::kSecond;
  }
}
BENCHMARK(BM_CacheInsert);

void BM_CacheLookupHit(benchmark::State& state) {
  cache::Cache cache;
  for (int i = 0; i < 1000; ++i) {
    dns::RRset rrset(
        dns::Name::from_string("h" + std::to_string(i) + ".example.org"),
        dns::RClass::kIN, dns::Ttl{86400});
    rrset.add(dns::ARdata{dns::Ipv4(static_cast<std::uint32_t>(i))});
    cache.insert(rrset, cache::Credibility::kAuthAnswer, sim::Time{});
  }
  auto name = dns::Name::from_string("h500.example.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(name, dns::RRType::kA, sim::Time{1000}));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_ZoneLookup(benchmark::State& state) {
  dns::Zone zone{dns::Name::from_string("example.org")};
  zone.add(dns::make_soa(dns::Name::from_string("example.org"), dns::Ttl{3600},
                         dns::Name::from_string("ns1.example.org"), 1));
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    zone.add(dns::make_a(
        dns::Name::from_string("h" + std::to_string(i) + ".example.org"),
        dns::Ttl{300}, dns::Ipv4(static_cast<std::uint32_t>(i))));
  }
  auto qname = dns::Name::from_string(
      "h" + std::to_string(state.range(0) / 2) + ".example.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(zone.lookup(qname, dns::RRType::kA));
  }
}
BENCHMARK(BM_ZoneLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_FullResolutionColdCache(benchmark::State& state) {
  core::World world{core::World::Options{1, 0.0, {}}};
  world.add_tld("uy", "a.nic", dns::kTtl2Days, dns::kTtl5Min, dns::Ttl{120},
                net::Location{net::Region::kSA, 1.0});
  resolver::RecursiveResolver resolver("bench",
                                       resolver::child_centric_config(),
                                       world.network(), world.hints());
  net::Location location{net::Region::kEU, 1.0};
  auto address = world.network().attach(resolver, location);
  resolver.set_node_ref(net::NodeRef{address, location});
  dns::Question question{dns::Name::from_string("uy"), dns::RRType::kNS,
                         dns::RClass::kIN};
  sim::Time t{};
  for (auto _ : state) {
    resolver.flush();
    benchmark::DoNotOptimize(resolver.resolve(question, t));
    t += sim::kSecond;
  }
}
BENCHMARK(BM_FullResolutionColdCache);

void BM_FullResolutionWarmCache(benchmark::State& state) {
  core::World world{core::World::Options{1, 0.0, {}}};
  world.add_tld("uy", "a.nic", dns::kTtl2Days, dns::kTtl1Day, dns::kTtl1Day,
                net::Location{net::Region::kSA, 1.0});
  resolver::RecursiveResolver resolver("bench",
                                       resolver::child_centric_config(),
                                       world.network(), world.hints());
  net::Location location{net::Region::kEU, 1.0};
  auto address = world.network().attach(resolver, location);
  resolver.set_node_ref(net::NodeRef{address, location});
  dns::Question question{dns::Name::from_string("uy"), dns::RRType::kNS,
                         dns::RClass::kIN};
  resolver.resolve(question, sim::Time{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(question, sim::at(sim::kSecond)));
  }
}
BENCHMARK(BM_FullResolutionWarmCache);

void BM_MasterFileParse(benchmark::State& state) {
  std::string text = "$ORIGIN bench.example.\n$TTL 3600\n";
  text += "@ IN SOA ns1 hostmaster 1 7200 3600 1209600 3600\n";
  for (int i = 0; i < 200; ++i) {
    text += "h" + std::to_string(i) + " 300 IN A 10.0.0." +
            std::to_string(i % 250 + 1) + "\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::parse_master_file(
        text, dns::Name::from_string("bench.example")));
  }
}
BENCHMARK(BM_MasterFileParse);

void BM_DnssecSignZone(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dns::Zone zone{dns::Name::from_string("bench.example")};
    zone.add(dns::make_soa(dns::Name::from_string("bench.example"), dns::Ttl{3600},
                           dns::Name::from_string("ns1.bench.example"), 1));
    for (int i = 0; i < 100; ++i) {
      zone.add(dns::make_a(
          dns::Name::from_string("h" + std::to_string(i) + ".bench.example"),
          dns::Ttl{300}, dns::Ipv4(static_cast<std::uint32_t>(i))));
    }
    state.ResumeTiming();
    dns::sign_zone(zone, dns::make_zone_key(
                             dns::Name::from_string("bench.example")));
  }
}
BENCHMARK(BM_DnssecSignZone);

void BM_DnssecVerify(benchmark::State& state) {
  auto key = dns::make_zone_key(dns::Name::from_string("bench.example"));
  dns::RRset rrset(dns::Name::from_string("www.bench.example"),
                   dns::RClass::kIN, dns::Ttl{300});
  rrset.add(dns::ARdata{dns::Ipv4(10, 0, 0, 1)});
  auto rrsig = dns::make_rrsig(rrset, dns::Name::from_string("bench.example"),
                               key);
  const auto& sig = std::get<dns::RrsigRdata>(rrsig.rdata);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::verify_rrsig(rrset, sig, key));
  }
}
BENCHMARK(BM_DnssecVerify);

void BM_PopulationGenerate(benchmark::State& state) {
  auto params = crawl::alexa_params(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sim::Rng rng(7);
    benchmark::DoNotOptimize(crawl::generate_population(params, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PopulationGenerate)->Arg(1000)->Arg(10000);

void BM_EntradaAnalysis(benchmark::State& state) {
  auth::QueryLog log;
  sim::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    log.record({sim::at(static_cast<std::int64_t>(rng.uniform_int(0, 48)) *
                        sim::kHour),
                dns::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1, 500))),
                dns::Name::from_string(
                    "ns" + std::to_string(rng.uniform_int(1, 4)) + ".dns.nl"),
                dns::RRType::kA});
  }
  for (auto _ : state) {
    auth::Entrada store;
    store.ingest(log, "bench");
    benchmark::DoNotOptimize(store.queries_per_group());
    benchmark::DoNotOptimize(store.min_interarrival_hours());
  }
}
BENCHMARK(BM_EntradaAnalysis);

void BM_SimulationEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10000) {
        simulation.schedule_after(sim::kMillisecond, chain);
      }
    };
    simulation.schedule_after(sim::kMillisecond, chain);
    simulation.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventLoop);

void BM_SimulationScheduleCancel(benchmark::State& state) {
  sim::Simulation simulation;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    auto id = simulation.schedule_after(sim::kSecond, [&sink] { ++sink; });
    simulation.cancel(id);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SimulationScheduleCancel);

}  // namespace

int main(int argc, char** argv) {
  // Split our flags from google-benchmark's (--benchmark_*); reject
  // anything unrecognized with a usage message.
  bench::BenchArgs args;
  args.scale = 0.5;  // full quick-suite default: ~a few seconds
  std::vector<char*> benchmark_args;
  benchmark_args.push_back(argv[0]);
  const char* program = argv[0];
  for (int i = 1; i < argc;) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      benchmark_args.push_back(argv[i]);
      ++i;
      continue;
    }
    int consumed = args.consume(program, argc, argv, i);
    if (consumed == 0) {
      std::fprintf(stderr, "%s: unknown flag \"%s\"\n", program, argv[i]);
      bench::BenchArgs::print_usage(program);
      std::fprintf(stderr,
                   "  (google-benchmark --benchmark_* flags pass through)\n");
      return 2;
    }
    i += consumed;
  }
  if (args.scale <= 0.0) {
    args.scale = 0.5;
  }

  auto suite_start = std::chrono::steady_clock::now();
  auto metrics = bench::run_quick_suite(args.scale);
  double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    suite_start)
          .count();
  std::printf("quick suite (scale %g):\n", args.scale);
  for (const auto& m : metrics) {
    std::printf("  %-22s %14.0f %-12s (%llu ops, %.3f s)\n", m.name.c_str(),
                m.ops_per_sec, m.unit.c_str(),
                static_cast<unsigned long long>(m.ops), m.wall_seconds);
  }
  if (!args.json_path.empty()) {
    bench::JsonReport report("micro_library", args);
    for (const auto& m : metrics) {
      report.add_metric(m.name, m.unit, m.ops, m.wall_seconds, m.ops_per_sec);
    }
    if (!report.write(args.json_path, total_wall)) {
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  if (args.quick) {
    return 0;  // --quick: the bounded suite above is the whole run
  }

  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
