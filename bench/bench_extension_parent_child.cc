// Extension experiment: the full parent-vs-child TTL comparison the paper
// explicitly leaves as future work ("A full comparison of parent and child
// is future work", §5.1).  For every NS-responding domain in each list,
// the child's apex NS TTL is compared against the registry's delegation
// copy (172800 s for the gTLD-style lists, 3600 s for .nl children).

#include <vector>

#include "bench_common.h"
#include "crawl/crawler.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Extension (paper future work)",
                      "parent vs child NS TTL across the five lists");

  sim::Rng rng(args.seed);
  auto scaled = [&](std::size_t full) {
    return std::max<std::size_t>(2000,
                                 static_cast<std::size_t>(static_cast<double>(full) * args.scale));
  };
  std::vector<crawl::ListParams> lists = {
      crawl::alexa_params(scaled(100000)),
      crawl::majestic_params(scaled(100000)),
      crawl::umbrella_params(scaled(100000)),
      crawl::nl_params(scaled(500000)),
  };

  stats::TablePrinter table({"list", "registry TTL", "compared",
                             "child shorter", "equal", "child longer",
                             "median child/parent"});
  double nl_shorter = 0.0;
  for (const auto& params : lists) {
    auto population = crawl::generate_population(params, rng);
    auto report = crawl::compare_parent_child(population);
    if (params.name == ".nl") {
      nl_shorter = report.child_shorter_fraction();
    }
    table.add_row(
        {params.name, std::to_string(params.registry_ns_ttl.value()),
         std::to_string(report.compared),
         stats::fmt("%.1f%%", 100.0 * report.child_shorter_fraction()),
         stats::fmt("%.1f%%", 100.0 * static_cast<double>(report.equal) /
                                  static_cast<double>(report.compared)),
         stats::fmt("%.1f%%", 100.0 * static_cast<double>(report.child_longer) /
                                  static_cast<double>(report.compared)),
         report.child_over_parent_ratio.empty()
             ? "-"
             : stats::fmt("%.3f", report.child_over_parent_ratio.median())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("%s", stats::compare_line(
                        ".nl children with NS TTL below the 1-hour parent "
                        "copy",
                        "~40% (paper §5.1)",
                        stats::fmt("%.0f%%", 100 * nl_shorter))
                        .c_str());
  std::printf(
      "\noperational reading (paper §6.3): whichever side is shorter, a\n"
      "parent-centric resolver minority will use the parent's copy — so\n"
      "registries and operators should keep both TTLs equal where the\n"
      "registry interface (EPP) allows it at all.\n");
  return 0;
}
