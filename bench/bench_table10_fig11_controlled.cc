// Reproduces Table 10 and Figure 11: the §6.2 controlled experiments on
// mapache-de-madrid.co.  Five configurations — unique query names at TTL 60
// and 86400, a shared name at TTL 60 and 86400, and a 45-site anycast
// service at TTL 60 — measured both from the clients (latency CDFs) and at
// the authoritative (query volume).
//
// Parallel (PR 4): the five configurations are independent experiments
// (the paper ran them on separate days), so each gets its own fresh
// world + platform and they run concurrently at --jobs; results keep
// config order, so output is byte-identical for any --jobs value.

#include <chrono>
#include <vector>

#include "bench_common.h"
#include "core/latency_experiment.h"
#include "core/sharded.h"
#include "par/pool.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 10 + Figure 11",
                      "controlled TTL / anycast latency & load experiments");
  bench::JsonReport json("table10_fig11_controlled", args);
  auto wall_start = std::chrono::steady_clock::now();

  auto factory = core::make_env_factory(
      core::World::Options{args.seed, 0.002, {}}, args.platform_spec());
  auto meta = factory();
  std::printf("platform: %zu probes, %zu VPs\n\n",
              meta.platform->probes().size(), meta.platform->vp_count());
  meta = {};

  std::vector<core::ControlledTtlConfig> configs;
  {
    core::ControlledTtlConfig c;
    c.name = "TTL60-u";
    c.answer_ttl = dns::Ttl{60};
    c.unique_qnames = true;
    configs.push_back(c);
    c.name = "TTL86400-u";
    c.answer_ttl = dns::kTtl1Day;
    configs.push_back(c);
    c.name = "TTL60-s";
    c.answer_ttl = dns::Ttl{60};
    c.unique_qnames = false;
    c.shared_label = "1";
    c.duration = 65 * sim::kMinute;
    configs.push_back(c);
    c.name = "TTL86400-s";
    c.answer_ttl = dns::kTtl1Day;
    c.shared_label = "2";
    configs.push_back(c);
    c.name = "TTL60-s-anycast";
    c.answer_ttl = dns::Ttl{60};
    c.shared_label = "4";
    c.anycast = true;
    configs.push_back(c);
  }

  std::vector<double> shard_walls(configs.size());
  auto results =
      par::map_shards(configs.size(), args.jobs, [&](std::size_t index) {
        auto shard_start = std::chrono::steady_clock::now();
        auto env = factory();  // a fresh world per config: separate days
        auto result =
            core::run_controlled_ttl(*env.world, *env.platform, configs[index]);
        shard_walls[index] = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - shard_start)
                                 .count();
        return result;
      });
  json.set_shard_walls(shard_walls);
  double parallel_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto queries = static_cast<std::uint64_t>(results[i].run.query_count());
    json.add_metric(configs[i].name, "queries/sec", queries, parallel_wall,
                    parallel_wall > 0
                        ? static_cast<double>(queries) / parallel_wall
                        : 0);
  }

  // ---- Table 10 ----
  stats::TablePrinter table({"", "TTL60-u", "TTL86400-u", "TTL60-s",
                             "TTL86400-s", "TTL60-s-anycast"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (std::size_t i = 0; i < results.size(); ++i) {
      cells.push_back(getter(results[i]));
    }
    table.add_row(std::move(cells));
  };
  row("Queries (client)", [](const core::ControlledTtlResult& r) {
    return std::to_string(r.run.query_count());
  });
  row("Responses (valid)", [](const core::ControlledTtlResult& r) {
    return std::to_string(r.run.valid_count());
  });
  row("Querying IPs (auth)", [](const core::ControlledTtlResult& r) {
    return std::to_string(r.auth_unique_ips);
  });
  row("Queries (auth)", [](const core::ControlledTtlResult& r) {
    return std::to_string(r.auth_queries);
  });
  row("median RTT (ms)", [](const core::ControlledTtlResult& r) {
    return stats::fmt("%.2f", r.median_rtt_ms);
  });
  std::printf("Table 10 — TTL experiments, client and authoritative view:\n%s\n",
              table.render().c_str());

  // ---- Figure 11 ----
  std::printf("Figure 11a — latency CDF, unique query names:\n");
  std::printf("%s\n", results[0]
                          .run.rtt_cdf_ms()
                          .render({5, 10, 25, 50, 100, 200, 500}, "TTL60-u")
                          .c_str());
  std::printf("%s\n", results[1]
                          .run.rtt_cdf_ms()
                          .render({5, 10, 25, 50, 100, 200, 500},
                                  "TTL86400-u")
                          .c_str());
  std::printf("Figure 11b — latency CDF, shared query names (+anycast):\n");
  std::printf("%s\n", results[2]
                          .run.rtt_cdf_ms()
                          .render({5, 10, 25, 50, 100, 200, 500}, "TTL60-s")
                          .c_str());
  std::printf("%s\n", results[3]
                          .run.rtt_cdf_ms()
                          .render({5, 10, 25, 50, 100, 200, 500},
                                  "TTL86400-s")
                          .c_str());
  std::printf("%s\n", results[4]
                          .run.rtt_cdf_ms()
                          .render({5, 10, 25, 50, 100, 200, 500},
                                  "TTL60-s-anycast")
                          .c_str());

  double load_drop_u = 100.0 * (1.0 - static_cast<double>(results[1].auth_queries) /
                                          static_cast<double>(results[0].auth_queries));
  double load_drop_s = 100.0 * (1.0 - static_cast<double>(results[3].auth_queries) /
                                          static_cast<double>(results[2].auth_queries));
  std::printf("%s", stats::compare_line(
                        "authoritative load drop, long vs short TTL (unique)",
                        "~66% (127k->43k)",
                        stats::fmt("%.0f%% (%llu -> %llu)", load_drop_u,
                                   static_cast<unsigned long long>(
                                       results[0].auth_queries),
                                   static_cast<unsigned long long>(
                                       results[1].auth_queries)))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "authoritative load drop (shared)", "~78% (92k->20k)",
                        stats::fmt("%.0f%%", load_drop_s))
                        .c_str());
  std::printf("%s", stats::compare_line("median RTT TTL60-u vs TTL86400-u",
                                        "49.28 ms vs 9.68 ms",
                                        stats::fmt("%.2f ms vs %.2f ms",
                                                   results[0].median_rtt_ms,
                                                   results[1].median_rtt_ms))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "median RTT shared: TTL60 / anycast / TTL86400",
                        "35.59 / 29.95 / 7.38 ms",
                        stats::fmt("%.2f / %.2f / %.2f ms",
                                   results[2].median_rtt_ms,
                                   results[4].median_rtt_ms,
                                   results[3].median_rtt_ms))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "caching beats anycast at the median", "yes",
                        results[3].median_rtt_ms < results[4].median_rtt_ms
                            ? "yes"
                            : "no")
                        .c_str());
  if (!args.json_path.empty()) {
    json.write(args.json_path,
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count());
  }
  return 0;
}
