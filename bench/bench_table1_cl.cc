// Reproduces Table 1: the TTLs of a.nic.cl as seen in parent and child —
// 172800 s in the root's delegation, 3600 s (NS, authoritative) and 43200 s
// (A) at the .cl child servers.

#include "bench_common.h"
#include "dns/rr.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

void print_rows(stats::TablePrinter& table, const std::string& query,
                const std::string& server, const dns::Message& response) {
  bool first = true;
  auto add = [&](const dns::ResourceRecord& rr, const char* section,
                 bool authoritative) {
    table.add_row({first ? query : "", first ? server : "",
                   rr.name.to_string() + "/" +
                       std::string(dns::to_string(rr.type())),
                   std::to_string(rr.ttl.value()) + (authoritative ? "*" : ""),
                   section});
    first = false;
  };
  for (const auto& rr : response.answers) {
    add(rr, "Ans.", response.flags.aa);
  }
  for (const auto& rr : response.authorities) {
    if (rr.type() == dns::RRType::kNS) add(rr, "Auth.", false);
  }
  for (const auto& rr : response.additionals) {
    add(rr, "Add.", false);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 1", "a.nic.cl TTLs in parent and child");

  core::World world{core::World::Options{args.seed, 0.0, {}}};
  auto cl_zone = world.add_tld("cl", "a.nic", dns::kTtl2Days, dns::kTtl1Hour,
                               dns::kTtl12Hours,
                               net::Location{net::Region::kSA, 1.0});
  cl_zone->add(dns::make_aaaa(dns::Name::from_string("a.nic.cl"),
                              dns::kTtl12Hours,
                              dns::Ipv6::from_string("2001:1398:1::6002")));
  // The root's additional AAAA glue for a.nic.cl.
  world.root_zone()->add(dns::make_aaaa(
      dns::Name::from_string("a.nic.cl"), dns::kTtl2Days,
      dns::Ipv6::from_string("2001:1398:1::6002")));

  net::NodeRef client{dns::Ipv4(10, 200, 0, 1),
                      net::Location{net::Region::kEU, 1.0}};
  auto ask = [&](const std::string& server_ident, const std::string& qname,
                 dns::RRType qtype) {
    auto query = dns::Message::make_query(
        1, dns::Name::from_string(qname), qtype, false);
    auto outcome = world.network().query(client,
                                         world.address_of(server_ident),
                                         query, sim::Time{});
    return *outcome.response;
  };

  stats::TablePrinter table({"Q / Type", "Server", "Response", "TTL", "Sec."});
  print_rows(table, ".cl / NS", "k.root-servers.net",
             ask("k.root-servers.net", "cl", dns::RRType::kNS));
  print_rows(table, ".cl / NS", "a.nic.cl",
             ask("a.nic.cl.", "cl", dns::RRType::kNS));
  print_rows(table, "a.nic.cl/A", "a.nic.cl",
             ask("a.nic.cl.", "a.nic.cl", dns::RRType::kA));
  std::printf("%s\n", table.render().c_str());
  std::printf("(* = authoritative answer)\n\n");

  // The headline comparisons.
  auto root_response = ask("k.root-servers.net", "cl", dns::RRType::kNS);
  auto child_ns = ask("a.nic.cl.", "cl", dns::RRType::kNS);
  auto child_a = ask("a.nic.cl.", "a.nic.cl", dns::RRType::kA);
  std::printf("%s", stats::compare_line(
                        "root-side NS TTL", "172800",
                        std::to_string(root_response.authorities[0].ttl.value()))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "child NS TTL (AA)", "3600",
                        std::to_string(child_ns.answers[0].ttl.value()))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "child A TTL (AA)", "43200",
                        std::to_string(child_a.answers[0].ttl.value()))
                        .c_str());
  return 0;
}
