// Reproduces Table 3, Table 4, and Figures 6, 7 and 8: the §4 renumbering
// experiments.  A test zone sub.cachetest.net is renumbered at t = 9 min;
// the answering-server time series reveals which TTL governs the cached
// nameserver address.  In-bailiwick servers switch at the NS expiry
// (60 min, ~90% of resolvers); out-of-bailiwick servers are trusted to the
// A record's own 120 min; a sticky/parent-centric minority never switches.

#include "bench_common.h"
#include "core/bailiwick_experiment.h"
#include "core/sharded.h"
#include "par/pool.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

void print_run(const char* name, const core::BailiwickResult& result,
               const atlas::Platform& platform) {
  std::printf("--- %s ---\n", name);
  std::printf("VPs=%zu queries=%zu timeouts=%zu responses=%zu valid=%zu\n",
              platform.vp_count(), result.run.query_count(),
              result.run.timeout_count(), result.run.response_count(),
              result.run.valid_count());
  std::printf("\nTimeseries of answers (10-minute bins; Figures 6/7):\n%s\n",
              result.series.render().c_str());
  std::printf("sticky VPs: %zu  sticky resolvers: %zu\n",
              result.sticky_vp_count(), result.sticky_resolver_count());
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_profile;
  for (const auto& [key, vp] : result.vps) {
    auto& bucket = by_profile[platform.profile_of(vp.resolver)];
    ++bucket.first;
    if (vp.sticky()) ++bucket.second;
  }
  std::printf("per-profile VPs (sticky/total):");
  for (const auto& [profile, counts] : by_profile) {
    std::printf(" %s=%zu/%zu", profile.c_str(), counts.second, counts.first);
  }
  std::printf("\n");
  std::printf("switched to new server by t=85min: %.0f%%  by t=145min: "
              "%.0f%%\n\n",
              100 * result.switched_fraction_by(85),
              100 * result.switched_fraction_by(145));
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 3/4 + Figures 6/7/8",
                      "in- vs out-of-bailiwick renumbering");

  // Separate worlds (the paper ran the experiments on different days), but
  // the same seed: probe/resolver assignments are identical, so VP keys
  // match across runs for the Figure 8 analysis.  Each experiment shards
  // its probe slice over identical world replicas (see core::sharded).
  auto factory = core::make_env_factory(
      core::World::Options{args.seed, 0.002, {}}, args.platform_spec());
  auto meta = factory();
  const std::size_t shards =
      par::shard_count_for(meta.platform->probes().size());

  core::BailiwickConfig in_config;
  in_config.in_bailiwick = true;
  auto in_result =
      core::run_bailiwick_sharded(factory, in_config, shards, args.jobs);
  core::BailiwickConfig out_config;
  out_config.in_bailiwick = false;
  auto out_result =
      core::run_bailiwick_sharded(factory, out_config, shards, args.jobs);

  atlas::Platform* platform_in = meta.platform.get();
  atlas::Platform* platform_out = meta.platform.get();

  print_run("in-bailiwick (NS 3600 s / A 7200 s, renumber at 9 min)",
            in_result, *platform_in);
  print_run("out-of-bailiwick (ns1.zurroundeddu.com)", out_result,
            *platform_out);

  // Table 4: resolver classification.
  stats::TablePrinter table4({"", "in-bailiwick", "out-of-bailiwick"});
  table4.add_row({"Sticky VPs", std::to_string(in_result.sticky_vp_count()),
                  std::to_string(out_result.sticky_vp_count())});
  table4.add_row({"Sticky resolvers",
                  std::to_string(in_result.sticky_resolver_count()),
                  std::to_string(out_result.sticky_resolver_count())});
  std::printf("Table 4 — sticky-resolver classification:\n%s\n",
              table4.render().c_str());

  double in_sticky_pct = 100.0 * static_cast<double>(in_result.sticky_vp_count()) /
                         static_cast<double>(platform_in->vp_count());
  double out_sticky_pct =
      100.0 * static_cast<double>(out_result.sticky_vp_count()) /
      static_cast<double>(platform_out->vp_count());

  std::printf("%s", stats::compare_line(
                        "in-bailiwick: switched by NS expiry (+1 probe round)",
                        "~90%",
                        stats::fmt("%.0f%%",
                                   100 * in_result.switched_fraction_by(85)))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "out-of-bailiwick: switched by NS expiry (should be low)",
                        "small",
                        stats::fmt("%.0f%%",
                                   100 * out_result.switched_fraction_by(85)))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "out-of-bailiwick: switched by A expiry (+1 probe round)",
                        "most",
                        stats::fmt("%.0f%%",
                                   100 * out_result.switched_fraction_by(145)))
                        .c_str());
  std::printf("%s", stats::compare_line("in-bailiwick sticky VPs", "2.25%",
                                        stats::fmt("%.1f%%", in_sticky_pct))
                        .c_str());
  std::printf("%s", stats::compare_line("out-of-bailiwick sticky VPs",
                                        "17.8%",
                                        stats::fmt("%.1f%%", out_sticky_pct))
                        .c_str());

  // Figure 8: matched VPs — out-of-bailiwick-sticky VPs observed in the
  // in-bailiwick run mostly behave normally there.
  auto ratios = core::matched_vp_new_ratios(in_result, out_result);
  if (!ratios.empty()) {
    stats::Cdf cdf(ratios);
    std::printf("\nFigure 8 — new-server response ratio of matched VPs "
                "(out-sticky, in-bailiwick behavior):\n");
    std::printf("%s", cdf.render({0.0, 0.25, 0.5, 0.75, 0.9, 1.0},
                                 "new-server ratio")
                          .c_str());
    std::printf("%s", stats::compare_line(
                          "matched VPs mostly fetch from the new server",
                          "most >0.5",
                          stats::fmt("%.0f%% above 0.5",
                                     100 * (1.0 - cdf.fraction_at_most(0.5))))
                          .c_str());
  }
  return 0;
}
