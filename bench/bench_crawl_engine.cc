// Bulk-resolution-engine duel: the ZDNS-style batch scheduler
// (crawl::crawl_engine) against the nested-call reference driver
// (crawl::crawl_nested) on the four crawl-layer workload cores — the
// five-list Table 5 crawl, the bailiwick tallies behind Tables 3/4, the
// Table 9 wild populations, and the Table 6/7 DMap classification.  Each
// workload runs both drivers on identical (params, rng-fork) inputs,
// checks the reports agree field by field (the same equivalence the
// crawl_engine_test proves exhaustively), and reports domains/sec for
// both sides plus the aggregate speedup into BENCH_crawl_engine.json.
//
// Unlike the 16 experiment binaries this output contains wall-clock
// timings, so it is a perf artifact (like bench_micro_library), not part
// of the byte-identical experiment suite.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "crawl/engine.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Field-digest equality between the two drivers' reports: population
/// shape, every bailiwick counter, and per-type record/unique counts.
/// (crawl_engine_test additionally proves TTL-sample and CDF identity.)
bool same_report(const crawl::CrawlReport& a, const crawl::CrawlReport& b) {
  if (a.domains != b.domains || a.responsive != b.responsive) {
    return false;
  }
  const auto& ba = a.bailiwick;
  const auto& bb = b.bailiwick;
  if (ba.responsive != bb.responsive || ba.cname != bb.cname ||
      ba.soa != bb.soa || ba.respond_ns != bb.respond_ns ||
      ba.out_only != bb.out_only || ba.in_only != bb.in_only ||
      ba.mixed != bb.mixed) {
    return false;
  }
  for (auto type : crawl::TypeTallyTable::kSlots) {
    const auto* ta = a.by_type.find(type);
    const auto* tb = b.by_type.find(type);
    if ((ta == nullptr) != (tb == nullptr)) {
      return false;
    }
    if (ta != nullptr && (ta->records != tb->records ||
                          ta->unique_values != tb->unique_values ||
                          ta->ttl_zero_domain_count !=
                              tb->ttl_zero_domain_count)) {
      return false;
    }
  }
  return true;
}

struct Workload {
  std::string name;
  std::vector<crawl::ListParams> lists;
  bool collect_content = false;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Bulk resolution engine",
                      "batch scheduler vs nested-call driver");

  auto scaled = [&](std::size_t full) {
    return std::max<std::size_t>(
        1000, static_cast<std::size_t>(static_cast<double>(full) * args.scale));
  };

  // The four crawl-layer workload cores.  Sizes keep the nested driver —
  // a full recursive resolution per (domain, type) — in the seconds range
  // at --full; the engine side is two orders of magnitude cheaper.
  std::vector<Workload> workloads;
  workloads.push_back({"table5_lists",
                       {crawl::alexa_params(scaled(8000)),
                        crawl::majestic_params(scaled(8000)),
                        crawl::umbrella_params(scaled(8000))},
                       false});
  workloads.push_back(
      {"bailiwick", {crawl::alexa_params(scaled(6000)), crawl::root_params()},
       false});
  workloads.push_back(
      {"table9_wild", {crawl::nl_params(scaled(10000)), crawl::root_params()},
       false});
  workloads.push_back({"dmap", {crawl::nl_params(scaled(8000))}, true});

  sim::Rng rng(args.seed);
  bench::JsonReport json("crawl_engine", args);
  stats::TablePrinter table({"workload", "domains", "nested s", "engine s",
                             "speedup", "hw"});

  auto total_start = std::chrono::steady_clock::now();
  std::uint64_t stream = 0;
  std::size_t total_domains = 0;
  double nested_total = 0.0;
  double engine_total = 0.0;
  std::size_t high_water = 0;
  bool diverged = false;

  for (const auto& workload : workloads) {
    double nested_wall = 0.0;
    double engine_wall = 0.0;
    std::size_t domains = 0;
    for (const auto& params : workload.lists) {
      const sim::Rng list_rng = rng.fork(stream++);

      auto nested_start = std::chrono::steady_clock::now();
      auto nested =
          crawl::crawl_nested(params, list_rng, workload.collect_content);
      nested_wall += elapsed_seconds(nested_start);

      crawl::EngineOptions options;
      options.jobs = args.jobs;
      options.collect_content = workload.collect_content;
      auto engine_start = std::chrono::steady_clock::now();
      auto engine = crawl::crawl_engine(params, list_rng, options);
      engine_wall += elapsed_seconds(engine_start);

      domains += engine.stats.resolutions;
      high_water =
          std::max(high_water, engine.stats.in_flight_high_water);
      if (nested.harvest_mismatches != 0 ||
          !same_report(nested.report, engine.report)) {
        std::fprintf(stderr,
                     "DIVERGED: %s/%s — engine and nested driver disagree\n",
                     workload.name.c_str(), params.name.c_str());
        diverged = true;
      }
    }
    total_domains += domains;
    nested_total += nested_wall;
    engine_total += engine_wall;
    json.add_metric(workload.name + "_nested", "domains/sec", domains,
                    nested_wall,
                    nested_wall > 0
                        ? static_cast<double>(domains) / nested_wall
                        : 0.0);
    json.add_metric(workload.name + "_engine", "domains/sec", domains,
                    engine_wall,
                    engine_wall > 0
                        ? static_cast<double>(domains) / engine_wall
                        : 0.0);
    table.add_row({workload.name, std::to_string(domains),
                   stats::fmt("%.3f", nested_wall),
                   stats::fmt("%.3f", engine_wall),
                   stats::fmt("%.1fx", engine_wall > 0
                                           ? nested_wall / engine_wall
                                           : 0.0),
                   std::to_string(high_water)});
  }

  json.add_metric("aggregate_nested", "domains/sec", total_domains,
                  nested_total,
                  nested_total > 0
                      ? static_cast<double>(total_domains) / nested_total
                      : 0.0);
  json.add_metric("aggregate_engine", "domains/sec", total_domains,
                  engine_total,
                  engine_total > 0
                      ? static_cast<double>(total_domains) / engine_total
                      : 0.0);
  // Deterministic (min(max_in_flight, largest shard)); tracked so a
  // scheduler change that silently serializes admission shows up.
  json.add_metric("in_flight_high_water", "tasks", high_water, 0.0,
                  static_cast<double>(high_water));

  std::printf("%s\n", table.render().c_str());
  const double speedup =
      engine_total > 0 ? nested_total / engine_total : 0.0;
  std::printf("aggregate: %zu domains  nested %.3fs  engine %.3fs  "
              "speedup %.1fx\n",
              total_domains, nested_total, engine_total, speedup);
  std::printf("reports: %s\n",
              diverged ? "DIVERGED (drivers disagree)" : "identical");

  if (!args.json_path.empty()) {
    json.write(args.json_path, elapsed_seconds(total_start));
  }
  return diverged ? 1 : 0;
}
