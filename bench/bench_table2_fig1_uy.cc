// Reproduces Table 2 and Figure 1: resolver centricity for Uruguay's .uy,
// measured from ~15k vantage points.  Parent (root) TTL is 172800 s while
// the child's own NS TTL is 300 s and a.nic.uy's A TTL is 120 s; the
// distribution of observed TTLs separates child- from parent-centric
// resolvers.  Also runs uy-NS-new (child TTL raised to 86400 s, §5.3).
//
// Sharded (PR 4): every shard replicates the world + platform and runs the
// three phases over its probe slice; merged output is byte-identical for
// any --jobs value.

#include <chrono>

#include "bench_common.h"
#include "core/centricity_experiment.h"
#include "core/sharded.h"
#include "par/pool.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

void report(const char* name, const core::CentricityResult& result,
            const core::CentricitySetup& setup, std::size_t vps) {
  std::printf("--- %s (parent TTL %u, child TTL %u) ---\n", name,
              setup.parent_ttl.value(), setup.child_ttl.value());
  std::printf("VPs=%zu  queries=%zu  responses=%zu  valid=%zu  disc=%zu\n",
              vps, result.run.query_count(), result.run.response_count(),
              result.run.valid_count(), result.run.discarded_count());
  std::printf("%s\n", result.summary().c_str());

  auto cdf = result.run.ttl_cdf();
  std::printf("%s", cdf.render(
                        {0, 60, 120, 300, 600, 3600, 21599, 86400, 172800},
                        std::string("TTL CDF ") + name)
                        .c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 2 + Figure 1",
                      ".uy centricity from RIPE-Atlas-like VPs");
  bench::JsonReport json("table2_fig1_uy", args);
  auto wall_start = std::chrono::steady_clock::now();

  auto factory = [&args] {
    core::ShardEnv env;
    env.world = std::make_unique<core::World>(
        core::World::Options{args.seed, 0.002, {}});
    env.world->add_tld("uy", "a.nic", dns::kTtl2Days, dns::kTtl5Min,
                       dns::Ttl{120}, net::Location{net::Region::kSA, 1.0});
    env.platform = std::make_unique<atlas::Platform>(atlas::Platform::build(
        env.world->network(), env.world->hints(), env.world->root_zone(),
        args.platform_spec(), env.world->rng()));
    return env;
  };

  // One extra env on the main thread supplies the shard-independent
  // metadata (probe/VP counts) without waiting for the measurement.
  auto meta = factory();
  const std::size_t vp_count = meta.platform->vp_count();
  std::printf("platform: %zu probes, %zu VPs, %zu resolvers\n\n",
              meta.platform->probes().size(), vp_count,
              meta.platform->resolver_population().size());
  const std::size_t shards =
      par::shard_count_for(meta.platform->probes().size());
  meta = {};

  // --- uy-NS: child TTL 300 s ---
  core::CentricitySetup ns_setup;
  ns_setup.name = "uy-NS";
  ns_setup.qname = dns::Name::from_string("uy");
  ns_setup.qtype = dns::RRType::kNS;
  ns_setup.parent_ttl = dns::kTtl2Days;
  ns_setup.child_ttl = dns::kTtl5Min;
  ns_setup.duration = 2 * sim::kHour;

  // --- a.nic.uy-A: child TTL 120 s ---
  core::CentricitySetup a_setup;
  a_setup.name = "a.nic.uy-A";
  a_setup.qname = dns::Name::from_string("a.nic.uy");
  a_setup.qtype = dns::RRType::kA;
  a_setup.parent_ttl = dns::kTtl2Days;
  a_setup.child_ttl = dns::Ttl{120};
  a_setup.duration = 3 * sim::kHour;

  // --- uy-NS-new: the child raised its NS TTL to one day (§5.3) ---
  core::CentricitySetup new_setup = ns_setup;
  new_setup.name = "uy-NS-new";
  new_setup.child_ttl = dns::kTtl1Day;

  std::vector<double> shard_walls(shards);
  auto runs = core::run_sharded_script(
      factory, shards, args.jobs,
      [&](core::ShardEnv& env, std::size_t shard, std::size_t count) {
        auto shard_start = std::chrono::steady_clock::now();
        std::vector<atlas::MeasurementRun> phases;

        core::CentricitySetup s1 = ns_setup;
        s1.shard_count = count;
        s1.shard_index = shard;
        phases.push_back(std::move(
            core::run_centricity(*env.world, *env.platform, s1).run));

        core::CentricitySetup s2 = a_setup;
        s2.shard_count = count;
        s2.shard_index = shard;
        s2.start = env.world->simulation().now() + sim::kHour;
        env.platform->flush_all();
        phases.push_back(std::move(
            core::run_centricity(*env.world, *env.platform, s2).run));

        // The operator raises the child NS TTL (same virtual moment in
        // every shard — the simulation clock is deterministic).
        env.world->server("a.nic.uy.").zones().back()->set_ttl(
            dns::Name::from_string("uy"), dns::RRType::kNS, dns::kTtl1Day);
        core::CentricitySetup s3 = new_setup;
        s3.shard_count = count;
        s3.shard_index = shard;
        s3.start = env.world->simulation().now() + sim::kHour;
        env.platform->flush_all();
        phases.push_back(std::move(
            core::run_centricity(*env.world, *env.platform, s3).run));

        shard_walls[shard] = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - shard_start)
                                 .count();
        return phases;
      });
  double parallel_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  json.set_shard_walls(shard_walls);
  auto record_phase = [&](const char* name,
                          const core::CentricityResult& result) {
    auto queries = static_cast<std::uint64_t>(result.run.query_count());
    json.add_metric(name, "queries/sec", queries, parallel_wall,
                    parallel_wall > 0
                        ? static_cast<double>(queries) / parallel_wall
                        : 0);
  };

  auto ns_result = core::classify_centricity(std::move(runs[0]), ns_setup);
  record_phase("uy_ns", ns_result);
  report("uy-NS", ns_result, ns_setup, vp_count);

  std::printf("%s", stats::compare_line(
                        "uy-NS answers <= 300 s (child-centric)", "90%",
                        stats::fmt("%.0f%%", 100 * ns_result.at_most_child))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "uy-NS full 172800 s TTL", "2.9%",
                        stats::fmt("%.1f%%",
                                   100 * ns_result.exact_full_parent))
                        .c_str());
  std::printf("\n");

  auto a_result = core::classify_centricity(std::move(runs[1]), a_setup);
  record_phase("a_nic_uy_a", a_result);
  report("a.nic.uy-A", a_result, a_setup, vp_count);

  std::printf("%s", stats::compare_line(
                        "a.nic.uy-A answers <= 120 s (child-centric)", "88%",
                        stats::fmt("%.0f%%", 100 * a_result.at_most_child))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "a.nic.uy-A full 172800 s TTL", "2.2%",
                        stats::fmt("%.1f%%", 100 * a_result.exact_full_parent))
                        .c_str());
  std::printf("\n");

  auto new_result = core::classify_centricity(std::move(runs[2]), new_setup);
  record_phase("uy_ns_new", new_result);
  report("uy-NS-new", new_result, new_setup, vp_count);

  std::printf("%s",
              stats::compare_line(
                  "uy-NS-new answers <= 86400 s (child share)", "~90%",
                  stats::fmt("%.0f%%", 100 * new_result.at_most_child))
                  .c_str());
  if (!args.json_path.empty()) {
    json.write(args.json_path,
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count());
  }
  return 0;
}
