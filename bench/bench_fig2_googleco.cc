// Reproduces Figure 2: observed TTLs for google.co NS queries — a
// second-level domain with a 900 s TTL at the parent (.co) and 345600 s at
// the child (ns[1-4].google.com).  About 70% of answers exceed 900 s
// (child-centric), ~15% sit at the 21599 s public-resolver cap, and ~9%
// show a fresh 900 s parent copy.
//
// Sharded (PR 4): each shard replicates the Google testbed and measures
// its probe slice; output is byte-identical for any --jobs value.

#include "bench_common.h"
#include "core/centricity_experiment.h"
#include "core/sharded.h"
#include "dns/rr.h"
#include "par/pool.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

void build_google_testbed(core::World& world) {
  // .co and .com registries.
  auto co_zone = world.add_tld("co", "a.nic", dns::kTtl2Days, dns::kTtl1Day,
                               dns::kTtl1Day,
                               net::Location{net::Region::kSA, 1.0});
  auto com_zone = world.add_tld("com", "a.gtld", dns::kTtl2Days,
                                dns::kTtl1Day, dns::kTtl1Day,
                                net::Location{net::Region::kNA, 1.0});

  // Google's own servers host google.com (with the nameserver addresses)
  // and google.co.
  const auto ns1 = dns::Name::from_string("ns1.google.com");
  const auto googleco = dns::Name::from_string("google.co");
  const auto googlecom = dns::Name::from_string("google.com");

  auto googlecom_zone = world.create_zone("google.com", dns::kTtl4Days);
  auto googleco_zone = world.create_zone("google.co", dns::kTtl4Days);
  auto& gserver = world.add_server("google-auth",
                                   net::Location{net::Region::kNA, 1.0});
  gserver.add_zone(googlecom_zone);
  gserver.add_zone(googleco_zone);
  auto gaddr = world.address_of("google-auth");

  googlecom_zone->add(dns::make_ns(googlecom, dns::kTtl4Days, ns1));
  googlecom_zone->add(dns::make_a(ns1, dns::kTtl4Days, gaddr));
  googleco_zone->add(dns::make_ns(googleco, dns::kTtl4Days, ns1));

  // Delegations: .com -> google.com (standard 2-day copies);
  // .co -> google.co with the paper's 900 s parent TTL, out-of-bailiwick.
  world.delegate(*com_zone, googlecom, {{ns1, gaddr}}, dns::kTtl2Days,
                 dns::kTtl2Days);
  world.delegate(*co_zone, googleco, {{ns1, gaddr}}, dns::kTtl15Min,
                 dns::kTtl15Min);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 2", "google.co NS centricity (SLD)");

  auto factory = [&args] {
    core::ShardEnv env;
    env.world = std::make_unique<core::World>(
        core::World::Options{args.seed, 0.002, {}});
    build_google_testbed(*env.world);
    env.platform = std::make_unique<atlas::Platform>(atlas::Platform::build(
        env.world->network(), env.world->hints(), env.world->root_zone(),
        args.platform_spec(), env.world->rng()));
    return env;
  };

  auto meta = factory();
  const std::size_t vp_count = meta.platform->vp_count();
  std::printf("platform: %zu probes, %zu VPs\n\n",
              meta.platform->probes().size(), vp_count);
  const std::size_t shards =
      par::shard_count_for(meta.platform->probes().size());
  meta = {};

  core::CentricitySetup setup;
  setup.name = "google.co-NS";
  setup.qname = dns::Name::from_string("google.co");
  setup.qtype = dns::RRType::kNS;
  setup.parent_ttl = dns::kTtl15Min;
  setup.child_ttl = dns::kTtl4Days;
  setup.duration = 1 * sim::kHour;

  auto runs = core::run_sharded_script(
      factory, shards, args.jobs,
      [&](core::ShardEnv& env, std::size_t shard, std::size_t count) {
        core::CentricitySetup s = setup;
        s.shard_count = count;
        s.shard_index = shard;
        std::vector<atlas::MeasurementRun> phases;
        phases.push_back(std::move(
            core::run_centricity(*env.world, *env.platform, s).run));
        return phases;
      });
  auto result = core::classify_centricity(std::move(runs[0]), setup);

  std::printf("VPs=%zu queries=%zu responses=%zu valid=%zu disc=%zu\n\n",
              vp_count, result.run.query_count(),
              result.run.response_count(), result.run.valid_count(),
              result.run.discarded_count());

  auto cdf = result.run.ttl_cdf();
  std::printf("%s\n",
              cdf.render({300, 900, 21599, 86400, 172800, 345600},
                         "TTL CDF google.co-NS")
                  .c_str());

  double above_900 = 1.0 - cdf.fraction_at_most(900.0);
  // Fresh-at-cap at paper scale needs Google's million-frontend cache
  // fragmentation; at simulator scale the capped population shows up as the
  // (900, 21599] band (cap value counting down) instead — same resolvers,
  // same cause (see DESIGN.md).
  double capped = cdf.fraction_at_most(21599.0) - cdf.fraction_at_most(900.0);
  double exact_900 = cdf.fraction_equal(900.0);
  std::printf("%s", stats::compare_line("answers > 900 s (child data)",
                                        "~70%",
                                        stats::fmt("%.0f%%", 100 * above_900))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "answers in the 21599 s cap band", "~15%",
                        stats::fmt("%.0f%%", 100 * capped))
                        .c_str());
  std::printf("%s", stats::compare_line("answers at fresh parent 900 s",
                                        "~9%",
                                        stats::fmt("%.0f%%", 100 * exact_900))
                        .c_str());
  return 0;
}
