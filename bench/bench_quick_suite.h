#ifndef DNSTTL_BENCH_QUICK_SUITE_H
#define DNSTTL_BENCH_QUICK_SUITE_H

// Hand-timed hot-path microbenchmarks behind `bench_micro_library --quick`.
// Unlike the google-benchmark suite these run in a fixed, fast amount of
// time and report throughput numbers suitable for the machine-readable
// BENCH_*.json trajectory (see bench_common.h JsonReport).  They only use
// public library APIs, so the identical file can be compiled against any
// revision to compare builds.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "crawl/engine.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "par/pool.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace dnsttl::bench {

struct QuickMetric {
  std::string name;        ///< e.g. "event_loop"
  std::string unit;        ///< e.g. "events/sec"
  std::uint64_t ops = 0;   ///< operations timed
  double wall_seconds = 0;
  double ops_per_sec = 0;
};

namespace detail {

inline double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline QuickMetric finish(std::string name, std::string unit,
                          std::uint64_t ops,
                          std::chrono::steady_clock::time_point start) {
  QuickMetric metric;
  metric.name = std::move(name);
  metric.unit = std::move(unit);
  metric.ops = ops;
  metric.wall_seconds = elapsed_seconds(start);
  metric.ops_per_sec =
      metric.wall_seconds > 0 ? static_cast<double>(ops) / metric.wall_seconds
                              : 0.0;
  return metric;
}

}  // namespace detail

/// Event-loop throughput: a self-rescheduling event ring, the pattern every
/// experiment's probe/measurement scheduling follows.  Handler captures are
/// sized like the real measurement lambdas (several pointers + ids).
inline QuickMetric bench_event_loop(std::uint64_t total_events) {
  sim::Simulation simulation;
  std::uint64_t fired = 0;
  std::uint64_t payload_a = 1;  // padding captures: realistic handler size
  std::uint64_t payload_b = 2;
  std::uint64_t payload_c = 3;
  struct Chain {
    sim::Simulation* simulation;
    std::uint64_t* fired;
    std::uint64_t total;
    std::uint64_t* a;
    std::uint64_t* b;
    std::uint64_t* c;
    void operator()() const {
      ++*fired;
      *a ^= *b + *c;
      if (*fired + 63 < total) {
        simulation->schedule_after(sim::kMillisecond, *this);
      }
    }
  };
  auto start = std::chrono::steady_clock::now();
  for (int lane = 0; lane < 64; ++lane) {
    simulation.schedule_at(
        static_cast<sim::Time>(lane),
        Chain{&simulation, &fired, total_events, &payload_a, &payload_b,
              &payload_c});
  }
  simulation.run();
  return detail::finish("event_loop", "events/sec",
                        simulation.events_processed(), start);
}

/// Schedule/cancel churn: timeout-style events that are usually cancelled
/// before firing (every network query arms one).
inline QuickMetric bench_event_cancel(std::uint64_t total_events) {
  sim::Simulation simulation;
  std::uint64_t fired = 0;
  auto start = std::chrono::steady_clock::now();
  std::uint64_t scheduled = 0;
  while (scheduled < total_events) {
    std::uint64_t ids[16];
    for (int i = 0; i < 16; ++i) {
      ids[i] = simulation.schedule_after(sim::kSecond,
                                         [&fired] { ++fired; });
    }
    for (int i = 0; i < 16; i += 2) {
      simulation.cancel(ids[i]);  // half the timeouts never fire
    }
    simulation.run_until(simulation.now() + 2 * sim::kSecond);
    scheduled += 16;
  }
  return detail::finish("event_cancel_churn", "events/sec", scheduled, start);
}

/// Cache lookup throughput over a warm working set: the per-query probe
/// every simulated resolver pays, most often a hit.
inline QuickMetric bench_cache_lookup(std::uint64_t total_lookups) {
  cache::Cache cache;
  constexpr std::size_t kEntries = 4096;
  std::vector<dns::Name> names;
  names.reserve(kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    names.push_back(dns::Name::from_string(
        "host" + std::to_string(i) + ".zone" + std::to_string(i % 64) +
        ".example.org"));
  }
  for (std::size_t i = 0; i < kEntries; ++i) {
    dns::RRset rrset(names[i], dns::RClass::kIN, dns::Ttl{86400});
    rrset.add(dns::ARdata{dns::Ipv4(static_cast<std::uint32_t>(i))});
    cache.insert(rrset, cache::Credibility::kAuthAnswer, sim::Time{});
  }
  std::uint64_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_lookups; ++i) {
    auto hit = cache.lookup(names[i & (kEntries - 1)], dns::RRType::kA,
                            sim::at(sim::kSecond));
    hits += hit.has_value();
  }
  auto metric = detail::finish("cache_lookup", "lookups/sec",
                               total_lookups, start);
  if (hits != total_lookups) {
    metric.name = "cache_lookup_BROKEN";  // guard against dead-code folding
  }
  return metric;
}

/// Cache insert/expiry churn: short-TTL entries stream through the cache
/// with periodic purges, the Table 8 / TTL-0 workload shape.
inline QuickMetric bench_cache_churn(std::uint64_t total_inserts) {
  cache::Cache cache;
  constexpr std::size_t kNames = 1024;
  std::vector<dns::Name> names;
  names.reserve(kNames);
  for (std::size_t i = 0; i < kNames; ++i) {
    names.push_back(
        dns::Name::from_string("churn" + std::to_string(i) + ".example"));
  }
  sim::Time now{};
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_inserts; ++i) {
    dns::RRset rrset(names[i % kNames], dns::RClass::kIN,
                     dns::Ttl::of_seconds(static_cast<std::int64_t>(30 + i % 270)));
    rrset.add(dns::ARdata{dns::Ipv4(static_cast<std::uint32_t>(i))});
    cache.insert(rrset, cache::Credibility::kAuthAnswer, now);
    now += sim::kSecond;
    if ((i & 0x3ff) == 0x3ff) {
      cache.purge_expired(now);
    }
  }
  return detail::finish("cache_insert_churn", "inserts/sec", total_inserts,
                        start);
}

namespace detail {

/// Deterministic sub-second jitter for the dense-expiry duel: spreads an
/// actor's next due time across one second of microseconds.
inline std::int64_t dense_jitter_us(std::uint64_t actor, std::uint64_t round) {
  return static_cast<std::int64_t>(((actor * 2654435761u) ^ (round * 40503u)) %
                                   1'000'000u);
}

}  // namespace detail

/// Dense-expiry scheduling, timer-wheel side: thousands of actors each hold
/// exactly one pending timer about a second out, so whole cohorts land in
/// the same wheel slot and fire batch-wise — the workload-engine shape
/// (one arrival per stub).  Compare with sched_heap_dense below.
inline QuickMetric bench_wheel_dense(std::uint64_t total_events) {
  constexpr std::uint64_t kActors = 4096;
  sim::TimerWheel wheel;
  std::vector<std::uint64_t> rounds(kActors, 0);
  std::uint64_t seq = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t actor = 0; actor < kActors; ++actor) {
    wheel.schedule(sim::Time{} + sim::kSecond +
                       sim::microseconds(detail::dense_jitter_us(actor, 0)),
                   seq++, actor);
  }
  std::uint64_t fired = 0;
  while (fired < total_events) {
    const sim::TimerWheel::Entry entry = wheel.pop_head();
    ++fired;
    const std::uint64_t round = ++rounds[entry.payload];
    wheel.schedule(entry.at + sim::kSecond +
                       sim::microseconds(
                           detail::dense_jitter_us(entry.payload, round)),
                   seq++, entry.payload);
  }
  return detail::finish("sched_wheel_dense", "events/sec", fired, start);
}

/// Dense-expiry scheduling, slab-heap side: the historical object-per-actor
/// pattern — every pending arrival is its own 4-ary-heap node plus an
/// EventFn closure.  Same arrival process as sched_wheel_dense.
inline QuickMetric bench_heap_dense(std::uint64_t total_events) {
  constexpr std::uint64_t kActors = 4096;
  sim::Simulation simulation;
  std::vector<std::uint64_t> rounds(kActors, 0);
  std::uint64_t fired = 0;
  struct Actor {
    sim::Simulation* simulation;
    std::vector<std::uint64_t>* rounds;
    std::uint64_t* fired;
    std::uint64_t total;
    std::uint64_t actor;
    void operator()() const {
      ++*fired;
      const std::uint64_t round = ++(*rounds)[actor];
      if (*fired + kActors <= total) {
        simulation->schedule_after(
            sim::kSecond +
                sim::microseconds(detail::dense_jitter_us(actor, round)),
            *this);
      }
    }
  };
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t actor = 0; actor < kActors; ++actor) {
    simulation.schedule_at(
        sim::Time{} + sim::kSecond +
            sim::microseconds(detail::dense_jitter_us(actor, 0)),
        Actor{&simulation, &rounds, &fired, total_events, actor});
  }
  simulation.run();
  return detail::finish("sched_heap_dense", "events/sec", fired, start);
}

/// Crawl-driver duel: the nested-call reference driver (one full recursive
/// resolution per record type, fresh resolver state each fetch) against
/// the bulk resolution engine (resumable tasks, batch scheduler) on the
/// same list and RNG fork.  Two metrics from one input, so the ratio in
/// the BENCH_*.json trajectory IS the engine's speedup.
inline std::vector<QuickMetric> bench_crawl_duel(std::size_t domains) {
  const auto params = crawl::alexa_params(domains);
  const sim::Rng list_rng = sim::Rng(7).fork(0);

  auto nested_start = std::chrono::steady_clock::now();
  const auto nested = crawl::crawl_nested(params, list_rng);
  auto nested_metric = detail::finish("crawl_nested", "domains/sec", domains,
                                      nested_start);

  crawl::EngineOptions options;  // jobs = 1: measures the scheduler, not
  options.jobs = 1;              // the thread pool
  auto engine_start = std::chrono::steady_clock::now();
  const auto engine = crawl::crawl_engine(params, list_rng, options);
  auto engine_metric = detail::finish("crawl_engine", "domains/sec", domains,
                                      engine_start);
  if (nested.harvest_mismatches != 0 ||
      nested.report.responsive != engine.report.responsive ||
      engine.stats.resolutions != domains) {
    engine_metric.name = "crawl_engine_BROKEN";  // drivers diverged
  }
  return {nested_metric, engine_metric};
}

/// Name parsing throughput (every query/record construction pays this).
inline QuickMetric bench_name_parse(std::uint64_t total_parses) {
  const std::string inputs[4] = {
      "www.example.org",
      "very.long.sub.domain.example.org",
      "a.nic.uy",
      "ns1.dns.nl",
  };
  std::size_t total_labels = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_parses; ++i) {
    total_labels += dns::Name::from_string(inputs[i & 3]).label_count();
  }
  auto metric =
      detail::finish("name_parse", "parses/sec", total_parses, start);
  if (total_labels == 0) {
    metric.name = "name_parse_BROKEN";
  }
  return metric;
}

/// Runs the whole quick suite.  @p scale stretches the iteration counts
/// (1.0 ≈ a second or two on a laptop; --quick passes 0.1).
inline std::vector<QuickMetric> run_quick_suite(double scale) {
  auto n = [scale](std::uint64_t base) {
    auto scaled = static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    return scaled < 1000 ? 1000 : scaled;
  };
  std::vector<QuickMetric> metrics;
  metrics.push_back(bench_event_loop(n(4'000'000)));
  metrics.push_back(bench_event_cancel(n(2'000'000)));
  metrics.push_back(bench_wheel_dense(n(4'000'000)));
  metrics.push_back(bench_heap_dense(n(4'000'000)));
  metrics.push_back(bench_cache_lookup(n(8'000'000)));
  metrics.push_back(bench_cache_churn(n(2'000'000)));
  metrics.push_back(bench_name_parse(n(4'000'000)));
  for (auto& metric : bench_crawl_duel(n(20'000))) {
    metrics.push_back(std::move(metric));
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// Experiment-suite runner (dnsttl_lab suite): schedules the independent
// experiment binaries concurrently on a par::Pool and reprints their
// captured outputs in a fixed order, so the suite's stdout is
// byte-identical at any --jobs value.
// ---------------------------------------------------------------------------

/// The 16 independent experiment binaries (bench_micro_library is the
/// google-benchmark harness and stays separate).
inline const std::vector<std::string>& experiment_binaries() {
  static const std::vector<std::string> kBinaries = {
      "bench_table1_cl",
      "bench_table2_fig1_uy",
      "bench_fig2_googleco",
      "bench_fig3_fig4_nl_passive",
      "bench_table3_4_fig678_bailiwick",
      "bench_table5_fig9_crawl",
      "bench_table6_7_dmap",
      "bench_table8_ttl0",
      "bench_table9_bailiwick_wild",
      "bench_fig10_uy_rtt",
      "bench_table10_fig11_controlled",
      "bench_ablation_policies",
      "bench_ablation_hitrate",
      "bench_extension_ddos",
      "bench_extension_parent_child",
      "bench_extra_offline_child",
  };
  return kBinaries;
}

/// One experiment binary's captured run.
struct ExperimentResult {
  std::string name;
  int exit_code = -1;
  double wall_seconds = 0;
  std::string output;  ///< stdout+stderr, verbatim
};

/// Runs one binary via the shell, capturing stdout+stderr.
inline ExperimentResult run_experiment_binary(const std::string& bin_dir,
                                              const std::string& name,
                                              const std::string& flags) {
  ExperimentResult result;
  result.name = name;
  const std::string command = bin_dir + "/" + name + " " + flags + " 2>&1";
  auto start = std::chrono::steady_clock::now();
  std::FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    result.exit_code = 127;
    result.output = "cannot spawn: " + command + "\n";
    return result;
  }
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  result.exit_code = ::pclose(pipe);
  result.wall_seconds = detail::elapsed_seconds(start);
  return result;
}

/// Runs every named binary with @p flags, up to @p jobs concurrently.
/// Results come back in the order of @p names regardless of completion
/// order.  Each child gets "--jobs 1" appended so inner sharding does not
/// oversubscribe the pool's workers.
inline std::vector<ExperimentResult> run_experiment_suite(
    const std::string& bin_dir, const std::vector<std::string>& names,
    const std::string& flags, std::size_t jobs) {
  return par::map_shards(names.size(), jobs, [&](std::size_t index) {
    return run_experiment_binary(bin_dir, names[index],
                                 flags + " --jobs 1");
  });
}

}  // namespace dnsttl::bench

#endif  // DNSTTL_BENCH_QUICK_SUITE_H
