// Ablation: simulated cache hit rate vs the analytic TTL-cache models the
// paper builds on (Jung et al. 2002/2003; Moura et al. 2018 measured ~70%
// hit rates for TTLs of 1800-86400 s).  One shared resolver serves Poisson
// client demand for a single record while the TTL sweeps the paper's range;
// the simulation must track the closed form λT/(1+λT).

#include <vector>

#include "bench_common.h"
#include "core/hit_rate_model.h"
#include "core/world.h"
#include "dns/rr.h"
#include "resolver/recursive_resolver.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation",
                      "cache hit rate vs TTL — simulation vs closed form");

  const double lambda = 0.01;  // client lookups/second toward one resolver
  const sim::Duration duration = 24 * sim::kHour;
  const std::vector<dns::Ttl> ttls = {
      dns::Ttl{0},    dns::Ttl{60},    dns::Ttl{300},   dns::Ttl{900},
      dns::Ttl{1800}, dns::Ttl{3600},  dns::Ttl{14400}, dns::Ttl{43200},
      dns::Ttl{86400}};

  stats::TablePrinter table({"TTL (s)", "hit rate (sim)",
                             "hit rate (Jung model)", "auth q/h (sim)",
                             "auth q/h (model)"});

  double worst_gap = 0.0;
  for (dns::Ttl ttl : ttls) {
    core::World world{core::World::Options{args.seed, 0.0, {}}};
    auto zone = world.add_tld("shop", "ns1", dns::kTtl2Days, dns::kTtl2Days,
                              dns::kTtl2Days,
                              net::Location{net::Region::kNA, 1.0});
    zone->add(dns::make_a(dns::Name::from_string("www.shop"), ttl,
                          dns::Ipv4(10, 1, 0, 1)));

    resolver::RecursiveResolver resolver("shared",
                                         resolver::child_centric_config(),
                                         world.network(), world.hints());
    net::Location eu{net::Region::kEU, 1.0};
    resolver.set_node_ref(
        net::NodeRef{world.network().attach(resolver, eu), eu});

    // Poisson arrivals over the duration.
    sim::Rng demand = world.rng().fork(ttl.value());
    dns::Question question{dns::Name::from_string("www.shop"),
                           dns::RRType::kA, dns::RClass::kIN};
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    sim::Time t =
        sim::at(sim::approx_seconds(demand.exponential(1.0 / lambda)));
    while (t < sim::at(duration)) {
      auto result = resolver.resolve(question, t);
      ++queries;
      if (result.answered_from_cache) ++hits;
      t += sim::approx_seconds(demand.exponential(1.0 / lambda));
    }

    double hit_rate = queries == 0
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(queries);
    double model = core::poisson_hit_rate(lambda, ttl);
    worst_gap = std::max(worst_gap, std::abs(hit_rate - model));
    // The record's misses at the authoritative; NS/A infra fetches excluded
    // by counting only the www.shop queries.
    world.server("ns1.shop.").set_logging(false);
    double hours = sim::to_seconds(duration) / 3600.0;
    double sim_auth = static_cast<double>(queries - hits) / hours;
    double model_auth = core::authoritative_rate(lambda, ttl) * 3600.0;
    table.add_row({std::to_string(ttl.value()), stats::fmt("%.3f", hit_rate),
                   stats::fmt("%.3f", model), stats::fmt("%.1f", sim_auth),
                   stats::fmt("%.1f", model_auth)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("%s",
              stats::compare_line(
                  "simulation tracks the Jung et al. closed form",
                  "exact in the limit",
                  stats::fmt("max |sim-model| = %.3f", worst_gap))
                  .c_str());
  std::printf("%s",
              stats::compare_line(
                  "demand for the Moura et al. ~70% at TTL 1800 s",
                  "production mixes",
                  stats::fmt("here: lambda=%.4f/s would give 70%%",
                             0.7 / (0.3 * 1800.0)))
                  .c_str());
  std::printf("%s",
              stats::compare_line(
                  "TTLs beyond ~1000 s capture most of the benefit",
                  "Jung et al. 2002",
                  stats::fmt("model: ttl_for_hit_rate(λ=0.01, 90%%)=%u s",
                             core::ttl_for_hit_rate(lambda, 0.9)))
                  .c_str());
  return 0;
}
