// Reproduces Table 5 and Figure 9: the §5.1 crawl of five domain
// populations (Alexa, Majestic, Umbrella top-1M; the .nl zone; the root
// zone TLDs) — record counts, unique-value ratios, and per-record-type TTL
// CDFs from the child authoritative view.  Populations are synthetic but
// calibrated per list (DESIGN.md §4); counts scale with --scale, ratios and
// CDF shapes hold.

#include <vector>

#include "bench_common.h"
#include "crawl/engine.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 5 + Figure 9",
                      "TTLs in the wild: five-list crawl");

  sim::Rng rng(args.seed);
  auto scaled = [&](std::size_t full) {
    // The paper's 1M-entry lists are generated at 1/10 scale by default; a
    // --scale of 1.0 therefore means 100k domains per top list.  The bulk
    // engine streams domains through a bounded task pool instead of
    // materializing the population, so --scale 100 (10M per top list)
    // costs only the tally footprint (TTL samples, unique-value sets),
    // not the population's.
    return std::max<std::size_t>(2000,
                                 static_cast<std::size_t>(static_cast<double>(full) * args.scale));
  };

  std::vector<crawl::ListParams> lists = {
      crawl::alexa_params(scaled(100000)),
      crawl::majestic_params(scaled(100000)),
      crawl::umbrella_params(scaled(100000)),
      crawl::nl_params(scaled(500000)),
      crawl::root_params(),
  };

  crawl::EngineOptions options;
  options.jobs = args.jobs;
  std::vector<crawl::CrawlReport> reports;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    // Each list crawls from its own forked stream, so lists are
    // independent and every shard regenerates exactly its own slice.
    reports.push_back(
        crawl::crawl_engine(lists[i], rng.fork(i), options).report);
  }

  // ---- Table 5: dataset sizes and per-type record counts/ratios ----
  stats::TablePrinter sizes({"", "Alexa", "Majestic", "Umbre.", ".nl",
                             "Root"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& report : reports) {
      cells.push_back(getter(report));
    }
    sizes.add_row(std::move(cells));
  };
  row("domains", [](const crawl::CrawlReport& r) {
    return std::to_string(r.domains);
  });
  row("responsive", [](const crawl::CrawlReport& r) {
    return std::to_string(r.responsive);
  });
  row("ratio", [](const crawl::CrawlReport& r) {
    return stats::fmt("%.2f", r.responsive_ratio());
  });
  for (auto type : {dns::RRType::kNS, dns::RRType::kA, dns::RRType::kAAAA,
                    dns::RRType::kMX, dns::RRType::kDNSKEY,
                    dns::RRType::kCNAME}) {
    row(std::string(dns::to_string(type)), [type](const crawl::CrawlReport& r) {
      const auto* tally = r.by_type.find(type);
      return tally == nullptr ? "-" : std::to_string(tally->records);
    });
    row("  unique", [type](const crawl::CrawlReport& r) {
      const auto* tally = r.by_type.find(type);
      return tally == nullptr ? "-" : std::to_string(tally->unique_values);
    });
    row("  ratio", [type](const crawl::CrawlReport& r) {
      const auto* tally = r.by_type.find(type);
      return tally == nullptr ? "-" : stats::fmt("%.2f", tally->unique_ratio());
    });
  }
  std::printf("Table 5 — datasets and RR counts (child authoritative):\n%s\n",
              sizes.render().c_str());

  // ---- Figure 9: TTL CDFs per record type ----
  const std::vector<double> probes = {0,    60,    300,   900,   3600,
                                      7200, 14400, 43200, 86400, 172800};
  for (auto type : {dns::RRType::kNS, dns::RRType::kA, dns::RRType::kAAAA,
                    dns::RRType::kMX, dns::RRType::kDNSKEY}) {
    std::printf("Figure 9 — TTL CDF for %s records:\n",
                std::string(dns::to_string(type)).c_str());
    stats::TablePrinter cdf_table({"TTL(s)", "Alexa", "Majestic", "Umbre.",
                                   ".nl", "Root"});
    for (double p : probes) {
      std::vector<std::string> cells{stats::fmt("%.0f", p)};
      for (const auto& report : reports) {
        const auto* tally = report.by_type.find(type);
        cells.push_back(tally == nullptr || tally->ttl_cdf.empty()
                            ? "-"
                            : stats::fmt("%.2f",
                                         tally->ttl_cdf.fraction_at_most(p)));
      }
      cdf_table.add_row(std::move(cells));
    }
    std::printf("%s\n", cdf_table.render().c_str());
  }

  // ---- Headline comparisons ----
  const auto& root = reports[4];
  const auto& umbrella = reports[2];
  const auto& alexa = reports[0];
  double root_ns_long =
      1.0 - root.by_type.at(dns::RRType::kNS).ttl_cdf.fraction_below(86400);
  double umbrella_ns_1min =
      umbrella.by_type.at(dns::RRType::kNS).ttl_cdf.fraction_at_most(60);
  std::printf("%s", stats::compare_line("root NS TTLs at 1-2 days", "~80%",
                                        stats::fmt("%.0f%%",
                                                   100 * root_ns_long))
                        .c_str());
  std::printf("%s",
              stats::compare_line("Umbrella NS TTLs <= 1 minute", "25%",
                                  stats::fmt("%.0f%%", 100 * umbrella_ns_1min))
                  .c_str());
  std::printf("%s",
              stats::compare_line(
                  "Alexa NS unique ratio (shared hosting)", "9.19",
                  stats::fmt("%.2f",
                             alexa.by_type.at(dns::RRType::kNS).unique_ratio()))
                  .c_str());
  std::printf("%s",
              stats::compare_line(
                  ".nl NS unique ratio", "190.09",
                  stats::fmt("%.2f", reports[3]
                                         .by_type.at(dns::RRType::kNS)
                                         .unique_ratio()))
                  .c_str());
  std::printf("%s",
              stats::compare_line(
                  "NS/DNSKEY longest-lived, A/AAAA shortest", "holds",
                  stats::fmt(
                      "NS med=%.0fs A med=%.0fs DNSKEY med=%.0fs",
                      alexa.by_type.at(dns::RRType::kNS).ttl_cdf.median(),
                      alexa.by_type.at(dns::RRType::kA).ttl_cdf.median(),
                      alexa.by_type.at(dns::RRType::kDNSKEY).ttl_cdf.median()))
                  .c_str());
  return 0;
}
