// Reproduces Table 9: bailiwick configuration in the wild — more than 90%
// of popular domains use exclusively out-of-bailiwick nameservers, while
// the root's TLDs split roughly half and half.

#include <vector>

#include "bench_common.h"
#include "crawl/engine.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 9", "bailiwick distribution in the wild");

  sim::Rng rng(args.seed);
  auto scaled = [&](std::size_t full) {
    // Streaming engine: --scale 100 crawls 10M-domain top lists without
    // ever materializing the population (memory is the tally footprint).
    return std::max<std::size_t>(2000,
                                 static_cast<std::size_t>(static_cast<double>(full) * args.scale));
  };
  std::vector<crawl::ListParams> lists = {
      crawl::alexa_params(scaled(100000)),
      crawl::majestic_params(scaled(100000)),
      crawl::umbrella_params(scaled(100000)),
      crawl::nl_params(scaled(500000)),
      crawl::root_params(),
  };

  crawl::EngineOptions options;
  options.jobs = args.jobs;
  std::vector<crawl::CrawlReport> reports;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    reports.push_back(
        crawl::crawl_engine(lists[i], rng.fork(i), options).report);
  }

  stats::TablePrinter table({"", "Alexa", "Majestic", "Umbre.", ".nl",
                             "Root"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& report : reports) {
      cells.push_back(getter(report.bailiwick));
    }
    table.add_row(std::move(cells));
  };
  row("responsive", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.responsive);
  });
  row("CNAME", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.cname);
  });
  row("SOA", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.soa);
  });
  row("respond NS", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.respond_ns);
  });
  row("Out only", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.out_only);
  });
  row("percent out", [](const crawl::BailiwickTally& b) {
    return b.respond_ns == 0
               ? "-"
               : stats::fmt("%.1f", 100.0 * static_cast<double>(b.out_only) /
                                        static_cast<double>(b.respond_ns));
  });
  row("In only", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.in_only);
  });
  row("Mixed", [](const crawl::BailiwickTally& b) {
    return std::to_string(b.mixed);
  });
  std::printf("%s\n", table.render().c_str());

  auto pct_out = [](const crawl::CrawlReport& r) {
    return 100.0 * static_cast<double>(r.bailiwick.out_only) /
           static_cast<double>(r.bailiwick.respond_ns);
  };
  std::printf("%s", stats::compare_line("Alexa percent out-only", "95.0",
                                        stats::fmt("%.1f", pct_out(reports[0])))
                        .c_str());
  std::printf("%s", stats::compare_line(".nl percent out-only", "99.7",
                                        stats::fmt("%.1f", pct_out(reports[3])))
                        .c_str());
  std::printf("%s", stats::compare_line("Root percent out-only", "48.7",
                                        stats::fmt("%.1f", pct_out(reports[4])))
                        .c_str());
  return 0;
}
