#ifndef DNSTTL_BENCH_COMMON_H
#define DNSTTL_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "atlas/platform.h"
#include "core/world.h"

namespace dnsttl::bench {

/// Command-line knobs shared by every experiment binary:
///   --scale <f>   scale probe/resolver counts (default 1.0 = paper scale)
///   --seed <n>    RNG seed (default 1)
///   --full        alias for --scale 1.0 (paper scale, the default)
///   --quick       alias for --scale 0.1 (CI-friendly)
struct BenchArgs {
  double scale = 1.0;
  std::uint64_t seed = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        args.scale = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.scale = 0.1;
      } else if (std::strcmp(argv[i], "--full") == 0) {
        args.scale = 1.0;
      }
    }
    if (args.scale <= 0.0) {
      args.scale = 1.0;
    }
    return args;
  }

  atlas::PlatformSpec platform_spec() const {
    atlas::PlatformSpec spec;
    spec.probe_count =
        static_cast<std::size_t>(9000 * scale) < 50
            ? 50
            : static_cast<std::size_t>(9000 * scale);
    spec.resolver_count =
        static_cast<std::size_t>(6000 * scale) < 40
            ? 40
            : static_cast<std::size_t>(6000 * scale);
    return spec;
  }
};

inline void print_header(const char* id, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("Cache Me If You Can: Effects of DNS Time-to-Live (IMC'19)\n");
  std::printf("==========================================================\n");
}

}  // namespace dnsttl::bench

#endif  // DNSTTL_BENCH_COMMON_H
