#ifndef DNSTTL_BENCH_COMMON_H
#define DNSTTL_BENCH_COMMON_H

#include <sys/resource.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/platform.h"
#include "core/world.h"
#include "par/pool.h"

namespace dnsttl::bench {

/// Command-line knobs shared by every experiment binary:
///   --scale <f>   scale probe/resolver counts (default 1.0 = paper scale)
///   --seed <n>    RNG seed (default 1)
///   --full        alias for --scale 1.0 (paper scale, the default)
///   --quick       alias for --scale 0.1 (CI-friendly)
///   --jobs <n>    worker threads for sharded experiments (0 = hardware;
///                 default from DNSTTL_JOBS, else hardware).  Output is
///                 byte-identical for every value — shard layout is a
///                 function of the workload, jobs only sets concurrency.
///   --json <path> also write a machine-readable BENCH_*.json report
/// Flags accept both "--flag value" and "--flag=value".  Unknown flags and
/// non-numeric values print usage and exit non-zero (atof-style silent
/// zeros made a typoed "--scale O.5" run the full paper scale).
struct BenchArgs {
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::string json_path;
  bool quick = false;
  std::size_t jobs = par::default_jobs();

  static void print_usage(const char* program) {
    std::fprintf(stderr,
                 "usage: %s [--scale <f>] [--seed <n>] [--quick] [--full] "
                 "[--jobs <n>] [--json <path>]\n",
                 program);
  }

  [[noreturn]] static void usage_error(const char* program,
                                       const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", program, message.c_str());
    print_usage(program);
    std::exit(2);
  }

  static double parse_double(const char* program, std::string_view flag,
                             const std::string& text) {
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || errno != 0) {
      usage_error(program, std::string(flag) + " expects a number, got \"" +
                               text + "\"");
    }
    return value;
  }

  static std::uint64_t parse_u64(const char* program, std::string_view flag,
                                 const std::string& text) {
    errno = 0;
    char* end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
        text[0] == '-') {
      usage_error(program, std::string(flag) +
                               " expects a non-negative integer, got \"" +
                               text + "\"");
    }
    return static_cast<std::uint64_t>(value);
  }

  /// Consumes one argument (plus a value argument for "--flag value" form).
  /// Returns the number of argv slots consumed, 0 if the flag is unknown.
  int consume(const char* program, int argc, char** argv, int i) {
    std::string_view arg = argv[i];
    std::string value;
    bool inline_value = false;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      value = std::string(arg.substr(eq + 1));
      arg = arg.substr(0, eq);
      inline_value = true;
    }
    auto take_value = [&](std::string_view flag) -> std::string {
      if (inline_value) {
        return value;
      }
      if (i + 1 >= argc) {
        usage_error(program, std::string(flag) + " requires a value");
      }
      return argv[i + 1];
    };
    if (arg == "--scale") {
      scale = parse_double(program, arg, take_value(arg));
      return inline_value ? 1 : 2;
    }
    if (arg == "--seed") {
      seed = parse_u64(program, arg, take_value(arg));
      return inline_value ? 1 : 2;
    }
    if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(parse_u64(program, arg, take_value(arg)));
      if (jobs == 0) {
        jobs = par::hardware_jobs();
      }
      return inline_value ? 1 : 2;
    }
    if (arg == "--json") {
      json_path = take_value(arg);
      return inline_value ? 1 : 2;
    }
    if (arg == "--quick") {
      scale = 0.1;
      quick = true;
      return 1;
    }
    if (arg == "--full") {
      scale = 1.0;
      quick = false;
      return 1;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(program);
      std::exit(0);
    }
    return 0;
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    const char* program = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc;) {
      int consumed = args.consume(program, argc, argv, i);
      if (consumed == 0) {
        usage_error(program, std::string("unknown flag \"") + argv[i] + "\"");
      }
      i += consumed;
    }
    if (args.scale <= 0.0) {
      args.scale = 1.0;
    }
    return args;
  }

  atlas::PlatformSpec platform_spec() const {
    atlas::PlatformSpec spec;
    spec.probe_count =
        static_cast<std::size_t>(9000 * scale) < 50
            ? 50
            : static_cast<std::size_t>(9000 * scale);
    spec.resolver_count =
        static_cast<std::size_t>(6000 * scale) < 40
            ? 40
            : static_cast<std::size_t>(6000 * scale);
    return spec;
  }
};

inline void print_header(const char* id, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("Cache Me If You Can: Effects of DNS Time-to-Live (IMC'19)\n");
  std::printf("==========================================================\n");
}

/// Peak resident set size of this process in bytes.  Prefers VmHWM from
/// /proc/self/status: ru_maxrss is copied across fork() and NOT reset by
/// execve(), so a small benchmark spawned from a large parent (the
/// bench_compare.py gate) would otherwise report the parent's footprint.
/// VmHWM is per-mm and starts fresh at exec.
inline std::uint64_t peak_rss_bytes() {
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, status) != nullptr) {
      unsigned long long kib = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
        std::fclose(status);
        return static_cast<std::uint64_t>(kib) * 1024;
      }
    }
    std::fclose(status);
  }
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// Machine-readable benchmark report writer: collects named throughput
/// metrics plus run metadata (seed, scale, wall time, peak RSS) and writes
/// a BENCH_*.json file, establishing a perf trajectory across revisions.
class JsonReport {
 public:
  JsonReport(std::string benchmark_id, const BenchArgs& args)
      : benchmark_id_(std::move(benchmark_id)),
        seed_(args.seed),
        scale_(args.scale),
        jobs_(args.jobs) {}

  void add_metric(const std::string& name, const std::string& unit,
                  std::uint64_t ops, double wall_seconds,
                  double ops_per_sec) {
    metrics_.push_back(Metric{name, unit, ops, wall_seconds, ops_per_sec});
  }

  /// Per-shard wall times of the parallel section (index = shard index).
  /// Timing noise only — never part of the byte-identical stdout.
  void set_shard_walls(std::vector<double> walls) {
    shard_walls_ = std::move(walls);
  }

  /// Writes the report; returns false (with a message on stderr) on I/O
  /// failure.
  bool write(const std::string& path, double total_wall_seconds) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s: %s\n",
                   path.c_str(), std::strerror(errno));
      return false;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"%s\",\n", benchmark_id_.c_str());
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed_));
    std::fprintf(out, "  \"scale\": %g,\n", scale_);
    std::fprintf(out, "  \"jobs\": %zu,\n", jobs_);
    std::fprintf(out, "  \"wall_seconds_total\": %.6f,\n", total_wall_seconds);
    std::fprintf(out, "  \"shard_wall_seconds\": [");
    for (std::size_t i = 0; i < shard_walls_.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", shard_walls_[i]);
    }
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(peak_rss_bytes()));
    std::fprintf(out, "  \"metrics\": [\n");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"unit\": \"%s\", \"ops\": %llu, "
                   "\"wall_seconds\": %.6f, \"ops_per_sec\": %.1f}%s\n",
                   m.name.c_str(), m.unit.c_str(),
                   static_cast<unsigned long long>(m.ops), m.wall_seconds,
                   m.ops_per_sec, i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    std::uint64_t ops = 0;
    double wall_seconds = 0;
    double ops_per_sec = 0;
  };

  std::string benchmark_id_;
  std::uint64_t seed_ = 1;
  double scale_ = 1.0;
  std::size_t jobs_ = 1;
  std::vector<double> shard_walls_;
  std::vector<Metric> metrics_;
};

}  // namespace dnsttl::bench

#endif  // DNSTTL_BENCH_COMMON_H
