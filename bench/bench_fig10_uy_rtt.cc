// Reproduces Figure 10: the .uy natural experiment.  Before 2019-03-04 the
// child NS TTL was 300 s (median client RTT 28.7 ms); after raising it to
// 86400 s the median fell to 8 ms because .uy stays cached at recursives.
// Panel (b) breaks the RTT change down by probe region.
//
// Sharded (PR 4): each shard replicates the world and runs the before/after
// phases over its probe slice; output is byte-identical for any --jobs.

#include "bench_common.h"
#include "core/latency_experiment.h"
#include "core/sharded.h"
#include "par/pool.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 10",
                      ".uy RTT before/after the NS TTL change (300s->86400s)");

  auto factory = [&args] {
    core::ShardEnv env;
    env.world = std::make_unique<core::World>(
        core::World::Options{args.seed, 0.002, {}});
    env.world->add_tld("uy", "a.nic", dns::kTtl2Days, dns::kTtl5Min,
                       dns::Ttl{120}, net::Location{net::Region::kSA, 1.0});
    env.platform = std::make_unique<atlas::Platform>(atlas::Platform::build(
        env.world->network(), env.world->hints(), env.world->root_zone(),
        args.platform_spec(), env.world->rng()));
    return env;
  };

  // The region table needs a platform; shard platforms are identical, so
  // one main-thread env doubles as the reporting copy.
  auto meta = factory();
  std::printf("platform: %zu probes, %zu VPs\n\n",
              meta.platform->probes().size(), meta.platform->vp_count());
  const std::size_t shards =
      par::shard_count_for(meta.platform->probes().size());

  auto runs = core::run_sharded_script(
      factory, shards, args.jobs,
      [](core::ShardEnv& env, std::size_t shard, std::size_t count) {
        std::vector<atlas::MeasurementRun> phases;

        // Before: short child TTL.
        phases.push_back(core::run_uy_rtt(*env.world, *env.platform,
                                          sim::Time{}, 2 * sim::kHour, count,
                                          shard));

        // The operator raises the TTL to one day; caches from the "before"
        // era drain naturally (we give them an hour, like the days between
        // the paper's measurements, scaled to the short TTLs involved).
        env.world->server("a.nic.uy.").zones().back()->set_ttl(
            dns::Name::from_string("uy"), dns::RRType::kNS, dns::kTtl1Day);
        env.platform->flush_all();
        phases.push_back(core::run_uy_rtt(
            *env.world, *env.platform,
            env.world->simulation().now() + sim::kHour, 2 * sim::kHour, count,
            shard));
        return phases;
      });
  const auto& before = runs[0];
  const auto& after = runs[1];

  auto before_cdf = before.rtt_cdf_ms();
  auto after_cdf = after.rtt_cdf_ms();

  std::printf("Figure 10a — RTT CDF, all VPs combined:\n");
  std::printf("%s\n", before_cdf.render({5, 10, 20, 50, 100, 200, 500, 1000},
                                        "RTT ms (TTL 300)")
                          .c_str());
  std::printf("%s\n", after_cdf.render({5, 10, 20, 50, 100, 200, 500, 1000},
                                       "RTT ms (TTL 86400)")
                          .c_str());
  std::printf("TTL 300:   %s\n",
              stats::percentile_summary(before_cdf, "ms").c_str());
  std::printf("TTL 86400: %s\n\n",
              stats::percentile_summary(after_cdf, "ms").c_str());

  std::printf("Figure 10b — median (p25-p75) RTT per region:\n");
  stats::TablePrinter regions({"region", "TTL300 p25/p50/p75",
                               "TTL86400 p25/p50/p75"});
  for (net::Region region : net::kAllRegions) {
    auto b = before.rtt_cdf_ms(region, *meta.platform);
    auto a = after.rtt_cdf_ms(region, *meta.platform);
    if (b.empty() || a.empty()) continue;
    regions.add_row({std::string(net::to_string(region)),
                     stats::fmt("%5.1f /%6.1f /%6.1f ms", b.quantile(0.25),
                                b.median(), b.quantile(0.75)),
                     stats::fmt("%5.1f /%6.1f /%6.1f ms", a.quantile(0.25),
                                a.median(), a.quantile(0.75))});
  }
  std::printf("%s\n", regions.render().c_str());

  std::printf("%s", stats::compare_line(
                        "median RTT with short TTL", "28.7 ms",
                        stats::fmt("%.1f ms", before_cdf.median()))
                        .c_str());
  std::printf("%s", stats::compare_line("median RTT with long TTL", "8 ms",
                                        stats::fmt("%.1f ms",
                                                   after_cdf.median()))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "75th percentile short vs long", "183 ms vs 21 ms",
                        stats::fmt("%.0f ms vs %.0f ms",
                                   before_cdf.quantile(0.75),
                                   after_cdf.quantile(0.75)))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "every region improves", "yes",
                        "see Figure 10b table above")
                        .c_str());
  return 0;
}
