// Reproduces Figure 10: the .uy natural experiment.  Before 2019-03-04 the
// child NS TTL was 300 s (median client RTT 28.7 ms); after raising it to
// 86400 s the median fell to 8 ms because .uy stays cached at recursives.
// Panel (b) breaks the RTT change down by probe region.

#include "bench_common.h"
#include "core/latency_experiment.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 10",
                      ".uy RTT before/after the NS TTL change (300s->86400s)");

  core::World world{core::World::Options{args.seed, 0.002, {}}};
  auto uy_zone = world.add_tld("uy", "a.nic", dns::kTtl2Days, dns::kTtl5Min,
                               dns::Ttl{120}, net::Location{net::Region::kSA, 1.0});
  auto platform = atlas::Platform::build(world.network(), world.hints(),
                                         world.root_zone(),
                                         args.platform_spec(), world.rng());
  std::printf("platform: %zu probes, %zu VPs\n\n", platform.probes().size(),
              platform.vp_count());

  // Before: short child TTL.
  auto before = core::run_uy_rtt(world, platform, sim::Time{});

  // The operator raises the TTL to one day; caches from the "before" era
  // drain naturally (we give them an hour, like the days between the
  // paper's measurements, scaled to the short TTLs involved).
  uy_zone->set_ttl(dns::Name::from_string("uy"), dns::RRType::kNS,
                   dns::kTtl1Day);
  platform.flush_all();
  auto after = core::run_uy_rtt(world, platform,
                                world.simulation().now() + sim::kHour);

  auto before_cdf = before.rtt_cdf_ms();
  auto after_cdf = after.rtt_cdf_ms();

  std::printf("Figure 10a — RTT CDF, all VPs combined:\n");
  std::printf("%s\n", before_cdf.render({5, 10, 20, 50, 100, 200, 500, 1000},
                                        "RTT ms (TTL 300)")
                          .c_str());
  std::printf("%s\n", after_cdf.render({5, 10, 20, 50, 100, 200, 500, 1000},
                                       "RTT ms (TTL 86400)")
                          .c_str());
  std::printf("TTL 300:   %s\n",
              stats::percentile_summary(before_cdf, "ms").c_str());
  std::printf("TTL 86400: %s\n\n",
              stats::percentile_summary(after_cdf, "ms").c_str());

  std::printf("Figure 10b — median (p25-p75) RTT per region:\n");
  stats::TablePrinter regions({"region", "TTL300 p25/p50/p75",
                               "TTL86400 p25/p50/p75"});
  for (net::Region region : net::kAllRegions) {
    auto b = before.rtt_cdf_ms(region, platform);
    auto a = after.rtt_cdf_ms(region, platform);
    if (b.empty() || a.empty()) continue;
    regions.add_row({std::string(net::to_string(region)),
                     stats::fmt("%5.1f /%6.1f /%6.1f ms", b.quantile(0.25),
                                b.median(), b.quantile(0.75)),
                     stats::fmt("%5.1f /%6.1f /%6.1f ms", a.quantile(0.25),
                                a.median(), a.quantile(0.75))});
  }
  std::printf("%s\n", regions.render().c_str());

  std::printf("%s", stats::compare_line(
                        "median RTT with short TTL", "28.7 ms",
                        stats::fmt("%.1f ms", before_cdf.median()))
                        .c_str());
  std::printf("%s", stats::compare_line("median RTT with long TTL", "8 ms",
                                        stats::fmt("%.1f ms",
                                                   after_cdf.median()))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "75th percentile short vs long", "183 ms vs 21 ms",
                        stats::fmt("%.0f ms vs %.0f ms",
                                   before_cdf.quantile(0.75),
                                   after_cdf.quantile(0.75)))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "every region improves", "yes",
                        "see Figure 10b table above")
                        .c_str());
  return 0;
}
