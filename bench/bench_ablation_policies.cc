// Ablation: each resolver design choice in isolation, on one fixed
// workload (the .uy layout of §3.2).  For every policy knob DESIGN.md
// calls out — centricity, glue↔NS linkage, TTL caps, stickiness,
// authoritative address verification, SRTT server selection, DNSSEC
// validation, prefetch — a single-profile population runs the same
// 2-hour NS measurement and reports what the knob changes: the observed
// TTL, client latency, and upstream/authoritative load.

#include <vector>

#include "bench_common.h"
#include "core/centricity_experiment.h"
#include "dns/dnssec.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

struct Variant {
  std::string name;
  resolver::ResolverConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"baseline (child-centric)", resolver::child_centric_config()});
  out.push_back({"parent-centric", resolver::parent_centric_config()});
  out.push_back({"opendns (parent+local root)", resolver::opendns_like_config()});
  out.push_back({"sticky", resolver::sticky_config()});
  {
    auto c = resolver::child_centric_config();
    c.link_glue_to_ns = false;
    out.push_back({"no glue<->NS linkage", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.fetch_authoritative_ns_addresses = false;
    out.push_back({"no address verification", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.srtt_selection = false;
    out.push_back({"round-robin server selection", c});
  }
  out.push_back({"21599s cap (google-like)", resolver::google_like_config()});
  {
    auto c = resolver::child_centric_config();
    c.max_ttl = dns::Ttl{600};
    out.push_back({"600s cap", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.min_ttl = dns::Ttl{3600};
    out.push_back({"3600s floor", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.validate_dnssec = true;
    out.push_back({"DNSSEC validation", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.prefetch = true;
    out.push_back({"prefetch", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.serve_stale = true;
    out.push_back({"serve-stale", c});
  }
  {
    auto c = resolver::child_centric_config();
    c.qname_minimization = true;
    out.push_back({"QNAME minimization", c});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation", "resolver policy knobs on the .uy workload");

  stats::TablePrinter table({"variant", "median TTL", "p90 TTL",
                             "median RTT", "upstream q / client q",
                             "auth queries"});

  for (const auto& variant : variants()) {
    core::World world{core::World::Options{args.seed, 0.002, {}}};
    auto uy_zone = world.add_tld("uy", "a.nic", dns::kTtl2Days,
                                 dns::kTtl5Min, dns::Ttl{120},
                                 net::Location{net::Region::kSA, 1.0});
    // The zone is signed so the validation variant has signatures to check.
    dns::sign_zone(*uy_zone, dns::make_zone_key(dns::Name::from_string("uy")));

    atlas::PlatformSpec spec;
    spec.probe_count = std::max<std::size_t>(
        60, static_cast<std::size_t>(1200 * args.scale));
    spec.resolver_count = std::max<std::size_t>(
        40, static_cast<std::size_t>(800 * args.scale));
    spec.public_resolver_fraction = 0.0;
    spec.forwarder_fraction = 0.0;
    spec.profiles = {{"variant", variant.config, 1.0}};
    auto platform = atlas::Platform::build(world.network(), world.hints(),
                                           world.root_zone(), spec,
                                           world.rng());

    core::CentricitySetup setup;
    setup.name = variant.name;
    setup.qname = dns::Name::from_string("uy");
    setup.qtype = dns::RRType::kNS;
    setup.parent_ttl = dns::kTtl2Days;
    setup.child_ttl = dns::kTtl5Min;
    setup.duration = 2 * sim::kHour;
    auto result = core::run_centricity(world, platform, setup);

    std::uint64_t upstream = 0;
    std::uint64_t clients = 0;
    for (const auto& member : platform.resolver_population().members()) {
      upstream += member.resolver->stats().upstream_queries;
      clients += member.resolver->stats().client_queries;
    }
    auto ttl_cdf = result.run.ttl_cdf();
    auto rtt_cdf = result.run.rtt_cdf_ms();
    table.add_row(
        {variant.name,
         ttl_cdf.empty() ? "-" : stats::fmt("%.0f s", ttl_cdf.median()),
         ttl_cdf.empty() ? "-" : stats::fmt("%.0f s", ttl_cdf.quantile(0.9)),
         rtt_cdf.empty() ? "-" : stats::fmt("%.1f ms", rtt_cdf.median()),
         clients == 0 ? "-"
                      : stats::fmt("%.2f", static_cast<double>(upstream) /
                                               static_cast<double>(clients)),
         std::to_string(world.server("a.nic.uy.").queries_answered())});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading guide:\n"
      "  - parent-centric/opendns: median TTL jumps to the 2-day parent copy\n"
      "  - caps/floors: the served TTL band is clamped\n"
      "  - no address verification: fewer authoritative queries\n"
      "  - DNSSEC validation: extra DNSKEY fetches (higher load)\n"
      "  - prefetch: fewer client-visible misses at slightly higher load\n");
  return 0;
}
