// Extension experiment: TTLs as DDoS resilience (the paper's §6.1
// motivation, quantified in the style of Moura et al. 2018, "When the Dike
// Breaks").  An authoritative service goes dark for a fixed window; the
// fraction of client queries still answered during the attack is measured
// as a function of the record TTL, for plain caches and for RFC 8767
// serve-stale caches.  The paper's qualitative claim — caching rides out
// attacks shorter than the TTL; serve-stale rides out anything — becomes a
// table.

#include <vector>

#include "bench_common.h"
#include "core/world.h"
#include "dns/rr.h"
#include "resolver/recursive_resolver.h"
#include "stats/table.h"

using namespace dnsttl;

namespace {

struct Cell {
  double answered = 0.0;
  double stale_answered = 0.0;
};

Cell run_cell(std::uint64_t seed, dns::Ttl ttl,
              sim::Duration attack_duration) {
  const sim::Duration attack_start = 2 * sim::kHour;  // long steady warm-up
  const sim::Duration interval = 5 * sim::kMinute;
  const int kResolvers = 16;  // staggered phases average out TTL alignment

  Cell cell;
  for (bool stale : {false, true}) {
    core::World world{core::World::Options{seed, 0.0, {}}};
    auto zone = world.add_tld("shop", "ns1", dns::kTtl1Day, dns::kTtl1Day,
                              dns::kTtl1Day,
                              net::Location{net::Region::kNA, 1.0});
    zone->add(dns::make_a(dns::Name::from_string("www.shop"), ttl,
                          dns::Ipv4(10, 1, 0, 1)));

    auto config = resolver::child_centric_config();
    config.serve_stale = stale;
    std::vector<std::unique_ptr<resolver::RecursiveResolver>> resolvers;
    std::vector<sim::Time> phases;
    sim::Rng rng(seed + ttl.value());
    for (int i = 0; i < kResolvers; ++i) {
      auto r = std::make_unique<resolver::RecursiveResolver>(
          "r" + std::to_string(i), config, world.network(), world.hints());
      net::Location eu{net::Region::kEU, 1.0};
      r->set_node_ref(net::NodeRef{world.network().attach(*r, eu), eu});
      resolvers.push_back(std::move(r));
      // Each resolver first learns the record at a random point within one
      // TTL cycle, so the remaining-TTL at attack time is uniform — the
      // steady-state of real, unsynchronized demand.
      double max_phase = std::min<double>(
          static_cast<double>(ttl.value()) * static_cast<double>(sim::kSecond.count()),
          static_cast<double>((attack_start - sim::kMinute).count()));
      phases.push_back(sim::Time(static_cast<std::int64_t>(
          rng.uniform(0.0, std::max<double>(max_phase, 1.0)))));
    }

    dns::Question question{dns::Name::from_string("www.shop"),
                           dns::RRType::kA, dns::RClass::kIN};
    int asked = 0;
    int answered = 0;
    for (int i = 0; i < kResolvers; ++i) {
      // Poisson demand: misses (and thus refreshes) land at random points
      // in the TTL window, like real client traffic — no phase locking.
      sim::Time t = phases[static_cast<std::size_t>(i)];
      while (t < sim::at(attack_start + attack_duration)) {
        if (t >= sim::at(attack_start) && world.server("ns1.shop.").online()) {
          world.server("ns1.shop.").set_online(false);  // the attack begins
        }
        auto result = resolvers[static_cast<std::size_t>(i)]->resolve(
            question, t);
        if (t >= sim::at(attack_start)) {
          ++asked;
          if (result.response.flags.rcode == dns::Rcode::kNoError &&
              !result.response.answers.empty()) {
            ++answered;
          }
        }
        t += sim::approx_seconds(rng.exponential(sim::to_seconds(interval)));
      }
      world.server("ns1.shop.").set_online(true);  // reset for next resolver
    }
    double fraction =
        asked == 0 ? 0.0
                   : static_cast<double>(answered) / static_cast<double>(asked);
    (stale ? cell.stale_answered : cell.answered) = fraction;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Extension",
                      "caching as DDoS resilience: answered fraction during "
                      "an authoritative outage");

  const std::vector<dns::Ttl> ttls = {dns::Ttl{60}, dns::Ttl{300},   dns::Ttl{900},   dns::Ttl{1800},
                                      dns::Ttl{3600}, dns::Ttl{14400}, dns::Ttl{86400}};
  const std::vector<sim::Duration> attacks = {30 * sim::kMinute, sim::kHour,
                                              4 * sim::kHour, 8 * sim::kHour};

  for (bool stale : {false, true}) {
    std::printf("--- %s ---\n",
                stale ? "serve-stale resolver (RFC 8767)" : "plain resolver");
    stats::TablePrinter table({"TTL \\ attack", "30 min", "1 h", "4 h",
                               "8 h"});
    for (dns::Ttl ttl : ttls) {
      std::vector<std::string> cells{std::to_string(ttl.value()) + " s"};
      for (auto attack : attacks) {
        auto cell = run_cell(args.seed, ttl, attack);
        cells.push_back(stats::fmt(
            "%3.0f%%", 100.0 * (stale ? cell.stale_answered : cell.answered)));
      }
      table.add_row(std::move(cells));
    }
    std::printf("%s\n", table.render().c_str());
  }

  auto short_long = run_cell(args.seed, dns::Ttl{3600}, sim::kHour);
  std::printf("%s", stats::compare_line(
                        "caching survives attacks shorter than the TTL",
                        "Moura et al. 2018 / paper §6.1",
                        stats::fmt("TTL 3600 s vs 1 h attack: %.0f%% answered",
                                   100 * short_long.answered))
                        .c_str());
  std::printf("%s", stats::compare_line(
                        "serve-stale rides out any outage with a warm cache",
                        "RFC 8767 rationale",
                        stats::fmt("%.0f%% answered",
                                   100 * short_long.stale_answered))
                        .c_str());
  return 0;
}
