// Reproduces Table 8: domains configured with TTL = 0 s per record type and
// list — rare, but they fully disable caching (§5.1.2 recommends against
// them).

#include <vector>

#include "bench_common.h"
#include "crawl/crawler.h"
#include "par/pool.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 8", "domains with TTL=0 s per record type");

  sim::Rng rng(args.seed);
  auto scaled = [&](std::size_t full) {
    return std::max<std::size_t>(2000,
                                 static_cast<std::size_t>(static_cast<double>(full) * args.scale));
  };
  std::vector<crawl::ListParams> lists = {
      crawl::alexa_params(scaled(100000)),
      crawl::majestic_params(scaled(100000)),
      crawl::umbrella_params(scaled(100000)),
      crawl::nl_params(scaled(500000)),
      crawl::root_params(),
  };

  std::vector<crawl::CrawlReport> reports;
  for (const auto& params : lists) {
    auto population = crawl::generate_population(params, rng);
    reports.push_back(crawl::crawl_sharded(
        params.name, population, par::shard_count_for(population.size()),
        args.jobs));
  }

  stats::TablePrinter table({"", "Alexa", "Majestic", "Umbrella", ".nl",
                             "Root"});
  std::size_t grand_total = 0;
  for (auto type : {dns::RRType::kNS, dns::RRType::kA, dns::RRType::kAAAA,
                    dns::RRType::kMX, dns::RRType::kDNSKEY}) {
    std::vector<std::string> cells{std::string(dns::to_string(type))};
    for (const auto& report : reports) {
      const auto* tally = report.by_type.find(type);
      std::size_t count = tally == nullptr ? 0 : tally->ttl_zero_domain_count;
      grand_total += count;
      cells.push_back(std::to_string(count));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.render().c_str());

  const auto& root = reports[4];
  std::size_t root_zero = 0;
  for (const auto& [type, tally] : root.by_type) {
    root_zero += tally.ttl_zero_domain_count;
  }
  std::printf("%s", stats::compare_line(
                        "TTL=0 is rare but present in every big list",
                        "thousands per 1M",
                        stats::fmt("%zu total at this scale", grand_total))
                        .c_str());
  std::printf("%s", stats::compare_line("root zone has zero TTL=0 entries",
                                        "0",
                                        std::to_string(root_zero))
                        .c_str());
  std::printf("\nRecommendation (§5.1.2): do not set TTL=0 — it undermines\n"
              "caching, raising latency and removing DDoS resilience.\n");
  return 0;
}
