// Reproduces Tables 6 and 7: DMap content classification of .nl domains
// (placeholder / e-commerce / parking) and the median TTL per class and
// record type.

#include "bench_common.h"
#include "crawl/dmap.h"
#include "crawl/engine.h"
#include "stats/table.h"

using namespace dnsttl;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 6 + Table 7",
                      ".nl content classes and their TTL choices");

  sim::Rng rng(args.seed);
  auto params = crawl::nl_params(std::max<std::size_t>(
      5000, static_cast<std::size_t>(500000 * args.scale)));
  crawl::EngineOptions options;
  options.jobs = args.jobs;
  options.collect_content = true;  // DMap classification rides the crawl
  auto report = crawl::crawl_engine(params, rng.fork(0), options).dmap;

  stats::TablePrinter table6({"Categories", "#", "share"});
  const auto classes = {crawl::ContentClass::kPlaceholder,
                        crawl::ContentClass::kEcommerce,
                        crawl::ContentClass::kParking};
  for (auto content : classes) {
    auto it = report.class_counts.find(content);
    std::size_t count = it == report.class_counts.end() ? 0 : it->second;
    table6.add_row({std::string(crawl::to_string(content)),
                    std::to_string(count),
                    stats::fmt("%.1f%%", 100.0 * static_cast<double>(count) /
                                             static_cast<double>(
                                                 report.total_classified()))});
  }
  table6.add_row({"Total", std::to_string(report.total_classified()), ""});
  std::printf("Table 6 — .nl classified domains (DMap):\n%s\n",
              table6.render().c_str());

  stats::TablePrinter table7(
      {"", "Ecommerce", "Parking", "Placeholder"});
  for (auto type : {dns::RRType::kNS, dns::RRType::kA, dns::RRType::kAAAA,
                    dns::RRType::kMX, dns::RRType::kDNSKEY}) {
    std::vector<std::string> cells{std::string(dns::to_string(type))};
    for (auto content : {crawl::ContentClass::kEcommerce,
                         crawl::ContentClass::kParking,
                         crawl::ContentClass::kPlaceholder}) {
      auto it = report.median_ttl_hours.find({content, type});
      cells.push_back(it == report.median_ttl_hours.end()
                          ? "-"
                          : stats::fmt("%.1f", it->second));
    }
    table7.add_row(std::move(cells));
  }
  std::printf("Table 7 — median TTL (hours) per class:\n%s\n",
              table7.render().c_str());

  auto median = [&](crawl::ContentClass content, dns::RRType type) {
    auto it = report.median_ttl_hours.find({content, type});
    return it == report.median_ttl_hours.end() ? -1.0 : it->second;
  };
  std::printf("%s", stats::compare_line(
                        "Parking NS median", "24 h",
                        stats::fmt("%.0f h", median(crawl::ContentClass::kParking,
                                                    dns::RRType::kNS)))
                        .c_str());
  std::printf("%s",
              stats::compare_line(
                  "E-commerce / Placeholder NS median", "4 h",
                  stats::fmt("%.0f h / %.0f h",
                             median(crawl::ContentClass::kEcommerce,
                                    dns::RRType::kNS),
                             median(crawl::ContentClass::kPlaceholder,
                                    dns::RRType::kNS)))
                  .c_str());
  std::printf("%s", stats::compare_line(
                        "A-record median (all classes)", "1 h",
                        stats::fmt("%.0f h",
                                   median(crawl::ContentClass::kEcommerce,
                                          dns::RRType::kA)))
                        .c_str());
  return 0;
}
